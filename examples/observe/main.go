// Observe: unified runtime observability on a faulty, hedged,
// power-capped multi-job session. A live subscriber drains the bounded
// event feed while three jobs run — watching tasks queue, place, start
// and complete, faults inject, hedges launch and win, and the report
// task get shed for missing its deadline — and the session's full
// telemetry is then exported three ways: a session dump (everything:
// spans, counters, metrics, ordered event log), a Chrome trace_event
// JSON loadable in chrome://tracing or Perfetto, and a Prometheus text
// exposition of the metric registry. The written session dump is what
// the legato-trace CLI consumes:
//
//	legato-trace -in observe-session.json
//	legato-trace -in observe-session.json -chrome trace.json
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"legato"
	"legato/internal/faults"
	"legato/internal/ft"
	"legato/internal/hw"
	"legato/internal/obs"
	"legato/internal/power"
)

// buildChains fills a job with two parallel four-stage chains of wide
// tasks plus a deadline-bearing report task the degraded session sheds.
func buildChains(job *legato.Job) error {
	var outs []legato.DataHandle
	for c := 0; c < 2; c++ {
		prev := job.Data(fmt.Sprintf("chain%d/in", c), 4096)
		for stage := 0; stage < 4; stage++ {
			next := job.Data(fmt.Sprintf("chain%d/s%d", c, stage), 4096)
			if err := job.Task(fmt.Sprintf("chain%d/stage%d", c, stage)).
				Gops(400).Cores(8).In(prev).Out(next).Submit(); err != nil {
				return err
			}
			prev = next
		}
		outs = append(outs, prev)
	}
	return job.Task("report").Gops(40).Cores(1).In(outs...).
		Deadline(8 * time.Second).Submit()
}

func main() {
	log.SetFlags(0)

	probe, err := legato.NewSystem(legato.WithPlatform(legato.CloudPlatform))
	if err != nil {
		log.Fatal(err)
	}
	capW := 0.6 * float64(power.FleetPeakWatts(probe.Devices()))
	if err := probe.Close(context.Background()); err != nil {
		log.Fatal(err)
	}

	sys, err := legato.NewSystem(
		legato.WithPlatform(legato.CloudPlatform),
		legato.WithPolicy(legato.MinTime),
		legato.WithWorkers(3),
		legato.WithPowerCap(capW),
		// Silently slow the x86 microservers so the watchdog has
		// stragglers to hedge — every hedge becomes event traffic.
		legato.WithFaults(faults.Plan{
			DegradeMTBF:     ft.MTBFModel{hw.CPUx86: 0.05},
			DegradeTo:       1.0,
			DegradeSlowdown: 6.0,
			Seed:            7,
		}),
		legato.WithHedging(legato.HedgePolicy{Multiplier: 1.5}),
		legato.WithDeadlineMode(legato.DeadlineShed),
		// Keep the ordered in-memory log so ExportSession carries the
		// full event stream alongside spans and metrics.
		legato.WithEventLog(),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Live subscriber: a bounded feed (obs.DefaultBuffer events). The
	// consumer tallies kinds as they arrive; Close ends the feed.
	feed := sys.Events()
	counts := make(map[legato.EventKind]int)
	total := 0
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for e := range feed {
			counts[e.Kind]++
			total++
		}
	}()

	var jobs []*legato.Job
	for n := 0; n < 3; n++ {
		job, err := sys.NewJob(fmt.Sprintf("render-%d", n))
		if err != nil {
			log.Fatal(err)
		}
		if err := buildChains(job); err != nil {
			log.Fatal(err)
		}
		if err := job.Start(ctx); err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(ctx); err != nil {
			log.Fatalf("%s: %v", job.Name(), err)
		}
	}

	// Export the session dump BEFORE Close (Close tears down the feed;
	// the tracer and registry stay readable, but exporting here keeps
	// the artifact flow obvious).
	dumpFile, err := os.Create("observe-session.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ExportSession(dumpFile); err != nil {
		log.Fatal(err)
	}
	if err := dumpFile.Close(); err != nil {
		log.Fatal(err)
	}

	chrome, err := obs.ChromeTrace(sys.Tracer().Spans(), sys.Tracer().Counters())
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("observe-trace.json", chrome, 0o644); err != nil {
		log.Fatal(err)
	}
	prom := obs.PrometheusText(sys.Monitor().Snapshot())
	if err := os.WriteFile("observe-metrics.prom", []byte(prom), 0o644); err != nil {
		log.Fatal(err)
	}

	if err := sys.Close(ctx); err != nil {
		log.Fatal(err)
	}
	<-drained

	fmt.Printf("live feed saw %d events (%d dropped by backpressure):\n", total, sys.EventsDropped())
	kinds := make([]legato.EventKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-20s %4d\n", k, counts[k])
	}

	fmt.Printf("\nartifacts: observe-session.json (%d events), observe-trace.json (%d bytes), observe-metrics.prom (%d bytes)\n",
		len(sys.EventLog()), len(chrome), len(prom))

	// Witnesses: the feed must have carried every lifecycle milestone and
	// the tail-tolerance traffic the fault plan provokes.
	wantTasks := 3 * (2*4 + 1)
	done := counts[legato.EvTaskCompleted] + counts[legato.EvTaskShed]
	if done != wantTasks {
		log.Fatalf("feed saw %d terminal task events, want %d", done, wantTasks)
	}
	for _, k := range []legato.EventKind{
		legato.EvFaultInjected, legato.EvHedgeLaunched, legato.EvPowerAdmitted,
	} {
		if counts[k] == 0 {
			log.Fatalf("feed never saw %v", k)
		}
	}
	fmt.Println("\nwitness: every task's terminal event reached the live subscriber")
}
