package secure

import (
	"bytes"
	"testing"
)

var rootKey = []byte("platform-root-key-0123456789abcd")

func TestSealUnsealRoundTrip(t *testing.T) {
	e, err := New(SGX, []byte("enclave-code-v1"), rootKey)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("smart mirror face database")
	sealed, err := e.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, secret) {
		t.Fatal("sealed blob leaks plaintext")
	}
	got, err := e.Unseal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("round trip corrupted data")
	}
}

func TestSealBoundToMeasurement(t *testing.T) {
	e1, _ := New(SGX, []byte("code-v1"), rootKey)
	e2, _ := New(SGX, []byte("code-v2"), rootKey)
	sealed, err := e1.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Unseal(sealed); err != ErrSealBroken {
		t.Fatalf("different code identity unsealed the blob: %v", err)
	}
	// Same code, same platform: unseal works (persistence across restarts).
	e3, _ := New(SGX, []byte("code-v1"), rootKey)
	if _, err := e3.Unseal(sealed); err != nil {
		t.Fatalf("same identity failed to unseal: %v", err)
	}
	// Same code, different platform: fails.
	e4, _ := New(SGX, []byte("code-v1"), []byte("other-platform-root-key-000000"))
	if _, err := e4.Unseal(sealed); err != ErrSealBroken {
		t.Fatal("cross-platform unseal succeeded")
	}
}

func TestTamperDetected(t *testing.T) {
	e, _ := New(TrustZone, []byte("code"), rootKey)
	sealed, _ := e.Seal([]byte("payload"))
	sealed[len(sealed)-1] ^= 1
	if _, err := e.Unseal(sealed); err != ErrSealBroken {
		t.Fatal("tampered blob unsealed")
	}
	if _, err := e.Unseal([]byte("short")); err != ErrSealBroken {
		t.Fatal("truncated blob unsealed")
	}
}

func TestAttestation(t *testing.T) {
	code := []byte("gateway-enclave")
	e, _ := New(SGX, code, rootKey)
	q := e.Attest(42)
	if !Verify(q, e.Measurement, rootKey) {
		t.Fatal("genuine quote rejected")
	}
	// Wrong nonce / replay with altered nonce.
	q2 := q
	q2.Nonce = 43
	if Verify(q2, e.Measurement, rootKey) {
		t.Fatal("quote with altered nonce accepted")
	}
	// Wrong expected measurement.
	var other [32]byte
	if Verify(q, other, rootKey) {
		t.Fatal("quote accepted against wrong measurement")
	}
	// Forged MAC.
	q3 := q
	q3.MAC[0] ^= 1
	if Verify(q3, e.Measurement, rootKey) {
		t.Fatal("forged quote accepted")
	}
	// Wrong platform key.
	if Verify(q, e.Measurement, []byte("not-the-platform-keyxxxxxxxxxxxx")) {
		t.Fatal("quote verified under wrong platform key")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(SGX, []byte("x"), nil); err == nil {
		t.Fatal("missing root key accepted")
	}
}

func TestHardwareAccelerationEnergyGap(t *testing.T) {
	workload := func(e *Enclave) {
		data := make([]byte, 1<<20)
		for i := 0; i < 20; i++ {
			sealed, err := e.Seal(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Unseal(sealed); err != nil {
				t.Fatal(err)
			}
			e.Attest(uint64(i))
			e.RunSecure(func() {})
		}
	}
	sw, _ := New(SoftwareOnly, []byte("code"), rootKey)
	hwE, _ := New(SGX, []byte("code"), rootKey)
	workload(sw)
	workload(hwE)
	ratio := OverheadRatio(sw, hwE)
	// Project goal (Sec. VII): 10× security-overhead reduction via
	// instruction-level hardware support.
	if ratio < 10 {
		t.Fatalf("hardware acceleration gap %.1fx, want ≥10x", ratio)
	}
	if sw.Ops != hwE.Ops {
		t.Fatalf("unequal op counts: %d vs %d", sw.Ops, hwE.Ops)
	}
}

func TestRunSecureChargesTransition(t *testing.T) {
	e, _ := New(SGX, []byte("code"), rootKey)
	before := e.EnergyNJ
	ran := false
	e.RunSecure(func() { ran = true })
	if !ran {
		t.Fatal("secure function did not run")
	}
	if e.EnergyNJ <= before {
		t.Fatal("no transition cost charged")
	}
}
