package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"legato/internal/faults"
	"legato/internal/ft"
	"legato/internal/hw"
	"legato/internal/monitor"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

// A mid-session capacity shrink may leave more cores granted than the new
// capacity allows. The ledger carries the deficit: admissions fail until
// releases pay it down, no Release ever panics, and the oversubscription
// witness Peak(id) ≤ Capacity(id) holds against the *current* capacity.
func TestFleetCapacityShrinkDeficit(t *testing.T) {
	se := sim.NewEngine()
	devs, _ := testPlatform(se)
	f := NewFleet(devs)

	if !f.TryAcquire("dev/cpu", 6) {
		t.Fatal("initial acquire refused")
	}
	f.SetCapacity("dev/cpu", 4) // 6 granted on a 4-core budget: deficit of 2
	if f.Peak("dev/cpu") > f.Capacity("dev/cpu") {
		t.Fatalf("peak %d exceeds shrunk capacity %d", f.Peak("dev/cpu"), f.Capacity("dev/cpu"))
	}
	if f.TryAcquire("dev/cpu", 1) {
		t.Fatal("admission succeeded while the device is in deficit")
	}
	f.Release("dev/cpu", 3) // pays the deficit down to 1 free... of 4
	if f.TryAcquire("dev/cpu", 2) {
		t.Fatal("admission exceeded post-shrink capacity")
	}
	if !f.TryAcquire("dev/cpu", 1) {
		t.Fatal("admission refused despite free post-shrink capacity")
	}
	f.Release("dev/cpu", 4) // returns the remaining grants: 3 old + 1 new
	if f.InUse("dev/cpu") != 0 {
		t.Fatalf("in-use %d after all releases, want 0", f.InUse("dev/cpu"))
	}
	if f.Peak("dev/cpu") > f.Capacity("dev/cpu") {
		t.Fatalf("final peak %d > capacity %d", f.Peak("dev/cpu"), f.Capacity("dev/cpu"))
	}
}

// Fail and SetCapacity must wake admission waiters just like Release does —
// a parked job that missed the wakeup would deadlock the session.
func TestFleetFailSignalsWaiters(t *testing.T) {
	se := sim.NewEngine()
	devs, _ := testPlatform(se)
	f := NewFleet(devs)

	ch := f.Changed()
	f.Fail("dev/fpga")
	select {
	case <-ch:
	default:
		t.Fatal("Fail did not signal Changed")
	}
	if !f.Lost("dev/fpga") || f.Capacity("dev/fpga") != 0 {
		t.Fatalf("lost=%v cap=%d after Fail", f.Lost("dev/fpga"), f.Capacity("dev/fpga"))
	}
	ch = f.Changed()
	f.SetCapacity("dev/cpu", 4)
	select {
	case <-ch:
	default:
		t.Fatal("SetCapacity did not signal Changed")
	}
	// Fail is idempotent: a second call must not re-shrink or signal twice.
	ch = f.Changed()
	f.Fail("dev/fpga")
	select {
	case <-ch:
		t.Fatal("repeated Fail signalled again")
	default:
	}
}

// Two FPGA-only jobs contend for the single 4-region FPGA; while one holds
// it the other parks on admission. Failing the FPGA mid-session must wake
// the parked job — which then has no compatible device left and fails with
// ErrDeviceLost instead of hanging the session. Run with -race: this is the
// lost-wakeup regression test.
func TestParkedJobWakesOnDeviceLoss(t *testing.T) {
	e := newTestEngine(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fpgaJob := func(name string) *Job {
		j, err := e.NewJob(name)
		if err != nil {
			t.Fatal(err)
		}
		rt := j.Runtime()
		rt.SetRetryPolicy(3, time.Millisecond)
		if err := rt.Submit(taskrt.Task{
			Name: name + "/t0", Gops: 1000, Cores: 4,
			Targets: []hw.Class{hw.FPGA},
		}); err != nil {
			t.Fatal(err)
		}
		// The fault rides the job's own virtual clock (runtimes are
		// goroutine-confined): whichever job wins the FPGA advances to 1ms
		// mid-task and pulls the device out fleet-wide; the loser is parked
		// at virtual 0 with its clock frozen, so only the Changed() wakeup
		// can unblock it.
		rt.ScheduleFault(time.Millisecond, func() {
			e.Fleet().Fail("dev/fpga")
			rt.FailDevice("dev/fpga")
		})
		return j
	}
	a, b := fpgaJob("holder"), fpgaJob("parked")
	if err := e.Submit(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(ctx, b); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, j := range []*Job{a, b} {
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			_, errs[i] = j.Wait(ctx)
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, taskrt.ErrDeviceLost) {
			t.Fatalf("job %d: err = %v, want ErrDeviceLost", i, err)
		}
	}
	if ctx.Err() != nil {
		t.Fatal("session timed out: parked job never woke on device loss")
	}
}

// End-to-end Config.Faults wiring: a plan whose single crash lands at the
// session start removes the FPGA fleet-wide; every job re-places on the CPU,
// completes, and the loss shows up in Stats and the registry.
func TestEngineFaultPlanEndToEnd(t *testing.T) {
	reg := monitor.NewRegistry()
	// MTBF of one microsecond: the sampled crash lands at the very start of
	// the session, before any placement settles.
	plan := faults.Plan{MTBF: ft.MTBFModel{hw.FPGA: 1e-6}, MaxCrashes: 1, Seed: 1}
	e, err := New(Config{Workers: 4, Policy: taskrt.MinTime, NewPlatform: testPlatform,
		Registry: reg, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Shutdown(context.Background()) }()
	if evs := e.Faults().Events(); len(evs) != 1 || evs[0].Device != "dev/fpga" {
		t.Fatalf("sampled events = %+v, want one dev/fpga crash", evs)
	}

	ctx := context.Background()
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j := chainJob(t, e, fmt.Sprintf("job%d", i), 4, 2, nil)
		jobs = append(jobs, j)
		if err := e.Submit(ctx, j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s did not survive the device loss: %v", j.Name, err)
		}
	}
	st := e.Stats()
	if st.JobsCompleted != 4 {
		t.Fatalf("jobs completed = %d, want 4", st.JobsCompleted)
	}
	if st.DevicesLost != 1 {
		t.Fatalf("devices lost = %d, want 1", st.DevicesLost)
	}
	if !e.Fleet().Lost("dev/fpga") {
		t.Fatal("fleet does not record the FPGA loss")
	}
	if e.Fleet().Peak("dev/cpu") > e.Fleet().Capacity("dev/cpu") {
		t.Fatal("CPU oversubscribed while absorbing the FPGA's work")
	}
	if reg.ScopeSnapshot("faults")["device-crashes"] != 1 {
		t.Fatalf("registry faults scope: %+v", reg.ScopeSnapshot("faults"))
	}
}

// tailTestPlatform is the tail-tolerance pair: dev/fast is the MinTime
// favourite (a 100-Gop 1-core task takes 4 s), dev/backup a slower device
// of a different class (5.56 s) for replicas to land on.
func tailTestPlatform(se *sim.Engine) ([]*hw.Device, error) {
	return []*hw.Device{
		hw.NewDevice(se, "dev/fast", hw.XeonD()),
		hw.NewDevice(se, "dev/backup", hw.ARMv8Server()),
	}, nil
}

// End-to-end degrade → straggler → hedge: a fault plan silently slows the
// favourite device 4× (capacity untouched, so placement keeps choosing
// it), the watchdog flags the stretch at 1.5× the expected span, replicas
// launch on the other class and win, and the whole path shows up in Stats
// and the "tail" registry scope.
func TestDegradeStragglerHedgeEndToEnd(t *testing.T) {
	reg := monitor.NewRegistry()
	plan := faults.Plan{
		DegradeMTBF:     ft.MTBFModel{hw.CPUx86: 1e-6},
		DegradeTo:       1.0,
		DegradeSlowdown: 4.0,
		Seed:            1,
	}
	e, err := New(Config{Workers: 2, Policy: taskrt.MinTime, NewPlatform: tailTestPlatform,
		Registry: reg, Faults: &plan, Hedge: taskrt.HedgePolicy{Multiplier: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Shutdown(context.Background()) }()
	evs := e.Faults().Events()
	if len(evs) != 1 || evs[0].Kind != faults.Degrade || evs[0].Device != "dev/fast" || evs[0].Slowdown != 4 {
		t.Fatalf("sampled events = %+v, want one silent 4x degrade of dev/fast", evs)
	}

	ctx := context.Background()
	var jobs []*Job
	for i := 0; i < 2; i++ {
		j, err := e.NewJob(fmt.Sprintf("job%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Runtime().Submit(taskrt.Task{
			Name: fmt.Sprintf("job%d/t0", i), Gops: 100, Cores: 1,
		}); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		if err := e.Submit(ctx, j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		res, err := j.Wait(ctx)
		if err != nil {
			t.Fatalf("job %s did not survive the silent degrade: %v", j.Name, err)
		}
		rec := res.Records[0]
		if rec.Device != "dev/backup" || !rec.Hedged {
			t.Fatalf("job %s record device=%s hedged=%v, want the winning replica",
				j.Name, rec.Device, rec.Hedged)
		}
	}
	st := e.Stats()
	if st.StragglersDetected != 2 || st.HedgesLaunched != 2 || st.HedgesWon != 2 {
		t.Fatalf("stragglers=%d launched=%d won=%d, want 2/2/2",
			st.StragglersDetected, st.HedgesLaunched, st.HedgesWon)
	}
	if st.HedgeWastedJ <= 0 {
		t.Fatalf("hedge waste = %v J, want the cancelled primaries' energy", st.HedgeWastedJ)
	}
	if st.TasksRetried != 0 {
		t.Fatalf("retries = %d, want 0 (hedging, not crash recovery)", st.TasksRetried)
	}
	tail := reg.ScopeSnapshot("tail")
	if tail["stragglers-detected"] != 2 || tail["hedges-won"] != 2 || tail["hedge-wasted-J"] <= 0 {
		t.Fatalf("tail scope = %+v", tail)
	}
	if reg.ScopeSnapshot("device/dev/backup")["hedges-hosted"] != 2 {
		t.Fatalf("backup device scope = %+v", reg.ScopeSnapshot("device/dev/backup"))
	}
}

// A hedge racing a mid-flight fleet-wide loss of its own device: the
// replica is cancelled (its burned energy counted as waste), the
// straggling primary keeps running and completes, and the job survives
// without a retry.
func TestHedgeRacesHedgeDeviceLoss(t *testing.T) {
	e, err := New(Config{Workers: 1, Policy: taskrt.MinTime, NewPlatform: tailTestPlatform,
		Registry: monitor.NewRegistry(), Hedge: taskrt.HedgePolicy{Multiplier: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Shutdown(context.Background()) }()
	ctx := context.Background()

	j, err := e.NewJob("race")
	if err != nil {
		t.Fatal(err)
	}
	rt := j.Runtime()
	// Silent 4x slowdown of the favourite, invisible to placement: the
	// primary (launched at 0, expected 4 s) now finishes at ~16 s, and the
	// watchdog hedges onto dev/backup at 6 s (replica done ~11.56 s).
	rt.DegradeDevice("dev/fast", 4)
	// At 8 s — replica mid-flight — the backup dies fleet-wide, exactly
	// as the engine replays a crash event: shared ledger first, then the
	// job mirror.
	rt.ScheduleFault(8*time.Second, func() {
		e.Fleet().Fail("dev/backup")
		rt.FailDevice("dev/backup")
	})
	if err := rt.Submit(taskrt.Task{Name: "race/t0", Gops: 100, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(ctx, j); err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job did not survive losing its hedge's device: %v", err)
	}
	rec := res.Records[0]
	if rec.Device != "dev/fast" || rec.Hedged {
		t.Fatalf("record device=%s hedged=%v, want the surviving primary", rec.Device, rec.Hedged)
	}
	if rec.End != sim.Time(16*time.Second) {
		t.Fatalf("End = %v, want the degraded primary's full 16 s", rec.End)
	}
	st := e.Stats()
	if st.HedgesLaunched != 1 || st.HedgesWon != 0 {
		t.Fatalf("launched=%d won=%d, want the cancelled replica counted", st.HedgesLaunched, st.HedgesWon)
	}
	if st.HedgeWastedJ <= 0 {
		t.Fatal("hedge waste not accounted for the revoked replica")
	}
	if st.TasksRetried != 0 {
		t.Fatalf("retries = %d, want 0 (the primary never stopped)", st.TasksRetried)
	}
	if !e.Fleet().Lost("dev/backup") {
		t.Fatal("fleet does not record the backup loss")
	}
}
