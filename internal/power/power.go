// Package power implements the fleet-wide power-management subsystem of
// the LEGaTO reproduction — the third pillar (low-*energy*) next to the
// resilience layer (internal/faults) and the concurrent engine
// (internal/engine). Three pieces:
//
//   - DVFS ladders (LadderFor): every device's supported operating points
//     (frequency/voltage → speed factor, dynamic-power factor), plus
//     task-level undervolt points below the vendor guardband whose silent-
//     data-corruption probability feeds the internal/faults SDC model —
//     the Sec. III trade the paper builds FPGA undervolting on.
//   - a power-cap Ledger: the watt sibling of the engine's core-admission
//     ledger. The fleet has one watt budget; a placement is feasible only
//     if its dynamic draw fits under the cap on top of the static (idle)
//     draw of every healthy device. A TryDraw that would breach the cap
//     fails, and the job parks on a generation channel exactly like a
//     core-admission stall. PeakDraw ≤ Cap is the peak-draw witness, the
//     analogue of the core ledger's Peak(id) ≤ Capacity(id).
//   - a Governor policy: RaceToIdle keeps every device at nominal
//     frequency and lets jobs park under cap pressure (finish fast, idle
//     long); PackAndThrottle steps devices down their DVFS ladders when
//     draws are refused, packing more concurrent work under the cap at
//     lower per-task power, and steps them back toward nominal when the
//     draw relaxes or a device loss frees headroom.
//
// Layering: power knows the hardware catalogue (hw) and the energy units
// but not the engine or the task runtime; the engine owns one Ledger per
// session, taskrt consults it through the taskrt.PowerAdmission interface,
// and engine.Fleet forwards Fail/SetCapacity events so the watt ledger
// releases a lost device's draw the moment the core ledger zeroes its
// capacity.
package power

import (
	"fmt"
	"math"
	"sync"

	"legato/internal/energy"
	"legato/internal/hw"
)

// Kind selects the governor policy reshaping device frequencies under cap
// pressure.
type Kind int

const (
	// RaceToIdle keeps devices at nominal frequency; under cap pressure
	// jobs park until siblings release draw (run fast, idle long).
	RaceToIdle Kind = iota
	// PackAndThrottle steps devices down their DVFS ladder when a draw is
	// refused, fitting more concurrent tasks under the cap at lower
	// per-task power, and steps back up when the draw relaxes.
	PackAndThrottle
)

// String names the governor kind.
func (k Kind) String() string {
	switch k {
	case RaceToIdle:
		return "race-to-idle"
	case PackAndThrottle:
		return "pack-and-throttle"
	default:
		return fmt.Sprintf("governor(%d)", int(k))
	}
}

// Point is one operating point of a device's DVFS ladder, pre-resolved to
// scaling factors relative to the nominal state.
type Point struct {
	// State is the index into the device Spec.States this point selects.
	State int
	Name  string
	// FreqGHz and Voltage echo the underlying DVFS state.
	FreqGHz, Voltage float64
	// SpeedScale is execution speed relative to nominal (f/f0).
	SpeedScale float64
	// PowerScale is dynamic power relative to nominal (f·V² scaling).
	PowerScale float64
}

// Ladder is one device's ordered DVFS operating points, nominal (fastest)
// first — the shape the governor walks under cap pressure.
type Ladder struct {
	Device string
	Points []Point
}

// LadderFor resolves a device's DVFS states into a ladder of operating
// points. A spec without explicit states yields a single nominal point.
func LadderFor(id string, spec hw.Spec) Ladder {
	states := spec.States
	if len(states) == 0 {
		states = []hw.DVFSState{{Name: "nominal", FreqGHz: 1, Voltage: 1}}
	}
	nom := states[0]
	l := Ladder{Device: id, Points: make([]Point, 0, len(states))}
	for i, st := range states {
		speed, pscale := 1.0, 1.0
		if nom.FreqGHz > 0 && nom.Voltage > 0 {
			speed = st.FreqGHz / nom.FreqGHz
			v := st.Voltage / nom.Voltage
			pscale = speed * v * v
		}
		l.Points = append(l.Points, Point{
			State: i, Name: st.Name,
			FreqGHz: st.FreqGHz, Voltage: st.Voltage,
			SpeedScale: speed, PowerScale: pscale,
		})
	}
	return l
}

// MaxUndervolt is the deepest supported per-task undervolt level.
const MaxUndervolt = 3

// undervoltStepV is the fraction of nominal voltage shaved per level.
const undervoltStepV = 0.05

// UndervoltVoltageScale returns the supply-voltage factor of an undervolt
// level: each level shaves 5% below the operating point's voltage (the
// Sec. III sub-guardband region). Levels are clamped to [0, MaxUndervolt].
func UndervoltVoltageScale(level int) float64 {
	if level <= 0 {
		return 1
	}
	if level > MaxUndervolt {
		level = MaxUndervolt
	}
	return 1 - undervoltStepV*float64(level)
}

// UndervoltPowerScale returns the dynamic-power factor of an undervolt
// level: quadratic in voltage at unchanged frequency (paper Sec. III).
func UndervoltPowerScale(level int) float64 {
	v := UndervoltVoltageScale(level)
	return v * v
}

// SDCProbability returns the per-execution silent-data-corruption
// probability an undervolt level adds on top of the device class's base
// rate: zero inside the guardband, growing ~exponentially below it — the
// Fig. 5 fault-density curve collapsed to three steps.
func SDCProbability(level int) float64 {
	if level <= 0 {
		return 0
	}
	if level > MaxUndervolt {
		level = MaxUndervolt
	}
	return 2e-4 * math.Pow(4, float64(level-1))
}

// Ledger is the shared fleet power-cap ledger: one watt budget covering
// the static (idle) draw of every healthy device plus the dynamic draw of
// every admitted task, across all concurrently executing jobs. It is the
// sibling of the engine's core-admission ledger and is safe for concurrent
// use.
type Ledger struct {
	mu   sync.Mutex
	capW energy.Watts
	gov  Kind

	ladders map[string]Ladder
	point   map[string]int // governor-prescribed state index per device
	idleW   map[string]energy.Watts
	drawW   map[string]energy.Watts // granted dynamic draw per device
	lost    map[string]bool

	idleTotal energy.Watts
	dynDraw   energy.Watts
	peakW     energy.Watts
	stalls    uint64
	rescales  uint64
	gen       chan struct{} // closed and replaced on every release/reshape
}

// NewLedger builds a ledger over the reference devices with the given cap
// (watts; zero or negative means uncapped) and governor. The static draw
// of every device is charged from the start — idle silicon is not free,
// which is the accounting gap this subsystem closes.
func NewLedger(capW energy.Watts, devices []*hw.Device, gov Kind) *Ledger {
	l := &Ledger{
		capW:    capW,
		gov:     gov,
		ladders: make(map[string]Ladder, len(devices)),
		point:   make(map[string]int, len(devices)),
		idleW:   make(map[string]energy.Watts, len(devices)),
		drawW:   make(map[string]energy.Watts, len(devices)),
		lost:    make(map[string]bool),
		gen:     make(chan struct{}),
	}
	if capW <= 0 {
		l.capW = math.Inf(1)
	}
	for _, d := range devices {
		l.ladders[d.ID] = LadderFor(d.ID, d.Spec)
		l.point[d.ID] = 0
		l.idleW[d.ID] = d.Spec.IdleWatts
		l.idleTotal += d.Spec.IdleWatts
	}
	l.peakW = l.idleTotal
	return l
}

// FleetPeakWatts sums the nominal full-utilisation draw of the devices —
// the reference a relative cap (e.g. "60% of fleet peak") is set against.
func FleetPeakWatts(devices []*hw.Device) energy.Watts {
	total := energy.Watts(0)
	for _, d := range devices {
		total += d.Spec.PeakWatts
	}
	return total
}

// Cap returns the watt budget (+Inf when uncapped).
func (l *Ledger) Cap() energy.Watts {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.capW
}

// Capped reports whether a finite cap is armed.
func (l *Ledger) Capped() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !math.IsInf(l.capW, 1)
}

// Governor returns the governor kind.
func (l *Ledger) Governor() Kind { return l.gov }

// Draw returns the current modelled fleet draw: static power of healthy
// devices plus every granted dynamic watt.
func (l *Ledger) Draw() energy.Watts {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idleTotal + l.dynDraw
}

// IdleWatts returns the static draw of the surviving fleet.
func (l *Ledger) IdleWatts() energy.Watts {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idleTotal
}

// DrawOf returns a device's current draw (static + granted dynamic); zero
// for a lost device.
func (l *Ledger) DrawOf(deviceID string) energy.Watts {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lost[deviceID] {
		return 0
	}
	return l.idleW[deviceID] + l.drawW[deviceID]
}

// PeakDraw returns the high-water mark of the fleet draw — the peak-draw
// witness: it can never exceed Cap.
func (l *Ledger) PeakDraw() energy.Watts {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peakW
}

// Stalls counts refused draws (cap-pressure signal).
func (l *Ledger) Stalls() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stalls
}

// Rescales counts governor operating-point changes.
func (l *Ledger) Rescales() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rescales
}

// OperatingPoint returns the DVFS state index the governor currently
// prescribes for a device (0 = nominal, also for unknown devices).
func (l *Ledger) OperatingPoint(deviceID string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.point[deviceID]
}

// Ladder returns a device's resolved DVFS ladder.
func (l *Ledger) Ladder(deviceID string) Ladder {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ladders[deviceID]
}

// TryDraw claims watts of dynamic draw for a task on a device; it fails
// (without blocking) when the grant would push the fleet draw over the
// cap or the device is lost. On a refusal the PackAndThrottle governor
// steps the device down its DVFS ladder (or, at the ladder floor, the
// hungriest throttleable sibling), so the parked job re-scores the
// placement at a cheaper operating point when it wakes.
func (l *Ledger) TryDraw(deviceID string, w energy.Watts) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lost[deviceID] {
		l.stalls++
		return false
	}
	if l.idleTotal+l.dynDraw+w > l.capW {
		l.stalls++
		if l.gov == PackAndThrottle {
			l.throttleLocked(deviceID)
		}
		// Wake parked jobs even without a reshape: a sibling release may
		// have raced with this refusal.
		l.wakeLocked()
		return false
	}
	l.drawW[deviceID] += w
	l.dynDraw += w
	if d := l.idleTotal + l.dynDraw; d > l.peakW {
		l.peakW = d
	}
	return true
}

// ReleaseDraw returns granted watts and wakes every parked job. Releasing
// on a lost device is a no-op: DeviceLost already zeroed its draw, and
// late revocations from jobs crossing the crash on their private clocks
// must not double-release. Under PackAndThrottle a relaxed draw steps the
// most-throttled device back toward nominal.
func (l *Ledger) ReleaseDraw(deviceID string, w energy.Watts) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.lost[deviceID] {
		if w > l.drawW[deviceID] {
			w = l.drawW[deviceID]
		}
		l.drawW[deviceID] -= w
		l.dynDraw -= w
	}
	if l.gov == PackAndThrottle {
		l.unthrottleLocked()
	}
	l.wakeLocked()
}

// Changed returns a channel closed on the next release, reshape or fleet
// event after this call — the park/wake protocol of admission stalls.
func (l *Ledger) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// DeviceLost removes a device from the power ledger: its static draw
// stops being charged and every outstanding dynamic grant on it is
// released at once (the core ledger's revocations will call ReleaseDraw
// later from each job's clock; those become no-ops). Parked jobs are
// woken — a loss frees watt headroom. Under PackAndThrottle the freed
// headroom may step throttled survivors back up.
func (l *Ledger) DeviceLost(deviceID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lost[deviceID] {
		return
	}
	if _, ok := l.idleW[deviceID]; !ok {
		return
	}
	l.lost[deviceID] = true
	l.idleTotal -= l.idleW[deviceID]
	l.dynDraw -= l.drawW[deviceID]
	l.drawW[deviceID] = 0
	if l.gov == PackAndThrottle {
		l.unthrottleLocked()
	}
	l.wakeLocked()
}

// Lost reports whether the device was removed from the power ledger.
func (l *Ledger) Lost(deviceID string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lost[deviceID]
}

// wakeLocked closes and replaces the generation channel.
func (l *Ledger) wakeLocked() {
	close(l.gen)
	l.gen = make(chan struct{})
}

// throttleLocked steps a device one rung down its DVFS ladder; if the
// device is already at the floor, the healthy device with the largest
// dynamic draw that still has a lower rung is stepped instead.
func (l *Ledger) throttleLocked(deviceID string) {
	if l.stepDownLocked(deviceID) {
		return
	}
	best, bestDraw := "", energy.Watts(-1)
	for id, w := range l.drawW {
		if id == deviceID || l.lost[id] {
			continue
		}
		if l.point[id] < len(l.ladders[id].Points)-1 && w > bestDraw {
			best, bestDraw = id, w
		}
	}
	if best != "" {
		l.stepDownLocked(best)
	}
}

// stepDownLocked lowers one device's operating point if a rung exists.
func (l *Ledger) stepDownLocked(deviceID string) bool {
	if l.lost[deviceID] {
		return false
	}
	ladder, ok := l.ladders[deviceID]
	if !ok || l.point[deviceID] >= len(ladder.Points)-1 {
		return false
	}
	l.point[deviceID]++
	l.rescales++
	return true
}

// unthrottleLocked steps the most-throttled healthy device one rung back
// toward nominal once the draw has relaxed below 70% of the cap —
// hysteresis so the ladder does not flap on every release.
func (l *Ledger) unthrottleLocked() {
	if l.idleTotal+l.dynDraw > 0.7*l.capW {
		return
	}
	best, depth := "", 0
	for id, p := range l.point {
		if !l.lost[id] && p > depth {
			best, depth = id, p
		}
	}
	if best != "" {
		l.point[best]--
		l.rescales++
	}
}
