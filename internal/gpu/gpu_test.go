package gpu

import (
	"bytes"
	"math"
	"testing"

	"legato/internal/sim"
)

func TestMemKindString(t *testing.T) {
	for _, k := range []MemKind{HostMem, DeviceMem, ManagedMem} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestAllocationAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{MemBytes: 1000})
	b1, err := d.Malloc(600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(600); err == nil {
		t.Fatal("over-allocation accepted")
	}
	b2, err := d.MallocManaged(400)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != 1000 {
		t.Fatalf("allocated: %d", d.Allocated())
	}
	d.Free(b1)
	d.Free(b2)
	if d.Allocated() != 0 {
		t.Fatalf("allocated after free: %d", d.Allocated())
	}
}

func TestHostDereferenceRules(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{})
	dev, _ := d.Malloc(16)
	man, _ := d.MallocManaged(16)
	host := HostAlloc(16)
	if dev.HostAccessible() {
		t.Fatal("device memory must not be host-accessible")
	}
	if !man.HostAccessible() || !host.HostAccessible() {
		t.Fatal("managed and host memory must be host-accessible")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dereferencing device pointer should panic")
		}
	}()
	_ = dev.Data()
}

func TestMemcpyRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{})
	buf, _ := d.Malloc(64)
	src := []byte("the quick brown fox jumps over the lazy dog....................")
	var got []byte
	eng.Go("p", func(p *sim.Proc) {
		if err := d.MemcpyH2D(p, buf, 0, src, int64(len(src))); err != nil {
			t.Errorf("h2d: %v", err)
		}
		got = make([]byte, len(src))
		if err := d.MemcpyD2H(p, got, buf, 0, int64(len(src))); err != nil {
			t.Errorf("d2h: %v", err)
		}
	})
	eng.Run()
	if !bytes.Equal(got, src) {
		t.Fatal("round trip corrupted data")
	}
}

func TestMemcpyWindowValidation(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{})
	buf, _ := d.Malloc(16)
	eng.Go("p", func(p *sim.Proc) {
		if err := d.MemcpyD2H(p, make([]byte, 32), buf, 8, 16); err == nil {
			t.Error("out-of-window copy accepted")
		}
		if err := d.MemcpyD2H(p, make([]byte, 4), buf, 0, 16); err == nil {
			t.Error("short destination accepted")
		}
	})
	eng.Run()
}

func TestDMATimingMatchesBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{GBPerSecDMA: 10})
	buf, _ := d.Malloc(1 << 30)
	var elapsed sim.Time
	eng.Go("p", func(p *sim.Proc) {
		start := p.Now()
		if err := d.MemcpyD2H(p, make([]byte, 1<<30), buf, 0, 1<<30); err != nil {
			t.Error(err)
		}
		elapsed = p.Now() - start
	})
	eng.Run()
	want := float64(1<<30) / 10e9
	if math.Abs(sim.ToSeconds(elapsed)-want) > 0.01*want+1e-4 {
		t.Fatalf("1GiB at 10GB/s took %v s, want ~%v s", sim.ToSeconds(elapsed), want)
	}
}

func TestUVMFaultPathSlowerThanDMA(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{})
	man, _ := d.MallocManaged(1 << 26)
	dst := make([]byte, 1<<26)
	var dmaTime, uvmTime sim.Time
	eng.Go("p", func(p *sim.Proc) {
		s := p.Now()
		if err := d.MemcpyD2H(p, dst, man, 0, man.Len()); err != nil {
			t.Error(err)
		}
		dmaTime = p.Now() - s
		s = p.Now()
		if err := d.UVMFetchD2H(p, dst, man, 0, man.Len()); err != nil {
			t.Error(err)
		}
		uvmTime = p.Now() - s
	})
	eng.Run()
	ratio := float64(uvmTime) / float64(dmaTime)
	// Default calibration: 11 GB/s DMA vs 0.36 GB/s UVM fault → ~30×.
	if ratio < 10 {
		t.Fatalf("UVM fault path only %.1f× slower than DMA; model requires an order of magnitude", ratio)
	}
}

func TestUVMFetchRejectsNonManaged(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{})
	dev, _ := d.Malloc(16)
	eng.Go("p", func(p *sim.Proc) {
		if err := d.UVMFetchD2H(p, make([]byte, 16), dev, 0, 16); err == nil {
			t.Error("UVM fetch of device buffer accepted")
		}
		if err := d.UVMPopulateH2D(p, dev, 0, make([]byte, 16), 16); err == nil {
			t.Error("UVM populate of device buffer accepted")
		}
	})
	eng.Run()
}

func TestStreamOverlapBeatsSequential(t *testing.T) {
	// Chunked async copies into a double buffer, overlapped with a
	// simulated file write, must beat the strictly sequential path.
	eng := sim.NewEngine()
	d := New(eng, Config{GBPerSecDMA: 10})
	disk := sim.NewPipe(eng, 5e9, 0) // 5 GB/s "NVMe"
	const total = 1 << 30
	const chunk = 64 << 20
	buf, _ := d.Malloc(total)

	var overlapped sim.Time
	eng.Go("async", func(p *sim.Proc) {
		s := d.NewStream()
		start := p.Now()
		staging := make([]byte, chunk)
		written := make(chan struct{}, 1) // unused; we stay in sim time
		_ = written
		var writesPending int
		var wake func()
		for off := int64(0); off < total; off += chunk {
			n := int64(chunk)
			if off+n > total {
				n = total - off
			}
			// D2H chunk, then kick a disk write when it lands.
			if err := s.MemcpyD2HAsync(staging, buf, off, n, func() {
				writesPending++
				disk.Transfer(n, func() {
					writesPending--
					if writesPending == 0 && wake != nil {
						w := wake
						wake = nil
						w()
					}
				})
			}); err != nil {
				t.Error(err)
				return
			}
		}
		s.Synchronize(p)
		if writesPending > 0 {
			p.Await(func(done func()) { wake = done })
		}
		overlapped = p.Now() - start
	})
	eng.Run()

	eng2 := sim.NewEngine()
	d2 := New(eng2, Config{GBPerSecDMA: 10})
	disk2 := sim.NewPipe(eng2, 5e9, 0)
	buf2, _ := d2.Malloc(total)
	var sequential sim.Time
	eng2.Go("sync", func(p *sim.Proc) {
		start := p.Now()
		dst := make([]byte, total)
		if err := d2.MemcpyD2H(p, dst, buf2, 0, total); err != nil {
			t.Error(err)
		}
		p.TransferP(disk2, total)
		sequential = p.Now() - start
	})
	eng2.Run()

	if float64(overlapped) > 0.8*float64(sequential) {
		t.Fatalf("overlap gained too little: async %v vs sync %v", overlapped, sequential)
	}
}

func TestStreamSynchronizeNoOps(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{})
	s := d.NewStream()
	ran := false
	eng.Go("p", func(p *sim.Proc) {
		s.Synchronize(p) // nothing pending: returns immediately
		ran = true
	})
	eng.Run()
	if !ran {
		t.Fatal("Synchronize with empty stream blocked")
	}
}

func TestKernelLaunchTiming(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Config{GOPS: 1000})
	var at sim.Time
	mutated := false
	eng.Go("p", func(p *sim.Proc) {
		d.Launch(p, 500, func() { mutated = true }) // 0.5 s at 1000 GOPS
		at = p.Now()
	})
	eng.Run()
	if !mutated {
		t.Fatal("kernel body did not run")
	}
	if math.Abs(sim.ToSeconds(at)-0.5) > 1e-9 {
		t.Fatalf("kernel time: %v", sim.ToSeconds(at))
	}
}

func TestFreeWrongDevicePanics(t *testing.T) {
	eng := sim.NewEngine()
	d1 := New(eng, Config{Name: "a"})
	d2 := New(eng, Config{Name: "b"})
	b, _ := d1.Malloc(8)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-device free should panic")
		}
	}()
	d2.Free(b)
}
