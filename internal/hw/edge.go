package hw

import (
	"fmt"

	"legato/internal/sim"
)

// EdgeServer models the LEGaTO edge platform of Fig. 9: exactly three
// modular COM-HPC microservers in a ~20x40 cm enclosure, connected
// host-to-host over PCIe (each module is self-sustained, not a peripheral
// of the CPU module), plus I/O for two RGBD cameras, USB and video out.
type EdgeServer struct {
	Name    string
	Modules []*Microserver // length ≤ 3

	// H2H is the host-to-host PCIe fabric between modules.
	H2H *sim.Pipe

	eng *sim.Engine
}

// EdgeModuleSlots is the module capacity of the Fig. 9 enclosure.
const EdgeModuleSlots = 3

// NewEdgeServer creates an empty edge enclosure.
func NewEdgeServer(eng *sim.Engine, name string) *EdgeServer {
	return &EdgeServer{
		Name: name,
		eng:  eng,
		// PCIe gen3 x8 host-to-host.
		H2H: sim.NewPipe(eng, 7.88e9, 800*sim.Nanosecond),
	}
}

// AddModule installs a microserver module; the Fig. 9 enclosure takes at
// most three, each of CPU, GPU or FPGA class.
func (s *EdgeServer) AddModule(spec Spec) (*Microserver, error) {
	if len(s.Modules) >= EdgeModuleSlots {
		return nil, fmt.Errorf("hw: edge server %s full (%d modules)", s.Name, EdgeModuleSlots)
	}
	id := fmt.Sprintf("%s/m%d/%s", s.Name, len(s.Modules), spec.Name)
	ms := &Microserver{ID: id, Device: NewDevice(s.eng, id, spec), Site: len(s.Modules)}
	s.Modules = append(s.Modules, ms)
	return ms, nil
}

// TotalPower sums the instantaneous draw of all modules.
func (s *EdgeServer) TotalPower() float64 {
	p := 0.0
	for _, m := range s.Modules {
		p += m.Device.Meter().Power()
	}
	return p
}

// ByClass returns the first module of the given device class, or nil.
func (s *EdgeServer) ByClass(class Class) *Microserver {
	for _, m := range s.Modules {
		if m.Device.Spec.Class == class {
			return m
		}
	}
	return nil
}

// MirrorEdgeCPUGPUGPU builds the "1x CPU + 2x GPU" Smart-Mirror edge
// configuration named in Sec. VI.
func MirrorEdgeCPUGPUGPU(eng *sim.Engine, name string) (*EdgeServer, error) {
	s := NewEdgeServer(eng, name)
	for _, spec := range []Spec{ARMv8Server(), JetsonTX2(), JetsonTX2()} {
		if _, err := s.AddModule(spec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MirrorEdgeCPUGPUFPGA builds the "1 CPU + 1 GPU + 1 FPGA SoC" Smart-Mirror
// edge configuration named in Sec. VI.
func MirrorEdgeCPUGPUFPGA(eng *sim.Engine, name string) (*EdgeServer, error) {
	s := NewEdgeServer(eng, name)
	for _, spec := range []Spec{ARMv8Server(), JetsonTX2(), FPGASoC()} {
		if _, err := s.AddModule(spec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MirrorWorkstation builds the Sec. VI baseline: a high-end workstation
// with two GTX1080 GPUs and an x86 host (~400 W at full pipeline load).
type Workstation struct {
	Name string
	Host *Device
	GPUs []*Device
}

// NewMirrorWorkstation instantiates the baseline workstation.
func NewMirrorWorkstation(eng *sim.Engine, name string) *Workstation {
	host := XeonD()
	// Workstation host: desktop-class idle/peak envelope so that the
	// whole-system full-load draw lands near the paper's 400 W.
	host.IdleWatts = 45
	host.PeakWatts = 95
	w := &Workstation{Name: name}
	w.Host = NewDevice(eng, name+"/host", host)
	for i := 0; i < 2; i++ {
		spec := GTX1080()
		// Full-board draw including memory and VRM losses.
		spec.IdleWatts = 15
		spec.PeakWatts = 165
		w.GPUs = append(w.GPUs, NewDevice(eng, fmt.Sprintf("%s/gpu%d", name, i), spec))
	}
	return w
}

// TotalPower sums host and GPU draw.
func (w *Workstation) TotalPower() float64 {
	p := w.Host.Meter().Power()
	for _, g := range w.GPUs {
		p += g.Meter().Power()
	}
	return p
}
