package mirror

import (
	"fmt"
	"strings"

	"legato/internal/hw"
	"legato/internal/sim"
)

// Module is one recognition stage of the mirror pipeline (Fig. 8: face,
// object, gesture and speech recognition run as modules under the
// MagicMirror overlay).
type Module struct {
	Name string
	// Gops is the per-frame compute cost of the module.
	Gops float64
}

// StandardModules is the unoptimised YOLOv3-class pipeline the workstation
// baseline runs (object detection dominates; ~845 gops/frame total, which
// on two GTX1080-class GPUs yields the paper's ~21 FPS).
func StandardModules() []Module {
	return []Module{
		{Name: "object-detect", Gops: 700}, // YOLOv3-class full network
		{Name: "face-detect", Gops: 95},
		{Name: "gesture-detect", Gops: 40},
		{Name: "speech", Gops: 10},
	}
}

// OptimizedModules is the edge pipeline after the paper's "optimizations
// on the implementation and algorithmic level" (pruned/quantised models,
// FPGA offload): ~145 gops/frame, sized for 10 FPS on the edge server.
func OptimizedModules() []Module {
	return []Module{
		{Name: "object-detect", Gops: 110}, // tiny/pruned detector
		{Name: "face-detect", Gops: 22},
		{Name: "gesture-detect", Gops: 9},
		{Name: "speech", Gops: 4},
	}
}

// HardwareConfig is one mirror deployment.
type HardwareConfig struct {
	Name string
	// Accels is the pool of devices the recognition modules spread over
	// (frames are data-parallel across the pool).
	Accels []*hw.Device
	// Host runs capture, overlay and control; it contributes a fixed
	// HostUtilization of busy cores.
	Host            *hw.Device
	HostUtilization float64
	// Modules is the pipeline variant this deployment runs.
	Modules []Module
	// CameraFPS caps the achievable rate (default 30).
	CameraFPS float64
}

// TotalGops returns the per-frame cost of the configured pipeline.
func (c *HardwareConfig) TotalGops() float64 {
	s := 0.0
	for _, m := range c.Modules {
		s += m.Gops
	}
	return s
}

// Result is one configuration's evaluation (the numbers of Sec. VI).
type Result struct {
	Config string
	FPS    float64
	PowerW float64
	MOTA   float64
	Tracks int
	// GopsPerFrame echoes the pipeline cost.
	GopsPerFrame float64
	// EnergyPerFrameJ is PowerW / FPS.
	EnergyPerFrameJ float64
}

// WorkstationConfig builds the Sec. VI baseline: two GTX1080s plus an x86
// host running the unoptimised pipeline (~400 W, ~21 FPS).
func WorkstationConfig(eng *sim.Engine) *HardwareConfig {
	ws := hw.NewMirrorWorkstation(eng, "workstation")
	return &HardwareConfig{
		Name:            "workstation-2xGTX1080",
		Accels:          ws.GPUs,
		Host:            ws.Host,
		HostUtilization: 0.30,
		Modules:         StandardModules(),
		CameraFPS:       30,
	}
}

// EdgeConfig builds the optimised Fig. 9 edge server (1 CPU + 1 GPU +
// 1 FPGA SoC) running the optimised pipeline (~50 W, ~10 FPS target).
func EdgeConfig(eng *sim.Engine) (*HardwareConfig, error) {
	srv, err := hw.MirrorEdgeCPUGPUFPGA(eng, "edge")
	if err != nil {
		return nil, err
	}
	var accels []*hw.Device
	for _, m := range srv.Modules {
		if m.Device.Spec.Class == hw.GPU || m.Device.Spec.Class == hw.FPGA {
			accels = append(accels, m.Device)
		}
	}
	return &HardwareConfig{
		Name:            "edge-cpu+gpu+fpga",
		Accels:          accels,
		Host:            srv.ByClass(hw.CPUARM).Device,
		HostUtilization: 0.30,
		Modules:         OptimizedModules(),
		CameraFPS:       30,
	}, nil
}

// Evaluate runs the pipeline for `frames` frames: throughput and power
// come from the device models (modules are data-parallel over the
// accelerator pool); tracking quality comes from running the real
// Kalman+Hungarian tracker on the detector output at the achieved rate.
func Evaluate(cfg *HardwareConfig, frames int, seed int64) (*Result, error) {
	if len(cfg.Accels) == 0 {
		return nil, fmt.Errorf("mirror: config %q has no accelerators", cfg.Name)
	}
	if cfg.CameraFPS == 0 {
		cfg.CameraFPS = 30
	}
	gops := cfg.TotalGops()
	poolRate := 0.0
	for _, d := range cfg.Accels {
		poolRate += d.Spec.GOPS
	}
	fps := poolRate / gops
	if fps > cfg.CameraFPS {
		fps = cfg.CameraFPS
	}

	// Work spreads over the pool proportionally to throughput, so every
	// accelerator runs at the pool utilisation.
	poolUtil := gops * fps / poolRate
	power := 0.0
	for _, d := range cfg.Accels {
		power += d.Spec.IdleWatts + (d.Spec.PeakWatts-d.Spec.IdleWatts)*poolUtil
	}
	if cfg.Host != nil {
		power += cfg.Host.Spec.IdleWatts +
			(cfg.Host.Spec.PeakWatts-cfg.Host.Spec.IdleWatts)*cfg.HostUtilization
	}

	// Tracking at the achieved frame rate.
	dt := 1.0 / fps
	scene := NewScene(6, seed)
	det := NewDetector(0.8, 0.08, 0.2, seed+1)
	tracker := NewTracker(dt)
	for i := 0; i < frames; i++ {
		scene.Step(dt)
		tracker.Step(det.Detect(scene))
		tracker.Observe(scene)
	}

	return &Result{
		Config:          cfg.Name,
		FPS:             fps,
		PowerW:          power,
		MOTA:            tracker.MOTA(),
		Tracks:          len(tracker.ConfirmedTracks()),
		GopsPerFrame:    gops,
		EnergyPerFrameJ: power / fps,
	}, nil
}

// CompareTable renders the Sec. VI comparison.
func CompareTable(results []*Result) string {
	var sb strings.Builder
	sb.WriteString("Sec. VI — Smart Mirror pipeline: FPS and power per deployment\n")
	fmt.Fprintf(&sb, "%-24s %8s %9s %8s %10s %12s\n",
		"config", "FPS", "power W", "MOTA", "gops/frm", "J/frame")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-24s %8.1f %9.1f %8.2f %10.0f %12.1f\n",
			r.Config, r.FPS, r.PowerW, r.MOTA, r.GopsPerFrame, r.EnergyPerFrameJ)
	}
	sb.WriteString("paper: workstation 21 FPS @ 400 W; optimised edge target 10 FPS @ 50 W\n")
	return sb.String()
}
