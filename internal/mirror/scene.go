// Package mirror reproduces the Smart Mirror use case of paper Sec. VI: a
// semi-transparent mirror with RGBD cameras running object, face and
// gesture recognition locally ("no data gets into the cloud"). Detections
// come from a YOLOv3-class network and "Kalman and Hungarian filters are
// used to keep track".
//
// The reproduction keeps the systems claim measurable: a synthetic scene
// with ground-truth objects exercises a *real* Kalman + Hungarian tracking
// stack, while the neural detector is modelled by its compute cost and
// error rates (detection quality enters through noise parameters). The
// pipeline evaluation reports achieved FPS and power per hardware
// configuration — the paper's 21 FPS @ 400 W workstation versus the
// 10 FPS @ 50 W optimised edge server.
package mirror

import (
	"math/rand"
)

// Object is one ground-truth scene object.
type Object struct {
	ID     int
	X, Y   float64
	VX, VY float64
	// Kind is the object class ("person", "hand", "face").
	Kind string
}

// Scene is a synthetic 2-D world observed by the mirror's cameras.
type Scene struct {
	// Width and Height bound the world (objects bounce off edges).
	Width, Height float64
	Objects       []*Object

	rng    *rand.Rand
	nextID int
}

// NewScene creates a world with n objects at random positions/velocities.
func NewScene(n int, seed int64) *Scene {
	s := &Scene{Width: 100, Height: 100, rng: rand.New(rand.NewSource(seed))}
	kinds := []string{"person", "face", "hand"}
	for i := 0; i < n; i++ {
		s.nextID++
		s.Objects = append(s.Objects, &Object{
			ID:   s.nextID,
			X:    s.rng.Float64() * s.Width,
			Y:    s.rng.Float64() * s.Height,
			VX:   (s.rng.Float64() - 0.5) * 2,
			VY:   (s.rng.Float64() - 0.5) * 2,
			Kind: kinds[i%len(kinds)],
		})
	}
	return s
}

// Step advances every object by dt, bouncing at the world edges.
func (s *Scene) Step(dt float64) {
	for _, o := range s.Objects {
		o.X += o.VX * dt
		o.Y += o.VY * dt
		if o.X < 0 {
			o.X, o.VX = -o.X, -o.VX
		}
		if o.X > s.Width {
			o.X, o.VX = 2*s.Width-o.X, -o.VX
		}
		if o.Y < 0 {
			o.Y, o.VY = -o.Y, -o.VY
		}
		if o.Y > s.Height {
			o.Y, o.VY = 2*s.Height-o.Y, -o.VY
		}
	}
}

// Detection is one detector output.
type Detection struct {
	X, Y float64
	Kind string
	// TruthID is the generating object (0 for false positives) — used for
	// scoring only, never by the tracker.
	TruthID int
}

// Detector models the YOLOv3-class network: position noise, missed
// detections and false positives.
type Detector struct {
	// NoiseStd is the localisation error standard deviation.
	NoiseStd float64
	// MissProb is the per-object miss probability.
	MissProb float64
	// FalsePositivesPerFrame is the expected count of spurious detections.
	FalsePositivesPerFrame float64

	rng *rand.Rand
}

// NewDetector builds a detector model.
func NewDetector(noiseStd, missProb, fpPerFrame float64, seed int64) *Detector {
	return &Detector{
		NoiseStd: noiseStd, MissProb: missProb,
		FalsePositivesPerFrame: fpPerFrame,
		rng:                    rand.New(rand.NewSource(seed)),
	}
}

// Detect produces the detections for the current scene state.
func (d *Detector) Detect(s *Scene) []Detection {
	var out []Detection
	for _, o := range s.Objects {
		if d.rng.Float64() < d.MissProb {
			continue
		}
		out = append(out, Detection{
			X:       o.X + d.rng.NormFloat64()*d.NoiseStd,
			Y:       o.Y + d.rng.NormFloat64()*d.NoiseStd,
			Kind:    o.Kind,
			TruthID: o.ID,
		})
	}
	// Poisson-ish false positives (Bernoulli splits are fine at this rate).
	fp := d.FalsePositivesPerFrame
	for fp > 0 {
		p := fp
		if p > 1 {
			p = 1
		}
		if d.rng.Float64() < p {
			out = append(out, Detection{
				X:    d.rng.Float64() * s.Width,
				Y:    d.rng.Float64() * s.Height,
				Kind: "person",
			})
		}
		fp -= 1
	}
	return out
}
