// Package taskrt implements the OmpSs-style task runtime of the LEGaTO
// stack (paper Sec. II-C): tasks declare in/out/inout dependences on data
// regions, the runtime derives the task graph from program order, and a
// scheduler places ready tasks on the heterogeneous devices (SMP cores,
// GPUs, FPGAs) that the hw layer models — optimising for time, energy, or
// energy-delay product, which is how the task abstraction "maximises
// optimisation opportunities for low-energy computing" (Sec. I).
//
// The runtime is also the recovery layer of the resilience story (paper
// Sec. IV): a device may be failed mid-run (FailDevice), which revokes the
// tasks executing on it and re-places them on surviving devices with
// exponential backoff under a bounded attempt budget; completed-but-not-yet
// -checkpointed outputs resident on the lost device are invalidated and
// re-executed ("restored"); and jobs may opt into periodic asynchronous
// checkpoints (SetCheckpoint) so a crash restarts from the last snapshot
// instead of from zero.
package taskrt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"legato/internal/energy"
	"legato/internal/hw"
	"legato/internal/power"
	"legato/internal/sim"
)

// Typed failure sentinels, matchable with errors.Is through every wrapping
// layer up to the public legato surface.
var (
	// ErrDeviceLost marks a task that became unplaceable because every
	// device that could host it crashed or lost the capacity to fit it.
	ErrDeviceLost = errors.New("taskrt: device lost")
	// ErrRetriesExhausted marks a task that failed more times than its
	// attempt budget allows.
	ErrRetriesExhausted = errors.New("taskrt: retries exhausted")
	// ErrNoDevice marks a task no device could ever have hosted.
	ErrNoDevice = errors.New("taskrt: no compatible device")
	// ErrDeadlineExceeded marks a task that passed its virtual-clock
	// deadline under the strict deadline mode.
	ErrDeadlineExceeded = errors.New("taskrt: task deadline exceeded")
	// ErrInvalidTask marks a task specification rejected at Submit
	// (negative cost, width, retry budget or deadline).
	ErrInvalidTask = errors.New("taskrt: invalid task")
)

// HedgePolicy arms tail-tolerant execution: a per-job watchdog on the
// virtual clock tracks each running task against the cost model's expected
// span and, once elapsed time exceeds Multiplier × expected, flags the
// execution as a straggler and launches a speculative replica ("hedge") on
// a different device. The first execution to complete wins; the loser is
// cancelled deterministically and its burned energy is accounted as hedge
// waste. Hedges are admitted through the same core and watt ledgers as
// primaries, so they pay their way under a fleet power cap.
type HedgePolicy struct {
	// Multiplier is the straggler threshold as a multiple of the cost
	// model's expected execution time. Values <= 1 disable hedging (the
	// watchdog would fire before a healthy execution could finish).
	Multiplier float64
	// MaxHedges bounds speculative replicas launched per task (default 1).
	MaxHedges int
}

// Enabled reports whether the policy arms the straggler watchdog.
func (p HedgePolicy) Enabled() bool { return p.Multiplier > 1 }

func (p HedgePolicy) maxHedges() int {
	if p.MaxHedges > 0 {
		return p.MaxHedges
	}
	return 1
}

// DeadlineMode selects how a missed task deadline is handled.
type DeadlineMode int

const (
	// DeadlineStrict aborts the job with ErrDeadlineExceeded when any task
	// passes its deadline.
	DeadlineStrict DeadlineMode = iota
	// DeadlineShed degrades gracefully: a late task that has not started
	// and has no elevated priority is shed (skipped, successors released,
	// record flagged), while running or high-priority tasks continue
	// best-effort with their records flagged as late.
	DeadlineShed
)

// Admission arbitrates real device capacity between runtimes that execute
// concurrently on independent virtual clocks (the multi-job engine). Each
// runtime schedules against its own platform mirror, but before a task may
// occupy cores it must win the corresponding capacity from the shared
// ledger, keyed by device ID — so the union of all placements never
// oversubscribes the physical fleet.
//
// Implementations must be safe for concurrent use. Changed returns a
// channel that is closed on the next Release after the call; a runtime
// grabs it before dispatching so a release racing with a failed
// TryAcquire can never be missed. Capacity reports a device's current
// total capacity — zero for a lost device — letting runtimes distinguish
// transient contention (park and wait) from permanent loss (re-place or
// fail with ErrDeviceLost).
type Admission interface {
	TryAcquire(deviceID string, cores int) bool
	Release(deviceID string, cores int)
	Changed() <-chan struct{}
	Capacity(deviceID string) int
}

// PowerAdmission arbitrates the fleet watt budget between runtimes, the
// power sibling of Admission: before a task may start, its dynamic draw
// must fit under the shared power cap on top of the fleet's static draw.
// A refused TryDraw parks the job on Changed exactly like a core-admission
// stall. OperatingPoint exposes the governor's current DVFS prescription
// for a device; the runtime applies it to its platform mirror before
// scoring, so throttling reshapes both execution time and draw.
// power.Ledger implements this; implementations must be safe for
// concurrent use.
type PowerAdmission interface {
	TryDraw(deviceID string, watts energy.Watts) bool
	ReleaseDraw(deviceID string, watts energy.Watts)
	Changed() <-chan struct{}
	OperatingPoint(deviceID string) int
}

// Hooks observe the task lifecycle. Hooks registered with AddHooks are
// invoked on the goroutine driving the runtime: Queued at submission,
// Started when a task begins executing on a device, Finished when it
// completes (with the full Record). The resilience hooks fire on recovery
// events: Retried when a failed/corrupted execution is re-queued,
// DeviceLost when a device is failed mid-run, Checkpointed when an
// asynchronous checkpoint lands. Any field may be nil.
type Hooks struct {
	Queued   func(name string)
	Started  func(Record)
	Finished func(Record)
	// Retried fires when a task execution is abandoned and re-queued;
	// reason is "crash", "sdc" or "restore".
	Retried func(name string, attempt int, reason string, at sim.Time)
	// DeviceLost fires once per FailDevice call with the revocation and
	// invalidation counts.
	DeviceLost func(deviceID string, revoked, restored int, at sim.Time)
	// Checkpointed fires when an async checkpoint commits.
	Checkpointed func(tasks int, bytes int64, start, end sim.Time)
	// Straggler fires when the watchdog flags a running execution whose
	// elapsed time exceeded the hedge policy's multiple of the cost
	// model's expected span.
	Straggler func(name, device string, expected, elapsed sim.Time)
	// Hedged fires when a speculative replica launches; from is the
	// straggling device, to the hedge device.
	Hedged func(name, from, to string, at sim.Time)
	// HedgeResolved fires when a hedged task completes: winner is the
	// committing device, hedgeWon reports whether the replica beat the
	// straggler, wastedJ is the loser's burned energy, and start/end span
	// the replica's lifetime.
	HedgeResolved func(name, winner string, hedgeWon bool, wastedJ energy.Joules, start, end sim.Time)
	// DeadlineMissed fires when a task passes its deadline; shed reports
	// whether the task was skipped under DeadlineShed.
	DeadlineMissed func(name string, deadline, at sim.Time, shed bool)
	// Placed fires when a primary placement has won the device, the core
	// admission and the watt admission, immediately before launch.
	Placed func(name, device string, cores int, at sim.Time)
	// Failed fires when the job records a terminal task failure (retry
	// budget exhausted, or a strict-mode deadline miss); reason matches
	// the typed error family ("crash", "sdc", "deadline", ...).
	Failed func(name, reason string, at sim.Time)
	// HedgePromoted fires when the primary's device loss promotes the
	// racing replica to sole execution (no retry charged).
	HedgePromoted func(name, device string, at sim.Time)
	// PowerAdmitted/PowerRefused fire on watt-ledger admission outcomes
	// for primary placements and hedge replicas alike; a refusal parks
	// the placement (or denies the hedge) until the ledger changes.
	PowerAdmitted func(name, device string, watts energy.Watts, at sim.Time)
	PowerRefused  func(name, device string, watts energy.Watts, at sim.Time)
	// Rescaled fires when the runtime observes a governor DVFS change on
	// its platform mirror; from/to are ladder state indices (higher =
	// more throttled).
	Rescaled func(device string, from, to int, at sim.Time)
}

// Data is a named data region tasks depend on.
type Data struct {
	Name string
	Size int64

	lastWriter *node
	readers    []*node
	version    int
}

// Dep is a dependence declaration.
type Dep int

const (
	// In: the task reads the region.
	In Dep = iota
	// Out: the task overwrites the region.
	Out
	// InOut: the task reads and writes the region.
	InOut
)

// Task is one unit of work.
type Task struct {
	Name string
	// Gops is the task's computational cost in giga-operations.
	Gops float64
	// Cores is the requested parallel width on the chosen device
	// (default 1).
	Cores int
	// Targets lists acceptable device classes in preference order; empty
	// means any device.
	Targets []hw.Class
	// In, Out, InOut declare data dependences.
	In, Out, InOut []*Data
	// Priority breaks ties in the ready queue (higher first).
	Priority int
	// Critical marks the task reliability-critical (selective replication,
	// paper Sec. I: "only the most reliability-critical tasks will be
	// replicated"). Critical tasks detect silent data corruption (the DMR
	// vote catches a divergent replica) and re-execute; non-critical tasks
	// carry corruption silently.
	Critical bool
	// Retry is the per-task failure attempt budget (extra executions after
	// a crash or detected corruption); zero uses the runtime default.
	Retry int
	// Undervolt runs the task below the operating point's voltage by the
	// given level (1..power.MaxUndervolt): dynamic draw and energy shrink
	// quadratically, while power.SDCProbability(level) is added to the
	// task's silent-corruption risk when a fault plan is armed.
	Undervolt int
	// Deadline is an absolute virtual-clock deadline measured from job
	// start; zero means none. How a miss is handled depends on the
	// runtime's DeadlineMode.
	Deadline sim.Time
	// Fn runs at completion time (simulated); may be nil.
	Fn func()
}

// exec is one in-flight execution of a task: the primary placement, or a
// speculative hedge replica racing it on a different device.
type exec struct {
	dev      *hw.Device
	cores    int
	watts    energy.Watts // watt-ledger grant held (0 without a power ledger)
	draw     energy.Watts // modelled dynamic draw (waste accounting)
	energy   energy.Joules
	start    sim.Time
	expected sim.Time // clean cost-model span, before any silent slowdown
	finish   sim.Time // scheduled completion instant (stretched by slowdown)
	done     sim.Handle
	watchdog sim.Handle
	hedge    bool
	flagged  bool // already counted as a straggler
}

// node is a submitted task with graph state.
type node struct {
	task    Task
	id      int
	deps    int     // unsatisfied predecessor count
	succ    []*node // successors
	pred    []*node // predecessors (for re-execution after invalidation)
	done    bool
	started bool

	attempts  int   // failed executions so far (crash/sdc)
	persisted bool  // output captured by a committed checkpoint
	primary   *exec // the scheduled placement while running
	hedge     *exec // speculative replica racing the primary, if any
	hedges    int   // speculative replicas launched for this task
	deadline  sim.Handle

	record Record
}

// Record is the execution trace of one task.
type Record struct {
	ID       int
	Name     string
	Device   string
	Class    hw.Class
	Start    sim.Time
	End      sim.Time
	EnergyJ  energy.Joules
	Critical bool
	// Undervolt is the task's undervolt level (0 = guardband).
	Undervolt int
	// DrawW is the dynamic draw the execution held while running.
	DrawW energy.Watts
	// Attempts counts executions of the task (1 = first try succeeded).
	Attempts int
	// Corrupted marks a silent data corruption that went undetected (the
	// task was not replicated/critical).
	Corrupted bool
	// Hedged marks a task whose committed execution was a speculative
	// replica (the hedge beat the straggling primary).
	Hedged bool
	// MissedDeadline marks a task that passed its deadline under the
	// graceful DeadlineShed mode (shed, or completed late best-effort).
	MissedDeadline bool
	// Shed marks a task skipped entirely by graceful degradation: it never
	// executed, its Fn never ran, and its successors were released as-is.
	Shed bool
}

// Policy selects the placement objective.
type Policy int

const (
	// MinTime places each ready task on the device finishing it soonest.
	MinTime Policy = iota
	// MinEnergy places on the device with the lowest dynamic energy.
	MinEnergy
	// MinEDP minimises energy × delay.
	MinEDP
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case MinTime:
		return "min-time"
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-edp"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Runtime is one task-graph execution context.
type Runtime struct {
	eng     *sim.Engine
	devices []*hw.Device
	policy  Policy

	nodes  []*node
	ready  []*node
	nextID int
	inDAG  int // submitted, not finished

	adm     Admission      // nil: sole owner of its devices
	pow     PowerAdmission // nil: no fleet watt budget
	hooks   []Hooks
	held    map[string]int          // admission grants currently held, by device ID
	heldW   map[string]energy.Watts // watt grants currently held, by device ID
	blocked bool                    // a ready task lost admission this dispatch round

	// Resilience state.
	running      map[*node]struct{}
	retryMax     int      // default attempt budget (extra executions)
	retryBackoff sim.Time // base backoff, doubled per attempt
	corrupt      func(Record) bool
	failErr      error // terminal failure (retries exhausted)
	faultEvents  []sim.Handle

	// Tail-tolerance state.
	hedgePol HedgePolicy
	dlMode   DeadlineMode
	slowdown map[string]float64 // hidden execution-time stretch per device
	suspect  map[string]float64 // observed slowdown folded into scoring

	// Checkpoint state.
	ckptEvery   int
	ckptCost    func(bytes int64) sim.Time
	restoreCost func(bytes int64) sim.Time
	sinceCkpt   int
	ckptBytes   int64

	retries        int
	restores       int
	ckpts          int
	sdcDetected    int
	sdcSilent      int
	stragglers     int
	hedgesLaunched int
	hedgesWon      int
	hedgesDenied   int
	hedgeWastedJ   energy.Joules
	deadlineMisses int
	shedTasks      int
}

// New creates a runtime over the given devices.
func New(eng *sim.Engine, devices []*hw.Device, policy Policy) *Runtime {
	return &Runtime{
		eng: eng, devices: devices, policy: policy,
		held:         make(map[string]int),
		heldW:        make(map[string]energy.Watts),
		running:      make(map[*node]struct{}),
		retryBackoff: time.Millisecond,
	}
}

// SetAdmission installs a shared capacity ledger. Must be called before the
// first Submit. With no admission the runtime assumes exclusive ownership
// of its devices, which is the historical single-tenant behaviour.
func (r *Runtime) SetAdmission(a Admission) { r.adm = a }

// SetPowerAdmission installs the shared fleet watt ledger. Must be called
// before the first Submit. With no power admission placements are gated by
// core capacity alone — the historical behaviour.
func (r *Runtime) SetPowerAdmission(p PowerAdmission) { r.pow = p }

// SetRetryPolicy sets the default failure attempt budget (extra executions
// after a crash or detected corruption; Task.Retry overrides per task) and
// the base backoff, which doubles on every consecutive failure.
func (r *Runtime) SetRetryPolicy(maxAttempts int, backoff sim.Time) {
	if maxAttempts >= 0 {
		r.retryMax = maxAttempts
	}
	if backoff > 0 {
		r.retryBackoff = backoff
	}
}

// SetCorruptor installs the silent-data-corruption oracle, consulted once
// per completed execution with the would-be record. Critical tasks detect
// a corruption (the DMR vote) and re-execute; others carry it silently.
func (r *Runtime) SetCorruptor(fn func(Record) bool) { r.corrupt = fn }

// SetCheckpoint enables asynchronous periodic checkpoints: every `every`
// task completions, the outputs produced since the previous checkpoint are
// captured and persist after cost(bytes) of virtual time (the async-FTI
// model: capture overlaps execution, so a checkpoint only costs time when a
// crash lands inside its window). restore(bytes) is charged before
// invalidated tasks re-execute after a device loss.
func (r *Runtime) SetCheckpoint(every int, cost, restore func(bytes int64) sim.Time) {
	r.ckptEvery = every
	r.ckptCost = cost
	r.restoreCost = restore
}

// SetHedging arms the straggler watchdog with the given policy. Must be
// called before Run; a policy with Multiplier <= 1 leaves hedging off.
func (r *Runtime) SetHedging(p HedgePolicy) { r.hedgePol = p }

// SetDeadlineMode selects how missed task deadlines are handled (default
// DeadlineStrict: the job aborts with ErrDeadlineExceeded).
func (r *Runtime) SetDeadlineMode(m DeadlineMode) { r.dlMode = m }

// DegradeDevice records a *silent* slowdown for the named device: every
// execution on it takes factor × the cost model's span — including the
// remainder of executions already in flight — while placement scoring
// still sees the clean model. Degradation is invisible to the scheduler
// until the straggler watchdog observes it; that asymmetry is the reason
// the tail-tolerance layer exists. Factors are monotone: a smaller factor
// than the device's current one is ignored.
func (r *Runtime) DegradeDevice(id string, factor float64) {
	if factor <= 1 {
		return
	}
	old := 1.0
	if r.slowdown == nil {
		r.slowdown = make(map[string]float64)
	} else if f, ok := r.slowdown[id]; ok {
		old = f
	}
	if factor <= old {
		return
	}
	r.slowdown[id] = factor
	// Stretch the remainder of in-flight executions on the device. The
	// watchdog events stay where they are: they were armed off the clean
	// expected span, which is exactly the budget a straggler overruns.
	ratio := factor / old
	now := r.eng.Now()
	for _, n := range r.nodes {
		if _, ok := r.running[n]; !ok {
			continue
		}
		for _, ex := range [2]*exec{n.primary, n.hedge} {
			if ex == nil || ex.dev.ID != id {
				continue
			}
			remaining := ex.finish - now
			if remaining <= 0 {
				continue
			}
			ex.done.Cancel()
			stretched := sim.Time(float64(remaining) * ratio)
			ex.finish = now + stretched
			n, ex := n, ex
			ex.done = r.eng.Schedule(stretched, func() { r.complete(n, ex) })
		}
	}
}

// deviceSlowdown is the hidden execution-time stretch of a device.
func (r *Runtime) deviceSlowdown(id string) float64 {
	if f, ok := r.slowdown[id]; ok {
		return f
	}
	return 1
}

// noteSuspect folds an observed slowdown into placement scoring: once a
// straggler exposes a degraded device, future placements see its expected
// time stretched by the largest factor witnessed so far. Only elapsed time
// is used — the runtime learns from what it measured, not from the fault
// plan it cannot see.
func (r *Runtime) noteSuspect(id string, observed float64) {
	if observed <= 1 {
		return
	}
	if r.suspect == nil {
		r.suspect = make(map[string]float64)
	}
	if observed > r.suspect[id] {
		r.suspect[id] = observed
	}
}

// ScheduleFault registers fn to run at the given virtual time *while the
// graph is still executing*: pending fault events are cancelled the moment
// the graph completes, so a failure process sampled beyond the job's
// lifetime cannot stretch the run.
func (r *Runtime) ScheduleFault(at sim.Time, fn func()) {
	r.faultEvents = append(r.faultEvents, r.eng.ScheduleAt(at, fn))
}

// Checkpoints reports how many checkpoints have committed.
func (r *Runtime) Checkpoints() int { return r.ckpts }

// AddHooks registers lifecycle observers; multiple sets compose and fire
// in registration order.
func (r *Runtime) AddHooks(h Hooks) { r.hooks = append(r.hooks, h) }

// Data declares a data region.
func (r *Runtime) Data(name string, size int64) *Data {
	return &Data{Name: name, Size: size}
}

// Submit adds a task, wiring dependences against earlier submissions
// (program order), exactly like OmpSs #pragma omp task in/out clauses.
func (r *Runtime) Submit(t Task) error {
	if t.Cores < 0 {
		return fmt.Errorf("taskrt: task %q requests %d cores: %w", t.Name, t.Cores, ErrInvalidTask)
	}
	if t.Cores == 0 {
		t.Cores = 1
	}
	if t.Gops < 0 {
		return fmt.Errorf("taskrt: task %q has negative cost %g: %w", t.Name, t.Gops, ErrInvalidTask)
	}
	if t.Retry < 0 {
		return fmt.Errorf("taskrt: task %q has negative retry budget %d: %w", t.Name, t.Retry, ErrInvalidTask)
	}
	if t.Deadline < 0 {
		return fmt.Errorf("taskrt: task %q has negative deadline %v: %w", t.Name, t.Deadline, ErrInvalidTask)
	}
	if t.Undervolt < 0 || t.Undervolt > power.MaxUndervolt {
		return fmt.Errorf("taskrt: task %q undervolt level %d outside [0, %d]: %w",
			t.Name, t.Undervolt, power.MaxUndervolt, ErrInvalidTask)
	}
	n := &node{task: t, id: r.nextID}
	r.nextID++
	n.record = Record{ID: n.id, Name: t.Name, Critical: t.Critical, Undervolt: t.Undervolt}

	addEdge := func(from *node) {
		if from == nil || from.done {
			return
		}
		from.succ = append(from.succ, n)
		n.pred = append(n.pred, from)
		n.deps++
	}
	for _, d := range t.In {
		addEdge(d.lastWriter)
		d.readers = append(d.readers, n)
	}
	for _, d := range t.InOut {
		addEdge(d.lastWriter)
		for _, rd := range d.readers {
			if rd != n {
				addEdge(rd)
			}
		}
		d.lastWriter = n
		d.readers = d.readers[:0]
		d.version++
	}
	for _, d := range t.Out {
		// Output and anti dependences: wait for previous writer and readers
		// (no renaming in this runtime).
		addEdge(d.lastWriter)
		for _, rd := range d.readers {
			if rd != n {
				addEdge(rd)
			}
		}
		d.lastWriter = n
		d.readers = d.readers[:0]
		d.version++
	}

	r.nodes = append(r.nodes, n)
	r.inDAG++
	if t.Deadline > 0 {
		at := t.Deadline
		if now := r.eng.Now(); at < now {
			at = now
		}
		n.deadline = r.eng.ScheduleAt(at, func() { r.deadlineFire(n) })
	}
	for _, h := range r.hooks {
		if h.Queued != nil {
			h.Queued(t.Name)
		}
	}
	if n.deps == 0 {
		r.enqueue(n)
	}
	return nil
}

// deadlineFire handles a task still unfinished at its deadline. Strict
// mode aborts the job with ErrDeadlineExceeded. DeadlineShed degrades
// gracefully: a not-yet-started task without elevated priority is shed —
// skipped entirely, successors released so the rest of the graph keeps
// flowing — while running or high-priority tasks continue best-effort with
// their records flagged late.
func (r *Runtime) deadlineFire(n *node) {
	if n.done {
		return
	}
	now := r.eng.Now()
	r.deadlineMisses++
	if r.dlMode == DeadlineShed {
		shed := !n.started && n.task.Priority <= 0
		n.record.MissedDeadline = true
		for _, h := range r.hooks {
			if h.DeadlineMissed != nil {
				h.DeadlineMissed(n.task.Name, n.task.Deadline, now, shed)
			}
		}
		if !shed {
			return
		}
		r.shedTasks++
		r.unready(n)
		n.record.Shed = true
		n.record.End = now
		r.finishNode(n)
		r.dispatch()
		return
	}
	for _, h := range r.hooks {
		if h.DeadlineMissed != nil {
			h.DeadlineMissed(n.task.Name, n.task.Deadline, now, false)
		}
	}
	if r.failErr == nil {
		r.failErr = fmt.Errorf("taskrt: task %q missed its %v deadline at %v: %w",
			n.task.Name, n.task.Deadline, now, ErrDeadlineExceeded)
		for _, h := range r.hooks {
			if h.Failed != nil {
				h.Failed(n.task.Name, "deadline", now)
			}
		}
	}
}

// enqueue adds a ready node, keeping the queue priority-sorted.
func (r *Runtime) enqueue(n *node) {
	r.ready = append(r.ready, n)
	sort.SliceStable(r.ready, func(i, j int) bool {
		if r.ready[i].task.Priority != r.ready[j].task.Priority {
			return r.ready[i].task.Priority > r.ready[j].task.Priority
		}
		return r.ready[i].id < r.ready[j].id
	})
}

// unready removes a node from the ready queue if present.
func (r *Runtime) unready(n *node) {
	for i, m := range r.ready {
		if m == n {
			r.ready = append(r.ready[:i], r.ready[i+1:]...)
			return
		}
	}
}

func (r *Runtime) inReady(n *node) bool {
	for _, m := range r.ready {
		if m == n {
			return true
		}
	}
	return false
}

// compatible reports whether dev can run t.
func compatible(t Task, dev *hw.Device) bool {
	if !dev.Healthy() {
		return false
	}
	if dev.Spec.Cores < t.Cores {
		return false
	}
	return classMatch(t, dev.Spec.Class)
}

// classMatch reports whether t accepts the given device class.
func classMatch(t Task, c hw.Class) bool {
	if len(t.Targets) == 0 {
		return true
	}
	for _, want := range t.Targets {
		if want == c {
			return true
		}
	}
	return false
}

// score returns the policy objective for running t on dev now (lower is
// better); ok=false if the device cannot take the task at this instant.
func (r *Runtime) score(t Task, dev *hw.Device) (float64, bool) {
	if !compatible(t, dev) {
		return 0, false
	}
	free := dev.Spec.Cores - dev.BusyCores()
	if free < t.Cores {
		return 0, false
	}
	execSec := sim.ToSeconds(dev.ExecTime(t.Gops, t.Cores))
	// Fold in witnessed slowdowns: a device exposed as degraded by the
	// straggler watchdog is scored at its observed stretch, so placement
	// routes around it without ever reading the (hidden) fault state.
	if f, ok := r.suspect[dev.ID]; ok {
		execSec *= f
	}
	energyJ := dev.EnergyFor(t.Gops, t.Cores) * power.UndervoltPowerScale(t.Undervolt)
	switch r.policy {
	case MinEnergy:
		return energyJ, true
	case MinEDP:
		return energyJ * execSec, true
	default:
		return execSec, true
	}
}

// applyOperatingPoints syncs the platform mirror to the governor's current
// DVFS prescription, so scoring, execution time and draw all see the
// throttled (or restored) operating points. Tasks already executing keep
// the span and energy they were scheduled with; only new placements are
// reshaped — the DVFS transition model.
func (r *Runtime) applyOperatingPoints() {
	if r.pow == nil {
		return
	}
	for _, dev := range r.devices {
		if p := r.pow.OperatingPoint(dev.ID); p != dev.StateIndex() {
			from := dev.StateIndex()
			if err := dev.SetState(p); err != nil {
				// A mirror with fewer states than the reference ladder is a
				// construction bug; stay at the current point.
				continue
			}
			for _, h := range r.hooks {
				if h.Rescaled != nil {
					h.Rescaled(dev.ID, from, p, r.eng.Now())
				}
			}
		}
	}
}

// taskDrawW is the dynamic draw a task would hold on dev at its current
// operating point, shrunk by the task's undervolt level.
func taskDrawW(t Task, dev *hw.Device) energy.Watts {
	return dev.DynamicWatts(t.Cores) * power.UndervoltPowerScale(t.Undervolt)
}

// dispatch assigns as many ready tasks as possible.
func (r *Runtime) dispatch() {
	r.applyOperatingPoints()
	for {
		assigned := false
		for qi := 0; qi < len(r.ready); qi++ {
			n := r.ready[qi]
			best := -1
			bestScore := 0.0
			for di, dev := range r.devices {
				if r.adm != nil && r.adm.Capacity(dev.ID) < n.task.Cores {
					// The fleet behind this device lost the capacity to ever
					// fit the task (crash or degrade) — permanently unfit,
					// not a transient stall.
					continue
				}
				if s, ok := r.score(n.task, dev); ok && (best == -1 || s < bestScore) {
					best, bestScore = di, s
				}
			}
			if best == -1 {
				continue // no device free for this task right now
			}
			dev := r.devices[best]
			if r.adm != nil && !r.adm.TryAcquire(dev.ID, n.task.Cores) {
				// The fleet capacity behind this device is occupied by a
				// sibling job; leave the task queued and note the stall so
				// RunContext knows to wait for a global release.
				r.blocked = true
				continue
			}
			watts := energy.Watts(0)
			if r.pow != nil {
				watts = taskDrawW(n.task, dev)
				if !r.pow.TryDraw(dev.ID, watts) {
					// The placement fits the core budget but not the watt
					// budget: give the cores back and park. A PackAndThrottle
					// governor may have stepped the device down, so the next
					// dispatch round re-scores at the cheaper point.
					if r.adm != nil {
						r.adm.Release(dev.ID, n.task.Cores)
					}
					for _, h := range r.hooks {
						if h.PowerRefused != nil {
							h.PowerRefused(n.task.Name, dev.ID, watts, r.eng.Now())
						}
					}
					r.blocked = true
					r.applyOperatingPoints()
					continue
				}
				for _, h := range r.hooks {
					if h.PowerAdmitted != nil {
						h.PowerAdmitted(n.task.Name, dev.ID, watts, r.eng.Now())
					}
				}
			}
			r.ready = append(r.ready[:qi], r.ready[qi+1:]...)
			r.start(n, dev, watts)
			assigned = true
			break
		}
		if !assigned {
			return
		}
	}
}

// launch builds one execution of n on dev: the device meter is charged,
// the completion event is scheduled (stretched by any silent slowdown),
// and the held-grant maps advance. The caller has already won global
// admission for the cores and watts.
func (r *Runtime) launch(n *node, dev *hw.Device, watts energy.Watts, hedge bool) *exec {
	t := n.task
	if r.adm != nil {
		r.held[dev.ID] += t.Cores
	}
	if r.pow != nil {
		r.heldW[dev.ID] += watts
	}
	now := r.eng.Now()
	factor := r.deviceSlowdown(dev.ID)
	expected := dev.ExecTime(t.Gops, t.Cores)
	actual := sim.Time(float64(expected) * factor)
	ex := &exec{
		dev: dev, cores: t.Cores, watts: watts,
		draw:     taskDrawW(t, dev),
		energy:   energy.Joules(float64(dev.EnergyFor(t.Gops, t.Cores)) * float64(power.UndervoltPowerScale(t.Undervolt)) * factor),
		start:    now,
		expected: expected,
		finish:   now + actual,
		hedge:    hedge,
	}
	ex.done = r.eng.Schedule(actual, func() { r.complete(n, ex) })
	if !hedge && r.hedgePol.Enabled() && expected > 0 {
		delay := sim.Time(float64(expected) * r.hedgePol.Multiplier)
		ex.watchdog = r.eng.Schedule(delay, func() { r.straggler(n, ex) })
	}
	return ex
}

// start runs n on dev as the primary execution. The caller has already won
// global admission for the task's cores (and watts of draw) when shared
// ledgers are installed.
func (r *Runtime) start(n *node, dev *hw.Device, watts energy.Watts) {
	t := n.task
	if err := dev.Acquire(t.Cores); err != nil {
		// Raced with another assignment; requeue and give back admission.
		if r.adm != nil {
			r.adm.Release(dev.ID, t.Cores)
		}
		if r.pow != nil {
			r.pow.ReleaseDraw(dev.ID, watts)
		}
		r.enqueue(n)
		return
	}
	n.started = true
	n.hedges = 0
	for _, h := range r.hooks {
		if h.Placed != nil {
			h.Placed(t.Name, dev.ID, t.Cores, r.eng.Now())
		}
	}
	n.primary = r.launch(n, dev, watts, false)
	n.record.Device = dev.ID
	n.record.Class = dev.Spec.Class
	n.record.Start = n.primary.start
	n.record.EnergyJ = n.primary.energy
	n.record.DrawW = n.primary.draw
	n.record.Hedged = false
	n.record.Attempts++
	r.running[n] = struct{}{}
	for _, h := range r.hooks {
		if h.Started != nil {
			h.Started(n.record)
		}
	}
}

// releaseExec returns one execution's device cores and ledger grants.
func (r *Runtime) releaseExec(ex *exec) {
	ex.dev.Release(ex.cores)
	if r.adm != nil {
		r.held[ex.dev.ID] -= ex.cores
		r.adm.Release(ex.dev.ID, ex.cores)
	}
	if r.pow != nil {
		r.heldW[ex.dev.ID] -= ex.watts
		r.pow.ReleaseDraw(ex.dev.ID, ex.watts)
	}
}

// wastedJoules is the energy a cancelled execution burned up to now.
func (r *Runtime) wastedJoules(ex *exec) energy.Joules {
	return energy.Joules(float64(ex.draw) * sim.ToSeconds(r.eng.Now()-ex.start))
}

// straggler is the watchdog event: ex has been running for Multiplier ×
// its expected span without completing. The observation is folded into
// placement scoring and, budget and admission permitting, a speculative
// replica launches on a different device.
func (r *Runtime) straggler(n *node, ex *exec) {
	if n.done || n.primary != ex {
		return // completed, revoked or replaced since the watchdog was armed
	}
	now := r.eng.Now()
	elapsed := now - ex.start
	if !ex.flagged {
		ex.flagged = true
		r.stragglers++
		for _, h := range r.hooks {
			if h.Straggler != nil {
				h.Straggler(n.task.Name, ex.dev.ID, ex.expected, elapsed)
			}
		}
	}
	if ex.expected > 0 {
		r.noteSuspect(ex.dev.ID, float64(elapsed)/float64(ex.expected))
	}
	if n.hedge != nil || n.hedges >= r.hedgePol.maxHedges() {
		return
	}
	// Pick the best-scoring different device, preferring a different
	// *class*: a slowdown the cost model cannot see is often correlated
	// across siblings of the straggler's class (shared thermal budget,
	// firmware, undervolt guardband), so a replica diversifies across
	// classes when it can and falls back to a same-class sibling only when
	// no foreign class fits. Scoring already includes witnessed suspicion,
	// so among foreign devices a known-degraded one loses to a clean one.
	best, foreign := -1, false
	bestScore := 0.0
	for di, dev := range r.devices {
		if dev.ID == ex.dev.ID {
			continue
		}
		if r.adm != nil && r.adm.Capacity(dev.ID) < n.task.Cores {
			continue
		}
		s, ok := r.score(n.task, dev)
		if !ok {
			continue
		}
		df := dev.Spec.Class != ex.dev.Spec.Class
		if best == -1 || (df && !foreign) || (df == foreign && s < bestScore) {
			best, bestScore, foreign = di, s, df
		}
	}
	rearm := func() {
		// No replica this round (no device, or admission refused). Re-check
		// after another expected span; the primary completing first turns
		// the re-armed watchdog into a no-op.
		r.hedgesDenied++
		ex.watchdog = r.eng.Schedule(ex.expected, func() { r.straggler(n, ex) })
	}
	if best == -1 {
		rearm()
		return
	}
	dev := r.devices[best]
	if r.adm != nil && !r.adm.TryAcquire(dev.ID, n.task.Cores) {
		rearm()
		return
	}
	watts := energy.Watts(0)
	if r.pow != nil {
		watts = taskDrawW(n.task, dev)
		if !r.pow.TryDraw(dev.ID, watts) {
			// Hedges pay their way under the power cap: a replica that does
			// not fit the watt budget is denied, never force-admitted.
			if r.adm != nil {
				r.adm.Release(dev.ID, n.task.Cores)
			}
			for _, h := range r.hooks {
				if h.PowerRefused != nil {
					h.PowerRefused(n.task.Name, dev.ID, watts, now)
				}
			}
			rearm()
			return
		}
		for _, h := range r.hooks {
			if h.PowerAdmitted != nil {
				h.PowerAdmitted(n.task.Name, dev.ID, watts, now)
			}
		}
	}
	if err := dev.Acquire(n.task.Cores); err != nil {
		if r.adm != nil {
			r.adm.Release(dev.ID, n.task.Cores)
		}
		if r.pow != nil {
			r.pow.ReleaseDraw(dev.ID, watts)
		}
		rearm()
		return
	}
	n.hedges++
	r.hedgesLaunched++
	n.hedge = r.launch(n, dev, watts, true)
	for _, h := range r.hooks {
		if h.Hedged != nil {
			h.Hedged(n.task.Name, ex.dev.ID, dev.ID, now)
		}
	}
}

// complete finishes one execution of n: the winner's device and admission
// grants are returned, a racing loser is cancelled deterministically (its
// burned energy accounted as hedge waste), the SDC oracle is consulted on
// the committed record, and the node either finishes or re-queues.
func (r *Runtime) complete(n *node, ex *exec) {
	t := n.task
	now := r.eng.Now()
	delete(r.running, n)
	r.releaseExec(ex)
	ex.watchdog.Cancel()
	var loser *exec
	if ex == n.primary {
		loser = n.hedge
	} else {
		loser = n.primary
	}
	if loser != nil {
		// First completion wins: cancel the loser and return its grants.
		loser.done.Cancel()
		loser.watchdog.Cancel()
		r.releaseExec(loser)
		wasted := r.wastedJoules(loser)
		r.hedgeWastedJ += wasted
		replica := ex
		if !ex.hedge {
			replica = loser
		}
		if ex.hedge {
			r.hedgesWon++
		}
		if loser.expected > 0 && now-loser.start > loser.expected {
			// Whichever side lost, if it overran its expected span the
			// cancellation is evidence of slowness: remember the stretch (a
			// lower bound — the loser never finished) so placement and later
			// hedges route around the device. This also teaches on losing
			// *hedges*, which carry no watchdog of their own.
			r.noteSuspect(loser.dev.ID, float64(now-loser.start)/float64(loser.expected))
		}
		for _, h := range r.hooks {
			if h.HedgeResolved != nil {
				h.HedgeResolved(t.Name, ex.dev.ID, ex.hedge, wasted, replica.start, now)
			}
		}
	}
	n.primary, n.hedge = nil, nil
	// Commit the winner. Start stays the primary's launch instant so
	// End-Start is the task's true latency including the straggling window,
	// not just the replica's run.
	n.record.Device = ex.dev.ID
	n.record.Class = ex.dev.Spec.Class
	n.record.End = now
	n.record.EnergyJ = ex.energy
	n.record.DrawW = ex.draw
	n.record.Hedged = ex.hedge
	if r.corrupt != nil && r.corrupt(n.record) {
		if t.Critical {
			// The replica vote disagrees: corruption detected, re-execute.
			r.sdcDetected++
			n.started = false
			r.retry(n, "sdc")
			r.dispatch()
			return
		}
		n.record.Corrupted = true
		r.sdcSilent++
	}
	r.finishNode(n)
	r.dispatch()
}

// finishNode commits a successful execution: successors are released, the
// checkpoint schedule advances, and pending fault events are cancelled once
// the whole graph is done (a failure process sampled beyond the job's
// lifetime must not stretch the run).
func (r *Runtime) finishNode(n *node) {
	n.done = true
	r.inDAG--
	n.deadline.Cancel()
	if n.task.Fn != nil && !n.record.Shed {
		n.task.Fn()
	}
	for _, h := range r.hooks {
		if h.Finished != nil {
			h.Finished(n.record)
		}
	}
	for _, s := range n.succ {
		s.deps--
		if s.deps == 0 && !s.done {
			r.enqueue(s)
		}
	}
	r.maybeCheckpoint(n)
	if r.inDAG == 0 {
		for _, h := range r.faultEvents {
			h.Cancel()
		}
		r.faultEvents = r.faultEvents[:0]
	}
}

// maybeCheckpoint advances the checkpoint schedule after n completed and,
// every ckptEvery completions, starts an asynchronous capture of all not-
// yet-persisted outputs that commits cost(bytes) later.
func (r *Runtime) maybeCheckpoint(n *node) {
	if r.ckptEvery <= 0 {
		return
	}
	r.sinceCkpt++
	for _, d := range n.task.Out {
		r.ckptBytes += d.Size
	}
	for _, d := range n.task.InOut {
		r.ckptBytes += d.Size
	}
	if r.sinceCkpt < r.ckptEvery {
		return
	}
	r.sinceCkpt = 0
	bytes := r.ckptBytes
	r.ckptBytes = 0
	var snap []*node
	for _, m := range r.nodes {
		if m.done && !m.persisted {
			snap = append(snap, m)
		}
	}
	if len(snap) == 0 {
		return
	}
	var cost sim.Time
	if r.ckptCost != nil {
		cost = r.ckptCost(bytes)
	}
	start := r.eng.Now()
	r.eng.Schedule(cost, func() {
		committed := 0
		for _, m := range snap {
			// A crash inside the checkpoint window invalidates members of
			// the snapshot; only still-done nodes commit.
			if m.done {
				m.persisted = true
				committed++
			}
		}
		r.ckpts++
		for _, h := range r.hooks {
			if h.Checkpointed != nil {
				h.Checkpointed(committed, bytes, start, r.eng.Now())
			}
		}
	})
}

// budget returns n's failure attempt budget.
func (r *Runtime) budget(n *node) int {
	if n.task.Retry > 0 {
		return n.task.Retry
	}
	return r.retryMax
}

// retry re-queues a failed execution with exponential backoff, or records
// the terminal ErrRetriesExhausted failure once the budget is spent.
func (r *Runtime) retry(n *node, reason string) {
	n.attempts++
	if budget := r.budget(n); n.attempts > budget {
		if r.failErr == nil {
			r.failErr = fmt.Errorf("taskrt: task %q gave up after %d failed attempts (%s): %w",
				n.task.Name, n.attempts, reason, ErrRetriesExhausted)
			for _, h := range r.hooks {
				if h.Failed != nil {
					h.Failed(n.task.Name, reason, r.eng.Now())
				}
			}
		}
		return
	}
	r.retries++
	for _, h := range r.hooks {
		if h.Retried != nil {
			h.Retried(n.task.Name, n.attempts, reason, r.eng.Now())
		}
	}
	backoff := r.retryBackoff << uint(n.attempts-1)
	r.eng.Schedule(backoff, func() {
		// deps may have grown since the revocation if a predecessor's
		// output was invalidated by the same device loss — then the
		// completion path re-enqueues this node, not the backoff timer.
		if n.deps == 0 && !n.done && !n.started && !r.inReady(n) {
			r.enqueue(n)
			r.dispatch()
		}
	})
}

// FailDevice fails the named device mid-run: in-flight tasks on it are
// revoked (their grants returned, their executions re-queued under the
// retry budget), the mirror device is marked unhealthy so placement routes
// around it, and completed-but-unpersisted outputs resident on the device
// are invalidated and scheduled for re-execution after the restore cost —
// unless a committed checkpoint already captured them. It returns the
// revocation and invalidation counts; failing an unknown or already-failed
// device is a no-op.
func (r *Runtime) FailDevice(id string) (revoked, restored int) {
	var dev *hw.Device
	for _, d := range r.devices {
		if d.ID == id {
			dev = d
			break
		}
	}
	if dev == nil || !dev.Healthy() {
		return 0, 0
	}
	// Revoke in-flight executions, in deterministic submission order. A
	// node may hold two executions (primary + hedge) on different devices;
	// losing the hedge's device cancels just the replica, while losing the
	// primary's device promotes a surviving replica instead of retrying.
	for _, n := range r.nodes {
		if _, ok := r.running[n]; !ok {
			continue
		}
		if h := n.hedge; h != nil && h.dev.ID == id {
			h.done.Cancel()
			h.watchdog.Cancel()
			r.releaseExec(h)
			r.hedgeWastedJ += r.wastedJoules(h)
			n.hedge = nil
			revoked++
		}
		p := n.primary
		if p == nil || p.dev.ID != id {
			continue
		}
		p.done.Cancel()
		p.watchdog.Cancel()
		r.releaseExec(p)
		revoked++
		if h := n.hedge; h != nil {
			// The straggler died under the watchdog's replica: promote the
			// hedge to sole execution — no retry, no attempt charged.
			n.primary = h
			n.hedge = nil
			for _, hk := range r.hooks {
				if hk.HedgePromoted != nil {
					hk.HedgePromoted(n.task.Name, h.dev.ID, r.eng.Now())
				}
			}
			continue
		}
		n.primary = nil
		delete(r.running, n)
		n.started = false
		r.retry(n, "crash")
	}
	dev.Fail()

	// Invalidate completed outputs that lived on the device and were never
	// checkpointed: they are gone, so any task whose output is still needed
	// (a pending successor, or a terminal output) must re-execute. The
	// closure is transitive — a re-executing task needs its inputs, so an
	// un-persisted predecessor on the lost device is dragged back in too —
	// which is exactly the "restart from zero vs restart from the last
	// snapshot" trade the checkpoint option buys out of.
	invalSet := make(map[*node]bool)
	for changed := true; changed; {
		changed = false
		for _, n := range r.nodes {
			if !n.done || n.persisted || n.record.Shed || n.record.Device != id || invalSet[n] {
				continue
			}
			needed := len(n.succ) == 0
			for _, s := range n.succ {
				if !s.done || invalSet[s] {
					needed = true
					break
				}
			}
			if needed {
				invalSet[n] = true
				changed = true
			}
		}
	}
	// Deterministic processing order: nodes slice order, not map order.
	var inval []*node
	for _, n := range r.nodes {
		if invalSet[n] {
			inval = append(inval, n)
		}
	}
	var restoreBytes int64
	for _, n := range inval {
		n.done = false
		n.started = false
		r.inDAG++
	}
	for _, n := range inval {
		for _, d := range n.task.Out {
			restoreBytes += d.Size
		}
		for _, d := range n.task.InOut {
			restoreBytes += d.Size
		}
		for _, s := range n.succ {
			if !s.done && !s.started {
				s.deps++
				r.unready(s)
			}
		}
	}
	var delay sim.Time
	if r.restoreCost != nil && restoreBytes > 0 {
		delay = r.restoreCost(restoreBytes)
	}
	restored = len(inval)
	r.restores += restored
	for _, n := range inval {
		n := n
		for _, h := range r.hooks {
			if h.Retried != nil {
				h.Retried(n.task.Name, n.attempts, "restore", r.eng.Now())
			}
		}
		r.eng.Schedule(delay, func() {
			if n.deps == 0 && !n.done && !n.started && !r.inReady(n) {
				r.enqueue(n)
				r.dispatch()
			}
		})
	}
	for _, h := range r.hooks {
		if h.DeviceLost != nil {
			h.DeviceLost(id, revoked, restored, r.eng.Now())
		}
	}
	r.dispatch()
	return revoked, restored
}

// Result summarises a completed run.
type Result struct {
	Makespan sim.Time
	Records  []Record
	// EnergyJ is the summed dynamic task energy.
	EnergyJ energy.Joules
	// Retries counts re-queued executions after crashes or detected SDCs.
	Retries int
	// Restores counts completed tasks re-executed after a device loss
	// invalidated their un-checkpointed outputs.
	Restores int
	// Checkpoints counts committed asynchronous checkpoints.
	Checkpoints int
	// SDCDetected counts corruptions caught by the replica vote.
	SDCDetected int
	// SDCSilent counts corruptions that went undetected.
	SDCSilent int
	// Stragglers counts executions flagged by the watchdog as exceeding
	// the hedge policy's multiple of their expected span.
	Stragglers int
	// HedgesLaunched counts speculative replicas started.
	HedgesLaunched int
	// HedgesWon counts replicas that beat their straggling primary.
	HedgesWon int
	// HedgesDenied counts replica launches refused by device availability
	// or the core/watt ledgers.
	HedgesDenied int
	// HedgeWastedJ is the energy burned by cancelled losing executions —
	// the price of the insurance the hedge policy buys.
	HedgeWastedJ energy.Joules
	// DeadlineMisses counts tasks that passed their deadline.
	DeadlineMisses int
	// TasksShed counts tasks skipped by graceful degradation.
	TasksShed int
}

// Run executes the submitted graph to completion and returns the trace.
// It fails if tasks remain blocked (a dependence cycle cannot occur by
// construction, so leftovers mean no compatible device exists).
func (r *Runtime) Run() (*Result, error) { return r.RunContext(context.Background()) }

// RunContext executes the submitted graph to completion, honouring ctx:
// cancellation or deadline expiry is checked between every simulated event,
// aborts the run with the context's error, and returns any admission grants
// held by in-flight tasks so sibling runtimes can make progress. When the
// runtime shares devices through an Admission ledger and every ready task
// is stalled on foreign occupancy, the goroutine parks until capacity is
// released elsewhere (or ctx fires) — the job's virtual clock does not
// advance while parked. A runtime that returned an error must not be run
// again.
//
// Failure semantics: a task that exhausts its retry budget aborts the run
// with ErrRetriesExhausted; a task left unplaceable by device loss aborts
// with ErrDeviceLost; a task no device could ever host aborts with
// ErrNoDevice.
func (r *Runtime) RunContext(ctx context.Context) (*Result, error) {
	abort := func(err error) (*Result, error) {
		r.releaseHeld()
		return nil, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		if r.failErr != nil {
			return abort(r.failErr)
		}
		// Grab the change channels before dispatching: a release that races
		// with a failed TryAcquire/TryDraw below closes these very channels,
		// so the park cannot miss the wakeup. A nil channel blocks forever
		// in the select, which is exactly right for an absent ledger.
		var changed, powChanged <-chan struct{}
		if r.adm != nil {
			changed = r.adm.Changed()
		}
		if r.pow != nil {
			powChanged = r.pow.Changed()
		}
		r.blocked = false
		r.dispatch()
		if r.eng.Step() {
			continue
		}
		// Event queue drained: either the graph is done, or progress needs
		// capacity (cores or watts) currently owned by a sibling job, or no
		// device can ever host a leftover task.
		if r.inDAG == 0 {
			break
		}
		if r.blocked && (r.adm != nil || r.pow != nil) {
			select {
			case <-changed:
			case <-powChanged:
			case <-ctx.Done():
				return abort(ctx.Err())
			}
			continue
		}
		for _, n := range r.nodes {
			if !n.done {
				return abort(r.stuckErr(n))
			}
		}
	}
	res := &Result{
		Retries:        r.retries,
		Restores:       r.restores,
		Checkpoints:    r.ckpts,
		SDCDetected:    r.sdcDetected,
		SDCSilent:      r.sdcSilent,
		Stragglers:     r.stragglers,
		HedgesLaunched: r.hedgesLaunched,
		HedgesWon:      r.hedgesWon,
		HedgesDenied:   r.hedgesDenied,
		HedgeWastedJ:   r.hedgeWastedJ,
		DeadlineMisses: r.deadlineMisses,
		TasksShed:      r.shedTasks,
	}
	for _, n := range r.nodes {
		res.Records = append(res.Records, n.record)
		if n.record.End > res.Makespan {
			res.Makespan = n.record.End
		}
		res.EnergyJ += n.record.EnergyJ
	}
	return res, nil
}

// stuckErr explains why a leftover task can never run: ErrDeviceLost when a
// device that could have hosted it crashed or shrank below its width,
// ErrNoDevice otherwise.
func (r *Runtime) stuckErr(n *node) error {
	cores := n.task.Cores
	if cores <= 0 {
		cores = 1
	}
	lost := false
	for _, d := range r.devices {
		if d.Spec.Cores < cores || !classMatch(n.task, d.Spec.Class) {
			continue
		}
		if !d.Healthy() || (r.adm != nil && r.adm.Capacity(d.ID) < cores) {
			lost = true
		}
	}
	if lost {
		return fmt.Errorf("taskrt: task %q unplaceable after device loss: %w", n.task.Name, ErrDeviceLost)
	}
	return fmt.Errorf("taskrt: task %q never ran: %w", n.task.Name, ErrNoDevice)
}

// releaseHeld returns every admission grant — cores and watts — still held
// by in-flight tasks, so a cancelled job cannot strand fleet capacity or
// watt budget.
func (r *Runtime) releaseHeld() {
	if r.adm != nil {
		for id, n := range r.held {
			if n > 0 {
				r.adm.Release(id, n)
			}
			delete(r.held, id)
		}
	}
	if r.pow != nil {
		for id, w := range r.heldW {
			if w > 0 {
				r.pow.ReleaseDraw(id, w)
			}
			delete(r.heldW, id)
		}
	}
}
