// Package fpga is a behavioural model of the Xilinx FPGA boards used in the
// paper's aggressive-undervolting study (Sec. III, Fig. 5): VC707
// (performance-oriented Virtex), two samples of KC705 (power-oriented
// Kintex), and ZC702 (CPU-based Zynq). All are 28 nm parts whose Block RAMs
// (BRAMs) sit on an independently regulated rail, VCCBRAM, nominally 1 V.
//
// The model reproduces the three published voltage regions:
//
//   - guardband  [Vmin, Vnom]: fully reliable, power drops with voltage;
//   - critical   [Vcrash, Vmin): BRAM contents suffer bit faults whose rate
//     grows exponentially as voltage falls, reaching the published
//     faults/Mbit figure at Vcrash (652 VC707, 254 KC705-A, 60 KC705-B,
//     153 ZC702);
//   - crash      (V < Vcrash): the DONE pin drops and the FPGA stops
//     responding.
//
// Fault locations model "weak cells": each board draws a deterministic,
// seed-dependent set of weak bit positions; cell j fails below a threshold
// voltage derived by inverting the exponential fault-rate law, so the fault
// population at any voltage matches the law exactly and fault sets are
// monotone (lowering voltage only adds faults), as observed on real silicon.
package fpga

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Profile is the published undervolting characterisation of one board.
type Profile struct {
	// Name identifies the board (e.g. "VC707").
	Name string
	// BRAMBlocks is the number of 36 Kbit BRAM blocks on the part.
	BRAMBlocks int
	// VNom is the nominal VCCBRAM level (1.0 V for all studied parts).
	VNom float64
	// VMin is the minimum safe voltage: the bottom of the vendor guardband.
	VMin float64
	// VCrash is the voltage at which the DONE pin drops.
	VCrash float64
	// FaultsPerMbitAtCrash is the measured fault density just above VCrash.
	FaultsPerMbitAtCrash float64
	// NominalRailWatts is the VCCBRAM rail power at VNom.
	NominalRailWatts float64
	// PowerExponent γ models rail power as P = Pnom·(V/Vnom)^γ. The
	// published >90% saving at VCrash requires γ ≈ 4 (supply current falls
	// super-linearly alongside the quadratic dynamic-power term).
	PowerExponent float64
}

// BRAMKbits is the size of one BRAM block in Kbit (36 Kbit on 7-series).
const BRAMKbits = 36

// MemBits returns the total BRAM capacity in bits.
func (p Profile) MemBits() int { return p.BRAMBlocks * BRAMKbits * 1024 }

// MemBytes returns the total BRAM capacity in bytes.
func (p Profile) MemBytes() int { return p.MemBits() / 8 }

// Mbits returns the capacity in megabits (10^6 bits, as the paper reports
// faults per Mbit).
func (p Profile) Mbits() float64 { return float64(p.MemBits()) / 1e6 }

// The four studied boards, calibrated to the endpoints published in
// Sec. III-B and the underlying MICRO'18 study [7]: all parts are 28 nm
// with VNom = 1.0 V; Vmin/Vcrash vary slightly per board and even between
// identical samples (KC705-A vs KC705-B).

// VC707 returns the performance-oriented Virtex-7 board profile.
func VC707() Profile {
	return Profile{
		Name: "VC707", BRAMBlocks: 1030,
		VNom: 1.0, VMin: 0.61, VCrash: 0.54,
		FaultsPerMbitAtCrash: 652,
		NominalRailWatts:     0.39,
		PowerExponent:        4.0,
	}
}

// KC705A returns the first power-oriented Kintex-7 sample.
func KC705A() Profile {
	return Profile{
		Name: "KC705-A", BRAMBlocks: 445,
		VNom: 1.0, VMin: 0.59, VCrash: 0.53,
		FaultsPerMbitAtCrash: 254,
		NominalRailWatts:     0.18,
		PowerExponent:        4.0,
	}
}

// KC705B returns the second, nominally identical Kintex-7 sample; its
// margins differ from KC705-A, showing process variation between samples.
func KC705B() Profile {
	return Profile{
		Name: "KC705-B", BRAMBlocks: 445,
		VNom: 1.0, VMin: 0.58, VCrash: 0.52,
		FaultsPerMbitAtCrash: 60,
		NominalRailWatts:     0.18,
		PowerExponent:        4.0,
	}
}

// ZC702 returns the CPU-based Zynq board profile.
func ZC702() Profile {
	return Profile{
		Name: "ZC702", BRAMBlocks: 140,
		VNom: 1.0, VMin: 0.60, VCrash: 0.54,
		FaultsPerMbitAtCrash: 153,
		NominalRailWatts:     0.06,
		PowerExponent:        4.0,
	}
}

// AllProfiles returns the four studied boards in the paper's order.
func AllProfiles() []Profile {
	return []Profile{VC707(), ZC702(), KC705A(), KC705B()}
}

// weakCell is one bit position that fails below vFail.
type weakCell struct {
	bit   int64
	vFail float64
}

// TempCoeffVPerC is the modelled shift of every cell-failure threshold per
// degree above the 25 °C ambient reference: hotter silicon is slower, so
// cells fail at higher voltages and the usable guardband shrinks — the
// "worst case process and environmental conditions" the vendor margin
// covers (Sec. III; Fig. 5 is measured "at ambient temperature").
const TempCoeffVPerC = 0.0006

// ReferenceTempC is the ambient reference temperature.
const ReferenceTempC = 25.0

// Board is an instantiated FPGA with a settable VCCBRAM rail.
type Board struct {
	Profile Profile

	mem     []byte
	voltage float64
	tempC   float64
	done    bool

	// weak cells sorted by vFail descending; the fault set at voltage v is
	// the prefix with vFail > v.
	weak       []weakCell
	faultCount int // current prefix length

	// faultMask is the XOR mask currently applied to reads, kept in a
	// sparse map from byte offset to mask byte.
	faultMask map[int64]byte
}

// ErrCrashed reports access to a board whose VCCBRAM is below VCrash.
var ErrCrashed = errors.New("fpga: board crashed (DONE pin unset)")

// NewBoard instantiates a board. The seed fixes the weak-cell map: two
// boards with the same profile and seed fault identically (a board's fault
// map is a stable physical fingerprint); different seeds model different
// silicon samples.
func NewBoard(profile Profile, seed int64) *Board {
	b := &Board{
		Profile:   profile,
		mem:       make([]byte, profile.MemBytes()),
		voltage:   profile.VNom,
		tempC:     ReferenceTempC,
		done:      true,
		faultMask: make(map[int64]byte),
	}
	b.generateWeakCells(seed)
	return b
}

// generateWeakCells inverts the exponential fault law to place weak cells.
//
// The law: faults(v) = N·exp(-k·(v - VCrash)) with faults(VCrash) = N and
// faults(VMin) = f0 (the onset density, one fault in the whole array).
// Sorting cells by failure voltage descending, cell j (1-based) fails at
//
//	vFail(j) = VCrash + ln(N/j)/k
//
// which makes the fault count at voltage v exactly ⌈faults(v)⌉.
func (b *Board) generateWeakCells(seed int64) {
	p := b.Profile
	n := int(math.Ceil(p.FaultsPerMbitAtCrash * p.Mbits()))
	if n < 1 {
		n = 1
	}
	// Onset: a single faulty bit at VMin.
	f0 := 1.0
	k := math.Log(float64(n)/f0) / (p.VMin - p.VCrash)

	rng := rand.New(rand.NewSource(seed))
	totalBits := int64(p.MemBits())
	seen := make(map[int64]struct{}, n)
	b.weak = make([]weakCell, 0, n)
	for j := 1; j <= n; j++ {
		var bit int64
		for {
			bit = rng.Int63n(totalBits)
			if _, dup := seen[bit]; !dup {
				seen[bit] = struct{}{}
				break
			}
		}
		v := p.VCrash + math.Log(float64(n)/float64(j))/k
		if v > p.VMin {
			v = p.VMin
		}
		b.weak = append(b.weak, weakCell{bit: bit, vFail: v})
	}
	// Already in descending vFail order by construction (j ascending →
	// vFail descending), but sort defensively for exactness at ties.
	sort.Slice(b.weak, func(i, j int) bool { return b.weak[i].vFail > b.weak[j].vFail })
}

// Voltage returns the current VCCBRAM level.
func (b *Board) Voltage() float64 { return b.voltage }

// Temperature returns the die temperature in °C.
func (b *Board) Temperature() float64 { return b.tempC }

// tempShift is the threshold shift induced by the current temperature:
// positive when hotter than the reference (thresholds move up).
func (b *Board) tempShift() float64 {
	return (b.tempC - ReferenceTempC) * TempCoeffVPerC
}

// EffectiveVMin returns the minimum safe voltage at the current
// temperature.
func (b *Board) EffectiveVMin() float64 { return b.Profile.VMin + b.tempShift() }

// EffectiveVCrash returns the crash voltage at the current temperature.
func (b *Board) EffectiveVCrash() float64 { return b.Profile.VCrash + b.tempShift() }

// SetTemperature changes the die temperature, shifting every threshold;
// a hot board may crash at a voltage that was safe when cool.
func (b *Board) SetTemperature(c float64) {
	b.tempC = c
	if b.voltage < b.EffectiveVCrash() {
		b.done = false
	}
	b.rebuildFaults()
}

// Done reports the DONE pin: false once the board has crashed.
func (b *Board) Done() bool { return b.done }

// SetVCCBRAM changes the rail voltage. Crossing below VCrash crashes the
// board (DONE drops); raising the voltage back above VCrash restores
// operation only after Reconfigure (as on real hardware, a crashed FPGA
// must be reprogrammed).
func (b *Board) SetVCCBRAM(v float64) {
	b.voltage = v
	if v < b.EffectiveVCrash() {
		b.done = false
	}
	b.rebuildFaults()
}

// Reconfigure reloads the bitstream: memory clears and, if the rail is at
// or above VCrash, the DONE pin comes back up.
func (b *Board) Reconfigure() {
	for i := range b.mem {
		b.mem[i] = 0
	}
	if b.voltage >= b.EffectiveVCrash() {
		b.done = true
	}
	b.rebuildFaults()
}

// rebuildFaults recomputes the active fault prefix and XOR mask.
func (b *Board) rebuildFaults() {
	// Count cells with vFail > effective voltage (prefix of the descending
	// list); temperature shifts every cell threshold uniformly.
	veff := b.voltage - b.tempShift()
	idx := sort.Search(len(b.weak), func(i int) bool { return b.weak[i].vFail <= veff })
	b.faultCount = idx
	for k := range b.faultMask {
		delete(b.faultMask, k)
	}
	if !b.done {
		return
	}
	for _, wc := range b.weak[:idx] {
		b.faultMask[wc.bit/8] ^= 1 << uint(wc.bit%8)
	}
}

// FaultCount returns the number of currently faulty bits.
func (b *Board) FaultCount() int {
	if b.voltage >= b.EffectiveVMin() {
		return 0
	}
	return b.faultCount
}

// FaultsPerMbit returns the current fault density.
func (b *Board) FaultsPerMbit() float64 {
	return float64(b.FaultCount()) / b.Profile.Mbits()
}

// RailPower returns the VCCBRAM rail power at the current voltage:
// P = Pnom·(V/Vnom)^γ; zero once crashed (rail is still powered on real
// boards, but the paper reports delivered BRAM power, which collapses).
func (b *Board) RailPower() float64 {
	p := b.Profile
	return p.NominalRailWatts * math.Pow(b.voltage/p.VNom, p.PowerExponent)
}

// PowerSavingPercent returns the rail-power saving at the current voltage
// versus nominal, in percent.
func (b *Board) PowerSavingPercent() float64 {
	return (1 - b.RailPower()/b.Profile.NominalRailWatts) * 100
}

// Write stores data at a byte offset in BRAM address space. Writes to a
// crashed board fail.
func (b *Board) Write(offset int64, data []byte) error {
	if !b.done {
		return ErrCrashed
	}
	if offset < 0 || offset+int64(len(data)) > int64(len(b.mem)) {
		return fmt.Errorf("fpga: write [%d, %d) outside BRAM space of %d bytes",
			offset, offset+int64(len(data)), len(b.mem))
	}
	copy(b.mem[offset:], data)
	return nil
}

// Read fetches len(buf) bytes from a byte offset, applying the current
// fault mask: below VMin, weak cells return flipped bits.
func (b *Board) Read(offset int64, buf []byte) error {
	if !b.done {
		return ErrCrashed
	}
	if offset < 0 || offset+int64(len(buf)) > int64(len(b.mem)) {
		return fmt.Errorf("fpga: read [%d, %d) outside BRAM space of %d bytes",
			offset, offset+int64(len(buf)), len(b.mem))
	}
	copy(buf, b.mem[offset:offset+int64(len(buf))])
	if b.FaultCount() == 0 {
		return nil
	}
	// Apply sparse fault mask over the read window.
	for off, mask := range b.faultMask {
		if off >= offset && off < offset+int64(len(buf)) {
			buf[off-offset] ^= mask
		}
	}
	return nil
}

// MemBytes returns the BRAM capacity in bytes.
func (b *Board) MemBytes() int { return len(b.mem) }
