// Package plot renders XY series and bar groups as ASCII charts, so the
// command-line tools can show the *shape* of each reproduced figure
// (Fig. 5's power/fault curves, Fig. 6's bar groups) next to the numeric
// tables, terminal-only.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Chart is an ASCII XY chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	// LogY plots log10(y) (zero/negative values are dropped).
	LogY   bool
	series []Series
}

// Add appends a series; markers default to a cycling set.
func (c *Chart) Add(s Series) {
	if s.Marker == 0 {
		markers := []rune{'*', '+', 'o', 'x', '#', '@'}
		s.Marker = markers[len(c.series)%len(markers)]
	}
	c.series = append(c.series, s)
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	val := func(y float64) (float64, bool) {
		if c.LogY {
			if y <= 0 {
				return 0, false
			}
			return math.Log10(y), true
		}
		return y, true
	}
	for _, s := range c.series {
		for i := range s.X {
			y, ok := val(s.Y[i])
			if !ok {
				continue
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if !any {
		return c.Title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = make([]rune, w)
		for col := range grid[r] {
			grid[r][col] = ' '
		}
	}
	for _, s := range c.series {
		for i := range s.X {
			y, ok := val(s.Y[i])
			if !ok {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((y-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = s.Marker
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	yTop, yBot := maxY, minY
	unit := ""
	if c.LogY {
		unit = " (log10)"
	}
	for r := 0; r < h; r++ {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.3g", yTop)
		} else if r == h-1 {
			label = fmt.Sprintf("%9.3g", yBot)
		}
		fmt.Fprintf(&sb, "%10s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%10s  %-12.4g%s%12.4g\n", "", minX,
		strings.Repeat(" ", maxInt(0, w-26)), maxX)
	if c.XLabel != "" || c.YLabel != "" || c.LogY {
		fmt.Fprintf(&sb, "%10s  x: %s   y: %s%s\n", "", c.XLabel, c.YLabel, unit)
	}
	for _, s := range c.series {
		fmt.Fprintf(&sb, "%10s  %c %s\n", "", s.Marker, s.Name)
	}
	return sb.String()
}

// Bars renders one grouped bar chart row per label:
// label | ████████ 12.3   (scaled to the max value).
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for i, l := range labels {
		if i >= len(values) {
			break
		}
		n := 0
		if max > 0 {
			n = int(values[i] / max * float64(width))
		}
		fmt.Fprintf(&sb, "%-22s |%s %.2f\n", l, strings.Repeat("█", n), values[i])
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
