// Secure IoT Gateway (one of the paper's Sec. II-F use cases): an edge
// gateway attests itself to a verifier, receives sealed sensor batches,
// processes them inside the enclave as secure LEGaTO tasks, and persists a
// sealed aggregate — comparing the software-only and hardware-assisted
// security cost (the 10× goal).
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"

	"legato"
	"legato/internal/secure"
)

var platformKey = []byte("gateway-platform-root-key-00001!")

func runGateway(kind secure.TEEKind) *secure.Enclave {
	enclave, err := secure.New(kind, []byte("iot-gateway-v1"), platformKey)
	if err != nil {
		log.Fatal(err)
	}
	// 1. Remote attestation: the verifier challenges the gateway.
	quote := enclave.Attest(0xC0FFEE)
	if !secure.Verify(quote, enclave.Measurement, platformKey) {
		log.Fatal("attestation failed")
	}
	// 2. Sensor batches arrive (64 KiB each — bulk telemetry; tiny batches
	// would be dominated by the enclave-transition cost on any TEE), are
	// processed and re-sealed.
	var total float64
	for batch := 0; batch < 50; batch++ {
		readings := make([]byte, 64<<10)
		for i := 0; i < len(readings); i += 8 {
			binary.LittleEndian.PutUint64(readings[i:], uint64(batch*i))
		}
		sealed, err := enclave.Seal(readings)
		if err != nil {
			log.Fatal(err)
		}
		plain, err := enclave.Unseal(sealed)
		if err != nil {
			log.Fatal(err)
		}
		enclave.RunSecure(func() {
			for i := 0; i < len(plain); i += 8 {
				total += float64(binary.LittleEndian.Uint64(plain[i:]))
			}
		})
	}
	_ = total
	return enclave
}

func main() {
	log.SetFlags(0)

	sw := runGateway(secure.SoftwareOnly)
	hw := runGateway(secure.SGX)
	fmt.Printf("security energy, software-only: %10.1f µJ\n", sw.EnergyNJ/1000)
	fmt.Printf("security energy, SGX-assisted:  %10.1f µJ\n", hw.EnergyNJ/1000)
	fmt.Printf("hardware acceleration gain:     %10.1fx (project goal: 10x)\n\n",
		secure.OverheadRatio(sw, hw))

	// The same gateway as LEGaTO tasks with the Secure requirement on the
	// edge platform, a TrustZone enclave and the gateway's own root key.
	sys, err := legato.NewSystem(
		legato.WithPlatform(legato.EdgePlatform),
		legato.WithTEE(secure.TrustZone),
		legato.WithRootKey(platformKey),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	defer sys.Close(ctx)
	job, err := sys.NewJob("gateway")
	if err != nil {
		log.Fatal(err)
	}
	batch := job.Data("sensor-batch", 4096)
	for i := 0; i < 5; i++ {
		agg := job.Data(fmt.Sprintf("aggregate-%d", i), 256)
		if err := job.Task(fmt.Sprintf("process-batch-%d", i)).
			Gops(10).In(batch).Out(agg).Secure().Submit(); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := job.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge gateway processed 5 sealed batches: task energy %.2f J, security %.6f J\n",
		rep.TaskEnergyJ, rep.SecurityEnergyJ)
}
