package hw

// Catalog of representative microserver parts, calibrated to publicly
// documented figures for the component families named in the paper
// (COM Express x86, ARMv8, Jetson/Apalis low-power modules, GTX1080-class
// GPUs, Kintex/Virtex-class FPGAs, Maxeler DFEs). Absolute numbers are
// approximations; experiments depend on the relative ordering (low-power
// ARM below x86 below GPU in both throughput and draw), which these specs
// preserve.

// XeonD returns a COM Express high-performance x86 microserver CPU.
func XeonD() Spec {
	return Spec{
		Name:      "xeon-d-1577",
		Class:     CPUx86,
		Cores:     16,
		MemBytes:  64 << 30,
		GOPS:      400,
		IdleWatts: 25,
		PeakWatts: 90,
		States: []DVFSState{
			{Name: "nominal", FreqGHz: 2.1, Voltage: 1.0},
			{Name: "eco", FreqGHz: 1.4, Voltage: 0.85},
			{Name: "low", FreqGHz: 0.8, Voltage: 0.75},
		},
	}
}

// ARMv8Server returns a COM Express ARMv8 server CPU.
func ARMv8Server() Spec {
	return Spec{
		Name:      "armv8-cortex-a72",
		Class:     CPUARM,
		Cores:     8,
		MemBytes:  32 << 30,
		GOPS:      144,
		IdleWatts: 6,
		PeakWatts: 24,
		States: []DVFSState{
			{Name: "nominal", FreqGHz: 2.0, Voltage: 1.0},
			{Name: "eco", FreqGHz: 1.2, Voltage: 0.8},
		},
	}
}

// JetsonTX2 returns a low-power GPU SoC microserver (Apalis/Jetson class).
func JetsonTX2() Spec {
	return Spec{
		Name:      "jetson-tx2",
		Class:     GPU,
		Cores:     256, // CUDA cores
		MemBytes:  8 << 30,
		GOPS:      1300,
		IdleWatts: 5,
		PeakWatts: 15,
		States: []DVFSState{
			{Name: "nominal", FreqGHz: 1.3, Voltage: 1.0},
			{Name: "maxq", FreqGHz: 0.85, Voltage: 0.85},
		},
	}
}

// GTX1080 returns a workstation-class discrete GPU (Smart Mirror baseline,
// paper Sec. VI: two of these at ~400 W system draw).
func GTX1080() Spec {
	return Spec{
		Name:      "gtx-1080",
		Class:     GPU,
		Cores:     2560,
		MemBytes:  8 << 30,
		GOPS:      8870,
		IdleWatts: 12,
		PeakWatts: 180,
		States: []DVFSState{
			{Name: "nominal", FreqGHz: 1.6, Voltage: 1.0},
		},
	}
}

// KintexFPGA returns a power-oriented Kintex-class FPGA microserver
// (KC705 evaluation-board class, paper Sec. III).
func KintexFPGA() Spec {
	return Spec{
		Name:      "kintex-kc705",
		Class:     FPGA,
		Cores:     4, // reconfigurable regions
		MemBytes:  2 << 30,
		GOPS:      500,
		IdleWatts: 4,
		PeakWatts: 20,
		States: []DVFSState{
			{Name: "nominal", FreqGHz: 0.2, Voltage: 1.0},
		},
	}
}

// VirtexFPGA returns a performance-oriented Virtex-class FPGA (VC707 class).
func VirtexFPGA() Spec {
	return Spec{
		Name:      "virtex-vc707",
		Class:     FPGA,
		Cores:     6,
		MemBytes:  4 << 30,
		GOPS:      900,
		IdleWatts: 8,
		PeakWatts: 30,
		States: []DVFSState{
			{Name: "nominal", FreqGHz: 0.25, Voltage: 1.0},
		},
	}
}

// MaxelerDFE returns a Maxeler-style dataflow engine.
func MaxelerDFE() Spec {
	return Spec{
		Name:      "maxeler-dfe",
		Class:     DFE,
		Cores:     1, // one fully-pipelined dataflow graph at a time
		MemBytes:  48 << 30,
		GOPS:      2000,
		IdleWatts: 25,
		PeakWatts: 60,
		States: []DVFSState{
			{Name: "nominal", FreqGHz: 0.18, Voltage: 1.0},
		},
	}
}

// FPGASoC returns a Zynq-class CPU+FPGA SoC (ZC702 class).
func FPGASoC() Spec {
	return Spec{
		Name:      "zynq-zc702",
		Class:     FPGA,
		Cores:     2,
		MemBytes:  1 << 30,
		GOPS:      150,
		IdleWatts: 2,
		PeakWatts: 6,
		States: []DVFSState{
			{Name: "nominal", FreqGHz: 0.15, Voltage: 1.0},
		},
	}
}

// ApalisARM returns an Apalis-class low-power ARM SoC microserver.
func ApalisARM() Spec {
	return Spec{
		Name:      "apalis-imx8",
		Class:     CPUARM,
		Cores:     4,
		MemBytes:  4 << 30,
		GOPS:      40,
		IdleWatts: 2,
		PeakWatts: 8,
		States: []DVFSState{
			{Name: "nominal", FreqGHz: 1.5, Voltage: 1.0},
			{Name: "eco", FreqGHz: 0.9, Voltage: 0.8},
		},
	}
}
