package monitor

import (
	"strings"
	"testing"

	"legato/internal/cluster"
	"legato/internal/hw"
	"legato/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *cluster.Cluster, *Monitor) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng)
	cl.AddNode("x86-0", hw.XeonD())
	cl.AddNode("arm-0", hw.ARMv8Server())
	return eng, cl, New(eng, cl)
}

func TestPollSnapshotsAllNodes(t *testing.T) {
	_, _, m := setup(t)
	snaps := m.Poll()
	if len(snaps) != 2 {
		t.Fatalf("snapshots: %d", len(snaps))
	}
	for _, s := range snaps {
		if !s.Healthy || s.CPUFree != s.CPUTotal {
			t.Fatalf("idle node snapshot wrong: %+v", s)
		}
		if s.PowerW <= 0 {
			t.Fatal("idle power should be positive")
		}
	}
}

func TestSnapshotTracksLoad(t *testing.T) {
	eng, cl, m := setup(t)
	task := &cluster.Task{Name: "t", Kind: "k", CPU: 8, Gops: 400}
	if err := cl.Place(task, cl.Nodes[0]); err != nil {
		t.Fatal(err)
	}
	s := m.Poll()[0]
	if s.CPUFree != 8 || s.Tasks != 1 {
		t.Fatalf("loaded snapshot: %+v", s)
	}
	eng.Run()
	s = m.Poll()[0]
	if s.CPUFree != 16 || s.Tasks != 0 {
		t.Fatalf("post-completion snapshot: %+v", s)
	}
}

func TestLatestAndSeries(t *testing.T) {
	eng, _, m := setup(t)
	if _, ok := m.Latest("x86-0"); ok {
		t.Fatal("latest before any poll")
	}
	m.Poll()
	eng.Schedule(sim.Second, func() { m.Poll() })
	eng.Run()
	series := m.Series("x86-0")
	if len(series) != 2 {
		t.Fatalf("series length: %d", len(series))
	}
	last, ok := m.Latest("x86-0")
	if !ok || last.At != sim.Second {
		t.Fatalf("latest: %+v ok=%v", last, ok)
	}
	if series[0].At >= series[1].At {
		t.Fatal("series not time-ordered")
	}
}

func TestUtilization(t *testing.T) {
	_, cl, m := setup(t)
	if u := m.Utilization("x86-0"); u != 0 {
		t.Fatalf("utilization with no samples: %v", u)
	}
	task := &cluster.Task{Name: "t", Kind: "k", CPU: 8, Gops: 1e6}
	if err := cl.Place(task, cl.Nodes[0]); err != nil {
		t.Fatal(err)
	}
	m.Poll()
	if u := m.Utilization("x86-0"); u != 0.5 {
		t.Fatalf("utilization: got %v want 0.5", u)
	}
}

func TestReport(t *testing.T) {
	_, _, m := setup(t)
	m.Poll()
	r := m.Report()
	if !strings.Contains(r, "x86-0") || !strings.Contains(r, "arm-0") {
		t.Fatalf("report missing nodes:\n%s", r)
	}
}
