# Tier-1 verification entry point (see ROADMAP.md): `make ci` is what a
# reviewer runs to accept a change.

GO ?= go

.PHONY: ci vet lint build test race bench bench-short run-bench clean

ci: vet lint build race bench-short

vet:
	$(GO) vet ./...

# errcheck-style pass over the resilience paths: an ignored error return
# in faults/engine/taskrt/power fails the build (see cmd/legato-lint).
lint:
	$(GO) run ./cmd/legato-lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — smoke-checks the experiment
# harness plus the E11 >= 2x throughput, E12 <= 1.5x inflation, and
# E13 power-cap/EDP gates without a full run.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x ./...

# Regenerate every paper table/figure (add QUICK=1 for smaller sweeps).
run-bench:
	$(GO) run ./cmd/legato-bench $(if $(QUICK),-quick)

clean:
	$(GO) clean ./...
