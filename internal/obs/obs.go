// Package obs is the unified runtime observability layer of the LEGaTO
// reproduction: a typed, lock-cheap event bus that every subsystem
// publishes to, plus exporters that turn the session's traces and
// counters into standard tooling formats (Prometheus text exposition,
// Chrome trace_event JSON, Paraver text) — the role the BSC
// monitoring/tracing family plays around OmpSs in the paper's toolflow.
//
// Events carry virtual time (the emitting job's clock), the job, the
// task and the device, so a subscriber can reconstruct *why* a
// placement, hedge or throttle happened. Delivery is designed around two
// invariants:
//
//   - a session with no observer pays only a nil-check/atomic-load fast
//     path per would-be event (witnessed by BenchmarkObserverOverhead);
//   - a slow subscriber can never stall the dispatch loop: subscription
//     channels are bounded, an undeliverable event is dropped, and the
//     drop counter says how many.
//
// Synchronous observers (Bus.Observe) run under the bus lock in global
// sequence order; they must be fast and must not call back into the bus.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"legato/internal/sim"
)

// Kind enumerates the runtime event taxonomy (see DESIGN.md §5).
type Kind uint8

const (
	// TaskQueued: the task entered its job's dependence graph.
	TaskQueued Kind = iota
	// TaskPlaced: the task won device, core and watt admission.
	TaskPlaced
	// TaskStarted: the task began executing on a device.
	TaskStarted
	// TaskCompleted: the task committed an execution.
	TaskCompleted
	// TaskFailed: the task failed terminally (retries exhausted, strict
	// deadline miss); the job aborts with the matching typed error.
	TaskFailed
	// TaskRetried: a failed or corrupted execution was re-queued.
	TaskRetried
	// TaskShed: the task was skipped by graceful deadline degradation.
	TaskShed
	// CheckpointBegin: an asynchronous checkpoint capture started.
	CheckpointBegin
	// CheckpointCommit: the checkpoint committed after its write cost.
	CheckpointCommit
	// HedgeArmed: the straggler watchdog flagged a running execution.
	HedgeArmed
	// HedgeLaunched: a speculative replica started on another device.
	HedgeLaunched
	// HedgeWon: the replica beat the straggling primary.
	HedgeWon
	// HedgeCancelled: the replica lost the race and was cancelled.
	HedgeCancelled
	// HedgePromoted: the primary's device died and the replica became the
	// sole execution.
	HedgePromoted
	// DeadlineMissed: a task passed its virtual-clock deadline.
	DeadlineMissed
	// FaultInjected: the failure process applied a global crash or
	// degrade to the fleet (published exactly once per fault).
	FaultInjected
	// GovernorThrottled: the power governor stepped a device down its
	// DVFS ladder, as observed on the publishing job's platform mirror.
	GovernorThrottled
	// GovernorRestored: the governor stepped a device back toward
	// nominal.
	GovernorRestored
	// PowerAdmitted: the watt ledger granted a task's dynamic draw.
	PowerAdmitted
	// PowerRefused: the watt ledger refused a draw (cap pressure); the
	// placement parks or the hedge is denied.
	PowerRefused
	// DeviceLost: a job observed a device loss on its platform mirror
	// (revocations and restores in Detail).
	DeviceLost
)

// kindNames is the canonical Kind naming, used by String and the
// (un)marshalling of exported session dumps.
var kindNames = [...]string{
	TaskQueued:        "task-queued",
	TaskPlaced:        "task-placed",
	TaskStarted:       "task-started",
	TaskCompleted:     "task-completed",
	TaskFailed:        "task-failed",
	TaskRetried:       "task-retried",
	TaskShed:          "task-shed",
	CheckpointBegin:   "checkpoint-begin",
	CheckpointCommit:  "checkpoint-commit",
	HedgeArmed:        "hedge-armed",
	HedgeLaunched:     "hedge-launched",
	HedgeWon:          "hedge-won",
	HedgeCancelled:    "hedge-cancelled",
	HedgePromoted:     "hedge-promoted",
	DeadlineMissed:    "deadline-missed",
	FaultInjected:     "fault-injected",
	GovernorThrottled: "governor-throttled",
	GovernorRestored:  "governor-restored",
	PowerAdmitted:     "power-admitted",
	PowerRefused:      "power-refused",
	DeviceLost:        "device-lost",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalText renders the kind by name, so exported session dumps stay
// readable and stable across taxonomy growth.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name produced by MarshalText.
func (k *Kind) UnmarshalText(text []byte) error {
	name := string(text)
	for i, n := range kindNames {
		if n == name {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", name)
}

// Event is one runtime observation. Seq is assigned by the bus in
// publication order; At is virtual time on the emitting job's clock
// (job clocks are private, so At values are comparable within a job,
// not across jobs). Value and Detail carry a kind-specific measurement
// and annotation (watts for power events, joules for completions and
// hedge resolutions, the retry reason, …).
type Event struct {
	Seq    uint64   `json:"seq"`
	At     sim.Time `json:"at"`
	Kind   Kind     `json:"kind"`
	Job    string   `json:"job,omitempty"`
	Task   string   `json:"task,omitempty"`
	Device string   `json:"device,omitempty"`
	Value  float64  `json:"value,omitempty"`
	Detail string   `json:"detail,omitempty"`
}

// String renders the event as one stable log line — the unit of the
// byte-identical determinism witness over serialized sessions.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6d %12.6fs %-18s", e.Seq, sim.ToSeconds(e.At), e.Kind)
	if e.Job != "" {
		fmt.Fprintf(&sb, " job=%s", e.Job)
	}
	if e.Task != "" {
		fmt.Fprintf(&sb, " task=%s", e.Task)
	}
	if e.Device != "" {
		fmt.Fprintf(&sb, " dev=%s", e.Device)
	}
	if e.Value != 0 {
		fmt.Fprintf(&sb, " v=%g", e.Value)
	}
	if e.Detail != "" {
		fmt.Fprintf(&sb, " (%s)", e.Detail)
	}
	return sb.String()
}

// FormatLog renders events one per line, in slice order.
func FormatLog(events []Event) string {
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DefaultBuffer is the subscription channel depth used when the caller
// does not choose one.
const DefaultBuffer = 1024

// Bus fans runtime events out to observers and subscriptions. The zero
// of observability is free by construction: Publish on a nil bus, or on
// a bus with no observer and no subscription, returns after a single
// atomic load — no lock, no allocation. Bus is safe for concurrent use.
type Bus struct {
	active atomic.Int32 // observers + open subscriptions

	mu        sync.Mutex
	seq       uint64
	observers []func(Event)
	subs      []*Subscription
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{} }

// Active reports whether anyone is listening. Publishers may use it to
// skip building expensive Detail strings for events nobody will see.
func (b *Bus) Active() bool { return b != nil && b.active.Load() > 0 }

// Observe registers a synchronous observer. Observers run under the bus
// lock in global sequence order, so they see exactly the stream a
// serialized session would log; they must be fast, must not block, and
// must not call back into the bus. Observers cannot be unregistered —
// they live as long as the session.
func (b *Bus) Observe(fn func(Event)) {
	if fn == nil {
		return
	}
	b.mu.Lock()
	b.observers = append(b.observers, fn)
	b.mu.Unlock()
	b.active.Add(1)
}

// Subscribe opens a bounded buffered subscription (buf <= 0 selects
// DefaultBuffer). Events that find the buffer full are dropped and
// counted — a slow consumer can never stall the dispatch loop.
func (b *Bus) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = DefaultBuffer
	}
	s := &Subscription{bus: b, ch: make(chan Event, buf)}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	b.active.Add(1)
	return s
}

// Publish stamps the event with the next sequence number and delivers
// it. With no listener this is the disabled fast path: one atomic load.
func (b *Bus) Publish(e Event) {
	if b == nil || b.active.Load() == 0 {
		return
	}
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	for _, s := range b.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
		}
	}
	for _, fn := range b.observers {
		fn(e)
	}
	b.mu.Unlock()
}

// Subscription is one bounded event feed off a bus.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	dropped atomic.Uint64
	closed  bool // guarded by bus.mu
}

// Events returns the receive side of the subscription. The channel is
// closed by Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events were discarded because the buffer was
// full when they arrived.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel; double-close
// is a no-op.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for i, sub := range s.bus.subs {
		if sub == s {
			s.bus.subs = append(s.bus.subs[:i], s.bus.subs[i+1:]...)
			break
		}
	}
	s.bus.active.Add(-1)
	close(s.ch)
}

// Collector is a synchronous observer that accumulates the ordered
// event stream in memory — the shape the determinism witness and the
// session exporter consume. Safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Observe appends one event; pass it to Bus.Observe.
func (c *Collector) Observe(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the collected stream in publication order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len reports how many events have been collected.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Log renders the collected stream via FormatLog.
func (c *Collector) Log() string { return FormatLog(c.Events()) }
