package mpi

import (
	"testing"

	"legato/internal/sim"
)

func newWorld(t *testing.T, size, perNode int) (*sim.Engine, *World) {
	t.Helper()
	eng := sim.NewEngine()
	w, err := NewWorld(eng, Config{Size: size, RanksPerNode: perNode})
	if err != nil {
		t.Fatal(err)
	}
	return eng, w
}

func TestWorldValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewWorld(eng, Config{Size: 0}); err == nil {
		t.Fatal("zero-size world accepted")
	}
}

func TestNodeMapping(t *testing.T) {
	_, w := newWorld(t, 8, 4)
	if w.Nodes() != 2 {
		t.Fatalf("nodes: got %d want 2", w.Nodes())
	}
	if w.NodeOf(0) != 0 || w.NodeOf(3) != 0 || w.NodeOf(4) != 1 || w.NodeOf(7) != 1 {
		t.Fatal("rank→node mapping wrong")
	}
}

func TestSendRecv(t *testing.T) {
	_, w := newWorld(t, 2, 1)
	var got any
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 7, "payload", 100)
		} else {
			got = r.Recv(0, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Fatalf("recv got %v", got)
	}
}

func TestTagMatching(t *testing.T) {
	_, w := newWorld(t, 2, 1)
	var first, second any
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.ISend(1, 1, "one", 8)
			r.ISend(1, 2, "two", 8)
		} else {
			// Receive in reverse tag order: matching must be by tag.
			second = r.Recv(0, 2)
			first = r.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != "one" || second != "two" {
		t.Fatalf("tag matching: %v %v", first, second)
	}
}

func TestSendTransferTimeScalesWithSize(t *testing.T) {
	eng, w := newWorld(t, 2, 1)
	var done sim.Time
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, "x", 10_000_000_000) // 10 GB over 10 GB/s → 1 s
		} else {
			r.Recv(0, 0)
			done = r.Proc().Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	sec := sim.ToSeconds(done)
	if sec < 0.99 || sec > 1.01 {
		t.Fatalf("10GB over 10GB/s took %vs, want ~1s", sec)
	}
	_ = eng
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	size := int64(1_000_000_000)
	measure := func(perNode int) sim.Time {
		_, w := newWorld(t, 2, perNode)
		var done sim.Time
		if err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(1, 0, "x", size)
			} else {
				r.Recv(0, 0)
				done = r.Proc().Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return done
	}
	sameNode := measure(2)
	crossNode := measure(1)
	if sameNode >= crossNode {
		t.Fatalf("shared-memory transfer (%v) not faster than network (%v)", sameNode, crossNode)
	}
}

func TestSendrecvRing(t *testing.T) {
	const n = 4
	_, w := newWorld(t, n, 1)
	got := make([]int, n)
	err := w.Run(func(r *Rank) {
		right := (r.Rank() + 1) % n
		left := (r.Rank() + n - 1) % n
		v := r.Sendrecv(right, 0, r.Rank(), 8, left, 0)
		got[r.Rank()] = v.(int)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := (i + n - 1) % n
		if got[i] != want {
			t.Fatalf("ring shift: rank %d got %d want %d", i, got[i], want)
		}
	}
}

func TestBarrierSynchronises(t *testing.T) {
	const n = 3
	eng, w := newWorld(t, n, 1)
	var after []sim.Time
	err := w.Run(func(r *Rank) {
		r.Proc().Sleep(sim.Time(10 * (r.Rank() + 1)))
		r.Barrier()
		after = append(after, r.Proc().Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range after {
		if a != 30 {
			t.Fatalf("barrier release time %v, want 30", a)
		}
	}
	_ = eng
}

func TestAllreduce(t *testing.T) {
	const n = 5
	_, w := newWorld(t, n, 1)
	results := make([]float64, n)
	err := w.Run(func(r *Rank) {
		results[r.Rank()] = r.Allreduce(float64(r.Rank()+1), func(a, b float64) float64 { return a + b })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != 15 { // 1+2+3+4+5
			t.Fatalf("allreduce on rank %d: got %v want 15", i, v)
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	const n = 4
	_, w := newWorld(t, n, 1)
	results := make([]float64, n)
	err := w.Run(func(r *Rank) {
		v := float64((r.Rank() * 7) % 5)
		results[r.Rank()] = r.Allreduce(v, func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != 4 {
			t.Fatalf("allreduce max on rank %d: got %v", i, v)
		}
	}
}

func TestGather(t *testing.T) {
	const n = 4
	_, w := newWorld(t, n, 1)
	var gathered []any
	err := w.Run(func(r *Rank) {
		res := r.Gather(0, r.Rank()*10, 8)
		if r.Rank() == 0 {
			gathered = res
		} else if res != nil {
			t.Errorf("non-root rank %d got gather result", r.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range gathered {
		if v.(int) != i*10 {
			t.Fatalf("gather[%d] = %v", i, v)
		}
	}
}

func TestBcast(t *testing.T) {
	const n = 4
	_, w := newWorld(t, n, 1)
	got := make([]any, n)
	err := w.Run(func(r *Rank) {
		var payload any
		if r.Rank() == 2 {
			payload = "root-data"
		}
		got[r.Rank()] = r.Bcast(2, payload, 16)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != "root-data" {
			t.Fatalf("bcast on rank %d: %v", i, v)
		}
	}
}

func TestDeadlockReported(t *testing.T) {
	_, w := newWorld(t, 2, 1)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(1, 0) // never sent
		}
	})
	if err != ErrDeadlock {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
}

func TestBytesSentAccounting(t *testing.T) {
	_, w := newWorld(t, 2, 1)
	var sent int64
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, "a", 123)
			r.ISend(1, 0, "b", 77)
			sent = r.BytesSent
		} else {
			r.Recv(0, 0)
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sent != 200 {
		t.Fatalf("bytes sent: %d", sent)
	}
}
