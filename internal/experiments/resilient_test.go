package experiments

import (
	"strings"
	"testing"
)

// TestResilientE12 runs the full E12 study and enforces the acceptance
// gate: the 8-job session survives an MTBF-driven single-device loss with
// every job completing, ≤ 1.5× makespan inflation over the fault-free
// baseline, zero admission oversubscription, and nonzero recovery
// counters in the monitor registry.
func TestResilientE12(t *testing.T) {
	res, err := Resilient(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != res.Jobs {
		t.Fatalf("only %d/%d jobs completed", res.JobsCompleted, res.Jobs)
	}
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want exactly 1", res.Crashes)
	}
	if res.InflationX > 1.5 {
		t.Fatalf("inflation %.2fx, want <= 1.5x", res.InflationX)
	}
	if res.InflationX < 1.0 {
		t.Fatalf("inflation %.2fx below baseline — fault run suspiciously fast", res.InflationX)
	}
	if res.PeakViolations != 0 {
		t.Fatalf("%d oversubscribed devices", res.PeakViolations)
	}
	if res.Retries+res.Restores == 0 {
		t.Fatalf("no recovery work: %+v", res)
	}
	if res.Checkpoints == 0 {
		t.Fatalf("no checkpoints committed")
	}

	// The registry must carry the recovery counters ("faults" scope).
	snap := res.Registry.ScopeSnapshot("faults")
	if snap["device-crashes"] < 1 {
		t.Fatalf("registry faults scope missing device-crashes: %+v", snap)
	}
	if snap["task-retries"]+snap["tasks-restored"] <= 0 {
		t.Fatalf("registry faults scope has zero retry/restore counters: %+v", snap)
	}

	table := ResilientTable(res)
	for _, want := range []string{"E12", "fault-free", "one device lost", "jobs completed 8/8"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestResilientDeterministic: same seed, same study outcome — the virtual
// clock and the deterministic failure sampling make E12 reproducible.
//
// The witness runs on one worker: the injector applies the global fleet
// change exactly once, at the wall-clock instant the *first* job crosses
// the event time, so with concurrent jobs a sibling whose private clock is
// still before the crash may dispatch before or after the global capacity
// flip depending on goroutine scheduling — placing on the doomed device
// (and later paying a retry) in one run and routing around it in another.
// Serialised, no job can race another's fault crossing and every counter
// is a pure function of the seed. The concurrent case is gated on
// outcome-level invariants (TestResilientE12), not on exact equality.
func TestResilientDeterministic(t *testing.T) {
	a, err := Resilient(4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resilient(4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed != b.Seed || a.LostDevice != b.LostDevice || a.CrashAt != b.CrashAt ||
		a.FaultMakespan != b.FaultMakespan || a.Retries != b.Retries || a.Restores != b.Restores {
		t.Fatalf("E12 not deterministic:\n%+v\n%+v", a, b)
	}
}
