package hls

import (
	"testing"
)

// heatKernel is the Heat2D inner stencil as a stream kernel:
// out = 0.25*(n + s + e + w).
func heatKernel() Kernel {
	sum := AddE(AddE(In{"n"}, In{"s"}), AddE(In{"e"}, In{"w"}))
	return Kernel{
		Name:    "heat-stencil",
		Outputs: map[string]Expr{"out": MulE(K{0.25}, sum)},
	}
}

func TestCompileAndRun(t *testing.T) {
	d, err := Compile(heatKernel())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Graph.Run(map[string][]float64{
		"n": {4, 8}, "s": {4, 0}, "e": {4, 0}, "w": {4, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out["out"][0] != 4 || out["out"][1] != 2 {
		t.Fatalf("stencil wrong: %v", out["out"])
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(Kernel{Name: "empty"}); err == nil {
		t.Fatal("kernel without outputs accepted")
	}
}

func TestResourceEstimation(t *testing.T) {
	d, err := Compile(heatKernel())
	if err != nil {
		t.Fatal(err)
	}
	r := d.Resources
	// 3 adds + 1 mul: LUTs from adds, DSPs from the mul.
	if r.DSPs < 2 {
		t.Fatalf("multiplier got no DSPs: %+v", r)
	}
	if r.LUTs < 3*64 {
		t.Fatalf("adders got too few LUTs: %+v", r)
	}
	if !r.FitsIn(ZynqBudget()) {
		t.Fatalf("small stencil does not fit a Zynq: %+v", r)
	}
}

func TestDivisionCostsMore(t *testing.T) {
	add, _ := Compile(Kernel{Name: "a", Outputs: map[string]Expr{"o": AddE(In{"x"}, In{"y"})}})
	div, _ := Compile(Kernel{Name: "d", Outputs: map[string]Expr{"o": DivE(In{"x"}, In{"y"})}})
	if div.Resources.DSPs <= add.Resources.DSPs || div.Resources.LUTs <= add.Resources.LUTs {
		t.Fatalf("division not costlier: div %+v vs add %+v", div.Resources, add.Resources)
	}
	if div.PipelineDepth <= add.PipelineDepth {
		t.Fatalf("division not deeper: %d vs %d", div.PipelineDepth, add.PipelineDepth)
	}
}

func TestBudgetRejection(t *testing.T) {
	// A kernel with many dividers blows the Zynq DSP budget (220).
	outs := map[string]Expr{}
	for i := 0; i < 30; i++ {
		outs[string(rune('a'+i))] = DivE(In{"x"}, In{"y"})
	}
	d, err := Compile(Kernel{Name: "big", Outputs: outs})
	if err != nil {
		t.Fatal(err)
	}
	if d.Resources.FitsIn(ZynqBudget()) {
		t.Fatalf("30 dividers reported as fitting a Zynq: %+v", d.Resources)
	}
	if !d.Resources.FitsIn(KintexBudget()) {
		t.Fatalf("30 dividers should fit a Kintex: %+v", d.Resources)
	}
}

func TestSelectLowering(t *testing.T) {
	k := Kernel{Name: "relu", Outputs: map[string]Expr{
		"o": Select{Cond: In{"x"}, A: In{"x"}, B: K{0}},
	}}
	d, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Graph.Run(map[string][]float64{"x": {-3, 0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 5}
	for i, w := range want {
		if out["o"][i] != w {
			t.Fatalf("relu[%d] = %v want %v", i, out["o"][i], w)
		}
	}
}

func TestIIIsOne(t *testing.T) {
	d, err := Compile(heatKernel())
	if err != nil {
		t.Fatal(err)
	}
	if d.II != 1 {
		t.Fatalf("feed-forward kernel II: %d", d.II)
	}
	if d.PipelineDepth <= 0 {
		t.Fatal("no pipeline depth")
	}
}
