package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"legato/internal/engine"
	"legato/internal/faults"
	"legato/internal/ft"
	"legato/internal/hw"
	"legato/internal/power"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

// --- E14: tail latency under silent degradation, hedged vs unhedged -----

// TailResult is the outcome of the E14 study: the same multi-job session
// run twice under an identical degrade-heavy fault plan and fleet power
// cap — once with hedging disabled (the watchdog never arms, so the
// silently slowed device keeps winning placement on its clean cost model)
// and once with hedged execution. The gate the benchmark enforces: hedging
// cuts both p99 task latency and session makespan, the capped peak-draw
// witness holds (hedges are admitted through the watt ledger, never force-
// launched), wasted hedge energy is reported, and the hedged session's
// platform energy stays within a bounded factor of the unhedged one.
type TailResult struct {
	Jobs, Workers int
	// Seed is the fault-plan seed the deterministic search settled on;
	// SeedsTried counts candidate plans whose degrade landed too late to
	// produce straggler work.
	Seed       int64
	SeedsTried int
	// CapW is the fleet power cap both sessions run under.
	CapW float64
	// DegradedDevice is the silently slowed device; Slowdown its hidden
	// execution-time stretch; DegradeAt the sampled event time.
	DegradedDevice string
	Slowdown       float64
	DegradeAt      sim.Time

	// Unhedged vs hedged session, same plan, cap and MinTime policy.
	BaseP99, HedgedP99           sim.Time
	BaseMakespan, HedgedMakespan sim.Time
	P99CutX, MakespanCutX        float64
	BaseEnergyJ, HedgedEnergyJ   float64 // platform energy (idle+dynamic)
	EnergyRatioX                 float64 // hedged over unhedged
	HedgedPeakW                  float64
	// CapViolated is the peak-draw witness for the hedged session: true
	// iff fleet draw ever exceeded the cap. Must be false.
	CapViolated bool

	Stragglers     int
	HedgesLaunched int
	HedgesWon      int
	HedgesDenied   int
	HedgeWastedJ   float64
	JobsCompleted  int
}

// tailFleet is the E14 platform: one fast x86 microserver that every
// 1-core task prefers (25 Gops per core), backed by two ARM servers
// (18 Gops per core). The fault plan silently slows the favoured device;
// because the slowdown is invisible to the cost model, only the straggler
// watchdog can notice and route around it.
func tailFleet(se *sim.Engine) ([]*hw.Device, error) {
	return []*hw.Device{
		hw.NewDevice(se, "xeon0", hw.XeonD()),
		hw.NewDevice(se, "arm0", hw.ARMv8Server()),
		hw.NewDevice(se, "arm1", hw.ARMv8Server()),
	}, nil
}

// tailPlan returns the degrade-heavy E14 fault plan: a near-immediate
// silent slowdown of the x86 class (capacity untouched — DegradeTo 1.0 —
// so placement keeps trusting the device) with the given seed.
func tailPlan(seed int64) faults.Plan {
	return faults.Plan{
		DegradeMTBF:     ft.MTBFModel{hw.CPUx86: 0.05},
		DegradeTo:       1.0,
		DegradeSlowdown: 6.0,
		Seed:            seed,
	}
}

// tailSession runs one E14 session: `jobs` four-chain jobs on the tail
// fleet under the plan, cap, and hedge policy, returning the engine stats
// plus the per-task latencies (Record.End − Record.Start, the true task
// latency including any straggling window before a hedge won).
func tailSession(jobs, workers int, plan faults.Plan, hedge taskrt.HedgePolicy, capW float64) (engine.Stats, []sim.Time, error) {
	e, err := engine.New(engine.Config{
		Workers:     workers,
		Policy:      taskrt.MinTime,
		NewPlatform: tailFleet,
		Faults:      &plan,
		PowerCapW:   capW,
		Hedge:       hedge,
	})
	if err != nil {
		return engine.Stats{}, nil, err
	}
	ctx := context.Background()
	var js []*engine.Job
	for n := 0; n < jobs; n++ {
		j, err := e.NewJob(fmt.Sprintf("job%d", n))
		if err != nil {
			return engine.Stats{}, nil, err
		}
		if err := multiJobGraphSized(j.Runtime(), j.Name, 4, 6, 1024); err != nil {
			return engine.Stats{}, nil, err
		}
		js = append(js, j)
		if err := e.Submit(ctx, j); err != nil {
			return engine.Stats{}, nil, err
		}
	}
	var lats []sim.Time
	for _, j := range js {
		res, err := j.Wait(ctx)
		if err != nil {
			return engine.Stats{}, nil, fmt.Errorf("job %s: %w", j.Name, err)
		}
		for _, rec := range res.Records {
			if !rec.Shed {
				lats = append(lats, rec.End-rec.Start)
			}
		}
	}
	st := e.Stats()
	if err := e.Shutdown(ctx); err != nil {
		return engine.Stats{}, nil, err
	}
	return st, lats, nil
}

// p99 returns the 99th-percentile of the latencies (nearest-rank).
func p99(lats []sim.Time) sim.Time {
	if len(lats) == 0 {
		return 0
	}
	s := append([]sim.Time(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s) + 99) / 100 // ceil(0.99 n)
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// Tail runs the E14 study. Both sessions share one deterministic fault
// plan whose single degrade event silently slows the favoured device by
// 6× early in the session, and one fleet power cap at 60% of nominal peak
// draw. The unhedged session keeps scheduling onto the slowed device (its
// clean cost model still scores best), so every execution there straggles
// unnoticed; the hedged session's watchdog flags the stretch at 1.5× the
// expected span, launches replicas on the ARM servers through the core and
// watt ledgers, and folds the witnessed slowdown into placement so later
// tasks route around the device entirely. A bounded seed search (seed,
// seed+1, ...) keeps the first plan whose degrade actually lands before
// the work drains; each candidate session is deterministic on the virtual
// clock.
func Tail(jobs, workers int, seed int64) (*TailResult, error) {
	refClock := sim.NewEngine()
	ref, err := tailFleet(refClock)
	if err != nil {
		return nil, err
	}
	capW := 0.6 * float64(power.FleetPeakWatts(ref))

	const maxSeeds = 64
	for s := seed; s < seed+maxSeeds; s++ {
		plan := tailPlan(s)
		events := plan.Schedule(ref)
		if len(events) == 0 {
			continue
		}
		hedged, hedgedLats, err := tailSession(jobs, workers, plan, taskrt.HedgePolicy{Multiplier: 1.5}, capW)
		if err != nil {
			return nil, fmt.Errorf("experiments: E14 hedged session (seed %d): %w", s, err)
		}
		if hedged.StragglersDetected == 0 || hedged.HedgesWon == 0 {
			continue // degrade sampled past the session's useful window
		}
		base, baseLats, err := tailSession(jobs, workers, plan, taskrt.HedgePolicy{}, capW)
		if err != nil {
			return nil, fmt.Errorf("experiments: E14 unhedged session (seed %d): %w", s, err)
		}
		if base.SessionMakespan <= 0 {
			return nil, fmt.Errorf("experiments: E14 unhedged session produced no makespan")
		}
		return &TailResult{
			Jobs: jobs, Workers: workers,
			Seed: s, SeedsTried: int(s-seed) + 1,
			CapW:           capW,
			DegradedDevice: events[0].Device,
			Slowdown:       events[0].Slowdown,
			DegradeAt:      events[0].At,
			BaseP99:        p99(baseLats),
			HedgedP99:      p99(hedgedLats),
			BaseMakespan:   base.SessionMakespan,
			HedgedMakespan: hedged.SessionMakespan,
			P99CutX:        float64(p99(baseLats)) / float64(p99(hedgedLats)),
			MakespanCutX:   float64(base.SessionMakespan) / float64(hedged.SessionMakespan),
			BaseEnergyJ:    base.PlatformEnergyJ,
			HedgedEnergyJ:  hedged.PlatformEnergyJ,
			EnergyRatioX:   hedged.PlatformEnergyJ / base.PlatformEnergyJ,
			HedgedPeakW:    hedged.PeakDrawW,
			CapViolated:    hedged.PeakDrawW > capW,
			Stragglers:     hedged.StragglersDetected,
			HedgesLaunched: hedged.HedgesLaunched,
			HedgesWon:      hedged.HedgesWon,
			HedgesDenied:   hedged.HedgesDenied,
			HedgeWastedJ:   hedged.HedgeWastedJ,
			JobsCompleted:  hedged.JobsCompleted,
		}, nil
	}
	return nil, fmt.Errorf("experiments: E14 found no plan with straggler work in %d seeds from %d", maxSeeds, seed)
}

// TailTable renders the E14 result.
func TailTable(r *TailResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14: %d jobs, %d workers — %s silently %.0fx slower at %v (seed %d, %d tried), cap %.0f W\n",
		r.Jobs, r.Workers, r.DegradedDevice, r.Slowdown, r.DegradeAt, r.Seed, r.SeedsTried, r.CapW)
	fmt.Fprintf(&b, "%-12s %-14s %-14s %-12s\n", "", "p99 latency", "makespan", "energy-J")
	fmt.Fprintf(&b, "%-12s %-14v %-14v %-12.0f\n", "no hedging", r.BaseP99, r.BaseMakespan, r.BaseEnergyJ)
	fmt.Fprintf(&b, "%-12s %-14v %-14v %-12.0f\n", "hedged", r.HedgedP99, r.HedgedMakespan, r.HedgedEnergyJ)
	fmt.Fprintf(&b, "hedging cuts p99 %.2fx, makespan %.2fx at %.2fx energy\n",
		r.P99CutX, r.MakespanCutX, r.EnergyRatioX)
	witness := "peak ≤ cap"
	if r.CapViolated {
		witness = "CAP VIOLATED"
	}
	fmt.Fprintf(&b, "witness: %s (peak %.1f W) · stragglers %d · hedges %d launched / %d won / %d denied · waste %.1f J · jobs %d/%d\n",
		witness, r.HedgedPeakW, r.Stragglers, r.HedgesLaunched, r.HedgesWon, r.HedgesDenied,
		r.HedgeWastedJ, r.JobsCompleted, r.Jobs)
	return b.String()
}
