// Package cluster simulates the heterogeneous Kubernetes-style cluster
// HEATS schedules onto (paper Sec. V): nodes wrapping hw devices with CPU
// and memory capacities, tasks as resource-requesting containers, live
// placement, and migration with a freeze/transfer downtime — the
// "instantiates and moves tasks among nodes" box of Fig. 7.
package cluster

import (
	"fmt"

	"legato/internal/energy"
	"legato/internal/hw"
	"legato/internal/sim"
)

// Task is one schedulable container.
type Task struct {
	Name string
	// Kind groups tasks with the same performance profile (HEATS learns
	// per-kind models).
	Kind string
	// CPU is the requested core count.
	CPU int
	// MemBytes is the requested memory.
	MemBytes int64
	// Gops is the total work.
	Gops float64
	// OnDone runs at completion.
	OnDone func()

	remaining  float64
	node       *Node
	started    sim.Time
	rate       float64 // gops/sec on current node
	exec       sim.Handle
	done       bool
	migrations int
	// EnergyJ accumulates the dynamic energy spent on this task.
	EnergyJ energy.Joules
}

// Done reports completion.
func (t *Task) Done() bool { return t.done }

// Node returns the current placement (nil if queued or done).
func (t *Task) Node() *Node { return t.node }

// Migrations counts completed migrations.
func (t *Task) Migrations() int { return t.migrations }

// Remaining returns the unfinished work in gops (approximate between
// events; exact at event boundaries).
func (t *Task) Remaining() float64 { return t.remaining }

// Node is one cluster machine.
type Node struct {
	Name string
	Dev  *hw.Device

	eng     *sim.Engine
	cpuFree int
	memFree int64
	tasks   map[*Task]struct{}
}

// CPUFree returns currently unallocated cores.
func (n *Node) CPUFree() int { return n.cpuFree }

// MemFree returns currently unallocated memory.
func (n *Node) MemFree() int64 { return n.memFree }

// RunningTasks returns the live task count.
func (n *Node) RunningTasks() int { return len(n.tasks) }

// Fits reports whether the node can host the task right now.
func (n *Node) Fits(t *Task) bool {
	return n.Dev.Healthy() && n.cpuFree >= t.CPU && n.memFree >= t.MemBytes
}

// Cluster is the set of nodes.
type Cluster struct {
	eng   *sim.Engine
	Nodes []*Node

	// MigrationNetGBps is the state-transfer bandwidth (default 1 GB/s).
	MigrationNetGBps float64
	// MigrationFreeze is the fixed freeze/thaw downtime (default 500 ms).
	MigrationFreeze sim.Time

	completed int
}

// New creates a cluster on eng.
func New(eng *sim.Engine) *Cluster {
	return &Cluster{eng: eng, MigrationNetGBps: 1, MigrationFreeze: 500 * sim.Millisecond}
}

// AddNode wraps a device as a schedulable node.
func (c *Cluster) AddNode(name string, spec hw.Spec) *Node {
	n := &Node{
		Name:    name,
		Dev:     hw.NewDevice(c.eng, name, spec),
		eng:     c.eng,
		cpuFree: spec.Cores,
		memFree: spec.MemBytes,
		tasks:   make(map[*Task]struct{}),
	}
	c.Nodes = append(c.Nodes, n)
	return n
}

// Completed returns the number of finished tasks.
func (c *Cluster) Completed() int { return c.completed }

// Place starts (or resumes) t on node n.
func (c *Cluster) Place(t *Task, n *Node) error {
	if t.done {
		return fmt.Errorf("cluster: task %q already done", t.Name)
	}
	if t.node != nil {
		return fmt.Errorf("cluster: task %q already placed on %s", t.Name, t.node.Name)
	}
	if !n.Fits(t) {
		return fmt.Errorf("cluster: task %q does not fit node %s (cpu %d/%d, mem %d/%d)",
			t.Name, n.Name, t.CPU, n.cpuFree, t.MemBytes, n.memFree)
	}
	if t.remaining == 0 {
		t.remaining = t.Gops
	}
	if err := n.Dev.Acquire(t.CPU); err != nil {
		return err
	}
	n.cpuFree -= t.CPU
	n.memFree -= t.MemBytes
	n.tasks[t] = struct{}{}
	t.node = n
	t.started = c.eng.Now()
	span := n.Dev.ExecTime(t.remaining, t.CPU)
	if sec := sim.ToSeconds(span); sec > 0 {
		t.rate = t.remaining / sec
	} else {
		t.rate = 0
	}
	work := t.remaining
	t.exec = c.eng.Schedule(span, func() {
		t.EnergyJ += n.Dev.EnergyFor(work, t.CPU)
		c.release(t, n)
		t.remaining = 0
		t.done = true
		c.completed++
		if t.OnDone != nil {
			t.OnDone()
		}
	})
	return nil
}

// release frees the node resources held by t.
func (c *Cluster) release(t *Task, n *Node) {
	n.Dev.Release(t.CPU)
	n.cpuFree += t.CPU
	n.memFree += t.MemBytes
	delete(n.tasks, t)
	t.node = nil
}

// Migrate freezes t, transfers its state and resumes it on dst. The task
// makes no progress during the transfer (downtime = freeze + memory/net).
func (c *Cluster) Migrate(t *Task, dst *Node) error {
	if t.done {
		return fmt.Errorf("cluster: migrating finished task %q", t.Name)
	}
	src := t.node
	if src == nil {
		return fmt.Errorf("cluster: task %q is not running", t.Name)
	}
	if dst == src {
		return fmt.Errorf("cluster: task %q already on %s", t.Name, dst.Name)
	}
	if !dst.Fits(t) {
		return fmt.Errorf("cluster: task %q does not fit node %s", t.Name, dst.Name)
	}
	// Stop execution and account completed work + its energy.
	t.exec.Cancel()
	elapsed := sim.ToSeconds(c.eng.Now() - t.started)
	done := t.rate * elapsed
	if done > t.remaining {
		done = t.remaining
	}
	t.EnergyJ += src.Dev.EnergyFor(done, t.CPU)
	t.remaining -= done
	c.release(t, src)
	t.migrations++

	downtime := c.MigrationFreeze +
		sim.Seconds(float64(t.MemBytes)/(c.MigrationNetGBps*1e9))
	// Reserve destination resources immediately so concurrent decisions
	// see the claim.
	if err := dst.Dev.Acquire(t.CPU); err != nil {
		// Destination raced to full; fall back to the source node.
		return c.Place(t, src)
	}
	dst.Dev.Release(t.CPU) // actual hold happens in Place after downtime
	c.eng.Schedule(downtime, func() {
		if err := c.Place(t, dst); err != nil {
			// Last resort: try any node that fits.
			for _, n := range c.Nodes {
				if n.Fits(t) {
					if c.Place(t, n) == nil {
						return
					}
				}
			}
			// Task stays queued; a scheduler pass must rescue it.
		}
	})
	return nil
}

// TotalPower sums instantaneous node power.
func (c *Cluster) TotalPower() float64 {
	p := 0.0
	for _, n := range c.Nodes {
		p += n.Dev.Meter().Power()
	}
	return p
}

// TotalEnergy sums node meter energy (idle + dynamic).
func (c *Cluster) TotalEnergy() float64 {
	e := 0.0
	for _, n := range c.Nodes {
		e += n.Dev.Meter().Energy()
	}
	return e
}
