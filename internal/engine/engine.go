// Package engine implements the concurrent multi-job execution engine of
// the LEGaTO stack: a long-lived worker pool that runs many independent
// task graphs ("jobs") in parallel over one shared heterogeneous fleet.
// This is the managed-platform half of the paper's Fig. 2 — the task
// runtime below stays a single-clock scheduler, and this layer multiplexes
// many of them over the hardware:
//
//   - every job owns a private virtual clock (sim.Engine) and a private
//     mirror of the platform's devices, so its schedule and energy
//     accounting are isolated and deterministic;
//   - a Fleet ledger arbitrates the real device capacity between jobs
//     (taskrt.Admission), so the union of all placements never
//     oversubscribes any device;
//   - jobs are context-aware end to end: submission contexts carry
//     cancellation and per-job deadlines into the scheduler loop, and
//     Shutdown drains gracefully.
//
// Fleet-time accounting: the engine maintains one virtual "lane" per
// worker and charges each completed job's makespan to the least-loaded
// lane (greedy list scheduling, independent of which goroutine happened to
// execute the job). The session makespan is the maximum lane clock: with
// one worker this degenerates to serial submission (sum of job makespans);
// with a full-width pool independent jobs overlap and the session makespan
// approaches the slowest job. The overlap is an honest estimate of fleet
// occupancy whenever admission never stalled (Stats.AdmissionStalls = 0,
// i.e. the fleet really could host the concurrent jobs side by side);
// under contention it is a lower bound, and the stall counter says so.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"legato/internal/energy"
	"legato/internal/faults"
	"legato/internal/hw"
	"legato/internal/monitor"
	"legato/internal/obs"
	"legato/internal/power"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

// Typed submission errors, matchable with errors.Is.
var (
	// ErrShutdown is returned by Submit after Shutdown began.
	ErrShutdown = errors.New("engine: shut down")
	// ErrQueueFull is returned by Submit when the queue is at capacity.
	ErrQueueFull = errors.New("engine: queue full")
	// ErrAlreadySubmitted is returned by Submit for a non-Building job.
	ErrAlreadySubmitted = errors.New("engine: job already submitted")
)

// Config parametrises an Engine.
type Config struct {
	// Workers is the number of jobs executed concurrently (default 4).
	Workers int
	// QueueDepth bounds the submission queue (default 4096).
	QueueDepth int
	// Policy is the placement objective used by every job's scheduler.
	Policy taskrt.Policy
	// NewPlatform builds a job-local mirror of the platform on the job's
	// private clock. Mirrors must reproduce the same device IDs as Fleet.
	NewPlatform func(*sim.Engine) ([]*hw.Device, error)
	// Fleet lists the reference devices defining shared capacity. When
	// nil, a throwaway mirror from NewPlatform defines it.
	Fleet []*hw.Device
	// Registry receives per-job and per-device counters (optional).
	Registry *monitor.Registry
	// Bus receives typed runtime events from every job's lifecycle hooks
	// and the fault injector (optional). A nil bus costs nothing; a bus
	// with no listener costs one atomic load per would-be event.
	Bus *obs.Bus
	// Faults, when non-nil and enabled, drives an MTBF-based failure
	// process over the session: the sampled timeline is replayed on every
	// job's private clock, and the injector applies each global fault
	// (fleet capacity loss) exactly once.
	Faults *faults.Plan
	// RetryBudget is the default per-task failure attempt budget under
	// fault injection (default 3); Task.Retry overrides per task.
	RetryBudget int
	// RetryBackoff is the base re-placement backoff, doubled on every
	// consecutive failure (default 1ms of virtual time).
	RetryBackoff sim.Time
	// PowerCapW bounds the modelled fleet draw (static idle power of every
	// healthy device plus all granted dynamic task power) in watts; zero or
	// negative means uncapped. Placements that would breach the cap park on
	// the power ledger exactly like core-admission stalls.
	PowerCapW float64
	// Governor selects how the power ledger reshapes device operating
	// points under cap pressure (default power.RaceToIdle).
	Governor power.Kind
	// Hedge arms tail-tolerant execution on every job: a virtual-clock
	// watchdog flags executions exceeding Hedge.Multiplier × their cost-
	// model expectation and races a speculative replica on a different
	// device, admitted through the same core and watt ledgers.
	Hedge taskrt.HedgePolicy
	// DeadlineMode selects how missed task deadlines are handled (default
	// taskrt.DeadlineStrict: the job fails with ErrDeadlineExceeded).
	DeadlineMode taskrt.DeadlineMode
}

// State is a job's lifecycle phase.
type State int

const (
	// Building: tasks are still being submitted to the job.
	Building State = iota
	// Queued: submitted to the engine, waiting for a worker.
	Queued
	// Running: a worker is executing the job's graph.
	Running
	// Done: completed successfully; the result is available.
	Done
	// Failed: aborted with a non-context error.
	Failed
	// Cancelled: aborted by context cancellation or deadline.
	Cancelled
)

// String names the state.
func (s State) String() string {
	switch s {
	case Building:
		return "building"
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is one task graph scheduled by the engine.
type Job struct {
	ID   int
	Name string

	clock   *sim.Engine
	rt      *taskrt.Runtime
	devices []*hw.Device
	eng     *Engine

	mu       sync.Mutex
	state    State
	timeout  time.Duration
	ctx      context.Context
	cancel   context.CancelFunc
	result   *taskrt.Result
	err      error
	fleetPos sim.Time // fleet-clock position at which the job began
	done     chan struct{}
}

// Runtime exposes the job's private scheduler for task submission and
// hook registration. It must not be touched after Submit.
func (j *Job) Runtime() *taskrt.Runtime { return j.rt }

// Clock exposes the job's private virtual clock.
func (j *Job) Clock() *sim.Engine { return j.clock }

// Devices lists the job's platform mirror.
func (j *Job) Devices() []*hw.Device { return j.devices }

// SetTimeout sets a per-job wall-clock budget applied from the moment the
// job is submitted; zero means no deadline. Must be called before Submit.
func (j *Job) SetTimeout(d time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.timeout = d
}

// State reports the job's lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel aborts the job; a no-op before submission or after completion.
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes or ctx fires, and returns the job's
// result. A ctx abort leaves the job running; use Cancel to stop it.
// Completion wins over a simultaneously-fired ctx, so a result that exists
// is always returned — the caller never observes a ctx error for a job
// that already reached a terminal state.
func (j *Job) Wait(ctx context.Context) (*taskrt.Result, error) {
	select {
	case <-j.done:
	default:
		select {
		case <-j.done:
		case <-ctx.Done():
			// Re-check: if the job completed while we were racing with the
			// context, prefer the terminal state.
			select {
			case <-j.done:
			default:
				return nil, ctx.Err()
			}
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// FleetStart returns the fleet-clock position at which the job began
// occupying the fleet (valid once the job is terminal).
func (j *Job) FleetStart() sim.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fleetPos
}

func (j *Job) finish(res *taskrt.Result, err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = Done
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = Cancelled
	default:
		j.state = Failed
	}
	j.result, j.err = res, err
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	close(j.done)
}

// Stats summarises a session.
type Stats struct {
	JobsSubmitted, JobsCompleted, JobsFailed, JobsCancelled int
	// TasksCompleted counts task executions across all completed jobs.
	TasksCompleted int
	// EnergyJ sums dynamic task energy across all completed jobs.
	EnergyJ float64
	// PlatformEnergyJ adds the static (idle) energy of the surviving fleet
	// over the session makespan to EnergyJ — what the electricity meter
	// would read, not just the task increments.
	PlatformEnergyJ float64
	// AvgPowerW is PlatformEnergyJ over the session makespan.
	AvgPowerW float64
	// PowerCapW echoes the configured cap (0 = uncapped).
	PowerCapW float64
	// PeakDrawW is the high-water mark of the modelled fleet draw — the
	// peak-draw witness: never above PowerCapW when a cap is armed.
	PeakDrawW float64
	// PowerStalls counts placements refused by the watt budget.
	PowerStalls uint64
	// GovernorRescales counts DVFS operating-point changes made by the
	// governor under cap pressure.
	GovernorRescales uint64
	// TotalJobTime is the sum of job makespans — the fleet time serial
	// submission would need.
	TotalJobTime sim.Time
	// SessionMakespan is the fleet time the engine actually needed (max
	// worker fleet clock).
	SessionMakespan sim.Time
	// AdmissionStalls counts failed admission attempts (contention).
	AdmissionStalls uint64
	// TasksRetried counts task executions re-queued after a crash or a
	// detected corruption, across all jobs.
	TasksRetried int
	// TasksRestored counts completed tasks re-executed because a device
	// loss invalidated their un-checkpointed outputs.
	TasksRestored int
	// Checkpoints counts committed asynchronous job checkpoints.
	Checkpoints int
	// DevicesLost counts devices crashed by the failure process.
	DevicesLost int
	// StragglersDetected counts executions flagged by the tail watchdog.
	StragglersDetected int
	// HedgesLaunched counts speculative replicas started across all jobs.
	HedgesLaunched int
	// HedgesWon counts replicas that beat their straggling primary.
	HedgesWon int
	// HedgesDenied counts replica launches refused by availability or the
	// core/watt ledgers.
	HedgesDenied int
	// HedgeWastedJ is the energy burned by cancelled losing executions.
	HedgeWastedJ float64
	// DeadlineMisses counts tasks that passed their deadline.
	DeadlineMisses int
	// TasksShed counts tasks skipped by graceful degradation.
	TasksShed int
}

// Speedup is the throughput gain of the session over serial submission.
func (s Stats) Speedup() float64 {
	if s.SessionMakespan <= 0 {
		return 1
	}
	return float64(s.TotalJobTime) / float64(s.SessionMakespan)
}

// Engine is the long-lived multi-job engine.
type Engine struct {
	cfg      Config
	fleet    *Fleet
	power    *power.Ledger
	ref      []*hw.Device
	injector *faults.Injector // nil without a fault plan
	queue    chan *Job
	wg       sync.WaitGroup

	mu     sync.Mutex
	jobs   []*Job
	nextID int
	closed bool
	lanes  []sim.Time // per-slot fleet clocks (see package doc)
	stats  Stats
}

// New starts an engine with its worker pool. The caller must eventually
// call Shutdown to drain it.
func New(cfg Config) (*Engine, error) {
	if cfg.NewPlatform == nil {
		return nil, fmt.Errorf("engine: Config.NewPlatform is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	ref := cfg.Fleet
	if ref == nil {
		devs, err := cfg.NewPlatform(sim.NewEngine())
		if err != nil {
			return nil, fmt.Errorf("engine: building reference platform: %w", err)
		}
		ref = devs
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	ledger := power.NewLedger(energy.Watts(cfg.PowerCapW), ref, cfg.Governor)
	if ledger.Capped() && ledger.Cap() <= ledger.IdleWatts() {
		// The idle floor alone exhausts the budget: every placement would
		// park forever, rescuable only by cancellation.
		return nil, fmt.Errorf("engine: power cap %v W leaves no headroom over the fleet's %v W idle floor",
			ledger.Cap(), ledger.IdleWatts())
	}
	e := &Engine{
		cfg:   cfg,
		fleet: NewFleet(ref),
		power: ledger,
		ref:   ref,
		queue: make(chan *Job, cfg.QueueDepth),
		lanes: make([]sim.Time, cfg.Workers),
	}
	e.fleet.AttachPower(e.power)
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		e.injector = faults.NewInjector(*cfg.Faults, e.fleet, ref, cfg.Registry)
	}
	e.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go e.worker(w)
	}
	return e, nil
}

// Fleet exposes the shared admission ledger.
func (e *Engine) Fleet() *Fleet { return e.fleet }

// Power exposes the shared watt ledger (always non-nil; uncapped when no
// PowerCapW was configured).
func (e *Engine) Power() *power.Ledger { return e.power }

// Workers reports the pool width.
func (e *Engine) Workers() int { return e.cfg.Workers }

// NewJob creates an empty job with a private clock and platform mirror,
// wired to the shared fleet. Submit tasks through Runtime(), then hand the
// job to Submit.
func (e *Engine) NewJob(name string) (*Job, error) {
	clock := sim.NewEngine()
	devs, err := e.cfg.NewPlatform(clock)
	if err != nil {
		return nil, fmt.Errorf("engine: building platform mirror for job %q: %w", name, err)
	}
	rt := taskrt.New(clock, devs, e.cfg.Policy)
	rt.SetAdmission(e.fleet)
	rt.SetPowerAdmission(e.power)
	rt.SetHedging(e.cfg.Hedge)
	rt.SetDeadlineMode(e.cfg.DeadlineMode)

	e.mu.Lock()
	e.nextID++
	j := &Job{
		ID: e.nextID, Name: name,
		clock: clock, rt: rt, devices: devs, eng: e,
		done: make(chan struct{}),
	}
	e.jobs = append(e.jobs, j)
	e.mu.Unlock()

	if reg := e.cfg.Registry; reg != nil {
		scope := "job/" + name
		rt.AddHooks(taskrt.Hooks{
			Queued: func(string) { reg.Add(scope, "tasks-queued", 1) },
			Started: func(taskrt.Record) {
				reg.Add(scope, "tasks-running", 1)
			},
			Finished: func(rec taskrt.Record) {
				if rec.Shed {
					// A shed task never started: no running decrement, no
					// device attribution.
					reg.Add(scope, "tasks-shed", 1)
					reg.Add("tail", "tasks-shed", 1)
					return
				}
				reg.Add(scope, "tasks-running", -1)
				reg.Add(scope, "tasks-completed", 1)
				reg.Add(scope, "energy-J", float64(rec.EnergyJ))
				dev := "device/" + rec.Device
				reg.Add(dev, "tasks-completed", 1)
				reg.Add(dev, "energy-J", float64(rec.EnergyJ))
				reg.Add(dev, "busy-s", sim.ToSeconds(rec.End-rec.Start))
			},
			Retried: func(_ string, _ int, reason string, _ sim.Time) {
				reg.Add(scope, "task-retries", 1)
				reg.Add("faults", "task-retries", 1)
				reg.Add("faults", "retry-"+reason, 1)
			},
			DeviceLost: func(deviceID string, revoked, restored int, _ sim.Time) {
				reg.Add(scope, "device-lost", 1)
				reg.Add(scope, "tasks-revoked", float64(revoked))
				reg.Add(scope, "tasks-restored", float64(restored))
				reg.Add("device/"+deviceID, "lost", 1)
				reg.Add("faults", "tasks-revoked", float64(revoked))
				reg.Add("faults", "tasks-restored", float64(restored))
			},
			Checkpointed: func(_ int, bytes int64, _, _ sim.Time) {
				reg.Add(scope, "checkpoints", 1)
				reg.Add(scope, "checkpoint-bytes", float64(bytes))
				reg.Add("faults", "checkpoints", 1)
			},
			Straggler: func(_, deviceID string, _, _ sim.Time) {
				reg.Add(scope, "stragglers-detected", 1)
				reg.Add("tail", "stragglers-detected", 1)
				reg.Add("device/"+deviceID, "stragglers", 1)
			},
			Hedged: func(_, _, to string, _ sim.Time) {
				reg.Add(scope, "hedges-launched", 1)
				reg.Add("tail", "hedges-launched", 1)
				reg.Add("device/"+to, "hedges-hosted", 1)
			},
			HedgeResolved: func(_, _ string, hedgeWon bool, wastedJ energy.Joules, _, _ sim.Time) {
				if hedgeWon {
					reg.Add(scope, "hedges-won", 1)
					reg.Add("tail", "hedges-won", 1)
				}
				reg.Add(scope, "hedge-wasted-J", float64(wastedJ))
				reg.Add("tail", "hedge-wasted-J", float64(wastedJ))
			},
			DeadlineMissed: func(_ string, _, _ sim.Time, _ bool) {
				reg.Add(scope, "deadline-misses", 1)
				reg.Add("tail", "deadline-misses", 1)
			},
		})
	}
	e.wireBus(j)
	e.wireFaults(j)
	return j, nil
}

// wireBus registers the hooks that publish the job's lifecycle to the
// session event bus, every event stamped with the job's virtual time and
// name. Hooks fire on the goroutine driving the job; the bus serializes
// publication, and with no listener each hook is one struct literal plus
// an atomic load.
func (e *Engine) wireBus(j *Job) {
	bus := e.cfg.Bus
	if bus == nil {
		return
	}
	job := j.Name
	clock := j.clock
	j.rt.AddHooks(taskrt.Hooks{
		Queued: func(name string) {
			bus.Publish(obs.Event{At: clock.Now(), Kind: obs.TaskQueued, Job: job, Task: name})
		},
		Placed: func(name, device string, cores int, at sim.Time) {
			bus.Publish(obs.Event{At: at, Kind: obs.TaskPlaced, Job: job, Task: name, Device: device, Value: float64(cores)})
		},
		Started: func(rec taskrt.Record) {
			bus.Publish(obs.Event{At: rec.Start, Kind: obs.TaskStarted, Job: job, Task: rec.Name, Device: rec.Device, Value: float64(rec.DrawW)})
		},
		Finished: func(rec taskrt.Record) {
			if rec.Shed {
				bus.Publish(obs.Event{At: rec.End, Kind: obs.TaskShed, Job: job, Task: rec.Name, Detail: "deadline"})
				return
			}
			detail := ""
			switch {
			case rec.Hedged && rec.Corrupted:
				detail = "hedged,corrupted"
			case rec.Hedged:
				detail = "hedged"
			case rec.Corrupted:
				detail = "corrupted"
			}
			bus.Publish(obs.Event{At: rec.End, Kind: obs.TaskCompleted, Job: job, Task: rec.Name, Device: rec.Device, Value: float64(rec.EnergyJ), Detail: detail})
		},
		Retried: func(name string, attempt int, reason string, at sim.Time) {
			bus.Publish(obs.Event{At: at, Kind: obs.TaskRetried, Job: job, Task: name, Value: float64(attempt), Detail: reason})
		},
		Failed: func(name, reason string, at sim.Time) {
			bus.Publish(obs.Event{At: at, Kind: obs.TaskFailed, Job: job, Task: name, Detail: reason})
		},
		DeviceLost: func(deviceID string, revoked, restored int, at sim.Time) {
			if !bus.Active() {
				return // skip the Sprintf nobody would read
			}
			bus.Publish(obs.Event{At: at, Kind: obs.DeviceLost, Job: job, Device: deviceID, Value: float64(revoked),
				Detail: fmt.Sprintf("revoked=%d restored=%d", revoked, restored)})
		},
		Checkpointed: func(tasks int, bytes int64, start, end sim.Time) {
			// Both sides of the interval surface at commit time: begin is
			// stamped with the capture instant, commit with the landing.
			bus.Publish(obs.Event{At: start, Kind: obs.CheckpointBegin, Job: job, Value: float64(bytes)})
			bus.Publish(obs.Event{At: end, Kind: obs.CheckpointCommit, Job: job, Value: float64(tasks)})
		},
		Straggler: func(name, device string, expected, elapsed sim.Time) {
			stretch := 0.0
			if expected > 0 {
				stretch = float64(elapsed) / float64(expected)
			}
			bus.Publish(obs.Event{At: clock.Now(), Kind: obs.HedgeArmed, Job: job, Task: name, Device: device, Value: stretch})
		},
		Hedged: func(name, from, to string, at sim.Time) {
			bus.Publish(obs.Event{At: at, Kind: obs.HedgeLaunched, Job: job, Task: name, Device: to, Detail: "from " + from})
		},
		HedgeResolved: func(name, winner string, hedgeWon bool, wastedJ energy.Joules, start, end sim.Time) {
			k := obs.HedgeCancelled
			if hedgeWon {
				k = obs.HedgeWon
			}
			bus.Publish(obs.Event{At: end, Kind: k, Job: job, Task: name, Device: winner, Value: float64(wastedJ)})
		},
		HedgePromoted: func(name, device string, at sim.Time) {
			bus.Publish(obs.Event{At: at, Kind: obs.HedgePromoted, Job: job, Task: name, Device: device})
		},
		DeadlineMissed: func(name string, deadline, at sim.Time, shed bool) {
			detail := "late"
			if shed {
				detail = "shed"
			}
			bus.Publish(obs.Event{At: at, Kind: obs.DeadlineMissed, Job: job, Task: name, Value: sim.ToSeconds(deadline), Detail: detail})
		},
		PowerAdmitted: func(name, device string, watts energy.Watts, at sim.Time) {
			bus.Publish(obs.Event{At: at, Kind: obs.PowerAdmitted, Job: job, Task: name, Device: device, Value: float64(watts)})
		},
		PowerRefused: func(name, device string, watts energy.Watts, at sim.Time) {
			bus.Publish(obs.Event{At: at, Kind: obs.PowerRefused, Job: job, Task: name, Device: device, Value: float64(watts)})
		},
		Rescaled: func(device string, from, to int, at sim.Time) {
			k := obs.GovernorThrottled
			if to < from {
				k = obs.GovernorRestored
			}
			bus.Publish(obs.Event{At: at, Kind: k, Job: job, Device: device, Value: float64(to)})
		},
	})
}

// wireFaults replays the injector's sampled timeline on the job's private
// clock. Each event fails (or degrades) the job's own platform mirror so
// local placement routes around the device, and calls into the injector,
// which applies the *global* fleet change exactly once across all jobs.
// A job created after a device already crashed starts with that mirror
// device failed — the graceful-degradation path: the session keeps
// admitting jobs that fit the surviving fleet.
func (e *Engine) wireFaults(j *Job) {
	if e.injector == nil {
		return
	}
	j.rt.SetRetryPolicy(e.cfg.RetryBudget, e.cfg.RetryBackoff)
	sampler := e.injector.Sampler(int64(j.ID))
	j.rt.SetCorruptor(func(rec taskrt.Record) bool {
		return sampler(rec.Class, power.SDCProbability(rec.Undervolt))
	})
	for _, ev := range e.injector.Events() {
		ev := ev
		switch ev.Kind {
		case faults.Crash:
			if e.injector.Lost(ev.Device) {
				for _, d := range j.devices {
					if d.ID == ev.Device {
						d.Fail()
					}
				}
				continue
			}
			rt := j.rt
			j.rt.ScheduleFault(ev.At, func() {
				if e.injector.Crash(ev.Device) {
					// First job across the event time: the global fault is
					// applied now, so it is published exactly once.
					e.publishFault(j, ev)
				}
				rt.FailDevice(ev.Device)
			})
		case faults.Degrade:
			rt := j.rt
			j.rt.ScheduleFault(ev.At, func() {
				// Apply the global capacity shrink exactly once, then the
				// silent latency stretch on this job's own mirror — every
				// job crossing the event time observes the slowdown, and
				// none of their schedulers can see it coming.
				if e.injector.Degrade(ev) {
					e.publishFault(j, ev)
				}
				if ev.Slowdown > 1 {
					rt.DegradeDevice(ev.Device, ev.Slowdown)
				}
			})
		}
	}
}

// publishFault emits the FaultInjected event for a globally-applied
// fault, attributed to the job whose clock first crossed the event time.
// Degrades carry the silent slowdown factor as the value.
func (e *Engine) publishFault(j *Job, ev faults.Event) {
	bus := e.cfg.Bus
	if !bus.Active() {
		return
	}
	val := 0.0
	if ev.Kind == faults.Degrade {
		val = ev.Slowdown
	}
	bus.Publish(obs.Event{At: ev.At, Kind: obs.FaultInjected, Job: j.Name, Device: ev.Device, Value: val, Detail: ev.Kind.String()})
}

// Faults exposes the fault injector (nil without a plan).
func (e *Engine) Faults() *faults.Injector { return e.injector }

// Submit queues a job for execution under ctx; the job additionally
// honours any per-job timeout set with SetTimeout.
func (e *Engine) Submit(ctx context.Context, j *Job) error {
	if j.eng != e {
		return fmt.Errorf("engine: job %q belongs to a different engine", j.Name)
	}
	j.mu.Lock()
	if j.state != Building {
		j.mu.Unlock()
		return fmt.Errorf("engine: job %q in state %s: %w", j.Name, j.state, ErrAlreadySubmitted)
	}
	if j.timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(ctx, j.timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(ctx)
	}
	j.state = Queued
	j.mu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		j.finish(nil, ErrShutdown)
		return ErrShutdown
	}
	e.stats.JobsSubmitted++
	select {
	case e.queue <- j:
		e.mu.Unlock()
		return nil
	default:
		e.stats.JobsSubmitted--
		e.mu.Unlock()
		j.finish(nil, ErrQueueFull)
		return fmt.Errorf("engine: queue holds %d jobs: %w", e.cfg.QueueDepth, ErrQueueFull)
	}
}

func (e *Engine) worker(w int) {
	defer e.wg.Done()
	_ = w
	for j := range e.queue {
		e.runJob(j)
	}
}

func (e *Engine) runJob(j *Job) {
	j.mu.Lock()
	ctx := j.ctx
	if err := ctx.Err(); err != nil {
		j.mu.Unlock()
		e.account(j, nil, err)
		return
	}
	j.state = Running
	j.mu.Unlock()

	res, err := j.rt.RunContext(ctx)
	e.account(j, res, err)
}

// account charges the job's makespan to the least-loaded fleet lane and
// updates session statistics, then completes the job.
func (e *Engine) account(j *Job, res *taskrt.Result, err error) {
	e.mu.Lock()
	lane := 0
	for i, c := range e.lanes {
		if c < e.lanes[lane] {
			lane = i
		}
	}
	start := e.lanes[lane]
	if res != nil {
		e.lanes[lane] += res.Makespan
		e.stats.TotalJobTime += res.Makespan
		e.stats.TasksCompleted += len(res.Records)
		e.stats.EnergyJ += float64(res.EnergyJ)
		e.stats.TasksRetried += res.Retries
		e.stats.TasksRestored += res.Restores
		e.stats.Checkpoints += res.Checkpoints
		e.stats.StragglersDetected += res.Stragglers
		e.stats.HedgesLaunched += res.HedgesLaunched
		e.stats.HedgesWon += res.HedgesWon
		e.stats.HedgesDenied += res.HedgesDenied
		e.stats.HedgeWastedJ += float64(res.HedgeWastedJ)
		e.stats.DeadlineMisses += res.DeadlineMisses
		e.stats.TasksShed += res.TasksShed
	}
	switch {
	case err == nil:
		e.stats.JobsCompleted++
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.stats.JobsCancelled++
	default:
		e.stats.JobsFailed++
	}
	e.mu.Unlock()

	j.mu.Lock()
	j.fleetPos = start
	j.mu.Unlock()

	if reg := e.cfg.Registry; reg != nil {
		scope := "job/" + j.Name
		if res != nil {
			reg.Set(scope, "makespan-s", sim.ToSeconds(res.Makespan))
			reg.Set(scope, "energy-total-J", float64(res.EnergyJ))
		}
		reg.Set(scope, "fleet-start-s", sim.ToSeconds(start))
		reg.Set("power", "draw-W", float64(e.power.Draw()))
		reg.Set("power", "peak-draw-W", float64(e.power.PeakDraw()))
		reg.Set("power", "idle-W", float64(e.power.IdleWatts()))
		reg.Set("power", "stalls", float64(e.power.Stalls()))
		reg.Set("power", "governor-rescales", float64(e.power.Rescales()))
		if e.power.Capped() {
			reg.Set("power", "cap-W", float64(e.power.Cap()))
		}
		for _, d := range e.ref {
			reg.Set("device/"+d.ID, "draw-W", float64(e.power.DrawOf(d.ID)))
		}
	}
	j.finish(res, err)
}

// Stats snapshots the session counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	for _, c := range e.lanes {
		if c > s.SessionMakespan {
			s.SessionMakespan = c
		}
	}
	s.AdmissionStalls = e.fleet.Stalls()
	if e.injector != nil {
		s.DevicesLost = e.injector.Crashes()
	}
	if e.power.Capped() {
		s.PowerCapW = float64(e.power.Cap())
	}
	s.PeakDrawW = float64(e.power.PeakDraw())
	s.PowerStalls = e.power.Stalls()
	s.GovernorRescales = e.power.Rescales()
	sec := sim.ToSeconds(s.SessionMakespan)
	// The meter reads idle floor + committed task energy + energy burned by
	// cancelled hedge losers: speculation is not free, and the E14 gate
	// bounds exactly this term.
	s.PlatformEnergyJ = float64(e.power.IdleWatts())*sec + s.EnergyJ + s.HedgeWastedJ
	if sec > 0 {
		s.AvgPowerW = s.PlatformEnergyJ / sec
	}
	return s
}

// Jobs snapshots all jobs ever created on this engine.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Job(nil), e.jobs...)
}

// Shutdown stops accepting jobs and drains the pool: already-queued jobs
// still run. If ctx fires first, every outstanding job is cancelled and
// Shutdown returns the context error once the workers exit.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		for _, j := range e.Jobs() {
			j.Cancel()
		}
		<-drained
		return ctx.Err()
	}
}
