// Package nn implements a small quantised neural-network inference engine
// whose weights live in FPGA BRAM, reproducing the ML-resilience thread of
// paper Sec. III-C (and ref [8]): "due to inherent resilience of ML
// models, aggressive undervolting can lead to significant power saving
// even below the voltage guardband region".
//
// The network is a two-layer MLP trained in float64 on a synthetic
// classification task, then quantised to int8. For the undervolting
// experiment the quantised weights are stored in a modelled FPGA's BRAM
// and read back through the faulty-memory path, so low-voltage bit flips
// corrupt the deployed model exactly as they would on silicon.
package nn

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"legato/internal/fpga"
)

// MLP is a float-trained two-layer perceptron: in → hidden (ReLU) → out.
type MLP struct {
	In, Hidden, Out int
	W1              [][]float64 // [hidden][in]
	B1              []float64
	W2              [][]float64 // [out][hidden]
	B2              []float64
}

// NewMLP allocates a network with small random weights.
func NewMLP(in, hidden, out int, seed int64) *MLP {
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{In: in, Hidden: hidden, Out: out}
	m.W1 = randMat(rng, hidden, in, math.Sqrt(2.0/float64(in)))
	m.B1 = make([]float64, hidden)
	m.W2 = randMat(rng, out, hidden, math.Sqrt(2.0/float64(hidden)))
	m.B2 = make([]float64, out)
	return m
}

func randMat(rng *rand.Rand, rows, cols int, scale float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64() * scale
		}
	}
	return m
}

// Forward returns the output logits and the hidden activations.
func (m *MLP) Forward(x []float64) (logits, hidden []float64) {
	hidden = make([]float64, m.Hidden)
	for h := 0; h < m.Hidden; h++ {
		s := m.B1[h]
		for i := 0; i < m.In; i++ {
			s += m.W1[h][i] * x[i]
		}
		if s > 0 {
			hidden[h] = s
		}
	}
	logits = make([]float64, m.Out)
	for o := 0; o < m.Out; o++ {
		s := m.B2[o]
		for h := 0; h < m.Hidden; h++ {
			s += m.W2[o][h] * hidden[h]
		}
		logits[o] = s
	}
	return logits, hidden
}

// Predict returns the argmax class.
func (m *MLP) Predict(x []float64) int {
	logits, _ := m.Forward(x)
	return argmax(logits)
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Train runs plain SGD with softmax cross-entropy.
func (m *MLP) Train(X [][]float64, y []int, epochs int, lr float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, k := range idx {
			x, label := X[k], y[k]
			logits, hidden := m.Forward(x)
			probs := softmax(logits)
			// Output-layer gradient.
			dOut := make([]float64, m.Out)
			for o := range dOut {
				dOut[o] = probs[o]
				if o == label {
					dOut[o] -= 1
				}
			}
			// Hidden gradient.
			dHid := make([]float64, m.Hidden)
			for h := 0; h < m.Hidden; h++ {
				if hidden[h] <= 0 {
					continue
				}
				s := 0.0
				for o := 0; o < m.Out; o++ {
					s += dOut[o] * m.W2[o][h]
				}
				dHid[h] = s
			}
			for o := 0; o < m.Out; o++ {
				m.B2[o] -= lr * dOut[o]
				for h := 0; h < m.Hidden; h++ {
					m.W2[o][h] -= lr * dOut[o] * hidden[h]
				}
			}
			for h := 0; h < m.Hidden; h++ {
				if dHid[h] == 0 {
					continue
				}
				m.B1[h] -= lr * dHid[h]
				for i := 0; i < m.In; i++ {
					m.W1[h][i] -= lr * dHid[h] * x[i]
				}
			}
		}
	}
}

func softmax(logits []float64) []float64 {
	max := logits[argmax(logits)]
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Accuracy scores the network on a labelled set.
func (m *MLP) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	ok := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

// Blobs generates the synthetic classification task: `classes` Gaussian
// clusters in `dim` dimensions.
func Blobs(n, dim, classes int, spread float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.NormFloat64() * 3
		}
	}
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % classes
		y[i] = c
		X[i] = make([]float64, dim)
		for d := range X[i] {
			X[i][d] = centers[c][d] + rng.NormFloat64()*spread
		}
	}
	return X, y
}

// Quantised is the int8 deployment format: weights as int8 with per-layer
// scales, biases as float (biases are tiny and typically kept in flops).
type Quantised struct {
	In, Hidden, Out int
	Scale1, Scale2  float64
	W1              []int8 // row-major [hidden][in]
	W2              []int8 // row-major [out][hidden]
	B1, B2          []float64
}

// Quantise converts the float model to int8 with symmetric per-layer
// scaling.
func (m *MLP) Quantise() *Quantised {
	q := &Quantised{In: m.In, Hidden: m.Hidden, Out: m.Out,
		B1: append([]float64(nil), m.B1...), B2: append([]float64(nil), m.B2...)}
	q.Scale1, q.W1 = quantLayer(m.W1)
	q.Scale2, q.W2 = quantLayer(m.W2)
	return q
}

func quantLayer(w [][]float64) (float64, []int8) {
	max := 0.0
	for _, row := range w {
		for _, v := range row {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	if max == 0 {
		max = 1
	}
	scale := max / 127
	out := make([]int8, 0, len(w)*len(w[0]))
	for _, row := range w {
		for _, v := range row {
			qv := math.Round(v / scale)
			if qv > 127 {
				qv = 127
			}
			if qv < -127 {
				qv = -127
			}
			out = append(out, int8(qv))
		}
	}
	return scale, out
}

// Predict runs int8 inference.
func (q *Quantised) Predict(x []float64) int {
	hidden := make([]float64, q.Hidden)
	for h := 0; h < q.Hidden; h++ {
		s := q.B1[h]
		for i := 0; i < q.In; i++ {
			s += float64(q.W1[h*q.In+i]) * q.Scale1 * x[i]
		}
		if s > 0 {
			hidden[h] = s
		}
	}
	logits := make([]float64, q.Out)
	for o := 0; o < q.Out; o++ {
		s := q.B2[o]
		for h := 0; h < q.Hidden; h++ {
			s += float64(q.W2[o*q.Hidden+h]) * q.Scale2 * hidden[h]
		}
		logits[o] = s
	}
	return argmax(logits)
}

// Accuracy scores the quantised network.
func (q *Quantised) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	ok := 0
	for i, x := range X {
		if q.Predict(x) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

// weightBytes returns the serialised int8 weight arrays (the BRAM image).
func (q *Quantised) weightBytes() []byte {
	out := make([]byte, 0, len(q.W1)+len(q.W2)+8)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(q.W1)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(q.W2)))
	out = append(out, hdr[:]...)
	for _, v := range q.W1 {
		out = append(out, byte(v))
	}
	for _, v := range q.W2 {
		out = append(out, byte(v))
	}
	return out
}

// StoreToBRAM writes the weight image into the board at offset 0.
func (q *Quantised) StoreToBRAM(b *fpga.Board) error {
	img := q.weightBytes()
	if len(img) > b.MemBytes() {
		return fmt.Errorf("nn: weight image %d bytes exceeds BRAM %d", len(img), b.MemBytes())
	}
	return b.Write(0, img)
}

// LoadFromBRAM reads the weights back through the (possibly faulty) BRAM
// path, returning a deployed model whose weights include any bit flips
// the current voltage induces.
func LoadFromBRAM(template *Quantised, b *fpga.Board) (*Quantised, error) {
	n1, n2 := len(template.W1), len(template.W2)
	img := make([]byte, 8+n1+n2)
	if err := b.Read(0, img); err != nil {
		return nil, err
	}
	got1 := binary.LittleEndian.Uint32(img[0:])
	got2 := binary.LittleEndian.Uint32(img[4:])
	// Header corruption is tolerated: sizes come from the template (a real
	// accelerator knows its topology from the bitstream, not from BRAM).
	_ = got1
	_ = got2
	out := &Quantised{
		In: template.In, Hidden: template.Hidden, Out: template.Out,
		Scale1: template.Scale1, Scale2: template.Scale2,
		B1: append([]float64(nil), template.B1...),
		B2: append([]float64(nil), template.B2...),
		W1: make([]int8, n1), W2: make([]int8, n2),
	}
	for i := 0; i < n1; i++ {
		out.W1[i] = int8(img[8+i])
	}
	for i := 0; i < n2; i++ {
		out.W2[i] = int8(img[8+n1+i])
	}
	return out, nil
}
