// Power cap: a LEGaTO session running a burst of jobs under a fleet-wide
// power budget. The watt ledger admits a placement only when the modelled
// fleet draw — idle floor plus every granted dynamic draw — fits under the
// cap; the pack-and-throttle governor steps devices down their DVFS
// ladders under pressure and back up when it relaxes. One task chain runs
// sub-guardband (undervolted) to trade a tiny silent-data-corruption risk
// for a quadratic dynamic-energy saving, exactly the knob of the paper's
// FPGA undervolting study.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"legato"
	"legato/internal/power"
	"legato/internal/sim"
)

// buildMixedLoad fills a job with four parallel wide chains (racing onto
// the big devices, together drawing more than the cap leaves above the
// idle floor) and one narrow undervolted chain that sips power
// sub-guardband.
func buildMixedLoad(job *legato.Job) error {
	for c := 0; c < 4; c++ {
		prev := job.Data(fmt.Sprintf("wide%d/in", c), 4096)
		for stage := 0; stage < 4; stage++ {
			next := job.Data(fmt.Sprintf("wide%d/s%d", c, stage), 4096)
			if err := job.Task(fmt.Sprintf("wide%d/stage%d", c, stage)).
				Gops(120).Cores(16).In(prev).Out(next).Submit(); err != nil {
				return err
			}
			prev = next
		}
	}
	prev := job.Data("uv/in", 512)
	for stage := 0; stage < 4; stage++ {
		next := job.Data(fmt.Sprintf("uv/s%d", stage), 512)
		if err := job.Task(fmt.Sprintf("uv/stage%d", stage)).
			Gops(20).Cores(2).Undervolt(2).In(prev).Out(next).Submit(); err != nil {
			return err
		}
		prev = next
	}
	return nil
}

func main() {
	log.SetFlags(0)

	// Cap the fleet at 45% of its combined peak draw — tight enough that a
	// MinTime burst racing onto the hottest devices has to be reined in.
	probe, err := legato.NewSystem(legato.WithPlatform(legato.CloudPlatform))
	if err != nil {
		log.Fatal(err)
	}
	capW := 0.45 * float64(power.FleetPeakWatts(probe.Devices()))
	if err := probe.Close(context.Background()); err != nil {
		log.Fatal(err)
	}

	sys, err := legato.NewSystem(
		legato.WithPlatform(legato.CloudPlatform),
		legato.WithPolicy(legato.MinTime),
		legato.WithWorkers(8),
		legato.WithPowerCap(capW),
		legato.WithGovernor(legato.PackAndThrottle),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer sys.Close(ctx)

	var jobs []*legato.Job
	for n := 0; n < 6; n++ {
		job, err := sys.NewJob(fmt.Sprintf("burst-%d", n))
		if err != nil {
			log.Fatal(err)
		}
		if err := buildMixedLoad(job); err != nil {
			log.Fatal(err)
		}
		if err := job.Start(ctx); err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		rep, err := job.Wait(ctx)
		if err != nil {
			log.Fatalf("%s: %v", job.Name(), err)
		}
		fmt.Printf("%-8s done: makespan %.3f s, task energy %6.2f J, EDP %7.2f J·s\n",
			job.Name(), sim.ToSeconds(rep.Makespan), rep.TaskEnergyJ, rep.EDPJs)
	}

	st := sys.Stats()
	fmt.Printf("\ncap %.0f W on a %.0f W-peak fleet\n",
		st.PowerCapW, float64(power.FleetPeakWatts(sys.Devices())))
	fmt.Printf("peak draw    %.1f W (witness: never above the cap)\n", st.PeakDrawW)
	fmt.Printf("avg power    %.1f W averaged over the jobs' overlapped virtual\n"+
		"             timelines; the cap binds instantaneous admissions\n", st.AvgPowerW)
	fmt.Printf("platform     %.1f J (idle floor + dynamic)\n", st.PlatformEnergyJ)
	fmt.Printf("governor     %d placements parked, %d DVFS rescales\n",
		st.PowerStalls, st.GovernorRescales)
	if st.PeakDrawW > st.PowerCapW {
		log.Fatal("power-cap witness violated")
	}
}
