package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"legato/internal/hw"
	"legato/internal/monitor"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

// testPlatform mirrors a two-device platform: an 8-core CPU and a 4-region
// FPGA, enough to exercise placement and admission.
func testPlatform(se *sim.Engine) ([]*hw.Device, error) {
	cpu := hw.Spec{Name: "cpu", Class: hw.CPUx86, Cores: 8, GOPS: 80, IdleWatts: 10, PeakWatts: 60}
	fpga := hw.Spec{Name: "fpga", Class: hw.FPGA, Cores: 4, GOPS: 120, IdleWatts: 5, PeakWatts: 25}
	return []*hw.Device{hw.NewDevice(se, "dev/cpu", cpu), hw.NewDevice(se, "dev/fpga", fpga)}, nil
}

func newTestEngine(t testing.TB, workers int) *Engine {
	t.Helper()
	e, err := New(Config{Workers: workers, Policy: taskrt.MinTime, NewPlatform: testPlatform,
		Registry: monitor.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Shutdown(context.Background()) })
	return e
}

// chainJob builds a job of `depth` dependent tasks of `cores` width each.
func chainJob(t testing.TB, e *Engine, name string, depth, cores int, fn func()) *Job {
	t.Helper()
	j, err := e.NewJob(name)
	if err != nil {
		t.Fatal(err)
	}
	rt := j.Runtime()
	prev := rt.Data(name+"/d0", 64)
	for i := 0; i < depth; i++ {
		next := rt.Data(fmt.Sprintf("%s/d%d", name, i+1), 64)
		task := taskrt.Task{Name: fmt.Sprintf("%s/t%d", name, i), Gops: 20, Cores: cores,
			In: []*taskrt.Data{prev}, Out: []*taskrt.Data{next}}
		if i == depth/2 {
			task.Fn = fn
		}
		if err := rt.Submit(task); err != nil {
			t.Fatal(err)
		}
		prev = next
	}
	return j
}

func TestFleetLedger(t *testing.T) {
	se := sim.NewEngine()
	devs, _ := testPlatform(se)
	f := NewFleet(devs)
	if !f.TryAcquire("dev/cpu", 8) {
		t.Fatal("full acquire refused")
	}
	if f.TryAcquire("dev/cpu", 1) {
		t.Fatal("oversubscription allowed")
	}
	if f.Stalls() != 1 {
		t.Fatalf("stalls = %d, want 1", f.Stalls())
	}
	ch := f.Changed()
	select {
	case <-ch:
		t.Fatal("Changed closed before any release")
	default:
	}
	f.Release("dev/cpu", 8)
	select {
	case <-ch:
	default:
		t.Fatal("release did not signal Changed")
	}
	if f.Peak("dev/cpu") != 8 || f.InUse("dev/cpu") != 0 {
		t.Fatalf("peak=%d inuse=%d", f.Peak("dev/cpu"), f.InUse("dev/cpu"))
	}
	if f.TryAcquire("dev/ghost", 1) {
		t.Fatal("unknown device admitted")
	}
}

func TestConcurrentJobsNeverOversubscribe(t *testing.T) {
	e := newTestEngine(t, 8)
	ctx := context.Background()
	var jobs []*Job
	for i := 0; i < 12; i++ {
		j := chainJob(t, e, fmt.Sprintf("job%d", i), 6, 3, nil)
		jobs = append(jobs, j)
		if err := e.Submit(ctx, j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s: %v", j.Name, err)
		}
	}
	for _, id := range []string{"dev/cpu", "dev/fpga"} {
		if e.Fleet().Peak(id) > e.Fleet().Capacity(id) {
			t.Fatalf("device %s oversubscribed: peak %d > cap %d",
				id, e.Fleet().Peak(id), e.Fleet().Capacity(id))
		}
		if e.Fleet().InUse(id) != 0 {
			t.Fatalf("device %s stranded capacity: %d in use", id, e.Fleet().InUse(id))
		}
	}
	st := e.Stats()
	if st.JobsCompleted != 12 || st.TasksCompleted != 12*6 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestContentionSerializes forces every job through a single 4-core-wide
// bottleneck: tasks demand the FPGA's full width, so admission must
// serialise them and every parked job must still finish.
func TestContentionSerializes(t *testing.T) {
	e := newTestEngine(t, 6)
	ctx := context.Background()
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := e.NewJob(fmt.Sprintf("narrow%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			if err := j.Runtime().Submit(taskrt.Task{
				Name: fmt.Sprintf("n%d", k), Gops: 30, Cores: 4,
				Targets: []hw.Class{hw.FPGA},
			}); err != nil {
				t.Fatal(err)
			}
		}
		jobs = append(jobs, j)
		if err := e.Submit(ctx, j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s: %v", j.Name, err)
		}
	}
	if peak, cap := e.Fleet().Peak("dev/fpga"), e.Fleet().Capacity("dev/fpga"); peak > cap {
		t.Fatalf("fpga oversubscribed: %d > %d", peak, cap)
	}
}

func TestCancelMidRun(t *testing.T) {
	e := newTestEngine(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The middle task of the chain cancels the job's own context.
	j := chainJob(t, e, "doomed", 9, 1, cancel)
	if err := e.Submit(ctx, j); err != nil {
		t.Fatal(err)
	}
	_, err := j.Wait(context.Background())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if j.State() != Cancelled {
		t.Fatalf("state = %v, want Cancelled", j.State())
	}
	// The aborted job must not strand fleet capacity.
	for _, id := range []string{"dev/cpu", "dev/fpga"} {
		if e.Fleet().InUse(id) != 0 {
			t.Fatalf("device %s stranded: %d cores held", id, e.Fleet().InUse(id))
		}
	}
}

func TestPerJobTimeout(t *testing.T) {
	e := newTestEngine(t, 1)
	j := chainJob(t, e, "deadline", 4, 1, nil)
	j.SetTimeout(time.Nanosecond)
	if err := e.Submit(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if j.State() != Cancelled {
		t.Fatalf("state = %v", j.State())
	}
}

func TestShutdownDrains(t *testing.T) {
	e, err := New(Config{Workers: 2, Policy: taskrt.MinTime, NewPlatform: testPlatform})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j := chainJob(t, e, fmt.Sprintf("drain%d", i), 4, 1, nil)
		jobs = append(jobs, j)
		if err := e.Submit(ctx, j); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.State() != Done {
			t.Fatalf("job %s not drained: %v", j.Name, j.State())
		}
	}
	late := chainJob(t, e, "late", 1, 1, nil)
	if err := e.Submit(ctx, late); err == nil {
		t.Fatal("submit after shutdown accepted")
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	e := newTestEngine(t, 4)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			j := chainJob(t, e, fmt.Sprintf("conc%d", g), 5, 1, nil)
			if err := e.Submit(ctx, j); err != nil {
				errs <- err
				return
			}
			if _, err := j.Wait(ctx); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := e.Stats(); st.JobsCompleted != 8 {
		t.Fatalf("completed %d, want 8", st.JobsCompleted)
	}
}

// TestSerialVsConcurrentFleetTime pins down the throughput accounting: one
// worker degenerates to serial submission (session makespan = sum of job
// makespans), a full-width pool overlaps independent jobs on the fleet.
func TestSerialVsConcurrentFleetTime(t *testing.T) {
	run := func(workers int) Stats {
		e := newTestEngine(t, workers)
		ctx := context.Background()
		var jobs []*Job
		for i := 0; i < 4; i++ {
			j := chainJob(t, e, fmt.Sprintf("w%d-job%d", workers, i), 5, 1, nil)
			jobs = append(jobs, j)
			if err := e.Submit(ctx, j); err != nil {
				t.Fatal(err)
			}
		}
		for _, j := range jobs {
			if _, err := j.Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
		return e.Stats()
	}
	serial := run(1)
	conc := run(4)
	if serial.SessionMakespan != serial.TotalJobTime {
		t.Fatalf("serial session %v != total %v", serial.SessionMakespan, serial.TotalJobTime)
	}
	if conc.TotalJobTime != serial.TotalJobTime {
		t.Fatalf("job work differs: %v vs %v", conc.TotalJobTime, serial.TotalJobTime)
	}
	if sp := conc.Speedup(); sp < 2 {
		t.Fatalf("concurrent speedup %.2fx, want >= 2x", sp)
	}
}
