// Package trace provides the execution-tracing facility of the LEGaTO
// runtime layer: spans over virtual time (task executions, checkpoints,
// migrations), named counters, and a Paraver-flavoured text export —
// the trace format of the BSC tool family that accompanies OmpSs.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"legato/internal/sim"
)

// Span is one traced interval.
type Span struct {
	Name     string
	Category string
	Resource string // device/node the span ran on
	Start    sim.Time
	End      sim.Time
	// Value carries a sampled measurement for telemetry spans (e.g. the
	// fleet draw in watts for "power" samples); zero for plain intervals.
	Value float64
}

// Duration returns the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Tracer records spans and counters against an engine's clock. A Tracer is
// safe for concurrent use, so per-job traces can merge into a session
// trace while other jobs are still recording.
type Tracer struct {
	mu       sync.Mutex
	eng      *sim.Engine
	spans    []Span
	open     map[int]*Span
	nextID   int
	counters map[string]float64
}

// New creates a tracer.
func New(eng *sim.Engine) *Tracer {
	return &Tracer{eng: eng, open: make(map[int]*Span), counters: make(map[string]float64)}
}

// Begin opens a span and returns its handle.
func (t *Tracer) Begin(name, category, resource string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.open[t.nextID] = &Span{
		Name: name, Category: category, Resource: resource, Start: t.eng.Now(),
	}
	return t.nextID
}

// End closes a span by handle; unknown handles are ignored.
func (t *Tracer) End(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.open[id]
	if !ok {
		return
	}
	delete(t.open, id)
	s.End = t.eng.Now()
	t.spans = append(t.spans, *s)
}

// Count adds delta to a named counter.
func (t *Tracer) Count(name string, delta float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters[name] += delta
}

// Counter returns a counter's value.
func (t *Tracer) Counter(name string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Spans returns a copy of the closed spans in completion order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Add records an already-closed span with explicit timestamps — the path
// used when task records are replayed into a trace after the fact (a job
// worker observing taskrt completion records).
func (t *Tracer) Add(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, s)
}

// Counters returns a copy of every named counter.
func (t *Tracer) Counters() map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// Merge folds another tracer's closed spans and counters into t. Jobs
// record against their own virtual clock; merging preserves their
// job-relative timestamps, so merged spans are comparable per resource,
// not across jobs.
func (t *Tracer) Merge(other *Tracer) {
	if other == nil || other == t {
		return
	}
	other.mu.Lock()
	spans := append([]Span(nil), other.spans...)
	counters := make(map[string]float64, len(other.counters))
	for k, v := range other.counters {
		counters[k] = v
	}
	other.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, spans...)
	for k, v := range counters {
		t.counters[k] += v
	}
}

// Series extracts the sampled values of a telemetry category as (seconds,
// value) points sorted by time — the shape internal/plot charts directly,
// e.g. the fleet draw-vs-time curve from "power" spans.
func (t *Tracer) Series(category string) (xs, ys []float64) {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		if s.Category != category {
			continue
		}
		xs = append(xs, sim.ToSeconds(s.Start))
		ys = append(ys, s.Value)
	}
	return xs, ys
}

// ByCategory returns total time per category.
func (t *Tracer) ByCategory() map[string]sim.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]sim.Time)
	for _, s := range t.spans {
		out[s.Category] += s.Duration()
	}
	return out
}

// ExportParaver renders the spans as Paraver-like state records:
// kind:resource:applTask:start:end:name.
func (t *Tracer) ExportParaver() string {
	return ParaverText(t.Spans(), t.Counters())
}

// ParaverText renders already-extracted spans and counters in the same
// Paraver-like text format as Tracer.ExportParaver — the path used when
// the data comes from an exported session dump rather than a live
// tracer.
func ParaverText(spans []Span, counters map[string]float64) string {
	var sb strings.Builder
	sb.WriteString("#Paraver (legato trace)\n")
	for i, s := range spans {
		fmt.Fprintf(&sb, "1:%s:%d:%d:%d:%s:%s\n",
			s.Resource, i+1, int64(s.Start), int64(s.End), s.Category, s.Name)
	}
	// Counters as event records.
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "2:%s:%g\n", n, counters[n])
	}
	return sb.String()
}

// Summary renders per-category totals.
func (t *Tracer) Summary() string {
	cats := t.ByCategory()
	names := make([]string, 0, len(cats))
	for n := range cats {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %14s\n", "category", "total time")
	for _, n := range names {
		fmt.Fprintf(&sb, "%-20s %14v\n", n, cats[n])
	}
	return sb.String()
}
