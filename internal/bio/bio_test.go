package bio

import (
	"strings"
	"testing"

	"legato/internal/hw"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

func TestKnownAlignment(t *testing.T) {
	// Classic textbook case: TGTTACGG vs GGTTGACTA with +3/-3/-2 has
	// optimal local alignment GTT-AC / GTTGAC, score 13.
	s := Scoring{Match: 3, Mismatch: -3, Gap: -2}
	al := SmithWaterman("TGTTACGG", "GGTTGACTA", s)
	if al.Score != 13 {
		t.Fatalf("score: got %d want 13", al.Score)
	}
	if al.AlignedA != "GTT-AC" || al.AlignedB != "GTTGAC" {
		t.Fatalf("alignment: %q / %q", al.AlignedA, al.AlignedB)
	}
}

func TestIdenticalSequences(t *testing.T) {
	s := DefaultScoring()
	al := SmithWaterman("ACGTACGT", "ACGTACGT", s)
	if al.Score != 16 { // 8 matches × 2
		t.Fatalf("self-alignment score: %d", al.Score)
	}
	if al.AlignedA != "ACGTACGT" || strings.Contains(al.AlignedA, "-") {
		t.Fatalf("self-alignment: %q", al.AlignedA)
	}
}

func TestNoCommonSubsequence(t *testing.T) {
	s := DefaultScoring()
	al := SmithWaterman("AAAA", "TTTT", s)
	if al.Score != 0 {
		t.Fatalf("disjoint alphabet score: %d", al.Score)
	}
}

func TestEmptySequence(t *testing.T) {
	al := SmithWaterman("", "ACGT", DefaultScoring())
	if al.Score != 0 || al.AlignedA != "" {
		t.Fatalf("empty-sequence alignment: %+v", al)
	}
}

func devices(eng *sim.Engine) []*hw.Device {
	return []*hw.Device{
		hw.NewDevice(eng, "cpu0", hw.XeonD()),
		hw.NewDevice(eng, "gpu0", hw.JetsonTX2()),
	}
}

func TestWavefrontMatchesSerial(t *testing.T) {
	a := RandomDNA(200, 1)
	b := RandomDNA(180, 2)
	s := DefaultScoring()
	ref := SmithWaterman(a, b, s)

	eng := sim.NewEngine()
	res, err := SmithWatermanWavefront(eng, devices(eng), taskrt.MinTime, a, b, s, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alignment.Score != ref.Score {
		t.Fatalf("wavefront score %d != serial %d", res.Alignment.Score, ref.Score)
	}
	if res.Alignment.AlignedA != ref.AlignedA || res.Alignment.AlignedB != ref.AlignedB {
		t.Fatalf("wavefront alignment differs:\n%q/%q\nvs\n%q/%q",
			res.Alignment.AlignedA, res.Alignment.AlignedB, ref.AlignedA, ref.AlignedB)
	}
	wantTiles := ((200 + 31) / 32) * ((180 + 31) / 32)
	if res.Tiles != wantTiles {
		t.Fatalf("tiles: got %d want %d", res.Tiles, wantTiles)
	}
	if res.Makespan <= 0 || res.EnergyJ <= 0 {
		t.Fatal("no platform cost accounted")
	}
}

func TestWavefrontTileValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := SmithWatermanWavefront(eng, devices(eng), taskrt.MinTime, "ACGT", "ACGT", DefaultScoring(), 0); err == nil {
		t.Fatal("zero tile accepted")
	}
}

func TestWavefrontParallelismHelps(t *testing.T) {
	a := RandomDNA(256, 3)
	b := RandomDNA(256, 4)
	s := DefaultScoring()

	run := func(devs []*hw.Device) sim.Time {
		eng := sim.NewEngine()
		var bound []*hw.Device
		for _, d := range devs {
			bound = append(bound, hw.NewDevice(eng, d.ID, d.Spec))
		}
		res, err := SmithWatermanWavefront(eng, bound, taskrt.MinTime, a, b, s, 32)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	eng := sim.NewEngine()
	one := run([]*hw.Device{hw.NewDevice(eng, "c0", oneCore())})
	four := run([]*hw.Device{
		hw.NewDevice(eng, "c0", oneCore()), hw.NewDevice(eng, "c1", oneCore()),
		hw.NewDevice(eng, "c2", oneCore()), hw.NewDevice(eng, "c3", oneCore()),
	})
	if four >= one {
		t.Fatalf("wavefront gained nothing from 4 workers: %v vs %v", four, one)
	}
}

func oneCore() hw.Spec {
	s := hw.ApalisARM()
	s.Cores = 1
	return s
}

func TestRandomDNADeterministic(t *testing.T) {
	if RandomDNA(64, 7) != RandomDNA(64, 7) {
		t.Fatal("same seed differs")
	}
	if RandomDNA(64, 7) == RandomDNA(64, 8) {
		t.Fatal("different seeds agree")
	}
	for _, c := range RandomDNA(100, 9) {
		if !strings.ContainsRune("ACGT", c) {
			t.Fatalf("bad base %q", c)
		}
	}
}
