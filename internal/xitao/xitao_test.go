package xitao

import (
	"math"
	"testing"

	"legato/internal/sim"
)

func TestSpeedupAmdahl(t *testing.T) {
	tao := &TAO{ParallelFrac: 0.9}
	if s := tao.Speedup(1); s != 1 {
		t.Fatalf("width-1 speedup: %v", s)
	}
	// Amdahl with p=0.9 at w=8: 1/(0.1 + 0.9/8) ≈ 4.706
	if s := tao.Speedup(8); math.Abs(s-4.705882352941176) > 1e-12 {
		t.Fatalf("width-8 speedup: %v", s)
	}
	// Perfectly parallel TAO: linear.
	lin := &TAO{ParallelFrac: 1}
	if s := lin.Speedup(16); s != 16 {
		t.Fatalf("linear speedup: %v", s)
	}
}

func TestSubmitValidation(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 4, Elastic)
	if err := r.Submit(&TAO{Name: "bad", Work: 0}); err == nil {
		t.Fatal("zero-work TAO accepted")
	}
	if err := r.Submit(&TAO{Name: "bad", Work: 1, ParallelFrac: 1.5}); err == nil {
		t.Fatal("parallel fraction > 1 accepted")
	}
}

func TestDependenceOrder(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 4, Elastic)
	var order []string
	a := &TAO{Name: "a", Work: 10, ParallelFrac: 1, Fn: func() { order = append(order, "a") }}
	b := &TAO{Name: "b", Work: 10, ParallelFrac: 1, After: []*TAO{a}, Fn: func() { order = append(order, "b") }}
	if err := r.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(b); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("dependence order: %v", order)
	}
}

func TestFixedOneSerialWidth(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 8, FixedOne)
	for i := 0; i < 4; i++ {
		_ = r.Submit(&TAO{Name: "t", Work: 100, ParallelFrac: 1})
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Width != 1 {
			t.Fatalf("fixed-1 ran at width %d", rec.Width)
		}
	}
}

func TestElasticSplitsCoresAcrossReadyTAOs(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 8, Elastic)
	for i := 0; i < 4; i++ {
		_ = r.Submit(&TAO{Name: "t", Work: 100, ParallelFrac: 1})
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Four perfectly parallel TAOs on 8 cores: each gets width 2 and all
	// run concurrently.
	for _, rec := range res.Records {
		if rec.Width != 2 {
			t.Fatalf("elastic width: got %d want 2", rec.Width)
		}
		if rec.Start != 0 {
			t.Fatalf("TAO delayed: start %v", rec.Start)
		}
	}
}

func TestElasticAvoidsWastefulWidth(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 16, Elastic)
	// Mostly serial TAO: wide allocation is waste; elastic must keep it
	// narrow even with the machine idle.
	_ = r.Submit(&TAO{Name: "serial", Work: 100, ParallelFrac: 0.2})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Width > 2 {
		t.Fatalf("serial TAO got width %d", res.Records[0].Width)
	}
}

func TestElasticBeatsFixedPoliciesOnMixedLoad(t *testing.T) {
	mixed := func(policy WidthPolicy) *Result {
		eng := sim.NewEngine()
		r := New(eng, 8, policy)
		// Mixed DAG: a few wide parallel TAOs plus many serial ones.
		for i := 0; i < 3; i++ {
			_ = r.Submit(&TAO{Name: "wide", Work: 200, ParallelFrac: 0.95})
		}
		for i := 0; i < 4; i++ {
			_ = r.Submit(&TAO{Name: "narrow", Work: 40, ParallelFrac: 0.1})
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	el := mixed(Elastic)
	fw := mixed(FixedWide)
	f1 := mixed(FixedOne)
	if el.Makespan >= fw.Makespan {
		t.Fatalf("elastic (%v) not faster than fixed-wide (%v)", el.Makespan, fw.Makespan)
	}
	if el.Makespan >= f1.Makespan {
		t.Fatalf("elastic (%v) not faster than fixed-1 (%v)", el.Makespan, f1.Makespan)
	}
	if el.Efficiency <= fw.Efficiency {
		t.Fatalf("elastic efficiency %.2f not above fixed-wide %.2f", el.Efficiency, fw.Efficiency)
	}
}

func TestCoreAccountingNeverNegative(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 4, FixedWide)
	for i := 0; i < 10; i++ {
		_ = r.Submit(&TAO{Name: "t", Work: 50, ParallelFrac: 0.8, MaxWidth: 3})
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.free != 4 {
		t.Fatalf("cores leaked: %d free of 4", r.free)
	}
	if res.Utilization > 1.0000001 {
		t.Fatalf("utilization above 1: %v", res.Utilization)
	}
}

func TestMaxWidthRespected(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 16, FixedWide)
	_ = r.Submit(&TAO{Name: "capped", Work: 100, ParallelFrac: 1, MaxWidth: 4})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Width != 4 {
		t.Fatalf("MaxWidth ignored: width %d", res.Records[0].Width)
	}
}
