// Quickstart: assemble a LEGaTO system on a RECS|BOX cloud platform,
// submit a small dependent task graph with mixed requirements (plain,
// replicated, secure), and print the energy report — the Fig. 1 ecosystem
// in ~60 lines.
package main

import (
	"fmt"
	"log"

	"legato"
	"legato/internal/hw"
	"legato/internal/sim"
)

func main() {
	log.SetFlags(0)

	sys, err := legato.NewSystem(legato.Config{
		Platform: legato.CloudPlatform,
		Policy:   legato.MinEnergy, // the project's default objective
	})
	if err != nil {
		log.Fatal(err)
	}

	// A small pipeline: ingest → preprocess (GPU-friendly) → two analyses
	// (one replicated, one secured) → report.
	tasks := []legato.Task{
		{Name: "ingest", Gops: 20, Out: []string{"raw"}},
		{Name: "preprocess", Gops: 120, Cores: 4,
			Targets: []hw.Class{hw.GPU, hw.CPUx86},
			In:      []string{"raw"}, Out: []string{"clean"}},
		{Name: "analyze-critical", Gops: 80,
			In: []string{"clean"}, Out: []string{"scores"},
			Req: legato.Requirements{Replicate: true}},
		{Name: "analyze-private", Gops: 40,
			In: []string{"clean"}, Out: []string{"insights"},
			Req: legato.Requirements{Secure: true}},
		{Name: "report", Gops: 5,
			In: []string{"scores", "insights"}, Out: []string{"summary"}},
	}
	for _, t := range tasks {
		if err := sys.Submit(t); err != nil {
			log.Fatalf("submit %s: %v", t.Name, err)
		}
	}

	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("makespan: %.3f s (simulated)\n", sim.ToSeconds(rep.Makespan))
	fmt.Printf("dynamic task energy: %.2f J\n", rep.TaskEnergyJ)
	fmt.Printf("security energy:     %.6f J\n", rep.SecurityEnergyJ)
	fmt.Printf("replicated tasks:    %d (DMR on diverse device classes)\n\n", rep.ReplicatedTasks)
	fmt.Println("task placements:")
	for _, r := range rep.Records {
		fmt.Printf("  %-24s → %-32s [%s] %.3f–%.3f s\n",
			r.Name, r.Device, r.Class, sim.ToSeconds(r.Start), sim.ToSeconds(r.End))
	}
	fmt.Println("\nper-device energy:")
	fmt.Print(rep.Energy.String())
}
