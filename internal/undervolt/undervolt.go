// Package undervolt implements the aggressive-undervolting experiment
// controller of paper Sec. III: voltage sweeps over the VCCBRAM rail of the
// modelled FPGA boards, memory-test fault counting, voltage-region
// detection (guardband / critical / crash) and power measurement — the
// machinery that regenerates Fig. 5.
package undervolt

import (
	"fmt"
	"math/bits"
	"strings"

	"legato/internal/fpga"
)

// Region classifies an operating voltage (Fig. 5).
type Region int

const (
	// Guardband: at or above Vmin — reliable operation, vendor margin.
	Guardband Region = iota
	// Critical: below Vmin but at/above Vcrash — faults appear, rate grows
	// exponentially.
	Critical
	// Crash: below Vcrash — DONE unset, board unresponsive.
	Crash
)

// String names the region.
func (r Region) String() string {
	switch r {
	case Guardband:
		return "guardband"
	case Critical:
		return "critical"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("region(%d)", int(r))
	}
}

// Classify returns the region of voltage v for profile p.
func Classify(p fpga.Profile, v float64) Region {
	switch {
	case v >= p.VMin:
		return Guardband
	case v >= p.VCrash:
		return Critical
	default:
		return Crash
	}
}

// Point is one sweep measurement.
type Point struct {
	Voltage       float64
	Region        Region
	RailWatts     float64
	SavingPercent float64
	// FaultsPerMbit is the measured fault density from the memory test
	// (zero in the guardband; undefined — reported 0 — once crashed).
	FaultsPerMbit float64
	// Faults is the absolute faulty-bit count.
	Faults int
	// Crashed reports the DONE pin dropping at this step.
	Crashed bool
}

// Sweep is the result of one board's voltage sweep.
type Sweep struct {
	Board  string
	Points []Point
	// VMinObserved is the highest stepped voltage at which faults appeared,
	// plus one step: the measured bottom of the guardband.
	VMinObserved float64
	// VCrashObserved is the voltage step at which the board crashed.
	VCrashObserved float64
}

// testPattern fills the board with a checkerboard and returns it for
// comparison. 0xA5 exercises both polarities in every byte.
const testPattern = 0xA5

// memTest writes the pattern, reads it back, and counts bit errors.
// It returns the number of flipped bits.
func memTest(b *fpga.Board) (int, error) {
	size := b.MemBytes()
	pattern := make([]byte, size)
	for i := range pattern {
		pattern[i] = testPattern
	}
	if err := b.Write(0, pattern); err != nil {
		return 0, err
	}
	got := make([]byte, size)
	if err := b.Read(0, got); err != nil {
		return 0, err
	}
	faults := 0
	for i := range got {
		faults += bits.OnesCount8(got[i] ^ pattern[i])
	}
	return faults, nil
}

// Run sweeps VCCBRAM from vStart down to vEnd (inclusive) in steps of
// stepV, performing a memory test and power measurement at each point.
// The sweep stops at the first crash (matching the paper's methodology:
// beyond Vcrash the board no longer responds).
func Run(b *fpga.Board, vStart, vEnd, stepV float64) (*Sweep, error) {
	if stepV <= 0 {
		return nil, fmt.Errorf("undervolt: step must be positive, got %v", stepV)
	}
	if vStart < vEnd {
		return nil, fmt.Errorf("undervolt: sweep must descend (start %v < end %v)", vStart, vEnd)
	}
	s := &Sweep{Board: b.Profile.Name, VMinObserved: vStart}
	lastSafe := vStart
	// Descend in integer steps to avoid float accumulation drift.
	n := int((vStart-vEnd)/stepV + 0.5)
	for i := 0; i <= n; i++ {
		v := vStart - float64(i)*stepV
		b.SetVCCBRAM(v)
		pt := Point{
			Voltage:       v,
			Region:        Classify(b.Profile, v),
			RailWatts:     b.RailPower(),
			SavingPercent: b.PowerSavingPercent(),
		}
		if !b.Done() {
			pt.Crashed = true
			s.VCrashObserved = v
			s.Points = append(s.Points, pt)
			break
		}
		faults, err := memTest(b)
		if err != nil {
			return nil, fmt.Errorf("undervolt: memory test at %.3f V: %w", v, err)
		}
		pt.Faults = faults
		pt.FaultsPerMbit = float64(faults) / b.Profile.Mbits()
		if faults == 0 {
			lastSafe = v
		}
		s.Points = append(s.Points, pt)
	}
	s.VMinObserved = lastSafe
	return s, nil
}

// MaxSaving returns the largest power saving (percent) measured before the
// crash point — the paper reports >90% at Vcrash for VC707.
func (s *Sweep) MaxSaving() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.SavingPercent > max {
			max = p.SavingPercent
		}
	}
	return max
}

// FaultsAtCrash returns the fault density at the last responding voltage
// step before the crash.
func (s *Sweep) FaultsAtCrash() float64 {
	last := 0.0
	for _, p := range s.Points {
		if p.Crashed {
			break
		}
		last = p.FaultsPerMbit
	}
	return last
}

// Table renders the sweep in the shape of Fig. 5: voltage, region, rail
// power, saving and fault density per step.
func (s *Sweep) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Board %s — VCCBRAM undervolting sweep (Fig. 5)\n", s.Board)
	fmt.Fprintf(&sb, "%8s %-10s %12s %10s %14s\n", "V", "region", "rail (mW)", "saving %", "faults/Mbit")
	for _, p := range s.Points {
		if p.Crashed {
			fmt.Fprintf(&sb, "%8.3f %-10s %12s %10s %14s\n", p.Voltage, "crash", "-", "-", "DONE unset")
			continue
		}
		fmt.Fprintf(&sb, "%8.3f %-10s %12.2f %10.1f %14.2f\n",
			p.Voltage, p.Region, p.RailWatts*1000, p.SavingPercent, p.FaultsPerMbit)
	}
	fmt.Fprintf(&sb, "observed Vmin=%.3f V, Vcrash=%.3f V, max saving %.1f%%, faults at crash %.1f/Mbit\n",
		s.VMinObserved, s.VCrashObserved, s.MaxSaving(), s.FaultsAtCrash())
	return sb.String()
}

// RunAll sweeps every published board profile with the given seed base and
// step, in the paper's order.
func RunAll(seed int64, vEnd, stepV float64) ([]*Sweep, error) {
	var out []*Sweep
	for i, p := range fpga.AllProfiles() {
		b := fpga.NewBoard(p, seed+int64(i))
		s, err := Run(b, p.VNom, vEnd, stepV)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
