package mirror

import (
	"math"
	"testing"

	"legato/internal/sim"
)

func TestSceneBounces(t *testing.T) {
	s := NewScene(5, 1)
	for i := 0; i < 1000; i++ {
		s.Step(0.5)
		for _, o := range s.Objects {
			if o.X < -1e-9 || o.X > s.Width+1e-9 || o.Y < -1e-9 || o.Y > s.Height+1e-9 {
				t.Fatalf("object escaped the world: (%.2f, %.2f)", o.X, o.Y)
			}
		}
	}
}

func TestDetectorErrorModel(t *testing.T) {
	s := NewScene(10, 2)
	det := NewDetector(0.5, 0.2, 0.5, 3)
	totalDets, fps := 0, 0
	const frames = 500
	for i := 0; i < frames; i++ {
		s.Step(0.1)
		for _, d := range det.Detect(s) {
			totalDets++
			if d.TruthID == 0 {
				fps++
			}
		}
	}
	// Expected true detections ≈ 10 × 0.8 × 500 = 4000; FPs ≈ 0.5 × 500.
	trueDets := totalDets - fps
	if trueDets < 3700 || trueDets > 4300 {
		t.Fatalf("true detections %d far from expectation 4000", trueDets)
	}
	if fps < 150 || fps > 350 {
		t.Fatalf("false positives %d far from expectation 250", fps)
	}
}

func TestTrackerFollowsObjects(t *testing.T) {
	s := NewScene(4, 4)
	det := NewDetector(0.3, 0.05, 0.1, 5)
	tr := NewTracker(0.1)
	for i := 0; i < 300; i++ {
		s.Step(0.1)
		tr.Step(det.Detect(s))
		tr.Observe(s)
	}
	confirmed := tr.ConfirmedTracks()
	if len(confirmed) < 4 {
		t.Fatalf("confirmed tracks: %d, want ≥4", len(confirmed))
	}
	// Every ground-truth object has a confirmed track within the gate.
	for _, o := range s.Objects {
		found := false
		for _, trk := range confirmed {
			x, y := trk.Position()
			if math.Hypot(x-o.X, y-o.Y) < tr.GateDistance {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("object %d untracked at (%.1f, %.1f)", o.ID, o.X, o.Y)
		}
	}
	if tr.MOTA() < 0.7 {
		t.Fatalf("MOTA %.2f below 0.7", tr.MOTA())
	}
}

func TestTrackerRetiresStaleTracks(t *testing.T) {
	tr := NewTracker(0.1)
	// One detection, then nothing: the track must eventually retire.
	tr.Step([]Detection{{X: 10, Y: 10, TruthID: 1}})
	for i := 0; i < tr.MaxMissed+2; i++ {
		tr.Step(nil)
	}
	if len(tr.Tracks()) != 0 {
		t.Fatalf("stale track survived: %d", len(tr.Tracks()))
	}
}

func TestTrackerHandlesEmptyFrames(t *testing.T) {
	tr := NewTracker(0.1)
	tr.Step(nil)
	tr.Step([]Detection{})
	if len(tr.Tracks()) != 0 {
		t.Fatal("tracks from empty frames")
	}
}

func TestWorkstationMatchesPaperNumbers(t *testing.T) {
	eng := sim.NewEngine()
	cfg := WorkstationConfig(eng)
	res, err := Evaluate(cfg, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~21 FPS at ~400 W.
	if res.FPS < 19 || res.FPS > 23 {
		t.Fatalf("workstation FPS %.1f outside 21±2", res.FPS)
	}
	if res.PowerW < 350 || res.PowerW > 450 {
		t.Fatalf("workstation power %.0f W outside 400±50", res.PowerW)
	}
}

func TestEdgeMatchesPaperTarget(t *testing.T) {
	eng := sim.NewEngine()
	cfg, err := EdgeConfig(eng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(cfg, 400, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Paper target: 10 FPS at 50 W ("sufficient for a seamless user
	// experience").
	if res.FPS < 9 || res.FPS > 12 {
		t.Fatalf("edge FPS %.1f outside 10±1ish", res.FPS)
	}
	if res.PowerW > 50 {
		t.Fatalf("edge power %.0f W above the 50 W target", res.PowerW)
	}
	if res.MOTA < 0.6 {
		t.Fatalf("edge MOTA %.2f too low — tracking broken at 10 FPS", res.MOTA)
	}
}

func TestEdgeEnergyPerFrameOrderOfMagnitude(t *testing.T) {
	eng := sim.NewEngine()
	ws, err := Evaluate(WorkstationConfig(eng), 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	ecfg, err := EdgeConfig(eng)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := Evaluate(ecfg, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Project goal: one order of magnitude energy saving. Per frame:
	// 400W/21FPS ≈ 19 J vs 40W/10FPS ≈ 4 J — at least 4×; with the
	// detection workload shrink counted (845→145 gops) the gap exceeds 10×.
	ratio := ws.EnergyPerFrameJ / edge.EnergyPerFrameJ
	if ratio < 4 {
		t.Fatalf("edge energy/frame only %.1fx better", ratio)
	}
	gopRatio := (ws.PowerW / (ws.FPS * ws.GopsPerFrame)) / (edge.PowerW / (edge.FPS * edge.GopsPerFrame))
	_ = gopRatio
	if CompareTable([]*Result{ws, edge}) == "" {
		t.Fatal("empty comparison table")
	}
}

func TestEvaluateValidation(t *testing.T) {
	cfg := &HardwareConfig{Name: "empty", Modules: StandardModules()}
	if _, err := Evaluate(cfg, 10, 1); err == nil {
		t.Fatal("config without accelerators accepted")
	}
}
