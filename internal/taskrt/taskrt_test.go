package taskrt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"legato/internal/hw"
	"legato/internal/sim"
)

func devices(eng *sim.Engine) []*hw.Device {
	return []*hw.Device{
		hw.NewDevice(eng, "cpu0", hw.XeonD()),
		hw.NewDevice(eng, "arm0", hw.ARMv8Server()),
		hw.NewDevice(eng, "gpu0", hw.JetsonTX2()),
	}
}

func TestSimpleChainOrder(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, devices(eng), MinTime)
	a := rt.Data("A", 1024)
	var order []string
	mk := func(name string, in, out []*Data) Task {
		return Task{Name: name, Gops: 1, In: in, Out: out,
			Fn: func() { order = append(order, name) }}
	}
	if err := rt.Submit(mk("w1", nil, []*Data{a})); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(mk("r1", []*Data{a}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(mk("w2", nil, []*Data{a})); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "w1" || order[1] != "r1" || order[2] != "w2" {
		t.Fatalf("dependence order violated: %v", order)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestIndependentTasksRunInParallel(t *testing.T) {
	eng := sim.NewEngine()
	devs := devices(eng)
	rt := New(eng, devs, MinTime)
	for i := 0; i < 3; i++ {
		if err := rt.Submit(Task{Name: "t", Gops: 100}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With three devices, three independent tasks must overlap: makespan
	// well below the sum of individual times.
	var sum sim.Time
	for _, rec := range res.Records {
		sum += rec.End - rec.Start
	}
	if res.Makespan >= sum {
		t.Fatalf("no parallelism: makespan %v, serial sum %v", res.Makespan, sum)
	}
	// Independent equal tasks overlap fully: makespan equals the longest
	// single task, not the sum.
	var longest sim.Time
	for _, rec := range res.Records {
		if d := rec.End - rec.Start; d > longest {
			longest = d
		}
	}
	if res.Makespan != longest {
		t.Fatalf("independent tasks serialised: makespan %v, longest %v", res.Makespan, longest)
	}
}

func TestReadersShareThenWriterWaits(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, devices(eng), MinTime)
	a := rt.Data("A", 8)
	var writerStart sim.Time
	readerEnds := []sim.Time{}
	_ = rt.Submit(Task{Name: "w0", Gops: 1, Out: []*Data{a}})
	for i := 0; i < 2; i++ {
		_ = rt.Submit(Task{Name: "r", Gops: 50, In: []*Data{a},
			Fn: func() { readerEnds = append(readerEnds, eng.Now()) }})
	}
	_ = rt.Submit(Task{Name: "w1", Gops: 1, InOut: []*Data{a},
		Fn: func() { writerStart = eng.Now() }})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for _, re := range readerEnds {
		if writerStart < re {
			t.Fatalf("anti-dependence violated: writer finished at %v before reader at %v", writerStart, re)
		}
	}
}

func TestTargetRestriction(t *testing.T) {
	eng := sim.NewEngine()
	devs := devices(eng)
	rt := New(eng, devs, MinTime)
	_ = rt.Submit(Task{Name: "gpu-only", Gops: 10, Targets: []hw.Class{hw.GPU}})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Class != hw.GPU {
		t.Fatalf("task placed on %v, want GPU", res.Records[0].Class)
	}
}

func TestNoCompatibleDeviceFails(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, devices(eng), MinTime)
	_ = rt.Submit(Task{Name: "fpga-only", Gops: 1, Targets: []hw.Class{hw.FPGA}})
	if _, err := rt.Run(); err == nil {
		t.Fatal("task without compatible device should fail the run")
	}
}

func TestMinEnergyPrefersEfficientDevice(t *testing.T) {
	eng := sim.NewEngine()
	devs := devices(eng)
	rt := New(eng, devs, MinEnergy)
	// A small task: the ARM part costs least dynamic energy per gop among
	// CPU classes; energy policy must not pick the Xeon.
	_ = rt.Submit(Task{Name: "t", Gops: 10, Targets: []hw.Class{hw.CPUx86, hw.CPUARM}})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Class != hw.CPUARM {
		t.Fatalf("min-energy placed task on %v", res.Records[0].Class)
	}

	eng2 := sim.NewEngine()
	rt2 := New(eng2, devices(eng2), MinTime)
	_ = rt2.Submit(Task{Name: "t", Gops: 10, Targets: []hw.Class{hw.CPUx86, hw.CPUARM}})
	res2, err := rt2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Records[0].Class != hw.CPUx86 {
		t.Fatalf("min-time placed task on %v", res2.Records[0].Class)
	}
}

func TestEnergyPolicySavesEnergy(t *testing.T) {
	build := func(policy Policy) *Result {
		eng := sim.NewEngine()
		rt := New(eng, devices(eng), policy)
		for i := 0; i < 20; i++ {
			_ = rt.Submit(Task{Name: "t", Gops: 20})
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	et := build(MinTime)
	ee := build(MinEnergy)
	if ee.EnergyJ >= et.EnergyJ {
		t.Fatalf("min-energy (%.2f J) not below min-time (%.2f J)", ee.EnergyJ, et.EnergyJ)
	}
	if ee.Makespan <= et.Makespan {
		t.Fatalf("expected energy policy to trade time: %v vs %v", ee.Makespan, et.Makespan)
	}
}

func TestPriorityBreaksTies(t *testing.T) {
	eng := sim.NewEngine()
	// Single 1-core device forces serialisation.
	spec := hw.ApalisARM()
	spec.Cores = 1
	dev := hw.NewDevice(eng, "solo", spec)
	rt := New(eng, []*hw.Device{dev}, MinTime)
	var order []string
	for _, c := range []struct {
		name string
		prio int
	}{{"low", 0}, {"high", 5}, {"mid", 3}} {
		c := c
		_ = rt.Submit(Task{Name: c.name, Gops: 1, Priority: c.prio,
			Fn: func() { order = append(order, c.name) }})
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Dispatch happens at Run: strict priority order on the single core.
	if order[0] != "high" || order[1] != "mid" || order[2] != "low" {
		t.Fatalf("priority order wrong: %v", order)
	}
}

func TestCoresRequestRespected(t *testing.T) {
	eng := sim.NewEngine()
	dev := hw.NewDevice(eng, "cpu", hw.XeonD()) // 16 cores
	rt := New(eng, []*hw.Device{dev}, MinTime)
	_ = rt.Submit(Task{Name: "wide", Gops: 160, Cores: 16})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	wide := res.Records[0].End - res.Records[0].Start
	eng2 := sim.NewEngine()
	dev2 := hw.NewDevice(eng2, "cpu", hw.XeonD())
	rt2 := New(eng2, []*hw.Device{dev2}, MinTime)
	_ = rt2.Submit(Task{Name: "narrow", Gops: 160, Cores: 1})
	res2, err := rt2.Run()
	if err != nil {
		t.Fatal(err)
	}
	narrow := res2.Records[0].End - res2.Records[0].Start
	if wide*15 > narrow {
		t.Fatalf("16-core task not ~16x faster: wide %v narrow %v", wide, narrow)
	}
}

// Property: for random DAGs, every task runs exactly once and no task
// starts before all its predecessors end.
func TestRandomDAGRespectsDependences(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		eng := sim.NewEngine()
		rt := New(eng, devices(eng), Policy(rng.Intn(3)))
		nData := 1 + rng.Intn(5)
		data := make([]*Data, nData)
		for i := range data {
			data[i] = rt.Data("d", 64)
		}
		n := 1 + rng.Intn(25)
		for i := 0; i < n; i++ {
			t := Task{Name: "t", Gops: float64(1 + rng.Intn(20))}
			d := data[rng.Intn(nData)]
			switch rng.Intn(3) {
			case 0:
				t.In = []*Data{d}
			case 1:
				t.Out = []*Data{d}
			default:
				t.InOut = []*Data{d}
			}
			if rt.Submit(t) != nil {
				return false
			}
		}
		res, err := rt.Run()
		if err != nil {
			return false
		}
		if len(res.Records) != n {
			return false
		}
		for _, rec := range res.Records {
			if rec.End < rec.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
