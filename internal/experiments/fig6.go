package experiments

import (
	"fmt"
	"strings"

	"legato/internal/fti"
	"legato/internal/gpu"
	"legato/internal/heat2d"
	"legato/internal/mpi"
	"legato/internal/sim"
)

// Fig6Row is one bar group of Fig. 6: a node count under one problem size,
// with checkpoint and recovery times for the initial and async methods.
type Fig6Row struct {
	Nodes       int
	Ranks       int
	TotalGB     float64
	CkptInitial float64 // seconds
	CkptAsync   float64
	RecInitial  float64
	RecAsync    float64
}

// Fig6Result is the full figure: one series per problem size.
type Fig6Result struct {
	PerProcGB []float64
	Rows      map[float64][]Fig6Row
}

// ranksPerNode matches the paper's testbed: "in each node we execute
// 4 processes, one per GPU device".
const ranksPerNode = 4

// Fig6 reproduces the checkpoint/restart experiment of Sec. IV: Heat2D in
// UVM allocations, weak-scaled over the given node counts, checkpointing
// perProcGB gigabytes per process, for both the initial and the async FTI
// implementations.
func Fig6(nodeCounts []int, perProcGBs []float64) (*Fig6Result, error) {
	res := &Fig6Result{PerProcGB: perProcGBs, Rows: make(map[float64][]Fig6Row)}
	for _, gb := range perProcGBs {
		for _, nodes := range nodeCounts {
			row := Fig6Row{Nodes: nodes, Ranks: nodes * ranksPerNode,
				TotalGB: gb * float64(nodes*ranksPerNode)}
			for _, m := range []fti.Method{fti.Initial, fti.Async} {
				ck, rec, err := fig6Point(nodes, gb, m)
				if err != nil {
					return nil, err
				}
				if m == fti.Initial {
					row.CkptInitial, row.RecInitial = ck, rec
				} else {
					row.CkptAsync, row.RecAsync = ck, rec
				}
			}
			res.Rows[gb] = append(res.Rows[gb], row)
		}
	}
	return res, nil
}

// fig6Point measures one (nodes, size, method) cell: the max-over-ranks
// checkpoint time from a run that takes one checkpoint, and the recovery
// time of a restarted run against the same store.
func fig6Point(nodes int, perProcGB float64, m fti.Method) (ckptSec, recSec float64, err error) {
	ranks := nodes * ranksPerNode
	perBufBytes := int64(perProcGB * 1e9 / 2) // two protected buffers per rank

	params := heat2d.Params{
		Iters:               5,
		Phantom:             true,
		PhantomBytesPerRank: perBufBytes,
		KernelGOPS:          1, // compute negligible next to C/R
		FTI: fti.Config{
			GroupSize: ranksPerNode,
			CkptEvery: 5, // exactly one checkpoint in 5 iterations
			Method:    m,
			L2Every:   0, L3Every: 0, L4Every: 0, // pure L1, as in the Fig. 6 runs
		},
		GPU: gpu.Config{MemBytes: 64 << 30},
	}
	// Defaults put L2Every=2, L3Every=4 back; force pure L1 by setting the
	// schedule to impossible periods.
	params.FTI.L2Every = -1
	params.FTI.L3Every = -1

	// Run 1: checkpoint.
	eng := sim.NewEngine()
	world, err := mpi.NewWorld(eng, mpi.Config{Size: ranks, RanksPerNode: ranksPerNode})
	if err != nil {
		return 0, 0, err
	}
	store, err := fti.NewStore(eng, fti.StoreConfig{Nodes: nodes})
	if err != nil {
		return 0, 0, err
	}
	res1, err := heat2d.Run(eng, world, store, params)
	if err != nil {
		return 0, 0, err
	}
	var maxCkpt sim.Time
	for _, r := range res1 {
		if t := r.Stats.LastCkptTime(); t > maxCkpt {
			maxCkpt = t
		}
	}

	// Run 2: restart and recover against the same store.
	eng2 := sim.NewEngine()
	world2, err := mpi.NewWorld(eng2, mpi.Config{Size: ranks, RanksPerNode: ranksPerNode})
	if err != nil {
		return 0, 0, err
	}
	store.Rebind(eng2)
	res2, err := heat2d.Run(eng2, world2, store, params)
	if err != nil {
		return 0, 0, err
	}
	var maxRec sim.Time
	for _, r := range res2 {
		if t := r.Stats.LastRecoverTime(); t > maxRec {
			maxRec = t
		}
	}
	return sim.ToSeconds(maxCkpt), sim.ToSeconds(maxRec), nil
}

// SpeedupCkpt returns initial/async checkpoint time averaged over rows.
func (r *Fig6Result) SpeedupCkpt(gb float64) float64 {
	rows := r.Rows[gb]
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, row := range rows {
		s += row.CkptInitial / row.CkptAsync
	}
	return s / float64(len(rows))
}

// SpeedupRec returns initial/async recovery time averaged over rows.
func (r *Fig6Result) SpeedupRec(gb float64) float64 {
	rows := r.Rows[gb]
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, row := range rows {
		s += row.RecInitial / row.RecAsync
	}
	return s / float64(len(rows))
}

// Table renders the figure in the paper's layout: one panel per problem
// size, bars per node count.
func (r *Fig6Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig. 6 — Heat2D checkpoint/restart time (seconds)\n")
	for _, gb := range r.PerProcGB {
		fmt.Fprintf(&sb, "\n%.0f GB per process (4 processes/node):\n", gb)
		fmt.Fprintf(&sb, "%7s %8s %10s %12s %12s %12s %12s\n",
			"nodes", "ranks", "total GB", "ckpt-init", "ckpt-async", "rec-init", "rec-async")
		for _, row := range r.Rows[gb] {
			fmt.Fprintf(&sb, "%7d %8d %10.0f %12.2f %12.2f %12.2f %12.2f\n",
				row.Nodes, row.Ranks, row.TotalGB,
				row.CkptInitial, row.CkptAsync, row.RecInitial, row.RecAsync)
		}
		fmt.Fprintf(&sb, "speedup: checkpoint %.2fx (paper 12.05x), recover %.2fx (paper 5.13x)\n",
			r.SpeedupCkpt(gb), r.SpeedupRec(gb))
	}
	return sb.String()
}
