package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LinearFit fits y ≈ a + b·x by ordinary least squares and returns (a, b).
// With fewer than two points it returns (y0, 0).
func LinearFit(xs, ys []float64) (a, b float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	if n == 1 || len(ys) != n {
		return ys[0], 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return my, 0
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}

// MultiLinearFit fits y ≈ w·x (with an implicit bias column appended) by
// solving the normal equations. rows of X are observations. It returns the
// weight vector of length cols+1 (bias last) or an error if the normal
// matrix is singular.
func MultiLinearFit(X [][]float64, y []float64) ([]float64, error) {
	n := len(X)
	if n == 0 || len(y) != n {
		return nil, ErrSingular
	}
	d := len(X[0]) + 1 // + bias
	xm := NewMatrix(n, d)
	ym := NewMatrix(n, 1)
	for i, row := range X {
		for j, v := range row {
			xm.Set(i, j, v)
		}
		xm.Set(i, d-1, 1)
		ym.Set(i, 0, y[i])
	}
	xt := xm.Transpose()
	normal := xt.Mul(xm)
	rhs := xt.Mul(ym)
	// Tikhonov damping keeps the solve stable when observations are collinear.
	for i := 0; i < d; i++ {
		normal.Set(i, i, normal.At(i, i)+1e-9)
	}
	w, err := normal.Solve(rhs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, d)
	for i := range out {
		out[i] = w.At(i, 0)
	}
	return out, nil
}

// ExpFit fits y ≈ A·exp(k·x) for strictly positive y via a log-linear
// least-squares fit, returning (A, k). Non-positive ys are skipped.
func ExpFit(xs, ys []float64) (A, k float64) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && ys[i] > 0 {
			lx = append(lx, xs[i])
			ly = append(ly, math.Log(ys[i]))
		}
	}
	a, b := LinearFit(lx, ly)
	return math.Exp(a), b
}
