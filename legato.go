// Package legato is the public facade of the LEGaTO toolset reproduction
// (B. Salami et al., DATE 2020): a single programming model over a
// heterogeneous platform in which every task can state its energy, fault
// tolerance and security requirements, exactly as the ecosystem picture of
// paper Fig. 1 promises ("All these requirements will be facilitated by a
// single programming model").
//
// A System wires together the layers of Fig. 2:
//
//   - hardware: a RECS|BOX chassis or Fig. 9 edge server (internal/hw);
//   - middleware: management firmware (internal/middleware);
//   - runtime: the OmpSs-style dependence-aware task runtime
//     (internal/taskrt) with energy-aware placement;
//   - fault tolerance: dual-modular replication of critical tasks on
//     diverse device classes with a voting step (internal/ft semantics);
//   - security: tasks may run inside a measured enclave with sealed I/O
//     (internal/secure).
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the full system inventory.
package legato

import (
	"fmt"

	"legato/internal/energy"
	"legato/internal/hw"
	"legato/internal/middleware"
	"legato/internal/secure"
	"legato/internal/sim"
	"legato/internal/taskrt"
	"legato/internal/trace"
)

// Policy re-exports the runtime placement objectives.
type Policy = taskrt.Policy

// Placement policies.
const (
	// MinTime places each task on the device that finishes it soonest.
	MinTime = taskrt.MinTime
	// MinEnergy places each task on the device with the least dynamic energy.
	MinEnergy = taskrt.MinEnergy
	// MinEDP minimises the energy-delay product.
	MinEDP = taskrt.MinEDP
)

// PlatformKind selects the hardware substrate.
type PlatformKind int

const (
	// CloudPlatform is a populated RECS|BOX chassis (paper Figs. 3-4).
	CloudPlatform PlatformKind = iota
	// EdgePlatform is the Fig. 9 CPU+GPU+FPGA edge server.
	EdgePlatform
)

// Config parametrises a System.
type Config struct {
	// Platform selects the hardware substrate (default CloudPlatform).
	Platform PlatformKind
	// Policy is the placement objective (default MinEnergy — the project's
	// reason to exist).
	Policy Policy
	// TEE enables secure tasks with the given technology (default SGX).
	TEE secure.TEEKind
	// PlatformRootKey seeds enclave key derivation; a default test key is
	// used when empty (production deployments must set it).
	PlatformRootKey []byte
}

// Requirements are a task's per-requirement knobs (Fig. 1: energy, fault
// tolerance, security around the programming model).
type Requirements struct {
	// Replicate requests dual-modular redundancy on diverse device
	// classes with a voting step (Sec. I selective replication).
	Replicate bool
	// Secure runs the task inside the system enclave, sealing its inputs
	// and outputs.
	Secure bool
}

// Task is one unit of work submitted to the system.
type Task struct {
	Name string
	// Gops is the computational cost.
	Gops float64
	// Cores is the requested width (default 1).
	Cores int
	// Targets restricts device classes (empty = any).
	Targets []hw.Class
	// In, Out, InOut name data dependences (created on first use).
	In, Out, InOut []string
	// Priority breaks scheduler ties.
	Priority int
	// Fn runs at completion.
	Fn func()
	// Req are the non-functional requirements.
	Req Requirements
}

// System is one assembled LEGaTO stack.
type System struct {
	cfg Config

	eng     *sim.Engine
	devices []*hw.Device
	box     *hw.RECSBox
	edge    *hw.EdgeServer
	mgr     *middleware.Manager
	rt      *taskrt.Runtime
	tracer  *trace.Tracer
	enclave *secure.Enclave

	data      map[string]*taskrt.Data
	secureIO  int64 // bytes sealed/unsealed
	replicas  int
	submitted int
}

// NewSystem assembles a stack per the configuration.
func NewSystem(cfg Config) (*System, error) {
	eng := sim.NewEngine()
	s := &System{cfg: cfg, eng: eng, data: make(map[string]*taskrt.Data)}

	switch cfg.Platform {
	case EdgePlatform:
		edge, err := hw.MirrorEdgeCPUGPUFPGA(eng, "edge0")
		if err != nil {
			return nil, err
		}
		s.edge = edge
		for _, m := range edge.Modules {
			s.devices = append(s.devices, m.Device)
		}
	default:
		box, err := hw.StandardCloudBox(eng, "recs0")
		if err != nil {
			return nil, err
		}
		s.box = box
		s.mgr = middleware.NewManager(box)
		for _, ms := range box.Microservers() {
			s.devices = append(s.devices, ms.Device)
		}
	}

	s.rt = taskrt.New(eng, s.devices, cfg.Policy)
	s.tracer = trace.New(eng)

	rootKey := cfg.PlatformRootKey
	if len(rootKey) == 0 {
		rootKey = []byte("legato-development-root-key-0000")
	}
	tee := cfg.TEE
	if tee == secure.SoftwareOnly {
		tee = secure.SGX
	}
	enclave, err := secure.New(tee, []byte("legato-system-enclave"), rootKey)
	if err != nil {
		return nil, err
	}
	s.enclave = enclave
	return s, nil
}

// Engine exposes the virtual clock (examples and tests drive time).
func (s *System) Engine() *sim.Engine { return s.eng }

// Devices lists the platform's compute devices.
func (s *System) Devices() []*hw.Device { return s.devices }

// Manager exposes the middleware firmware (nil on the edge platform).
func (s *System) Manager() *middleware.Manager { return s.mgr }

// Tracer exposes the execution tracer.
func (s *System) Tracer() *trace.Tracer { return s.tracer }

// Data declares (or fetches) a named data region of the given size.
func (s *System) Data(name string, size int64) *taskrt.Data {
	if d, ok := s.data[name]; ok {
		return d
	}
	d := s.rt.Data(name, size)
	s.data[name] = d
	return d
}

func (s *System) deps(names []string) []*taskrt.Data {
	out := make([]*taskrt.Data, 0, len(names))
	for _, n := range names {
		out = append(out, s.Data(n, 0))
	}
	return out
}

// diverseClasses returns two distinct device classes present on the
// platform that can serve the task, for replica diversity.
func (s *System) diverseClasses(t Task) []hw.Class {
	seen := map[hw.Class]bool{}
	var classes []hw.Class
	for _, d := range s.devices {
		c := d.Spec.Class
		if seen[c] {
			continue
		}
		if len(t.Targets) > 0 {
			ok := false
			for _, want := range t.Targets {
				if want == c {
					ok = true
				}
			}
			if !ok {
				continue
			}
		}
		if d.Spec.Cores >= max(1, t.Cores) {
			seen[c] = true
			classes = append(classes, c)
		}
	}
	return classes
}

// Submit adds a task, expanding replication and security requirements into
// the underlying task graph.
func (s *System) Submit(t Task) error {
	if t.Name == "" {
		return fmt.Errorf("legato: task needs a name")
	}
	s.submitted++
	cores := t.Cores
	if cores <= 0 {
		cores = 1
	}
	fn := t.Fn
	if t.Req.Secure {
		// Sealed I/O: charge the enclave for every byte crossing the task
		// boundary, and run the body inside the enclave.
		var ioBytes int64
		for _, names := range [][]string{t.In, t.Out, t.InOut} {
			for _, n := range names {
				ioBytes += s.Data(n, 0).Size
			}
		}
		inner := fn
		fn = func() {
			s.secureIO += ioBytes
			s.enclave.RunSecure(func() {
				if blob, err := s.enclave.Seal(make([]byte, min64(ioBytes, 1<<16))); err == nil {
					_, _ = s.enclave.Unseal(blob)
				}
				if inner != nil {
					inner()
				}
			})
		}
	}

	if !t.Req.Replicate {
		return s.rt.Submit(taskrt.Task{
			Name: t.Name, Gops: t.Gops, Cores: cores, Targets: t.Targets,
			In: s.deps(t.In), Out: s.deps(t.Out), InOut: s.deps(t.InOut),
			Priority: t.Priority, Critical: false, Fn: fn,
		})
	}

	// Dual-modular redundancy: two replicas on diverse classes write to
	// shadow regions; a vote task publishes to the real outputs.
	classes := s.diverseClasses(t)
	if len(classes) == 0 {
		return fmt.Errorf("legato: no device can host replicated task %q", t.Name)
	}
	shadowA := s.Data(t.Name+"/replicaA", 64)
	shadowB := s.Data(t.Name+"/replicaB", 64)
	targetA := []hw.Class{classes[0]}
	targetB := []hw.Class{classes[len(classes)-1]} // different class when available
	ins := s.deps(t.In)
	inouts := s.deps(t.InOut)
	if err := s.rt.Submit(taskrt.Task{
		Name: t.Name + "#a", Gops: t.Gops, Cores: cores, Targets: targetA,
		In: append(append([]*taskrt.Data{}, ins...), inouts...), Out: []*taskrt.Data{shadowA},
		Priority: t.Priority, Critical: true, Fn: fn,
	}); err != nil {
		return err
	}
	if err := s.rt.Submit(taskrt.Task{
		Name: t.Name + "#b", Gops: t.Gops, Cores: cores, Targets: targetB,
		In: append(append([]*taskrt.Data{}, ins...), inouts...), Out: []*taskrt.Data{shadowB},
		Priority: t.Priority, Critical: true,
	}); err != nil {
		return err
	}
	s.replicas++
	return s.rt.Submit(taskrt.Task{
		Name: t.Name + "#vote", Gops: 0.01, Cores: 1,
		In:  []*taskrt.Data{shadowA, shadowB},
		Out: s.deps(t.Out), InOut: s.deps(t.InOut),
		Priority: t.Priority, Critical: true,
	})
}

// Report is the outcome of a Run.
type Report struct {
	Makespan sim.Time
	Records  []taskrt.Record
	// TaskEnergyJ is the dynamic energy of all task executions.
	TaskEnergyJ float64
	// PlatformEnergyJ integrates every device meter (idle + dynamic).
	PlatformEnergyJ float64
	// SecurityEnergyJ is the enclave's accumulated cost.
	SecurityEnergyJ float64
	// ReplicatedTasks counts DMR-expanded submissions.
	ReplicatedTasks int
	// Energy is the per-device breakdown.
	Energy *energy.Report
}

// Run executes the submitted graph and returns the report.
func (s *System) Run() (*Report, error) {
	res, err := s.rt.Run()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Makespan:        res.Makespan,
		Records:         res.Records,
		TaskEnergyJ:     res.EnergyJ,
		SecurityEnergyJ: s.enclave.EnergyNJ * 1e-9,
		ReplicatedTasks: s.replicas,
		Energy:          energy.NewReport(),
	}
	for _, d := range s.devices {
		rep.Energy.Add(d.ID, d.Meter().Energy())
		rep.PlatformEnergyJ += d.Meter().Energy()
	}
	return rep, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
