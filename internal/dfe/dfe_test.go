package dfe

import (
	"math"
	"testing"
)

// saxpyGraph builds y = a*x + b over streams x (input), constants a, b.
func saxpyGraph(a, b float64) *Graph {
	g := NewGraph()
	x := g.Input("x")
	ax := g.Bin(OpMul, g.Const(a), x)
	y := g.Bin(OpAdd, ax, g.Const(b))
	if err := g.Output("y", y); err != nil {
		panic(err)
	}
	return g
}

func TestRunSaxpy(t *testing.T) {
	g := saxpyGraph(2, 1)
	out, err := g.Run(map[string][]float64{"x": {0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5, 7}
	for i, w := range want {
		if out["y"][i] != w {
			t.Fatalf("y[%d] = %v, want %v", i, out["y"][i], w)
		}
	}
}

func TestRunValidation(t *testing.T) {
	g := saxpyGraph(1, 0)
	if _, err := g.Run(map[string][]float64{}); err == nil {
		t.Fatal("missing input accepted")
	}
	g2 := NewGraph()
	a := g2.Input("a")
	b := g2.Input("b")
	if err := g2.Output("s", g2.Bin(OpAdd, a, b)); err != nil {
		t.Fatal(err)
	}
	_, err := g2.Run(map[string][]float64{"a": {1, 2}, "b": {1}})
	if err == nil {
		t.Fatal("mismatched stream lengths accepted")
	}
}

func TestMuxSelects(t *testing.T) {
	g := NewGraph()
	c := g.Input("c")
	m := g.Mux(c, g.Const(10), g.Const(20))
	if err := g.Output("o", m); err != nil {
		t.Fatal(err)
	}
	out, err := g.Run(map[string][]float64{"c": {1, -1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 20}
	for i, w := range want {
		if out["o"][i] != w {
			t.Fatalf("mux[%d] = %v want %v", i, out["o"][i], w)
		}
	}
}

func TestDivByZeroIsInf(t *testing.T) {
	g := NewGraph()
	x := g.Input("x")
	if err := g.Output("o", g.Bin(OpDiv, g.Const(1), x)); err != nil {
		t.Fatal(err)
	}
	out, err := g.Run(map[string][]float64{"x": {0}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out["o"][0], 1) {
		t.Fatalf("1/0 = %v", out["o"][0])
	}
}

func TestPipelineDepth(t *testing.T) {
	// mul(3) then add(1): depth 4.
	g := saxpyGraph(2, 1)
	if d := g.PipelineDepth(); d != 4 {
		t.Fatalf("depth: got %d want 4", d)
	}
	// Chain of two muls: 6.
	g2 := NewGraph()
	x := g2.Input("x")
	m1 := g2.Bin(OpMul, x, x)
	m2 := g2.Bin(OpMul, m1, x)
	if err := g2.Output("o", m2); err != nil {
		t.Fatal(err)
	}
	if d := g2.PipelineDepth(); d != 6 {
		t.Fatalf("chained depth: got %d want 6", d)
	}
}

func TestDuplicateOutputRejected(t *testing.T) {
	g := NewGraph()
	x := g.Input("x")
	if err := g.Output("o", x); err != nil {
		t.Fatal(err)
	}
	if err := g.Output("o", x); err == nil {
		t.Fatal("duplicate output accepted")
	}
}

func TestStreamTimingModel(t *testing.T) {
	e := NewEngine("dfe0")
	g := saxpyGraph(1, 1) // depth 4
	n := 1000000
	sec := e.StreamSeconds(g, n)
	want := float64(4+n-1) / 200e6
	if math.Abs(sec-want) > 1e-12 {
		t.Fatalf("stream time %v, want %v", sec, want)
	}
	if e.StreamSeconds(g, 0) != 0 {
		t.Fatal("zero-length stream should take no time")
	}
	// Throughput approaches one element per cycle for long streams.
	eps := sec*200e6/float64(n) - 1
	if eps > 0.001 {
		t.Fatalf("long-stream throughput off: %v cycles/element", 1+eps)
	}
}

func TestStreamEnergy(t *testing.T) {
	e := NewEngine("dfe0")
	g := saxpyGraph(1, 1)
	j := e.StreamEnergyJ(g, 1000)
	if j <= 0 {
		t.Fatal("no energy accounted")
	}
	// Energy grows with stream length.
	if e.StreamEnergyJ(g, 2000) <= j {
		t.Fatal("energy not monotone in stream length")
	}
}

func TestOpStrings(t *testing.T) {
	for _, o := range []Op{OpInput, OpConst, OpAdd, OpSub, OpMul, OpDiv, OpMux, OpOutput} {
		if o.String() == "" {
			t.Fatal("empty op name")
		}
	}
}
