package legato

// Tests for the resilience surface of the public API: typed sentinel
// errors, the Wait cancellation contract under concurrent waiters,
// WithFaults + Job.Checkpoint + TaskBuilder.Retry end-to-end, and the
// failure/checkpoint spans the tracer collects.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"legato/internal/faults"
	"legato/internal/ft"
	"legato/internal/fti"
	"legato/internal/hw"
)

// Every sentinel must be matchable with errors.Is through the public
// wrapper errors the API returns.
func TestTypedGraphErrors(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("frozen")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Submit(Task{Name: "bad", Gops: 1, In: []string{"ghost"}}); !errors.Is(err, ErrUndeclaredRegion) {
		t.Fatalf("undeclared input: err = %v, want ErrUndeclaredRegion", err)
	}
	if err := job.Submit(Task{Name: "ok", Gops: 1}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := job.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := job.Submit(Task{Name: "late", Gops: 1}); !errors.Is(err, ErrGraphFrozen) {
		t.Fatalf("submit after start: err = %v, want ErrGraphFrozen", err)
	}
	if err := job.Checkpoint(4, fti.L1); !errors.Is(err, ErrGraphFrozen) {
		t.Fatalf("checkpoint after start: err = %v, want ErrGraphFrozen", err)
	}
	if err := job.Start(ctx); !errors.Is(err, ErrGraphFrozen) {
		t.Fatalf("double start: err = %v, want ErrGraphFrozen", err)
	}
	if _, err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := job.Checkpoint(0, fti.L1); err == nil {
		t.Fatal("non-positive checkpoint interval accepted")
	}
	if err := job.Checkpoint(1, fti.Level(99)); err == nil {
		t.Fatal("unknown checkpoint level accepted")
	}
}

// A cancelled job must yield the same typed error to every concurrent
// waiter — never a nil report with a nil error.
func TestWaitTypedCancellationConcurrent(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("doomed")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prev := job.Data("d0", 64)
	for i := 0; i < 8; i++ {
		next := job.Data(fmt.Sprintf("d%d", i+1), 64)
		b := job.Task(fmt.Sprintf("t%d", i)).Gops(10).In(prev).Out(next)
		if i == 4 {
			b = b.Do(cancel)
		}
		if err := b.Submit(); err != nil {
			t.Fatal(err)
		}
		prev = next
	}
	if err := job.Start(ctx); err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	reports := make([]*Report, waiters)
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = job.Wait(context.Background())
		}(i)
	}
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if reports[i] == nil && errs[i] == nil {
			t.Fatalf("waiter %d: nil report AND nil error", i)
		}
		if !errors.Is(errs[i], ErrJobCancelled) {
			t.Fatalf("waiter %d: err = %v, want ErrJobCancelled", i, errs[i])
		}
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("waiter %d: err = %v does not carry context.Canceled", i, errs[i])
		}
	}
}

// WithFaults arms the session: the sampled crash removes a device
// fleet-wide, surviving jobs complete, and the loss is visible in the
// session stats and the shared fleet ledger.
func TestWithFaultsEndToEnd(t *testing.T) {
	// An FPGA MTBF of a microsecond pins the (single) sampled crash to the
	// session's first instants, before any placement can settle on it.
	plan := faults.Plan{MTBF: ft.MTBFModel{hw.FPGA: 1e-6}, MaxCrashes: 1, Seed: 1}
	sys, err := NewSystem(WithPolicy(MinTime), WithFaults(plan), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())

	ctx := context.Background()
	var jobs []*Job
	for n := 0; n < 4; n++ {
		job, err := sys.NewJob(fmt.Sprintf("survivor%d", n))
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Checkpoint(2, fti.L1); err != nil {
			t.Fatal(err)
		}
		prev := job.Data("d0", 1<<16)
		for i := 0; i < 6; i++ {
			next := job.Data(fmt.Sprintf("d%d", i+1), 1<<16)
			if err := job.Task(fmt.Sprintf("t%d", i)).Gops(20).Retry(2).
				In(prev).Out(next).Submit(); err != nil {
				t.Fatal(err)
			}
			prev = next
		}
		if err := job.Start(ctx); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		rep, err := job.Wait(ctx)
		if err != nil {
			t.Fatalf("job %s did not survive the crash: %v", job.Name(), err)
		}
		if rep.Checkpoints == 0 {
			t.Fatalf("job %s committed no checkpoints", job.Name())
		}
	}
	st := sys.Stats()
	if st.JobsCompleted != 4 {
		t.Fatalf("jobs completed = %d, want 4", st.JobsCompleted)
	}
	if st.DevicesLost != 1 {
		t.Fatalf("devices lost = %d, want 1", st.DevicesLost)
	}
	lost := 0
	for _, id := range sys.Fleet().Devices() {
		if sys.Fleet().Lost(id) {
			lost++
			if sys.Fleet().Capacity(id) != 0 {
				t.Fatalf("lost device %s still has capacity %d", id, sys.Fleet().Capacity(id))
			}
		}
	}
	if lost != 1 {
		t.Fatalf("fleet ledger records %d lost devices, want 1", lost)
	}
}

// A mid-run device loss on the job's preferred device surfaces in the
// report counters and as "failure" (and "checkpoint") spans in the session
// tracer.
func TestFailureSpansAndReportCounters(t *testing.T) {
	sys, err := NewSystem(WithPolicy(MinTime))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	ctx := context.Background()

	// Probe which device the MinTime policy prefers for a 1-core task.
	probe, err := sys.NewJob("probe")
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Task("p").Gops(1).Out(probe.Data("pd", 64)).Submit(); err != nil {
		t.Fatal(err)
	}
	pr, err := probe.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	favourite := pr.Records[0].Device

	job, err := sys.NewJob("victim")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Checkpoint(1, fti.L1); err != nil {
		t.Fatal(err)
	}
	prev := job.Data("d0", 1<<16)
	for i := 0; i < 4; i++ {
		next := job.Data(fmt.Sprintf("d%d", i+1), 1<<16)
		if err := job.Task(fmt.Sprintf("t%d", i)).Gops(50).Retry(3).
			In(prev).Out(next).Submit(); err != nil {
			t.Fatal(err)
		}
		prev = next
	}
	// Crash the favourite on this job's private clock mid-first-task; the
	// runtime re-places the revoked execution on a survivor.
	rt := job.ej.Runtime()
	rt.ScheduleFault(100*time.Microsecond, func() { rt.FailDevice(favourite) })

	rep, err := job.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatalf("no retries in report: %+v", rep)
	}
	for _, rec := range rep.Records {
		if rec.Device == favourite {
			t.Fatalf("task %s still ran on the crashed device %s", rec.Name, favourite)
		}
	}
	var failureSpans, ckptSpans int
	for _, sp := range sys.Tracer().Spans() {
		switch sp.Category {
		case "failure":
			failureSpans++
		case "checkpoint":
			ckptSpans++
		}
	}
	if failureSpans == 0 {
		t.Fatal("tracer has no failure spans")
	}
	if ckptSpans == 0 || rep.Checkpoints == 0 {
		t.Fatalf("tracer ckpt spans = %d, report checkpoints = %d, want both > 0",
			ckptSpans, rep.Checkpoints)
	}
}
