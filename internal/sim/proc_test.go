package sim

import (
	"testing"
)

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Go("p", func(p *Proc) {
		p.Sleep(10)
		times = append(times, p.Now())
		p.Sleep(5)
		times = append(times, p.Now())
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("sleep times: %v", times)
	}
	if e.ActiveProcs() != 0 {
		t.Fatalf("process leaked: %d", e.ActiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20) // wakes at 30
		order = append(order, "a30")
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "b20")
	})
	e.Run()
	want := []string{"a10", "b20", "a30"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("interleaving: got %v want %v", order, want)
		}
	}
}

func TestProcAwaitPipe(t *testing.T) {
	e := NewEngine()
	pipe := NewPipe(e, 100, 0)
	var doneAt Time
	e.Go("xfer", func(p *Proc) {
		p.TransferP(pipe, 200) // 2 seconds at 100 B/s
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != Seconds(2) {
		t.Fatalf("transfer completed at %v, want 2s", doneAt)
	}
}

func TestProcUseResource(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var ends []Time
	for i := 0; i < 2; i++ {
		e.Go("u", func(p *Proc) {
			p.UseP(r, 10)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	if len(ends) != 2 || ends[0] != 10 || ends[1] != 20 {
		t.Fatalf("resource serialisation via procs: %v", ends)
	}
}

func TestMailboxRendezvous(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox(e)
	var got any
	var gotAt Time
	e.Go("recv", func(p *Proc) {
		got = mb.Get(p)
		gotAt = p.Now()
	})
	e.Go("send", func(p *Proc) {
		p.Sleep(30)
		mb.Put("hello")
	})
	e.Run()
	if got != "hello" || gotAt != 30 {
		t.Fatalf("mailbox: got %v at %v", got, gotAt)
	}
}

func TestMailboxBuffered(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox(e)
	mb.Put(1)
	mb.Put(2)
	if mb.Len() != 2 {
		t.Fatalf("len: %d", mb.Len())
	}
	var got []int
	e.Go("r", func(p *Proc) {
		got = append(got, mb.Get(p).(int), mb.Get(p).(int))
	})
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("fifo order: %v", got)
	}
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox returned an item")
	}
}

func TestMailboxMultipleWaitersFIFO(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox(e)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			mb.Get(p)
			order = append(order, i)
		})
	}
	e.Go("s", func(p *Proc) {
		p.Sleep(5)
		for i := 0; i < 3; i++ {
			mb.Put(i)
		}
	})
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("waiter wake order: %v", order)
	}
}

func TestBarrier(t *testing.T) {
	e := NewEngine()
	const n = 4
	b := NewBarrier(e, n)
	var released []Time
	for i := 0; i < n; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(Time(10 * (i + 1))) // arrive at 10, 20, 30, 40
			b.Wait(p)
			released = append(released, p.Now())
		})
	}
	e.Run()
	if len(released) != n {
		t.Fatalf("released %d of %d", len(released), n)
	}
	for _, r := range released {
		if r != 40 {
			t.Fatalf("barrier released at %v, want 40 (last arrival)", r)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 2)
	count := 0
	for i := 0; i < 2; i++ {
		e.Go("p", func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Sleep(1)
				b.Wait(p)
				count++
			}
		})
	}
	e.Run()
	if count != 6 {
		t.Fatalf("reusable barrier rounds: %d", count)
	}
	if e.ActiveProcs() != 0 {
		t.Fatal("deadlocked processes after reusable barrier")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox(e)
	e.Go("stuck", func(p *Proc) {
		mb.Get(p) // never satisfied
	})
	e.Run()
	if e.ActiveProcs() != 1 {
		t.Fatalf("expected 1 deadlocked process, got %d", e.ActiveProcs())
	}
}
