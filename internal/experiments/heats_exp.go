package experiments

import (
	"fmt"
	"strings"

	"legato/internal/cluster"
	"legato/internal/heats"
	"legato/internal/hw"
	"legato/internal/monitor"
	"legato/internal/sim"
)

// HEATSRow is one α point of the trade-off sweep (Fig. 7 behaviour / [10]).
type HEATSRow struct {
	Alpha        float64
	MakespanSec  float64
	TaskEnergyJ  float64
	TotalEnergyJ float64
	Migrations   int
}

// HEATSResult is the α sweep.
type HEATSResult struct {
	Rows []HEATSRow
}

// HEATS runs the heterogeneity/energy-aware scheduling experiment: a batch
// of profiled tasks on a mixed x86+ARM cluster, sweeping the customer's
// energy/performance weight α.
func HEATS(alphas []float64, tasks int) (*HEATSResult, error) {
	res := &HEATSResult{}
	for _, alpha := range alphas {
		eng := sim.NewEngine()
		cl := cluster.New(eng)
		for i := 0; i < 2; i++ {
			cl.AddNode(fmt.Sprintf("x86-%d", i), hw.XeonD())
		}
		for i := 0; i < 2; i++ {
			cl.AddNode(fmt.Sprintf("arm-%d", i), hw.ARMv8Server())
		}
		mon := monitor.New(eng, cl)
		proto := map[string]*cluster.Task{
			"batch": {Kind: "batch", CPU: 4, Gops: 200},
		}
		model := heats.ProfileCluster(cl, proto)
		sched := heats.New(eng, cl, mon, model, heats.Config{Alpha: alpha})
		batch := make([]*cluster.Task, tasks)
		for i := range batch {
			batch[i] = &cluster.Task{
				Name: fmt.Sprintf("task-%d", i), Kind: "batch",
				CPU: 4, MemBytes: 1 << 28, Gops: 200,
			}
		}
		sched.Submit(batch...)
		end, err := sched.Run()
		if err != nil {
			return nil, err
		}
		taskE := 0.0
		for _, t := range batch {
			taskE += t.EnergyJ
		}
		res.Rows = append(res.Rows, HEATSRow{
			Alpha:        alpha,
			MakespanSec:  sim.ToSeconds(end),
			TaskEnergyJ:  taskE,
			TotalEnergyJ: cl.TotalEnergy(),
			Migrations:   sched.Migrations,
		})
	}
	return res, nil
}

// EnergySavingPercent compares the last α row (energy-first) against the
// first (performance-first).
func (r *HEATSResult) EnergySavingPercent() float64 {
	if len(r.Rows) < 2 {
		return 0
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.TaskEnergyJ == 0 {
		return 0
	}
	return (1 - last.TaskEnergyJ/first.TaskEnergyJ) * 100
}

// Table renders the sweep.
func (r *HEATSResult) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig. 7 / [10] — HEATS energy-performance trade-off (α sweep)\n")
	fmt.Fprintf(&sb, "%6s %12s %14s %14s %11s\n",
		"alpha", "makespan s", "task E (J)", "total E (J)", "migrations")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%6.2f %12.2f %14.1f %14.1f %11d\n",
			row.Alpha, row.MakespanSec, row.TaskEnergyJ, row.TotalEnergyJ, row.Migrations)
	}
	fmt.Fprintf(&sb, "energy-first saves %.1f%% task energy vs performance-first\n",
		r.EnergySavingPercent())
	return sb.String()
}
