package engine

import (
	"context"
	"testing"

	"legato/internal/power"
	"legato/internal/taskrt"
)

// TestPowerLedgerWiredToFleet checks the core-ledger/watt-ledger coupling:
// a Fleet.Fail mid-session must release the lost device's draw from the
// power ledger (idle and granted dynamic watts), and late releases from
// jobs crossing the crash on private clocks must not double-release.
func TestPowerLedgerWiredToFleet(t *testing.T) {
	e, err := New(Config{Workers: 1, Policy: taskrt.MinTime, NewPlatform: testPlatform,
		PowerCapW: 100, Governor: power.PackAndThrottle})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Shutdown(context.Background()) }()

	pw := e.Power()
	// testPlatform idles at 10 + 5 = 15 W.
	if got := pw.Draw(); got != 15 {
		t.Fatalf("initial draw = %v, want 15 W idle floor", got)
	}
	if !pw.TryDraw("dev/cpu", 30) {
		t.Fatal("draw refused")
	}
	e.Fleet().Fail("dev/cpu")
	if !pw.Lost("dev/cpu") {
		t.Fatal("fleet failure not forwarded to the power ledger")
	}
	// cpu idle (10) and its granted 30 W both gone: only fpga idle remains.
	if got := pw.Draw(); got != 5 {
		t.Fatalf("draw after Fail = %v, want 5", got)
	}
	pw.ReleaseDraw("dev/cpu", 30) // late revocation: must be a no-op
	if got := pw.Draw(); got != 5 {
		t.Fatalf("draw after late release = %v, want 5 (double release)", got)
	}
}

// TestCapEnforcedUnderDeviceLoss runs a capped multi-job session that
// loses a device mid-traffic and asserts the peak-draw witness across the
// whole session: the modelled fleet draw never exceeded the cap, before or
// after the loss, and every job still completed.
func TestCapEnforcedUnderDeviceLoss(t *testing.T) {
	// testPlatform peak: cpu 60 + fpga 25 = 85 W. A 60 W cap forces the
	// watt ledger to arbitrate: cpu full-width draw is 50 W dynamic + 15 W
	// idle = 65 W > cap, so wide cpu placements must wait for headroom.
	const capW = 60
	e, err := New(Config{Workers: 4, Policy: taskrt.MinTime, NewPlatform: testPlatform,
		PowerCapW: capW, Governor: power.PackAndThrottle})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Shutdown(context.Background()) }()

	ctx := context.Background()
	var jobs []*Job
	failed := false
	for n := 0; n < 6; n++ {
		fn := func() {}
		if n == 0 {
			// Fail the fpga from inside the first job's mid-chain task: the
			// loss lands mid-session while siblings hold draw.
			fn = func() {
				if !failed {
					failed = true
					e.Fleet().Fail("dev/fpga")
				}
			}
		}
		j := chainJob(t, e, "job"+string(rune('a'+n)), 4, 6, fn)
		jobs = append(jobs, j)
		if err := e.Submit(ctx, j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s: %v", j.Name, err)
		}
	}
	st := e.Stats()
	if st.JobsCompleted != 6 {
		t.Fatalf("jobs completed = %d, want 6", st.JobsCompleted)
	}
	if st.PeakDrawW > capW {
		t.Fatalf("peak draw %v W exceeded the %v W cap", st.PeakDrawW, capW)
	}
	if !e.Power().Lost("dev/fpga") {
		t.Fatal("mid-session loss never reached the power ledger")
	}
	// After the loss the fpga contributes nothing to the draw.
	if got := e.Power().DrawOf("dev/fpga"); got != 0 {
		t.Fatalf("lost device draw = %v, want 0", got)
	}
	if st.PowerCapW != capW {
		t.Fatalf("stats cap = %v, want %v", st.PowerCapW, capW)
	}
}

// TestInfeasibleCapRejected pins the construction-time guard: a cap the
// idle floor alone exhausts would park every placement forever, so the
// engine must refuse to start instead.
func TestInfeasibleCapRejected(t *testing.T) {
	// testPlatform idles at 15 W.
	for _, capW := range []float64{1, 15} {
		_, err := New(Config{Workers: 1, Policy: taskrt.MinTime, NewPlatform: testPlatform,
			PowerCapW: capW})
		if err == nil {
			t.Fatalf("cap %v W at or below the idle floor was accepted", capW)
		}
	}
	e, err := New(Config{Workers: 1, Policy: taskrt.MinTime, NewPlatform: testPlatform,
		PowerCapW: 16})
	if err != nil {
		t.Fatalf("barely-feasible cap rejected: %v", err)
	}
	_ = e.Shutdown(context.Background())
}

// TestUncappedSessionChargesIdle checks the session energy split: the
// platform energy includes the idle floor over the makespan, on top of the
// dynamic task energy.
func TestUncappedSessionChargesIdle(t *testing.T) {
	e := newTestEngine(t, 2)
	ctx := context.Background()
	j := chainJob(t, e, "idlecheck", 3, 2, nil)
	if err := e.Submit(ctx, j); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.PowerCapW != 0 {
		t.Fatalf("uncapped session reports cap %v", st.PowerCapW)
	}
	if st.PlatformEnergyJ <= st.EnergyJ {
		t.Fatalf("platform energy %v must exceed dynamic task energy %v (idle floor)",
			st.PlatformEnergyJ, st.EnergyJ)
	}
	if st.AvgPowerW <= 0 {
		t.Fatalf("avg power = %v, want > 0", st.AvgPowerW)
	}
}
