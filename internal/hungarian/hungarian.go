// Package hungarian implements the Kuhn-Munkres assignment algorithm in
// O(n³), used by the Smart Mirror pipeline to associate detections with
// tracks (paper Sec. VI). The implementation is the shortest augmenting
// path (Jonker-Volgenant style) formulation with potentials.
package hungarian

import (
	"fmt"
	"math"
)

// Solve finds the minimum-cost perfect assignment of rows to columns for
// an n×m cost matrix with n ≤ m. It returns assignment[r] = column of row
// r, and the total cost.
func Solve(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, fmt.Errorf("hungarian: need cols ≥ rows, got %dx%d", n, m)
	}
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("hungarian: ragged cost matrix at row %d", i)
		}
		for j, v := range row {
			if math.IsNaN(v) {
				return nil, 0, fmt.Errorf("hungarian: NaN cost at (%d,%d)", i, j)
			}
		}
	}

	// Potentials u (rows), v (cols); way[j] = previous column on the
	// augmenting path; matchCol[j] = row matched to column j.
	// 1-based internal indexing per the classic formulation.
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	matchCol := make([]int, m+1)
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}

	assignment := make([]int, n)
	total := 0.0
	for j := 1; j <= m; j++ {
		if matchCol[j] > 0 {
			assignment[matchCol[j]-1] = j - 1
			total += cost[matchCol[j]-1][j-1]
		}
	}
	return assignment, total, nil
}

// SolveWithThreshold solves the assignment and then voids pairs whose cost
// exceeds maxCost (returned as -1), the usual gating step in tracking
// association.
func SolveWithThreshold(cost [][]float64, maxCost float64) ([]int, error) {
	assignment, _, err := Solve(cost)
	if err != nil {
		return nil, err
	}
	for r, c := range assignment {
		if c >= 0 && cost[r][c] > maxCost {
			assignment[r] = -1
		}
	}
	return assignment, nil
}
