// Multi-job: a long-lived LEGaTO session running many independent task
// graphs concurrently on one shared cloud fleet. Each job owns a private
// virtual clock and platform mirror; the session's admission ledger keeps
// the union of placements feasible, so throughput scales with the worker
// pool while no device is ever oversubscribed. One job carries a deadline
// it cannot meet, demonstrating context-style cancellation end-to-end.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"legato"
	"legato/internal/sim"
)

// buildPipeline fills a job with four independent chains of five
// dependent stages each.
func buildPipeline(job *legato.Job) error {
	for c := 0; c < 4; c++ {
		prev := job.Data(fmt.Sprintf("chain%d/in", c), 2048)
		for stage := 0; stage < 5; stage++ {
			next := job.Data(fmt.Sprintf("chain%d/s%d", c, stage), 2048)
			if err := job.Task(fmt.Sprintf("chain%d/stage%d", c, stage)).
				Gops(25).In(prev).Out(next).Submit(); err != nil {
				return err
			}
			prev = next
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)

	sys, err := legato.NewSystem(
		legato.WithPlatform(legato.CloudPlatform),
		legato.WithPolicy(legato.MinTime),
		legato.WithWorkers(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer sys.Close(ctx)

	// Eight independent jobs, started without waiting in between.
	var jobs []*legato.Job
	for n := 0; n < 8; n++ {
		job, err := sys.NewJob(fmt.Sprintf("tenant-%d", n))
		if err != nil {
			log.Fatal(err)
		}
		if err := buildPipeline(job); err != nil {
			log.Fatal(err)
		}
		if err := job.Start(ctx); err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, job)
	}

	// A ninth job with an impossible deadline: the engine cancels it and
	// returns its capacity to the fleet.
	doomed, err := sys.NewJob("tenant-doomed")
	if err != nil {
		log.Fatal(err)
	}
	if err := buildPipeline(doomed); err != nil {
		log.Fatal(err)
	}
	doomed.SetTimeout(time.Nanosecond)
	if err := doomed.Start(ctx); err != nil {
		log.Fatal(err)
	}

	for _, job := range jobs {
		rep, err := job.Wait(ctx)
		if err != nil {
			log.Fatalf("%s: %v", job.Name(), err)
		}
		fmt.Printf("%-12s done: %2d tasks, makespan %.3f s, energy %.2f J\n",
			job.Name(), len(rep.Records), sim.ToSeconds(rep.Makespan), rep.TaskEnergyJ)
	}
	if _, err := doomed.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) ||
		!errors.Is(err, legato.ErrJobCancelled) {
		log.Fatalf("doomed job: err = %v, want deadline exceeded + ErrJobCancelled", err)
	}
	fmt.Printf("%-12s %s (deadline enforced)\n\n", doomed.Name(), doomed.State())

	st := sys.Stats()
	fmt.Printf("session: %d jobs completed, %d cancelled, %d tasks\n",
		st.JobsCompleted, st.JobsCancelled, st.TasksCompleted)
	fmt.Printf("fleet time: %v serial-equivalent vs %v concurrent → %.2fx throughput\n",
		st.TotalJobTime, st.SessionMakespan, st.Speedup)
	fmt.Printf("admission stalls: %d (0 = contention-free overlap)\n", st.AdmissionStalls)
}
