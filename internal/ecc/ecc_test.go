package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripNoErrors(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEBABE} {
		cw := EncodeWord(v)
		got, corrected, err := DecodeWord(cw)
		if err != nil || corrected || got != v {
			t.Fatalf("clean decode of %x: got %x corrected=%v err=%v", v, got, corrected, err)
		}
	}
}

func TestSingleBitDataCorrection(t *testing.T) {
	v := uint64(0x0123456789ABCDEF)
	for bit := 0; bit < 64; bit++ {
		cw := EncodeWord(v)
		cw[bit/8] ^= 1 << uint(bit%8)
		got, corrected, err := DecodeWord(cw)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		if !corrected || got != v {
			t.Fatalf("bit %d not corrected: got %x", bit, got)
		}
	}
}

func TestSingleBitCheckCorrection(t *testing.T) {
	v := uint64(0xFEEDFACE12345678)
	for bit := 0; bit < 8; bit++ {
		cw := EncodeWord(v)
		cw[8] ^= 1 << uint(bit)
		got, corrected, err := DecodeWord(cw)
		if err != nil {
			t.Fatalf("check bit %d: %v", bit, err)
		}
		if !corrected || got != v {
			t.Fatalf("check bit %d not handled: got %x", bit, got)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	v := uint64(0x5555AAAA3333CCCC)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		cw := EncodeWord(v)
		b1 := rng.Intn(72)
		b2 := rng.Intn(72)
		for b2 == b1 {
			b2 = rng.Intn(72)
		}
		cw[b1/8] ^= 1 << uint(b1%8)
		cw[b2/8] ^= 1 << uint(b2%8)
		_, _, err := DecodeWord(cw)
		if err != ErrDoubleBit {
			t.Fatalf("double flip (%d,%d) not detected: err=%v", b1, b2, err)
		}
	}
}

// Property: any value survives any single-bit flip of its codeword.
func TestSingleBitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		v := rng.Uint64()
		bit := rng.Intn(72)
		cw := EncodeWord(v)
		cw[bit/8] ^= 1 << uint(bit%8)
		got, _, err := DecodeWord(cw)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceEncodeDecode(t *testing.T) {
	data := []byte("the legato toolset protects BRAM words with SECDED")
	enc := Encode(data)
	if len(enc)%CodewordBytes != 0 {
		t.Fatalf("encoded length %d", len(enc))
	}
	dec, stats, err := Decode(enc, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrected != 0 || stats.Uncorrected != 0 {
		t.Fatalf("clean decode reported errors: %+v", stats)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("round trip corrupted data")
	}
}

func TestSliceCorrection(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	enc := Encode(data)
	// Flip one bit in each of five different words.
	for w := 0; w < 5; w++ {
		enc[w*CodewordBytes*3+w] ^= 0x10
	}
	dec, stats, err := Decode(enc, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrected != 5 {
		t.Fatalf("corrected %d of 5", stats.Corrected)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("correction failed")
	}
}

func TestDecodeValidation(t *testing.T) {
	if _, _, err := Decode(make([]byte, 10), 8); err == nil {
		t.Fatal("bad encoded length accepted")
	}
	if _, _, err := Decode(make([]byte, 9), 100); err == nil {
		t.Fatal("impossible original length accepted")
	}
}

func TestOverhead(t *testing.T) {
	if Overhead() != 1.125 {
		t.Fatalf("overhead: %v", Overhead())
	}
}
