package plot

import (
	"strings"
	"testing"
)

func TestChartRendersAllSeries(t *testing.T) {
	c := Chart{Title: "test chart", XLabel: "volts", YLabel: "watts"}
	c.Add(Series{Name: "power", X: []float64{0, 1, 2}, Y: []float64{10, 5, 1}})
	c.Add(Series{Name: "faults", X: []float64{0, 1, 2}, Y: []float64{0, 2, 9}})
	out := c.Render()
	for _, frag := range []string{"test chart", "power", "faults", "volts", "watts"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, '+') {
		t.Fatal("series markers missing")
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	if !strings.Contains(c.Render(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartLogYDropsNonPositive(t *testing.T) {
	c := Chart{LogY: true}
	c.Add(Series{Name: "s", X: []float64{0, 1, 2}, Y: []float64{0, 10, 1000}})
	out := c.Render()
	if !strings.Contains(out, "log10") {
		t.Fatal("log axis not labelled")
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := Chart{}
	c.Add(Series{Name: "pt", X: []float64{5}, Y: []float64{7}})
	if c.Render() == "" {
		t.Fatal("single point failed to render")
	}
}

func TestBars(t *testing.T) {
	out := Bars("times", []string{"initial", "async"}, []float64{48.6, 4.0}, 30)
	if !strings.Contains(out, "initial") || !strings.Contains(out, "async") {
		t.Fatal("labels missing")
	}
	// The larger bar has more blocks.
	lines := strings.Split(out, "\n")
	var initBlocks, asyncBlocks int
	for _, l := range lines {
		n := strings.Count(l, "█")
		if strings.HasPrefix(l, "initial") {
			initBlocks = n
		}
		if strings.HasPrefix(l, "async") {
			asyncBlocks = n
		}
	}
	if initBlocks <= asyncBlocks {
		t.Fatalf("bar scaling wrong: %d vs %d", initBlocks, asyncBlocks)
	}
}

func TestBarsZeroMax(t *testing.T) {
	if Bars("z", []string{"a"}, []float64{0}, 10) == "" {
		t.Fatal("zero bars failed")
	}
}
