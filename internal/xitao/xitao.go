// Package xitao models the XiTAO runtime of the LEGaTO stack (paper
// Sec. II-C, [6]): tasks are generalised into TAOs — parallel computations
// with *elastic* resource width. The runtime molds each TAO's width to the
// currently available cores, which yields constructive sharing and
// interference freedom: wide moldable tasks shrink when the machine is
// busy instead of oversubscribing, and narrow machines never stall wide
// tasks.
//
// TAO speedup follows Amdahl's law with a per-TAO parallel fraction, so
// width choices trade core-seconds against wall-clock exactly as on real
// deep multicore topologies.
package xitao

import (
	"fmt"
	"sort"

	"legato/internal/sim"
)

// TAO is one task assembly object.
type TAO struct {
	Name string
	// Work is the sequential execution cost in giga-operations.
	Work float64
	// ParallelFrac is the Amdahl parallel fraction in [0,1].
	ParallelFrac float64
	// MaxWidth caps the resource width (0 = unbounded).
	MaxWidth int
	// After lists TAOs that must complete first.
	After []*TAO

	// Fn runs at completion (may be nil).
	Fn func()

	id    int
	deps  int
	succ  []*TAO
	done  bool
	state *Record
}

// Record traces one TAO execution.
type Record struct {
	Name  string
	Width int
	Start sim.Time
	End   sim.Time
	// CoreSeconds is width × duration: the resource cost.
	CoreSeconds float64
}

// Speedup returns the Amdahl speedup of the TAO at the given width.
func (t *TAO) Speedup(width int) float64 {
	if width <= 1 {
		return 1
	}
	p := t.ParallelFrac
	return 1.0 / ((1 - p) + p/float64(width))
}

// WidthPolicy selects TAO widths.
type WidthPolicy int

const (
	// Elastic molds width to free cores and queue pressure (the XiTAO
	// contribution).
	Elastic WidthPolicy = iota
	// FixedWide always requests MaxWidth (or all cores).
	FixedWide
	// FixedOne serialises each TAO on one core.
	FixedOne
)

// String names the policy.
func (p WidthPolicy) String() string {
	switch p {
	case Elastic:
		return "elastic"
	case FixedWide:
		return "fixed-wide"
	case FixedOne:
		return "fixed-1"
	default:
		return fmt.Sprintf("width-policy(%d)", int(p))
	}
}

// Runtime executes TAOs on a pool of identical cores.
type Runtime struct {
	eng    *sim.Engine
	cores  int
	free   int
	policy WidthPolicy
	// GOPSPerCore is the per-core throughput (default 10).
	GOPSPerCore float64

	taos   []*TAO
	ready  []*TAO
	nextID int
}

// New creates a runtime with the given core count and width policy.
func New(eng *sim.Engine, cores int, policy WidthPolicy) *Runtime {
	if cores <= 0 {
		panic("xitao: core count must be positive")
	}
	return &Runtime{eng: eng, cores: cores, free: cores, policy: policy, GOPSPerCore: 10}
}

// Submit adds a TAO; its After edges must reference already-submitted TAOs.
func (r *Runtime) Submit(t *TAO) error {
	if t.Work <= 0 {
		return fmt.Errorf("xitao: TAO %q needs positive work", t.Name)
	}
	if t.ParallelFrac < 0 || t.ParallelFrac > 1 {
		return fmt.Errorf("xitao: TAO %q parallel fraction %v outside [0,1]", t.Name, t.ParallelFrac)
	}
	t.id = r.nextID
	r.nextID++
	t.state = &Record{Name: t.Name}
	for _, dep := range t.After {
		if !dep.done {
			dep.succ = append(dep.succ, t)
			t.deps++
		}
	}
	r.taos = append(r.taos, t)
	if t.deps == 0 {
		r.ready = append(r.ready, t)
	}
	return nil
}

// chooseWidth implements the policies. Elastic: split the free cores over
// the ready queue so concurrent TAOs share constructively, then clamp to
// the TAO's own scaling limit (beyond which Amdahl returns nothing).
func (r *Runtime) chooseWidth(t *TAO, readyCount int) int {
	max := r.cores
	if t.MaxWidth > 0 && t.MaxWidth < max {
		max = t.MaxWidth
	}
	switch r.policy {
	case FixedOne:
		return 1
	case FixedWide:
		if max > r.free {
			return r.free
		}
		return max
	default:
		// Elastic: work-proportional share of the free cores across the
		// ready queue (which still contains t), so heavy TAOs get width
		// and light ones stay narrow.
		readyWork := 0.0
		for _, q := range r.ready {
			readyWork += q.Work
		}
		if readyWork <= 0 {
			readyWork = t.Work
		}
		w := int(float64(r.free)*t.Work/readyWork + 0.999)
		if w < 1 {
			w = 1
		}
		if w > max {
			w = max
		}
		// Don't take cores that Amdahl would waste: stop at the width where
		// marginal speedup per core drops below 50%.
		for w > 1 {
			gain := t.Speedup(w) / t.Speedup(w-1)
			if gain >= 1.0+0.5/float64(w) {
				break
			}
			w--
		}
		return w
	}
}

// dispatch starts ready TAOs while cores are free.
func (r *Runtime) dispatch() {
	// Highest work first: long TAOs get width early (LPT-flavoured).
	sort.SliceStable(r.ready, func(i, j int) bool {
		if r.ready[i].Work != r.ready[j].Work {
			return r.ready[i].Work > r.ready[j].Work
		}
		return r.ready[i].id < r.ready[j].id
	})
	for len(r.ready) > 0 && r.free > 0 {
		t := r.ready[0]
		w := r.chooseWidth(t, len(r.ready))
		if w > r.free {
			w = r.free
		}
		if w < 1 {
			return
		}
		r.ready = r.ready[1:]
		r.start(t, w)
	}
}

func (r *Runtime) start(t *TAO, width int) {
	r.free -= width
	t.state.Width = width
	t.state.Start = r.eng.Now()
	serial := t.Work / r.GOPSPerCore
	span := sim.Seconds(serial / t.Speedup(width))
	r.eng.Schedule(span, func() {
		r.free += width
		t.done = true
		t.state.End = r.eng.Now()
		t.state.CoreSeconds = float64(width) * sim.ToSeconds(t.state.End-t.state.Start)
		if t.Fn != nil {
			t.Fn()
		}
		for _, s := range t.succ {
			s.deps--
			if s.deps == 0 {
				r.ready = append(r.ready, s)
			}
		}
		r.dispatch()
	})
}

// Result summarises a run.
type Result struct {
	Makespan sim.Time
	Records  []Record
	// CoreSeconds is the total allocated resource cost (width × duration).
	CoreSeconds float64
	// UsefulCoreSeconds is the serial work content (what a perfect
	// width-1 execution would cost).
	UsefulCoreSeconds float64
	// Utilization is allocated core-seconds / (cores × makespan).
	Utilization float64
	// Efficiency is useful / allocated core-seconds: how little of the
	// allocation Amdahl wasted (the interference-freedom metric).
	Efficiency float64
}

// Run executes all submitted TAOs and reports the schedule.
func (r *Runtime) Run() (*Result, error) {
	r.dispatch()
	r.eng.Run()
	res := &Result{}
	for _, t := range r.taos {
		if !t.done {
			return nil, fmt.Errorf("xitao: TAO %q never ran", t.Name)
		}
		res.Records = append(res.Records, *t.state)
		if t.state.End > res.Makespan {
			res.Makespan = t.state.End
		}
		res.CoreSeconds += t.state.CoreSeconds
		res.UsefulCoreSeconds += t.Work / r.GOPSPerCore
	}
	if res.Makespan > 0 {
		res.Utilization = res.CoreSeconds / (float64(r.cores) * sim.ToSeconds(res.Makespan))
	}
	if res.CoreSeconds > 0 {
		res.Efficiency = res.UsefulCoreSeconds / res.CoreSeconds
	}
	return res, nil
}
