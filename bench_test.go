package legato

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md §7 for the experiment index). Each
// benchmark regenerates its artifact through internal/experiments — the
// same code path as cmd/legato-bench — and reports the headline numbers as
// custom metrics so `go test -bench` output documents the reproduction.

import (
	"context"
	"testing"
	"time"

	"legato/internal/experiments"
	"legato/internal/hw"
	"legato/internal/secure"
)

// BenchmarkFig5UndervoltSweep regenerates Fig. 5: voltage sweeps over all
// four FPGA boards with memory tests at every step.
func BenchmarkFig5UndervoltSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Board == "VC707" {
				b.ReportMetric(row.FaultsAtCrash, "VC707-faults/Mbit")
				b.ReportMetric(row.MaxSavingPercent, "VC707-saving-%")
			}
		}
	}
}

// BenchmarkFig6CheckpointRestart regenerates Fig. 6: Heat2D C/R over the
// full node sweep at 16 GB/process, initial vs async.
func BenchmarkFig6CheckpointRestart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6([]int{1, 4, 8, 16}, []float64{16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupCkpt(16), "ckpt-speedup-x")
		b.ReportMetric(res.SpeedupRec(16), "recover-speedup-x")
	}
}

// BenchmarkFig6LargeProblem regenerates the 32 GB/process panel.
func BenchmarkFig6LargeProblem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6([]int{1, 16}, []float64{32})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[32][0].CkptAsync, "ckpt-async-sec")
	}
}

// BenchmarkFig7HEATSTradeoff regenerates the HEATS α sweep (Fig. 7
// behaviour, [10]).
func BenchmarkFig7HEATSTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.HEATS([]float64{0, 0.25, 0.5, 0.75, 1}, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EnergySavingPercent(), "energy-saving-%")
	}
}

// BenchmarkSmartMirror regenerates the Sec. VI FPS/power comparison.
func BenchmarkSmartMirror(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Mirror(400, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FPS, "workstation-fps")
		b.ReportMetric(rows[0].PowerW, "workstation-W")
		b.ReportMetric(rows[1].FPS, "edge-fps")
		b.ReportMetric(rows[1].PowerW, "edge-W")
	}
}

// BenchmarkUndervoltML regenerates the Sec. III-C ML-resilience sweep.
func BenchmarkUndervoltML(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, baseline, err := experiments.UndervoltML(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(baseline-last.Accuracy, "accuracy-drop-at-crash")
		b.ReportMetric(last.SavingPercent, "saving-%")
	}
}

// BenchmarkSelectiveReplication regenerates the Sec. I selective
// replication study (E9).
func BenchmarkSelectiveReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Replication(600, 5, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		none, sel := rows[0], rows[1]
		if none.EnergyJ > 0 {
			b.ReportMetric(sel.EnergyJ/none.EnergyJ, "selective-energy-factor")
		}
		if sel.TaintedOutputs > 0 {
			b.ReportMetric(float64(none.TaintedOutputs)/float64(sel.TaintedOutputs), "reliability-gain-x")
		}
	}
}

// BenchmarkMTBFModel regenerates the Sec. IV MTBF-sustainability estimate.
func BenchmarkMTBFModel(b *testing.B) {
	fig6, err := experiments.Fig6([]int{1}, []float64{16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		factor, err := experiments.MTBF(fig6, 16, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(factor, "mtbf-factor-x")
	}
}

// BenchmarkXiTAOElastic regenerates the Sec. II-C elasticity ablation (E10).
func BenchmarkXiTAOElastic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.XiTAOElasticity(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MakespanSec, "elastic-makespan-sec")
		b.ReportMetric(rows[1].MakespanSec, "fixedwide-makespan-sec")
	}
}

// BenchmarkTaskRuntime measures the OmpSs-style runtime scheduling a
// dependence-heavy graph on the cloud platform (E10 substrate throughput).
func BenchmarkTaskRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(Config{Policy: MinEnergy})
		if err != nil {
			b.Fatal(err)
		}
		// Chain of stages with fan-out 8 each.
		prev := "stage0"
		sys.Data(prev, 1024)
		for stage := 1; stage <= 10; stage++ {
			cur := "stage" + string(rune('0'+stage%10)) + "x"
			for j := 0; j < 8; j++ {
				if err := sys.Submit(Task{
					Name: "work", Gops: 10,
					In: []string{prev}, Out: []string{cur + string(rune('a'+j))},
				}); err != nil {
					b.Fatal(err)
				}
			}
			prev = cur + "a"
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		_ = sys.Close(context.Background())
	}
}

// BenchmarkMultiJobThroughput measures the concurrent job engine (E11):
// 8 independent task graphs through an 8-worker session versus strictly
// serial submission, compared in fleet time. The acceptance bar for the
// engine is speedup-x >= 2; with a contention-free cloud fleet the greedy
// lane schedule reaches ~8x.
func BenchmarkMultiJobThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		serial := runThroughputSession(b, 1)
		conc := runThroughputSession(b, 8)
		speedup := float64(serial.SessionMakespan) / float64(conc.SessionMakespan)
		b.ReportMetric(speedup, "speedup-x")
		b.ReportMetric(float64(conc.AdmissionStalls), "admission-stalls")
		if speedup < 2 {
			b.Fatalf("concurrent engine speedup %.2fx, want >= 2x", speedup)
		}
	}
}

// BenchmarkObserverOverhead is the cost gate of the observability layer:
// the E11 multi-job workload with the (default) event bus armed but no
// listener attached must stay within 3% of the bus-free baseline's
// fleet-time throughput. The fleet-time speedup is deterministic (the
// virtual-time schedule cannot see observers), so the gate proves the
// idle bus never perturbs scheduling; the wall-clock ratio is reported
// as an informational metric of the host-side nil-check/atomic-load
// cost.
func BenchmarkObserverOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wall := time.Now()
		serialBase := runThroughputSession(b, 1, withoutObservability())
		concBase := runThroughputSession(b, 8, withoutObservability())
		baseWall := time.Since(wall)

		wall = time.Now()
		serialObs := runThroughputSession(b, 1)
		concObs := runThroughputSession(b, 8)
		obsWall := time.Since(wall)

		baseSpeedup := float64(serialBase.SessionMakespan) / float64(concBase.SessionMakespan)
		obsSpeedup := float64(serialObs.SessionMakespan) / float64(concObs.SessionMakespan)
		b.ReportMetric(baseSpeedup, "baseline-speedup-x")
		b.ReportMetric(obsSpeedup, "armed-idle-speedup-x")
		if baseWall > 0 {
			b.ReportMetric(float64(obsWall)/float64(baseWall), "wall-ratio")
		}
		if obsSpeedup < 0.97*baseSpeedup {
			b.Fatalf("armed-idle observer throughput %.3fx below 97%% of the bus-free baseline %.3fx",
				obsSpeedup, baseSpeedup)
		}
	}
}

// BenchmarkResilientThroughput regenerates E12: the 8-job session under an
// MTBF-driven single-device loss with async L1 checkpoints, versus the
// fault-free baseline. Acceptance gates: every job completes, makespan
// inflation ≤ 1.5×, zero admission oversubscription, and nonzero
// retry/restore counters.
func BenchmarkResilientThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Resilient(8, 8, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.InflationX, "inflation-x")
		b.ReportMetric(float64(res.Retries+res.Restores), "recoveries")
		b.ReportMetric(float64(res.Checkpoints), "checkpoints")
		if res.JobsCompleted != res.Jobs {
			b.Fatalf("only %d/%d jobs completed under device loss", res.JobsCompleted, res.Jobs)
		}
		if res.InflationX > 1.5 {
			b.Fatalf("makespan inflation %.2fx under single-device loss, want <= 1.5x", res.InflationX)
		}
		if res.PeakViolations != 0 {
			b.Fatalf("%d devices oversubscribed after the loss", res.PeakViolations)
		}
		if res.Crashes < 1 || res.Retries+res.Restores == 0 {
			b.Fatalf("no recovery exercised: crashes=%d retries=%d restores=%d",
				res.Crashes, res.Retries, res.Restores)
		}
	}
}

// BenchmarkPowerCap regenerates E13: the 8-job mixed-width session under a
// fleet power cap at 60% of nominal peak draw with the pack-and-throttle
// governor, versus uncapped, plus the placement-policy EDP comparison.
// Acceptance gates: the capped session's peak draw never exceeds the cap
// (peak-draw witness), the cap actually bound (power stalls observed),
// makespan inflation ≤ 1.5×, every job completes, and MinEDP beats MinTime
// on measured energy-delay product.
func BenchmarkPowerCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.PowerCap(8, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CappedPeakW, "peak-draw-W")
		b.ReportMetric(res.InflationX, "inflation-x")
		b.ReportMetric(float64(res.PowerStalls), "power-stalls")
		b.ReportMetric(res.MinEDPEDP/res.MinTimeEDP, "edp-ratio")
		if res.CapViolated {
			b.Fatalf("peak draw %.1f W exceeded the %.1f W cap", res.CappedPeakW, res.CapW)
		}
		if res.PowerStalls == 0 {
			b.Fatalf("power cap never bound (0 stalls): the witness is vacuous")
		}
		if res.JobsCompleted != res.Jobs {
			b.Fatalf("only %d/%d jobs completed under the power cap", res.JobsCompleted, res.Jobs)
		}
		if res.InflationX > 1.5 {
			b.Fatalf("makespan inflation %.2fx under the power cap, want <= 1.5x", res.InflationX)
		}
		if res.MinEDPEDP > res.MinTimeEDP {
			b.Fatalf("MinEDP measured EDP %.1f J·s worse than MinTime %.1f J·s",
				res.MinEDPEDP, res.MinTimeEDP)
		}
	}
}

// BenchmarkSecureOverhead measures the enclave cost profile (software vs
// SGX) over a sealing-heavy workload (the 10× goal of Sec. VII).
func BenchmarkSecureOverhead(b *testing.B) {
	root := []byte("bench-platform-root-key-00000000")
	for i := 0; i < b.N; i++ {
		workload := func(kind secure.TEEKind) *secure.Enclave {
			e, err := secure.New(kind, []byte("bench"), root)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 1<<20)
			for j := 0; j < 8; j++ {
				sealed, err := e.Seal(buf)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.Unseal(sealed); err != nil {
					b.Fatal(err)
				}
			}
			return e
		}
		sw := workload(secure.SoftwareOnly)
		hwE := workload(secure.SGX)
		b.ReportMetric(secure.OverheadRatio(sw, hwE), "hw-accel-x")
	}
}

// BenchmarkECCMitigation measures the SECDED ablation sweep (DESIGN.md §8).
func BenchmarkECCMitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ECCMitigation(64<<10, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		raw, eccBad := 0, 0
		for _, r := range rows {
			raw += r.PlainBadWords
			eccBad += r.ECCBadWords
		}
		b.ReportMetric(float64(raw), "raw-bad-words")
		b.ReportMetric(float64(eccBad), "ecc-bad-words")
	}
}

// BenchmarkTailLatency regenerates E14: the multi-job session under a
// degrade-heavy fault plan (one device silently 6× slower, invisible to
// placement) and a fleet power cap, hedged vs unhedged. Acceptance gates:
// hedging cuts both p99 task latency and session makespan, the hedged
// session's peak draw never exceeds the cap (hedges are admitted through
// the watt ledger), platform energy stays within 1.25× of the unhedged
// run, and the straggler/hedge counters prove the path was exercised.
func BenchmarkTailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Tail(6, 4, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.P99CutX, "p99-cut-x")
		b.ReportMetric(res.MakespanCutX, "makespan-cut-x")
		b.ReportMetric(res.EnergyRatioX, "energy-ratio-x")
		b.ReportMetric(res.HedgeWastedJ, "hedge-waste-J")
		if res.HedgedP99 >= res.BaseP99 {
			b.Fatalf("hedged p99 %v not below unhedged %v", res.HedgedP99, res.BaseP99)
		}
		if res.HedgedMakespan >= res.BaseMakespan {
			b.Fatalf("hedged makespan %v not below unhedged %v", res.HedgedMakespan, res.BaseMakespan)
		}
		if res.CapViolated {
			b.Fatalf("hedged peak draw %.1f W exceeded the %.1f W cap", res.HedgedPeakW, res.CapW)
		}
		if res.EnergyRatioX > 1.25 {
			b.Fatalf("hedged platform energy %.2fx the unhedged session, want <= 1.25x", res.EnergyRatioX)
		}
		if res.Stragglers == 0 || res.HedgesWon == 0 {
			b.Fatalf("tail path not exercised: stragglers=%d hedges-won=%d", res.Stragglers, res.HedgesWon)
		}
		if res.JobsCompleted != res.Jobs {
			b.Fatalf("only %d/%d jobs completed under hedging", res.JobsCompleted, res.Jobs)
		}
	}
}

// BenchmarkRECSBoxConstruction measures platform bring-up (E7).
func BenchmarkRECSBoxConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(Config{Platform: CloudPlatform})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(sys.Devices()); got != 15 {
			b.Fatalf("devices: %d", got)
		}
		_ = sys.Close(context.Background())
	}
	_ = hw.MaxMicroservers
}
