// legato-undervolt regenerates the paper's Fig. 5: VCCBRAM undervolting
// sweeps over the four studied FPGA boards, printing per-step voltage
// region, rail power, saving and fault density, plus the summary table.
//
// Usage:
//
//	legato-undervolt [-seed N] [-step V] [-board NAME] [-verbose]
package main

import (
	"flag"
	"fmt"
	"log"

	"legato/internal/experiments"
	"legato/internal/fpga"
	"legato/internal/plot"
	"legato/internal/undervolt"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 1, "weak-cell map seed (board fingerprint)")
	step := flag.Float64("step", 0.005, "sweep step in volts")
	board := flag.String("board", "", "sweep a single board (VC707, ZC702, KC705-A, KC705-B)")
	verbose := flag.Bool("verbose", false, "print every sweep step")
	flag.Parse()

	if *board != "" {
		var profile fpga.Profile
		found := false
		for _, p := range fpga.AllProfiles() {
			if p.Name == *board {
				profile, found = p, true
			}
		}
		if !found {
			log.Fatalf("unknown board %q", *board)
		}
		b := fpga.NewBoard(profile, *seed)
		s, err := undervolt.Run(b, profile.VNom, 0.45, *step)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(s.Table())
		return
	}

	res, err := experiments.Fig5(*seed)
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		for _, s := range res.Sweeps {
			fmt.Println(s.Table())
		}
	}
	fmt.Print(res.Table())

	// The two panels of Fig. 5 as ASCII charts.
	faults := plot.Chart{
		Title:  "fault density vs VCCBRAM (log scale — exponential growth in the critical region)",
		XLabel: "VCCBRAM (V)", YLabel: "faults/Mbit", LogY: true, Height: 14,
	}
	power := plot.Chart{
		Title: "rail power vs VCCBRAM (VC707)", XLabel: "VCCBRAM (V)", YLabel: "mW", Height: 12,
	}
	for _, sw := range res.Sweeps {
		var fx, fy []float64
		for _, pt := range sw.Points {
			if pt.Crashed {
				continue
			}
			if pt.FaultsPerMbit > 0 {
				fx = append(fx, pt.Voltage)
				fy = append(fy, pt.FaultsPerMbit)
			}
			if sw.Board == "VC707" {
				power.Add(plot.Series{Name: "rail mW", X: []float64{pt.Voltage}, Y: []float64{pt.RailWatts * 1000}})
			}
		}
		faults.Add(plot.Series{Name: sw.Board, X: fx, Y: fy})
	}
	fmt.Println()
	fmt.Print(faults.Render())
}
