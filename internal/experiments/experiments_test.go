package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFig5Experiment(t *testing.T) {
	res, err := Fig5(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("boards: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.Abs(row.FaultsAtCrash-row.PaperFaults)/row.PaperFaults > 0.05 {
			t.Fatalf("%s: measured %.1f faults/Mbit vs paper %.0f",
				row.Board, row.FaultsAtCrash, row.PaperFaults)
		}
	}
	// VC707 shows >90% saving.
	for _, row := range res.Rows {
		if row.Board == "VC707" && row.MaxSavingPercent <= 90 {
			t.Fatalf("VC707 saving %.1f%%, paper >90%%", row.MaxSavingPercent)
		}
	}
	if !strings.Contains(res.Table(), "VC707") {
		t.Fatal("table missing VC707")
	}
}

func TestFig6Experiment(t *testing.T) {
	// Scaled-down node sweep for test speed; the bench runs the full one.
	res, err := Fig6([]int{1, 4}, []float64{16})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows[16]
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Paper: 12.05× checkpoint, 5.13× recovery overhead reduction.
	if s := res.SpeedupCkpt(16); s < 9 || s > 15 {
		t.Fatalf("checkpoint speedup %.2f outside the published neighbourhood of 12.05", s)
	}
	if s := res.SpeedupRec(16); s < 4 || s > 7 {
		t.Fatalf("recovery speedup %.2f outside the published neighbourhood of 5.13", s)
	}
	// Weak scaling: overhead flat with node count (within 15%).
	for _, m := range []func(Fig6Row) float64{
		func(r Fig6Row) float64 { return r.CkptInitial },
		func(r Fig6Row) float64 { return r.CkptAsync },
		func(r Fig6Row) float64 { return r.RecInitial },
		func(r Fig6Row) float64 { return r.RecAsync },
	} {
		a, b := m(rows[0]), m(rows[1])
		if math.Abs(a-b)/math.Max(a, b) > 0.15 {
			t.Fatalf("weak scaling broken: 1 node %.2fs vs 4 nodes %.2fs", a, b)
		}
	}
	if !strings.Contains(res.Table(), "ckpt-async") {
		t.Fatal("table rendering broken")
	}
}
