// legato-ckpt regenerates the paper's Fig. 6: Heat2D checkpoint/restart
// times under the initial and async FTI implementations, weak-scaled over
// node counts, plus the derived MTBF-sustainability estimate (Sec. IV).
//
// Usage:
//
//	legato-ckpt [-nodes 1,4,8,16] [-sizes 16,32] [-mtbf-hours 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"legato/internal/experiments"
	"legato/internal/plot"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	nodesFlag := flag.String("nodes", "1,4,8,16", "node counts (4 ranks/node)")
	sizesFlag := flag.String("sizes", "16,32", "checkpoint GB per process")
	mtbfHours := flag.Float64("mtbf-hours", 4, "reference MTBF for the Daly estimate")
	flag.Parse()

	nodes, err := parseInts(*nodesFlag)
	if err != nil {
		log.Fatalf("bad -nodes: %v", err)
	}
	sizes, err := parseFloats(*sizesFlag)
	if err != nil {
		log.Fatalf("bad -sizes: %v", err)
	}

	res, err := experiments.Fig6(nodes, sizes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())

	row := res.Rows[sizes[0]][0]
	fmt.Println()
	fmt.Print(plot.Bars(
		fmt.Sprintf("Fig. 6 shape — C/R seconds at %.0f GB/process:", sizes[0]),
		[]string{"ckpt initial", "ckpt async", "recover initial", "recover async"},
		[]float64{row.CkptInitial, row.CkptAsync, row.RecInitial, row.RecAsync}, 46))

	factor, err := experiments.MTBF(res, sizes[0], *mtbfHours)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDaly-model estimate: at equal overhead the async implementation sustains\n"+
		"systems with %.1fx smaller MTBF (paper estimates 7x), reference MTBF %.0f h.\n",
		factor, *mtbfHours)
}
