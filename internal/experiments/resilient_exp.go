package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"legato/internal/engine"
	"legato/internal/faults"
	"legato/internal/ft"
	"legato/internal/fti"
	"legato/internal/monitor"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

// --- E12: resilient multi-job session under MTBF-driven device loss -----

// ResilientResult is the outcome of the E12 study: the same multi-job
// session as E11, run once fault-free and once under an MTBF-driven
// failure process that crashes exactly one device mid-traffic, with every
// job checkpointing asynchronously. The gate the benchmark enforces:
// every job completes, makespan inflation stays ≤ 1.5×, admission never
// oversubscribes a device, and the recovery counters are nonzero.
type ResilientResult struct {
	Jobs, Workers int
	// Seed is the fault-plan seed the deterministic search settled on.
	Seed int64
	// SeedsTried counts fault sessions run before one produced a
	// mid-traffic device loss with observable recovery work.
	SeedsTried int
	// LostDevice is the device crashed by the failure process.
	LostDevice string
	// CrashAt is the sampled crash time on the jobs' virtual clocks.
	CrashAt sim.Time
	// BaselineMakespan is the fault-free session fleet time (E11 shape).
	BaselineMakespan sim.Time
	// FaultMakespan is the session fleet time under the failure process.
	FaultMakespan sim.Time
	// InflationX is FaultMakespan / BaselineMakespan.
	InflationX float64
	// JobsCompleted of Jobs submitted; a resilient session completes all.
	JobsCompleted int
	Crashes       int
	Retries       int
	Restores      int
	Checkpoints   int
	// PeakViolations counts devices whose admission peak exceeded their
	// capacity — the oversubscription witness; must be zero.
	PeakViolations int
	// Registry holds the fault session's counters ("faults" scope and
	// per-job/per-device scopes).
	Registry *monitor.Registry
}

// resilientGraph is the E12 per-job workload: the E11 shape (4 chains × 5
// tasks) with 1 MiB output regions so the FTI cost model has real bytes to
// price. Four chains matter for the gate: the MinTime policy concentrates
// 1-core tasks on the best per-core device, and after that device is lost
// the four chains still fit the next-best device side by side — the
// re-placed schedule degrades by the device-speed ratio, not by queueing
// collapse onto slow CPUs.
func resilientGraph(rt *taskrt.Runtime, name string) error {
	return multiJobGraphSized(rt, name, 4, 5, 1<<20)
}

// multiJobGraphSized is multiJobGraph with a per-region byte size.
func multiJobGraphSized(rt *taskrt.Runtime, name string, chains, depth int, bytes int64) error {
	for c := 0; c < chains; c++ {
		prev := rt.Data(fmt.Sprintf("%s/c%d/d0", name, c), bytes)
		for i := 0; i < depth; i++ {
			next := rt.Data(fmt.Sprintf("%s/c%d/d%d", name, c, i+1), bytes)
			if err := rt.Submit(taskrt.Task{
				Name: fmt.Sprintf("%s/c%d/t%d", name, c, i),
				Gops: 25, Cores: 1,
				In: []*taskrt.Data{prev}, Out: []*taskrt.Data{next},
			}); err != nil {
				return err
			}
			prev = next
		}
	}
	return nil
}

// resilientSession runs one `jobs`-job session on the cloud fleet with the
// given fault plan (nil = fault-free) and returns the engine stats plus
// per-device peak/capacity from the ledger.
func resilientSession(jobs, workers int, plan *faults.Plan, ckptEvery int, reg *monitor.Registry) (engine.Stats, *engine.Fleet, error) {
	e, err := engine.New(engine.Config{
		Workers:     workers,
		Policy:      taskrt.MinTime,
		NewPlatform: cloudFleet,
		Registry:    reg,
		Faults:      plan,
	})
	if err != nil {
		return engine.Stats{}, nil, err
	}
	ctx := context.Background()
	var js []*engine.Job
	for n := 0; n < jobs; n++ {
		j, err := e.NewJob(fmt.Sprintf("job%d", n))
		if err != nil {
			return engine.Stats{}, nil, err
		}
		if ckptEvery > 0 {
			j.Runtime().SetCheckpoint(ckptEvery,
				func(bytes int64) sim.Time { return fti.LevelCost(fti.L1, bytes) },
				func(bytes int64) sim.Time { return fti.RestoreCost(fti.L1, bytes) })
		}
		if err := resilientGraph(j.Runtime(), j.Name); err != nil {
			return engine.Stats{}, nil, err
		}
		js = append(js, j)
		if err := e.Submit(ctx, j); err != nil {
			return engine.Stats{}, nil, err
		}
	}
	for _, j := range js {
		if _, err := j.Wait(ctx); err != nil {
			return engine.Stats{}, nil, fmt.Errorf("job %s: %w", j.Name, err)
		}
	}
	st := e.Stats()
	fleet := e.Fleet()
	if err := e.Shutdown(ctx); err != nil {
		return engine.Stats{}, nil, err
	}
	return st, fleet, nil
}

// Resilient runs the E12 study: an 8-job session (E11 shape, wider graphs)
// first fault-free for the baseline, then under an MTBF-driven failure
// process bounded to a single device crash, with async L1 checkpoints
// every 4 task completions. The per-class MTBF is set to the baseline
// session length, so a crash within the session is likely but not pinned;
// a deterministic seed search (seed, seed+1, ...) keeps the first fault
// session whose crash lands inside (0, baseline) *and* produces observable
// recovery work (revoked or restored tasks). The search is bounded; the
// virtual clock makes every candidate session deterministic.
func Resilient(jobs, workers int, seed int64) (*ResilientResult, error) {
	baseReg := monitor.NewRegistry()
	base, _, err := resilientSession(jobs, workers, nil, 0, baseReg)
	if err != nil {
		return nil, fmt.Errorf("experiments: E12 baseline: %w", err)
	}
	if base.SessionMakespan <= 0 {
		return nil, fmt.Errorf("experiments: E12 baseline produced no makespan")
	}
	// Devices the fault-free schedule actually used: a crash only exercises
	// recovery when it lands on busy silicon, so the seed search screens the
	// sampled timeline against this set before paying for a session.
	busy := map[string]bool{}
	for _, scope := range baseReg.Scopes() {
		if strings.HasPrefix(scope, "device/") && baseReg.ScopeSnapshot(scope)["tasks-completed"] > 0 {
			busy[strings.TrimPrefix(scope, "device/")] = true
		}
	}
	mtbfSec := sim.ToSeconds(base.SessionMakespan)
	model := ft.MTBFModel{}
	for class := range ft.DefaultMTBFModel() {
		model[class] = mtbfSec
	}
	refClock := sim.NewEngine()
	ref, err := cloudFleet(refClock)
	if err != nil {
		return nil, err
	}

	const maxSeeds = 512
	for s := seed; s < seed+maxSeeds; s++ {
		plan := faults.Plan{MTBF: model, MaxCrashes: 1, Seed: s}
		// Pre-screen the sampled timeline: the single crash must hit a
		// device the schedule uses, mid-traffic (not in the session's first
		// instants nor after the work has drained).
		events := plan.Schedule(ref)
		if len(events) == 0 || !busy[events[0].Device] {
			continue
		}
		if events[0].At < base.SessionMakespan/20 || events[0].At > base.SessionMakespan*4/5 {
			continue
		}
		reg := monitor.NewRegistry()
		st, fleet, err := resilientSession(jobs, workers, &plan, 4, reg)
		if err != nil {
			return nil, fmt.Errorf("experiments: E12 fault session (seed %d): %w", s, err)
		}
		if st.TasksRetried+st.TasksRestored == 0 || st.DevicesLost == 0 {
			continue // the crashed device was idle by the crash instant
		}
		violations := 0
		for _, id := range fleet.Devices() {
			if fleet.Peak(id) > fleet.Capacity(id) {
				violations++
			}
		}
		return &ResilientResult{
			Jobs: jobs, Workers: workers,
			Seed: s, SeedsTried: int(s-seed) + 1,
			LostDevice:       events[0].Device,
			CrashAt:          events[0].At,
			BaselineMakespan: base.SessionMakespan,
			FaultMakespan:    st.SessionMakespan,
			InflationX:       float64(st.SessionMakespan) / float64(base.SessionMakespan),
			JobsCompleted:    st.JobsCompleted,
			Crashes:          st.DevicesLost,
			Retries:          st.TasksRetried,
			Restores:         st.TasksRestored,
			Checkpoints:      st.Checkpoints,
			PeakViolations:   violations,
			Registry:         reg,
		}, nil
	}
	return nil, fmt.Errorf("experiments: E12 found no mid-session crash with recovery work in %d seeds from %d", maxSeeds, seed)
}

// ResilientTable renders the E12 result.
func ResilientTable(r *ResilientResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E12: %d jobs, %d workers — single-device loss at %v (%s, seed %d, %d tried)\n",
		r.Jobs, r.Workers, r.CrashAt.Round(time.Microsecond), r.LostDevice, r.Seed, r.SeedsTried)
	fmt.Fprintf(&b, "%-22s %-14s %-10s\n", "", "makespan", "inflation")
	fmt.Fprintf(&b, "%-22s %-14v %-10s\n", "fault-free", r.BaselineMakespan, "1.00x")
	fmt.Fprintf(&b, "%-22s %-14v %-10s\n", "one device lost", r.FaultMakespan,
		fmt.Sprintf("%.2fx", r.InflationX))
	fmt.Fprintf(&b, "jobs completed %d/%d · crashes %d · retries %d · restores %d · checkpoints %d · peak violations %d\n",
		r.JobsCompleted, r.Jobs, r.Crashes, r.Retries, r.Restores, r.Checkpoints, r.PeakViolations)
	return b.String()
}
