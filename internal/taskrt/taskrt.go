// Package taskrt implements the OmpSs-style task runtime of the LEGaTO
// stack (paper Sec. II-C): tasks declare in/out/inout dependences on data
// regions, the runtime derives the task graph from program order, and a
// scheduler places ready tasks on the heterogeneous devices (SMP cores,
// GPUs, FPGAs) that the hw layer models — optimising for time, energy, or
// energy-delay product, which is how the task abstraction "maximises
// optimisation opportunities for low-energy computing" (Sec. I).
package taskrt

import (
	"context"
	"fmt"
	"sort"

	"legato/internal/energy"
	"legato/internal/hw"
	"legato/internal/sim"
)

// Admission arbitrates real device capacity between runtimes that execute
// concurrently on independent virtual clocks (the multi-job engine). Each
// runtime schedules against its own platform mirror, but before a task may
// occupy cores it must win the corresponding capacity from the shared
// ledger, keyed by device ID — so the union of all placements never
// oversubscribes the physical fleet.
//
// Implementations must be safe for concurrent use. Changed returns a
// channel that is closed on the next Release after the call; a runtime
// grabs it before dispatching so a release racing with a failed
// TryAcquire can never be missed.
type Admission interface {
	TryAcquire(deviceID string, cores int) bool
	Release(deviceID string, cores int)
	Changed() <-chan struct{}
}

// Hooks observe the task lifecycle. Hooks registered with AddHooks are
// invoked on the goroutine driving the runtime: Queued at submission,
// Started when a task begins executing on a device, Finished when it
// completes (with the full Record). Any field may be nil.
type Hooks struct {
	Queued   func(name string)
	Started  func(Record)
	Finished func(Record)
}

// Data is a named data region tasks depend on.
type Data struct {
	Name string
	Size int64

	lastWriter *node
	readers    []*node
	version    int
}

// Dep is a dependence declaration.
type Dep int

const (
	// In: the task reads the region.
	In Dep = iota
	// Out: the task overwrites the region.
	Out
	// InOut: the task reads and writes the region.
	InOut
)

// Task is one unit of work.
type Task struct {
	Name string
	// Gops is the task's computational cost in giga-operations.
	Gops float64
	// Cores is the requested parallel width on the chosen device
	// (default 1).
	Cores int
	// Targets lists acceptable device classes in preference order; empty
	// means any device.
	Targets []hw.Class
	// In, Out, InOut declare data dependences.
	In, Out, InOut []*Data
	// Priority breaks ties in the ready queue (higher first).
	Priority int
	// Critical marks the task reliability-critical (selective replication,
	// paper Sec. I: "only the most reliability-critical tasks will be
	// replicated").
	Critical bool
	// Fn runs at completion time (simulated); may be nil.
	Fn func()
}

// node is a submitted task with graph state.
type node struct {
	task    Task
	id      int
	deps    int     // unsatisfied predecessor count
	succ    []*node // successors
	done    bool
	started bool

	record Record
}

// Record is the execution trace of one task.
type Record struct {
	ID       int
	Name     string
	Device   string
	Class    hw.Class
	Start    sim.Time
	End      sim.Time
	EnergyJ  energy.Joules
	Critical bool
}

// Policy selects the placement objective.
type Policy int

const (
	// MinTime places each ready task on the device finishing it soonest.
	MinTime Policy = iota
	// MinEnergy places on the device with the lowest dynamic energy.
	MinEnergy
	// MinEDP minimises energy × delay.
	MinEDP
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case MinTime:
		return "min-time"
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-edp"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Runtime is one task-graph execution context.
type Runtime struct {
	eng     *sim.Engine
	devices []*hw.Device
	policy  Policy

	nodes  []*node
	ready  []*node
	nextID int
	inDAG  int // submitted, not finished

	adm     Admission      // nil: sole owner of its devices
	hooks   []Hooks
	held    map[string]int // admission grants currently held, by device ID
	blocked bool           // a ready task lost admission this dispatch round
}

// New creates a runtime over the given devices.
func New(eng *sim.Engine, devices []*hw.Device, policy Policy) *Runtime {
	return &Runtime{eng: eng, devices: devices, policy: policy, held: make(map[string]int)}
}

// SetAdmission installs a shared capacity ledger. Must be called before the
// first Submit. With no admission the runtime assumes exclusive ownership
// of its devices, which is the historical single-tenant behaviour.
func (r *Runtime) SetAdmission(a Admission) { r.adm = a }

// AddHooks registers lifecycle observers; multiple sets compose and fire
// in registration order.
func (r *Runtime) AddHooks(h Hooks) { r.hooks = append(r.hooks, h) }

// Data declares a data region.
func (r *Runtime) Data(name string, size int64) *Data {
	return &Data{Name: name, Size: size}
}

// Submit adds a task, wiring dependences against earlier submissions
// (program order), exactly like OmpSs #pragma omp task in/out clauses.
func (r *Runtime) Submit(t Task) error {
	if t.Cores <= 0 {
		t.Cores = 1
	}
	if t.Gops < 0 {
		return fmt.Errorf("taskrt: task %q has negative cost", t.Name)
	}
	n := &node{task: t, id: r.nextID}
	r.nextID++
	n.record = Record{ID: n.id, Name: t.Name, Critical: t.Critical}

	addEdge := func(from *node) {
		if from == nil || from.done {
			return
		}
		from.succ = append(from.succ, n)
		n.deps++
	}
	for _, d := range t.In {
		addEdge(d.lastWriter)
		d.readers = append(d.readers, n)
	}
	for _, d := range t.InOut {
		addEdge(d.lastWriter)
		for _, rd := range d.readers {
			if rd != n {
				addEdge(rd)
			}
		}
		d.lastWriter = n
		d.readers = d.readers[:0]
		d.version++
	}
	for _, d := range t.Out {
		// Output and anti dependences: wait for previous writer and readers
		// (no renaming in this runtime).
		addEdge(d.lastWriter)
		for _, rd := range d.readers {
			if rd != n {
				addEdge(rd)
			}
		}
		d.lastWriter = n
		d.readers = d.readers[:0]
		d.version++
	}

	r.nodes = append(r.nodes, n)
	r.inDAG++
	for _, h := range r.hooks {
		if h.Queued != nil {
			h.Queued(t.Name)
		}
	}
	if n.deps == 0 {
		r.enqueue(n)
	}
	return nil
}

// enqueue adds a ready node, keeping the queue priority-sorted.
func (r *Runtime) enqueue(n *node) {
	r.ready = append(r.ready, n)
	sort.SliceStable(r.ready, func(i, j int) bool {
		if r.ready[i].task.Priority != r.ready[j].task.Priority {
			return r.ready[i].task.Priority > r.ready[j].task.Priority
		}
		return r.ready[i].id < r.ready[j].id
	})
}

// compatible reports whether dev can run t.
func compatible(t Task, dev *hw.Device) bool {
	if !dev.Healthy() {
		return false
	}
	if dev.Spec.Cores < t.Cores {
		return false
	}
	if len(t.Targets) == 0 {
		return true
	}
	for _, c := range t.Targets {
		if dev.Spec.Class == c {
			return true
		}
	}
	return false
}

// score returns the policy objective for running t on dev now (lower is
// better); ok=false if the device cannot take the task at this instant.
func (r *Runtime) score(t Task, dev *hw.Device) (float64, bool) {
	if !compatible(t, dev) {
		return 0, false
	}
	free := dev.Spec.Cores - dev.BusyCores()
	if free < t.Cores {
		return 0, false
	}
	execSec := sim.ToSeconds(dev.ExecTime(t.Gops, t.Cores))
	energyJ := dev.EnergyFor(t.Gops, t.Cores)
	switch r.policy {
	case MinEnergy:
		return energyJ, true
	case MinEDP:
		return energyJ * execSec, true
	default:
		return execSec, true
	}
}

// dispatch assigns as many ready tasks as possible.
func (r *Runtime) dispatch() {
	for {
		assigned := false
		for qi := 0; qi < len(r.ready); qi++ {
			n := r.ready[qi]
			best := -1
			bestScore := 0.0
			for di, dev := range r.devices {
				if s, ok := r.score(n.task, dev); ok && (best == -1 || s < bestScore) {
					best, bestScore = di, s
				}
			}
			if best == -1 {
				continue // no device free for this task right now
			}
			dev := r.devices[best]
			if r.adm != nil && !r.adm.TryAcquire(dev.ID, n.task.Cores) {
				// The fleet capacity behind this device is occupied by a
				// sibling job; leave the task queued and note the stall so
				// RunContext knows to wait for a global release.
				r.blocked = true
				continue
			}
			r.ready = append(r.ready[:qi], r.ready[qi+1:]...)
			r.start(n, dev)
			assigned = true
			break
		}
		if !assigned {
			return
		}
	}
}

// start runs n on dev. The caller has already won global admission for the
// task's cores when a shared ledger is installed.
func (r *Runtime) start(n *node, dev *hw.Device) {
	t := n.task
	if err := dev.Acquire(t.Cores); err != nil {
		// Raced with another assignment; requeue and give back admission.
		if r.adm != nil {
			r.adm.Release(dev.ID, t.Cores)
		}
		r.enqueue(n)
		return
	}
	if r.adm != nil {
		r.held[dev.ID] += t.Cores
	}
	n.started = true
	n.record.Device = dev.ID
	n.record.Class = dev.Spec.Class
	n.record.Start = r.eng.Now()
	n.record.EnergyJ = dev.EnergyFor(t.Gops, t.Cores)
	for _, h := range r.hooks {
		if h.Started != nil {
			h.Started(n.record)
		}
	}
	span := dev.ExecTime(t.Gops, t.Cores)
	r.eng.Schedule(span, func() {
		dev.Release(t.Cores)
		if r.adm != nil {
			r.held[dev.ID] -= t.Cores
			r.adm.Release(dev.ID, t.Cores)
		}
		n.record.End = r.eng.Now()
		n.done = true
		r.inDAG--
		if t.Fn != nil {
			t.Fn()
		}
		for _, h := range r.hooks {
			if h.Finished != nil {
				h.Finished(n.record)
			}
		}
		for _, s := range n.succ {
			s.deps--
			if s.deps == 0 && !s.done {
				r.enqueue(s)
			}
		}
		r.dispatch()
	})
}

// Result summarises a completed run.
type Result struct {
	Makespan sim.Time
	Records  []Record
	// EnergyJ is the summed dynamic task energy.
	EnergyJ energy.Joules
}

// Run executes the submitted graph to completion and returns the trace.
// It fails if tasks remain blocked (a dependence cycle cannot occur by
// construction, so leftovers mean no compatible device exists).
func (r *Runtime) Run() (*Result, error) { return r.RunContext(context.Background()) }

// RunContext executes the submitted graph to completion, honouring ctx:
// cancellation or deadline expiry is checked between every simulated event,
// aborts the run with the context's error, and returns any admission grants
// held by in-flight tasks so sibling runtimes can make progress. When the
// runtime shares devices through an Admission ledger and every ready task
// is stalled on foreign occupancy, the goroutine parks until capacity is
// released elsewhere (or ctx fires) — the job's virtual clock does not
// advance while parked. A runtime that returned an error must not be run
// again.
func (r *Runtime) RunContext(ctx context.Context) (*Result, error) {
	abort := func(err error) (*Result, error) {
		r.releaseHeld()
		return nil, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		// Grab the change channel before dispatching: a release that races
		// with a failed TryAcquire below closes this very channel, so the
		// park cannot miss the wakeup.
		var changed <-chan struct{}
		if r.adm != nil {
			changed = r.adm.Changed()
		}
		r.blocked = false
		r.dispatch()
		if r.eng.Step() {
			continue
		}
		// Event queue drained: either the graph is done, or progress needs
		// capacity currently owned by a sibling job, or no device can ever
		// host a leftover task.
		if r.inDAG == 0 {
			break
		}
		if r.blocked && r.adm != nil {
			select {
			case <-changed:
			case <-ctx.Done():
				return abort(ctx.Err())
			}
			continue
		}
		for _, n := range r.nodes {
			if !n.done {
				return abort(fmt.Errorf("taskrt: task %q never ran (no compatible device?)", n.task.Name))
			}
		}
	}
	res := &Result{}
	for _, n := range r.nodes {
		res.Records = append(res.Records, n.record)
		if n.record.End > res.Makespan {
			res.Makespan = n.record.End
		}
		res.EnergyJ += n.record.EnergyJ
	}
	return res, nil
}

// releaseHeld returns every admission grant still held by in-flight tasks,
// so a cancelled job cannot strand fleet capacity.
func (r *Runtime) releaseHeld() {
	if r.adm == nil {
		return
	}
	for id, n := range r.held {
		if n > 0 {
			r.adm.Release(id, n)
		}
		delete(r.held, id)
	}
}
