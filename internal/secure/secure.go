// Package secure implements the LEGaTO security-by-design layer of paper
// Sec. I: enclaves in the style of SGX (x86) and TrustZone (ARM), with
// measurement, HMAC-based attestation, AES-GCM sealed storage and secure
// task execution. LEGaTO's goal is "energy-efficient security" — hardware
// support accelerates software-based security — so every operation carries
// an energy cost model with a software-only and a hardware-assisted
// profile; the gap reproduces the project's 10× security-overhead target.
package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// TEEKind is the trusted-execution technology backing an enclave.
type TEEKind int

const (
	// SoftwareOnly performs all crypto in software (no acceleration).
	SoftwareOnly TEEKind = iota
	// SGX models x86 instruction-level support.
	SGX
	// TrustZone models ARM world-switching support.
	TrustZone
)

// String names the TEE kind.
func (k TEEKind) String() string {
	switch k {
	case SGX:
		return "sgx"
	case TrustZone:
		return "trustzone"
	default:
		return "software-only"
	}
}

// CostModel is the energy price of security operations in nanojoules per
// byte processed, plus a fixed per-operation cost.
type CostModel struct {
	SealNJPerByte float64
	AttestFixedNJ float64
	EnterExitNJ   float64 // world/enclave transition
}

// costFor returns the cost model of a TEE kind. Hardware support
// (AES-NI-class instructions, dedicated measurement units) is roughly an
// order of magnitude cheaper per byte than software crypto.
func costFor(kind TEEKind) CostModel {
	switch kind {
	case SGX:
		return CostModel{SealNJPerByte: 1.2, AttestFixedNJ: 8000, EnterExitNJ: 4000}
	case TrustZone:
		return CostModel{SealNJPerByte: 1.8, AttestFixedNJ: 9000, EnterExitNJ: 2500}
	default:
		return CostModel{SealNJPerByte: 14, AttestFixedNJ: 90000, EnterExitNJ: 0}
	}
}

// Enclave is one trusted execution context.
type Enclave struct {
	Kind TEEKind
	// Measurement is the SHA-256 of the enclave's code identity
	// (MRENCLAVE-like).
	Measurement [32]byte

	sealKey   []byte
	attestKey []byte
	aead      cipher.AEAD
	cost      CostModel

	// EnergyNJ accumulates the modelled energy cost of all operations.
	EnergyNJ float64
	// Ops counts security operations.
	Ops int
}

// New creates an enclave for the given code identity. The sealing and
// attestation keys are derived from the platform root key and the
// measurement, as on real TEEs (same code → same sealed-data access).
func New(kind TEEKind, code []byte, platformRootKey []byte) (*Enclave, error) {
	if len(platformRootKey) == 0 {
		return nil, errors.New("secure: platform root key required")
	}
	e := &Enclave{Kind: kind, cost: costFor(kind)}
	e.Measurement = sha256.Sum256(code)

	derive := func(label string) []byte {
		m := hmac.New(sha256.New, platformRootKey)
		m.Write([]byte(label))
		m.Write(e.Measurement[:])
		return m.Sum(nil)
	}
	e.sealKey = derive("seal")[:32]
	e.attestKey = derive("attest")

	block, err := aes.NewCipher(e.sealKey)
	if err != nil {
		return nil, fmt.Errorf("secure: sealing cipher: %w", err)
	}
	e.aead, err = cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secure: GCM mode: %w", err)
	}
	return e, nil
}

// Seal encrypts data so only an enclave with the same measurement on the
// same platform can recover it.
func (e *Enclave) Seal(plaintext []byte) ([]byte, error) {
	nonce := make([]byte, e.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("secure: nonce: %w", err)
	}
	out := e.aead.Seal(nonce, nonce, plaintext, e.Measurement[:])
	e.charge(float64(len(plaintext))*e.cost.SealNJPerByte + e.cost.EnterExitNJ)
	return out, nil
}

// ErrSealBroken reports failed authentication during unsealing.
var ErrSealBroken = errors.New("secure: sealed blob failed authentication")

// Unseal decrypts a sealed blob.
func (e *Enclave) Unseal(sealed []byte) ([]byte, error) {
	ns := e.aead.NonceSize()
	if len(sealed) < ns {
		return nil, ErrSealBroken
	}
	plain, err := e.aead.Open(nil, sealed[:ns], sealed[ns:], e.Measurement[:])
	if err != nil {
		return nil, ErrSealBroken
	}
	e.charge(float64(len(plain))*e.cost.SealNJPerByte + e.cost.EnterExitNJ)
	return plain, nil
}

// Quote is an attestation statement binding a nonce to a measurement.
type Quote struct {
	Measurement [32]byte
	Nonce       uint64
	MAC         [32]byte
}

// Attest produces a quote over the verifier's nonce.
func (e *Enclave) Attest(nonce uint64) Quote {
	q := Quote{Measurement: e.Measurement, Nonce: nonce}
	m := hmac.New(sha256.New, e.attestKey)
	m.Write(q.Measurement[:])
	var nb [8]byte
	binary.LittleEndian.PutUint64(nb[:], nonce)
	m.Write(nb[:])
	copy(q.MAC[:], m.Sum(nil))
	e.charge(e.cost.AttestFixedNJ)
	return q
}

// Verify checks a quote against an expected measurement. The verifier
// must hold the platform root key (a stand-in for the attestation
// service's key material).
func Verify(q Quote, expected [32]byte, platformRootKey []byte) bool {
	if q.Measurement != expected {
		return false
	}
	m := hmac.New(sha256.New, platformRootKey)
	m.Write([]byte("attest"))
	m.Write(q.Measurement[:])
	key := m.Sum(nil)

	mm := hmac.New(sha256.New, key)
	mm.Write(q.Measurement[:])
	var nb [8]byte
	binary.LittleEndian.PutUint64(nb[:], q.Nonce)
	mm.Write(nb[:])
	return hmac.Equal(mm.Sum(nil), q.MAC[:])
}

// RunSecure executes fn inside the enclave boundary, charging the
// enter/exit transition cost (the ECALL/OCALL or world-switch price).
func (e *Enclave) RunSecure(fn func()) {
	e.charge(e.cost.EnterExitNJ * 2)
	fn()
}

func (e *Enclave) charge(nj float64) {
	e.EnergyNJ += nj
	e.Ops++
}

// OverheadRatio compares the accumulated security energy of two enclaves
// that performed the same workload: software-only vs hardware-assisted
// (the 10× goal of Sec. VII).
func OverheadRatio(softwareOnly, hardware *Enclave) float64 {
	if hardware.EnergyNJ == 0 {
		return 0
	}
	return softwareOnly.EnergyNJ / hardware.EnergyNJ
}
