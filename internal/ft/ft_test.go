package ft

import (
	"math"
	"testing"

	"legato/internal/hw"
)

// chainCampaign builds a linear chain of n jobs, every k-th critical.
func chainCampaign(mode Mode, model SDCModel, n int, criticalEvery int, seed int64) (*Campaign, []*Job) {
	c := NewCampaign(mode, model, nil, seed)
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		j := &Job{Name: "job", Gops: 10, Critical: criticalEvery > 0 && i%criticalEvery == 0}
		if i > 0 {
			j.Deps = []*Job{jobs[i-1]}
		}
		jobs[i] = j
		if err := c.Add(j); err != nil {
			panic(err)
		}
	}
	return c, jobs
}

func TestAddValidatesDeps(t *testing.T) {
	c := NewCampaign(NoReplication, DefaultSDCModel(), nil, 1)
	orphan := &Job{Name: "dep"}
	j := &Job{Name: "x", Deps: []*Job{orphan}}
	if err := c.Add(j); err == nil {
		t.Fatal("unregistered dependency accepted")
	}
}

func TestNoFaultsNoTaint(t *testing.T) {
	zero := SDCModel{hw.CPUx86: 0, hw.CPUARM: 0, hw.GPU: 0, hw.FPGA: 0}
	c, jobs := chainCampaign(NoReplication, zero, 50, 0, 2)
	c.Run()
	if c.SDCsInjected != 0 || c.TaintedOutputs != 0 {
		t.Fatalf("faults with zero-probability model: %d/%d", c.SDCsInjected, c.TaintedOutputs)
	}
	for _, j := range jobs {
		if j.Tainted() {
			t.Fatal("job tainted without faults")
		}
	}
}

func TestTaintPropagatesDownstream(t *testing.T) {
	// Force corruption of exactly the first job via a model that is
	// certain on every class, then zero later: simplest is prob 1 on all
	// classes with a 1-job chain head... instead mark manually.
	c, jobs := chainCampaign(NoReplication, SDCModel{hw.CPUx86: 0, hw.CPUARM: 0, hw.GPU: 0, hw.FPGA: 0}, 10, 0, 3)
	c.Run()
	// Inject taint at job 3 and recompute propagation manually.
	jobs[3].corrupted = true
	for _, j := range jobs {
		j.tainted = j.corrupted
		for _, d := range j.Deps {
			if d.tainted {
				j.tainted = true
			}
		}
	}
	for i, j := range jobs {
		want := i >= 3
		if j.Tainted() != want {
			t.Fatalf("job %d tainted=%v want %v", i, j.Tainted(), want)
		}
	}
}

func TestRootCauseFindsOrigin(t *testing.T) {
	c, jobs := chainCampaign(NoReplication, SDCModel{}, 10, 0, 4)
	c.Run()
	jobs[2].corrupted = true
	for _, j := range jobs {
		j.tainted = j.corrupted
		for _, d := range j.Deps {
			if d.tainted {
				j.tainted = true
			}
		}
	}
	roots := RootCause(jobs[9])
	if len(roots) != 1 || roots[0] != jobs[2] {
		t.Fatalf("root cause: got %v want job 2", roots)
	}
}

func TestRootCauseMultipleOrigins(t *testing.T) {
	c := NewCampaign(NoReplication, SDCModel{}, nil, 5)
	a := &Job{Name: "a"}
	b := &Job{Name: "b"}
	merge := &Job{Name: "m", Deps: []*Job{a, b}}
	_ = c.Add(a)
	_ = c.Add(b)
	_ = c.Add(merge)
	c.Run()
	a.corrupted, a.tainted = true, true
	b.corrupted, b.tainted = true, true
	merge.tainted = true
	roots := RootCause(merge)
	if len(roots) != 2 {
		t.Fatalf("want 2 roots, got %d", len(roots))
	}
}

func TestReplicationDetectsAndMasks(t *testing.T) {
	// Very high fault probability to exercise detection.
	hot := SDCModel{hw.CPUx86: 0.3, hw.CPUARM: 0.3, hw.GPU: 0.3, hw.FPGA: 0.3}
	c, jobs := chainCampaign(ReplicateAll, hot, 200, 0, 6)
	c.Run()
	if c.SDCsInjected == 0 {
		t.Fatal("hot model injected nothing")
	}
	if c.SDCsDetected != c.SDCsInjected {
		t.Fatalf("replication missed SDCs: %d of %d", c.SDCsDetected, c.SDCsInjected)
	}
	for i, j := range jobs {
		if j.Tainted() {
			t.Fatalf("job %d tainted despite full replication", i)
		}
	}
}

func TestSelectiveReplicationTradeoff(t *testing.T) {
	hot := SDCModel{hw.CPUx86: 0.02, hw.CPUARM: 0.02, hw.GPU: 0.02, hw.FPGA: 0.02}
	run := func(mode Mode) (tainted int, energy float64) {
		// Wide graph: independent critical jobs, each feeding a report job.
		c := NewCampaign(mode, hot, nil, 7)
		for i := 0; i < 500; i++ {
			j := &Job{Name: "work", Gops: 10, Critical: i%5 == 0}
			_ = c.Add(j)
		}
		c.Run()
		return c.TaintedOutputs, c.EnergyJ
	}
	noneT, noneE := run(NoReplication)
	selT, selE := run(SelectiveCritical)
	allT, allE := run(ReplicateAll)
	if !(allT <= selT && selT <= noneT) {
		t.Fatalf("taint ordering wrong: all=%d sel=%d none=%d", allT, selT, noneT)
	}
	if !(noneE < selE && selE < allE) {
		t.Fatalf("energy ordering wrong: none=%.0f sel=%.0f all=%.0f", noneE, selE, allE)
	}
	// Selective must cost much less than full replication: its overhead vs
	// no-replication should be ≈ critical fraction (20%) × 2, i.e. well
	// under the ~2× of replicate-all.
	selOverhead := selE/noneE - 1
	allOverhead := allE/noneE - 1
	if selOverhead > 0.5*allOverhead {
		t.Fatalf("selective overhead %.2f not well below full %.2f", selOverhead, allOverhead)
	}
}

func TestDalyOptimalInterval(t *testing.T) {
	d := DalyModel{CkptSeconds: 50, RestartSeconds: 20}
	m := 3600.0
	if got, want := d.OptimalInterval(m), math.Sqrt(2*50*3600); math.Abs(got-want) > 1e-9 {
		t.Fatalf("tau*: got %v want %v", got, want)
	}
	// Waste decreases with MTBF.
	if d.Waste(3600) <= d.Waste(36000) {
		t.Fatal("waste should fall as MTBF grows")
	}
}

func TestSustainableMTBFInvertsWaste(t *testing.T) {
	d := DalyModel{CkptSeconds: 47, RestartSeconds: 19}
	for _, m := range []float64{600, 3600, 14400} {
		w := d.Waste(m)
		back := d.SustainableMTBF(w)
		if math.Abs(back-m)/m > 1e-9 {
			t.Fatalf("inversion failed: M=%v → w=%v → M=%v", m, w, back)
		}
	}
	// Zero restart branch.
	d0 := DalyModel{CkptSeconds: 10}
	w := d0.Waste(1000)
	if math.Abs(d0.SustainableMTBF(w)-1000)/1000 > 1e-9 {
		t.Fatal("zero-restart inversion failed")
	}
}

func TestMTBFImprovementMatchesPaper(t *testing.T) {
	// Paper Sec. IV: "for the same amount of application overhead, the
	// extended FTI version can sustain execution in systems with 7 times
	// smaller MTBF". Our measured C/R pairs (Fig. 6 reproduction):
	initial := DalyModel{CkptSeconds: 46.9, RestartSeconds: 19.0}
	async := DalyModel{CkptSeconds: 4.03, RestartSeconds: 4.01}
	factor := MTBFImprovement(initial, async, 4*3600)
	if factor < 7 {
		t.Fatalf("MTBF improvement %.1fx, paper estimates ≥7x", factor)
	}
	if factor > 20 {
		t.Fatalf("MTBF improvement %.1fx implausibly high", factor)
	}
}
