// Heat2D with GPU-aware checkpointing (paper Sec. IV, Listing 1): run the
// distributed Jacobi solver with FTI snapshots, crash it mid-run, lose a
// node's local storage, restart, recover from the partner copies, and
// verify the final state matches an uninterrupted run bit for bit.
package main

import (
	"fmt"
	"log"
	"math"

	"legato/internal/fti"
	"legato/internal/gpu"
	"legato/internal/heat2d"
	"legato/internal/mpi"
	"legato/internal/sim"
)

const (
	ranks = 4
	nodes = 4
)

func run(p heat2d.Params, st *fti.Store) ([]heat2d.RankResult, *fti.Store) {
	eng := sim.NewEngine()
	world, err := mpi.NewWorld(eng, mpi.Config{Size: ranks, RanksPerNode: 1})
	if err != nil {
		log.Fatal(err)
	}
	if st == nil {
		if st, err = fti.NewStore(eng, fti.StoreConfig{Nodes: nodes}); err != nil {
			log.Fatal(err)
		}
	} else {
		st.Rebind(eng)
	}
	res, err := heat2d.Run(eng, world, st, p)
	if err != nil {
		log.Fatal(err)
	}
	return res, st
}

func main() {
	log.SetFlags(0)
	params := heat2d.Params{
		NX: 64, NY: 32, Iters: 24,
		FTI: fti.Config{GroupSize: ranks, CkptEvery: 6, L2Every: 1},
		GPU: gpu.Config{},
	}

	fmt.Println("reference run (no failures)…")
	ref, _ := run(params, nil)

	fmt.Println("run with a crash after iteration 15…")
	crashed := params
	crashed.FailAtIter = 15
	_, store := run(crashed, nil)

	fmt.Println("node 2 loses its NVMe; restarting against the same store…")
	store.FailNode(2)
	rec, _ := run(params, store)

	allGood := true
	for r := 0; r < ranks; r++ {
		match := math.Abs(rec[r].Checksum-ref[r].Checksum) <=
			1e-9*math.Abs(ref[r].Checksum)+1e-12
		status := "OK"
		if !match {
			status = "MISMATCH"
			allGood = false
		}
		fmt.Printf("  rank %d: recovered=%v checkpoints=%d checksum %.6f vs %.6f  %s\n",
			r, rec[r].Recovered, rec[r].Stats.Checkpoints,
			rec[r].Checksum, ref[r].Checksum, status)
	}
	if allGood {
		fmt.Println("\nrecovered run matches the uninterrupted run exactly —")
		fmt.Println("rank 2 was rebuilt from its L2 partner copy after the node loss.")
	} else {
		log.Fatal("recovery mismatch")
	}
}
