package taskrt

import (
	"fmt"
	"math/rand"
	"testing"

	"legato/internal/hw"
	"legato/internal/sim"
)

// placeOne runs a single one-task graph under the given policy on a fresh
// instantiation of the specs and returns the chosen device's measured
// execution seconds and dynamic energy.
func placeOne(t *testing.T, specs []hw.Spec, policy Policy, gops float64, cores int) (execSec, energyJ float64) {
	t.Helper()
	clock := sim.NewEngine()
	devs := make([]*hw.Device, 0, len(specs))
	for i, sp := range specs {
		devs = append(devs, hw.NewDevice(clock, fmt.Sprintf("d%d", i), sp))
	}
	rt := New(clock, devs, policy)
	out := rt.Data("out", 64)
	if err := rt.Submit(Task{Name: "probe", Gops: gops, Cores: cores, Out: []*Data{out}}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(res.Records))
	}
	rec := res.Records[0]
	return sim.ToSeconds(rec.End - rec.Start), float64(rec.EnergyJ)
}

// TestPolicyPicksTable pins the three policies to the placements the
// RECS|BOX-style spec fork implies: fastest, most energy-frugal, and the
// EDP sweet spot, all distinct devices.
func TestPolicyPicksTable(t *testing.T) {
	specs := []hw.Spec{
		// fast and hot: best time, terrible energy.
		{Name: "hot", Class: hw.CPUx86, Cores: 4, GOPS: 400, IdleWatts: 20, PeakWatts: 120},
		// slow and frugal: best energy, terrible time.
		{Name: "cool", Class: hw.GPU, Cores: 4, GOPS: 40, IdleWatts: 1, PeakWatts: 2},
		// balanced: best energy × time.
		{Name: "mid", Class: hw.FPGA, Cores: 4, GOPS: 200, IdleWatts: 4, PeakWatts: 16},
	}
	type pick struct {
		policy Policy
		sec    float64
		eJ     float64
	}
	picks := map[string]pick{}
	for name, p := range map[string]Policy{"time": MinTime, "energy": MinEnergy, "edp": MinEDP} {
		sec, eJ := placeOne(t, specs, p, 100, 1)
		picks[name] = pick{p, sec, eJ}
	}
	// MinTime picked the fastest: 100 Gops on 1 of 4 cores at 400 GOPS = 1 s.
	if picks["time"].sec != 1 {
		t.Fatalf("MinTime exec = %v s, want 1 (the hot device)", picks["time"].sec)
	}
	// MinEnergy picked the frugal device: 0.25 W/core × 10 s = 2.5 J.
	if picks["energy"].eJ != 2.5 {
		t.Fatalf("MinEnergy energy = %v J, want 2.5 (the cool device)", picks["energy"].eJ)
	}
	// MinEDP picked the balanced device: 2 s × 6 J = 12 J·s, beating both
	// hot (1 s × 25 J) and cool (10 s × 2.5 J).
	if got := picks["edp"].sec * picks["edp"].eJ; got != 12 {
		t.Fatalf("MinEDP product = %v J·s, want 12 (the mid device)", got)
	}
}

// TestMinEDPNeverWorse is the property test over random platforms: the
// MinEDP placement's measured energy-delay product is never worse than the
// MinTime or MinEnergy placement's, for the same task.
func TestMinEDPNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(5)
		specs := make([]hw.Spec, 0, n)
		for i := 0; i < n; i++ {
			idle := 1 + rng.Float64()*20
			specs = append(specs, hw.Spec{
				Name:      fmt.Sprintf("r%d", i),
				Class:     hw.Class(rng.Intn(5)),
				Cores:     1 + rng.Intn(16),
				GOPS:      10 + rng.Float64()*990,
				IdleWatts: idle,
				PeakWatts: idle + 5 + rng.Float64()*100,
			})
		}
		gops := 5 + rng.Float64()*200
		timeSec, timeE := placeOne(t, specs, MinTime, gops, 1)
		energySec, energyE := placeOne(t, specs, MinEnergy, gops, 1)
		edpSec, edpE := placeOne(t, specs, MinEDP, gops, 1)

		const eps = 1e-9
		edp := edpSec * edpE
		if edp > timeSec*timeE+eps {
			t.Fatalf("trial %d: MinEDP product %.6f > MinTime pick's %.6f", trial, edp, timeSec*timeE)
		}
		if edp > energySec*energyE+eps {
			t.Fatalf("trial %d: MinEDP product %.6f > MinEnergy pick's %.6f", trial, edp, energySec*energyE)
		}
		// And the other two really optimise their own objective.
		if timeSec > edpSec+eps || timeSec > energySec+eps {
			t.Fatalf("trial %d: MinTime pick is not the fastest", trial)
		}
		if energyE > edpE+eps || energyE > timeE+eps {
			t.Fatalf("trial %d: MinEnergy pick is not the most frugal", trial)
		}
	}
}

// TestUndervoltScoringAndRecord checks the undervolt knob end to end at
// the runtime layer: the record carries the level, and the dynamic energy
// shrinks quadratically with the voltage scale.
func TestUndervoltScoringAndRecord(t *testing.T) {
	spec := hw.Spec{Name: "uv", Class: hw.FPGA, Cores: 4, GOPS: 200, IdleWatts: 4, PeakWatts: 16}
	run := func(level int) Record {
		clock := sim.NewEngine()
		devs := []*hw.Device{hw.NewDevice(clock, "d0", spec)}
		rt := New(clock, devs, MinEnergy)
		out := rt.Data("out", 64)
		if err := rt.Submit(Task{Name: "probe", Gops: 100, Cores: 1, Undervolt: level, Out: []*Data{out}}); err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Records[0]
	}
	base := run(0)
	uv := run(2)
	if uv.Undervolt != 2 {
		t.Fatalf("record undervolt = %d, want 2", uv.Undervolt)
	}
	// Level 2 shaves 10% of voltage: energy scales by 0.9² = 0.81.
	if got, want := float64(uv.EnergyJ), float64(base.EnergyJ)*0.81; got != want {
		t.Fatalf("undervolted energy = %v, want %v", got, want)
	}
	if uv.End-uv.Start != base.End-base.Start {
		t.Fatal("undervolting changed execution time (frequency must be unchanged)")
	}

	// Out-of-range levels are rejected at submission.
	clock := sim.NewEngine()
	rt := New(clock, []*hw.Device{hw.NewDevice(clock, "d0", spec)}, MinEnergy)
	if err := rt.Submit(Task{Name: "bad", Gops: 1, Cores: 1, Undervolt: 99}); err == nil {
		t.Fatal("submit accepted an out-of-range undervolt level")
	}
}
