package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"legato/internal/sim"
	"legato/internal/trace"
)

func sec(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }

func TestPrometheusTextNormalizesAndSorts(t *testing.T) {
	snap := map[string]map[string]float64{
		"job/ingest":      {"tasks-completed": 42, "energy-J": 12.5},
		"device/recs0/m3": {"tasks-completed": 7},
		"power":           {"peak-draw-W": 310},
	}
	got := PrometheusText(snap)
	want := `# TYPE legato_energy_J gauge
legato_energy_J{scope="job",name="ingest"} 12.5
# TYPE legato_peak_draw_W gauge
legato_peak_draw_W{scope="power"} 310
# TYPE legato_tasks_completed gauge
legato_tasks_completed{scope="device",name="recs0/m3"} 7
legato_tasks_completed{scope="job",name="ingest"} 42
`
	if got != want {
		t.Fatalf("exposition drifted:\ngot:\n%swant:\n%s", got, want)
	}
	// Determinism: repeated renders of the same snapshot are identical.
	if again := PrometheusText(snap); again != got {
		t.Fatal("exposition output is not deterministic")
	}
}

func TestPromNameRejectsIllegalRunes(t *testing.T) {
	if got := promName("p99-latency.s"); got != "legato_p99_latency_s" {
		t.Fatalf("promName: got %q", got)
	}
}

func sampleSpans() []trace.Span {
	return []trace.Span{
		{Name: "stage0", Category: "queue", Resource: "stage0", Start: 0, End: 0},
		{Name: "stage0", Category: "task", Resource: "gpu0", Start: sec(1), End: sec(3)},
		{Name: "fleet-draw", Category: "power", Resource: "fleet", Start: sec(1), End: sec(1), Value: 120},
		{Name: "stage0#retry1(crash)", Category: "failure", Resource: "stage0", Start: sec(0.5), End: sec(0.5)},
		{Name: "stage0 hedge won on gpu1", Category: "hedge", Resource: "gpu1", Start: sec(2), End: sec(3), Value: 4},
		{Name: "report#shed", Category: "deadline", Resource: "report", Start: sec(4), End: sec(4)},
		{Name: "report", Category: "queue", Resource: "report", Start: 0, End: 0},
	}
}

func TestChromeTraceIsValidAndTyped(t *testing.T) {
	blob, err := ChromeTrace(sampleSpans(), map[string]float64{"hedges-won": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(blob) {
		t.Fatal("chrome trace is not valid JSON")
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]float64 `json:"otherData"`
	}
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, ev := range out.TraceEvents {
		phases[ev.Ph]++
		if ev.Name == "stage0" && ev.Ph == "X" {
			if ev.Ts != 1e6 || ev.Dur != 2e6 {
				t.Fatalf("task span mis-timed: ts=%g dur=%g (µs)", ev.Ts, ev.Dur)
			}
		}
		if ev.Name == "fleet-draw" {
			if ev.Ph != "C" || ev.Args["power"] != 120.0 {
				t.Fatalf("power sample must be a counter event: %+v", ev)
			}
		}
	}
	if phases["M"] < 2 || phases["X"] == 0 || phases["i"] == 0 || phases["C"] == 0 {
		t.Fatalf("missing phase kinds: %v", phases)
	}
	if out.OtherData["hedges-won"] != 1 {
		t.Fatalf("counters missing from otherData: %v", out.OtherData)
	}
}

func TestTimelinesBreakdown(t *testing.T) {
	tls := Timelines(sampleSpans())
	if len(tls) != 2 {
		t.Fatalf("got %d timelines, want 2 (stage0, report)", len(tls))
	}
	report, stage := tls[0], tls[1]
	if stage.Name != "stage0" || report.Name != "report" {
		t.Fatalf("unexpected ordering: %q, %q", tls[0].Name, tls[1].Name)
	}
	if stage.Device != "gpu0" || stage.Executions != 1 || stage.Retries != 1 {
		t.Fatalf("stage0 breakdown wrong: %+v", stage)
	}
	if stage.QueueWait != sec(1) || stage.Exec != sec(2) || stage.HedgeOverlap != sec(1) {
		t.Fatalf("stage0 intervals wrong: %+v", stage)
	}
	if stage.Latency() != sec(3) {
		t.Fatalf("stage0 latency = %v, want 3s", stage.Latency())
	}
	if !report.Shed || report.Executions != 0 {
		t.Fatalf("report must be shed without executions: %+v", report)
	}
	top := TopSlowest(tls, 1)
	if len(top) != 1 || top[0].Name != "report" {
		// report's shed mark lands at 4s > stage0's 3s latency.
		t.Fatalf("top slowest = %+v", top)
	}
	table := TimelineTable(tls)
	if !strings.Contains(table, "(shed)") || !strings.Contains(table, "gpu0") {
		t.Fatalf("table missing rows:\n%s", table)
	}
}

func TestDeviceUtilization(t *testing.T) {
	busy, makespan := DeviceUtilization(sampleSpans())
	if busy["gpu0"] != sec(2) || len(busy) != 1 {
		t.Fatalf("busy = %v", busy)
	}
	if makespan != sec(3) {
		t.Fatalf("makespan = %v, want 3s", makespan)
	}
}

func TestSessionDumpRoundTrip(t *testing.T) {
	in := &SessionDump{
		Name:     "s",
		Spans:    sampleSpans(),
		Counters: map[string]float64{"hedges-won": 1},
		Metrics:  map[string]map[string]float64{"job/a": {"energy-J": 2}},
		Events: []Event{
			{Seq: 1, Kind: TaskQueued, Job: "a", Task: "stage0"},
			{Seq: 2, At: sec(1), Kind: TaskPlaced, Job: "a", Task: "stage0", Device: "gpu0", Value: 8},
		},
	}
	var buf bytes.Buffer
	if err := in.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != len(in.Spans) || len(out.Events) != 2 {
		t.Fatalf("lossy round trip: %d spans, %d events", len(out.Spans), len(out.Events))
	}
	if out.Events[1].Kind != TaskPlaced || out.Events[1].Device != "gpu0" {
		t.Fatalf("event round trip wrong: %+v", out.Events[1])
	}
	if _, err := DecodeSession(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed dump must fail to decode")
	}
}
