package taskrt

import (
	"testing"

	"legato/internal/hw"
	"legato/internal/sim"
)

// TestFailedDeviceAvoided: the scheduler must route around unhealthy
// devices (the runtime half of the fault-tolerance story).
func TestFailedDeviceAvoided(t *testing.T) {
	eng := sim.NewEngine()
	xeon := hw.NewDevice(eng, "cpu0", hw.XeonD())
	arm := hw.NewDevice(eng, "arm0", hw.ARMv8Server())
	xeon.Fail()
	rt := New(eng, []*hw.Device{xeon, arm}, MinTime)
	_ = rt.Submit(Task{Name: "t", Gops: 10})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Device != "arm0" {
		t.Fatalf("task placed on failed device path: %s", res.Records[0].Device)
	}
}

// TestAllDevicesFailedErrors: with no healthy device the run reports the
// stuck task instead of hanging.
func TestAllDevicesFailedErrors(t *testing.T) {
	eng := sim.NewEngine()
	d := hw.NewDevice(eng, "cpu0", hw.XeonD())
	d.Fail()
	rt := New(eng, []*hw.Device{d}, MinTime)
	_ = rt.Submit(Task{Name: "t", Gops: 1})
	if _, err := rt.Run(); err == nil {
		t.Fatal("run succeeded with every device failed")
	}
}

// TestWideTaskQueuesBehindNarrow: a task wider than the free cores waits
// without starving the machine.
func TestWideTaskQueuesBehindNarrow(t *testing.T) {
	eng := sim.NewEngine()
	dev := hw.NewDevice(eng, "cpu0", hw.XeonD()) // 16 cores
	rt := New(eng, []*hw.Device{dev}, MinTime)
	var wideStart sim.Time
	_ = rt.Submit(Task{Name: "narrow", Gops: 100, Cores: 10})
	_ = rt.Submit(Task{Name: "wide", Gops: 10, Cores: 16,
		Fn: func() {}})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Name == "wide" {
			wideStart = r.Start
		}
	}
	if wideStart == 0 {
		t.Fatal("wide task did not wait for cores")
	}
}

// TestZeroGopsTaskCompletesInstantly: control tasks (votes, barriers) cost
// nothing but still respect dependences.
func TestZeroGopsTaskCompletesInstantly(t *testing.T) {
	eng := sim.NewEngine()
	dev := hw.NewDevice(eng, "cpu0", hw.XeonD())
	rt := New(eng, []*hw.Device{dev}, MinTime)
	a := rt.Data("a", 8)
	ran := false
	_ = rt.Submit(Task{Name: "w", Gops: 5, Out: []*Data{a}})
	_ = rt.Submit(Task{Name: "vote", Gops: 0, In: []*Data{a}, Fn: func() { ran = true }})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("zero-cost task skipped")
	}
	var wEnd, vStart sim.Time
	for _, r := range res.Records {
		if r.Name == "w" {
			wEnd = r.End
		}
		if r.Name == "vote" {
			vStart = r.Start
		}
	}
	if vStart < wEnd {
		t.Fatal("zero-cost task jumped its dependence")
	}
}
