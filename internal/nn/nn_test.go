package nn

import (
	"testing"

	"legato/internal/fpga"
)

func trainedModel(t *testing.T) (*MLP, [][]float64, []int) {
	t.Helper()
	X, y := Blobs(1200, 16, 4, 1.2, 1)
	m := NewMLP(16, 32, 4, 2)
	m.Train(X[:1000], y[:1000], 8, 0.01, 3)
	return m, X[1000:], y[1000:]
}

func TestTrainingLearnsBlobs(t *testing.T) {
	m, Xtest, ytest := trainedModel(t)
	acc := m.Accuracy(Xtest, ytest)
	if acc < 0.9 {
		t.Fatalf("float accuracy %.2f below 0.9", acc)
	}
}

func TestQuantisationPreservesAccuracy(t *testing.T) {
	m, Xtest, ytest := trainedModel(t)
	q := m.Quantise()
	fa := m.Accuracy(Xtest, ytest)
	qa := q.Accuracy(Xtest, ytest)
	if fa-qa > 0.05 {
		t.Fatalf("quantisation lost too much: float %.3f vs int8 %.3f", fa, qa)
	}
}

func TestBRAMRoundTripAtNominal(t *testing.T) {
	m, Xtest, ytest := trainedModel(t)
	q := m.Quantise()
	b := fpga.NewBoard(fpga.ZC702(), 10)
	if err := q.StoreToBRAM(b); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFromBRAM(q, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Accuracy(Xtest, ytest), q.Accuracy(Xtest, ytest); got != want {
		t.Fatalf("nominal-voltage BRAM load changed accuracy: %.3f vs %.3f", got, want)
	}
}

func TestInherentResilienceUnderUndervolting(t *testing.T) {
	m, Xtest, ytest := trainedModel(t)
	q := m.Quantise()
	p := fpga.ZC702()
	b := fpga.NewBoard(p, 11)
	if err := q.StoreToBRAM(b); err != nil {
		t.Fatal(err)
	}
	baseline := q.Accuracy(Xtest, ytest)

	// Just below the guardband: faults are rare; accuracy within 3 points
	// (the Sec. III-C resilience claim).
	b.SetVCCBRAM(p.VMin - 0.01)
	onset, err := LoadFromBRAM(q, b)
	if err != nil {
		t.Fatal(err)
	}
	if acc := onset.Accuracy(Xtest, ytest); baseline-acc > 0.03 {
		t.Fatalf("onset-region accuracy dropped too much: %.3f vs %.3f", acc, baseline)
	}
	// Power saving below the guardband exceeds the guardband-only saving.
	savingBelow := b.PowerSavingPercent()
	b2 := fpga.NewBoard(p, 11)
	b2.SetVCCBRAM(p.VMin)
	if savingBelow <= b2.PowerSavingPercent() {
		t.Fatal("no extra saving below the guardband")
	}
}

func TestAccuracyDegradesGracefullyNotCliff(t *testing.T) {
	m, Xtest, ytest := trainedModel(t)
	q := m.Quantise()
	p := fpga.ZC702()
	b := fpga.NewBoard(p, 12)
	if err := q.StoreToBRAM(b); err != nil {
		t.Fatal(err)
	}
	baseline := q.Accuracy(Xtest, ytest)
	// At the crash edge the fault density peaks; even there the int8 MLP
	// should retain most of its accuracy (graceful degradation).
	b.SetVCCBRAM(p.VCrash)
	deployed, err := LoadFromBRAM(q, b)
	if err != nil {
		t.Fatal(err)
	}
	acc := deployed.Accuracy(Xtest, ytest)
	if acc < baseline-0.25 {
		t.Fatalf("cliff-like degradation: %.3f vs baseline %.3f", acc, baseline)
	}
}

func TestCrashStopsInference(t *testing.T) {
	m, _, _ := trainedModel(t)
	q := m.Quantise()
	p := fpga.ZC702()
	b := fpga.NewBoard(p, 13)
	if err := q.StoreToBRAM(b); err != nil {
		t.Fatal(err)
	}
	b.SetVCCBRAM(p.VCrash - 0.02)
	if _, err := LoadFromBRAM(q, b); err == nil {
		t.Fatal("weights loaded from a crashed board")
	}
}

func TestBlobsShape(t *testing.T) {
	X, y := Blobs(100, 8, 5, 1, 7)
	if len(X) != 100 || len(y) != 100 {
		t.Fatal("wrong sample count")
	}
	for _, x := range X {
		if len(x) != 8 {
			t.Fatal("wrong dimension")
		}
	}
	seen := map[int]bool{}
	for _, c := range y {
		seen[c] = true
	}
	if len(seen) != 5 {
		t.Fatalf("classes present: %d", len(seen))
	}
}

func TestStoreToBRAMTooLarge(t *testing.T) {
	big := &Quantised{In: 1, Hidden: 1, Out: 1,
		W1: make([]int8, 10<<20), W2: []int8{0},
		B1: []float64{0}, B2: []float64{0}}
	b := fpga.NewBoard(fpga.ZC702(), 14) // 0.63 MB of BRAM
	if err := big.StoreToBRAM(b); err == nil {
		t.Fatal("oversized image accepted")
	}
}
