// Hedging: tail-tolerant execution under silent device degradation. A
// fault plan slows the x86 microservers 6× without touching their
// advertised capacity, so the cost model keeps scoring them best and
// every placement lands on silicon that quietly straggles. The per-job
// watchdog — armed on the deterministic virtual clock at 1.5× each
// task's expected span — flags the stretch, launches a speculative
// replica on a different device through the core and watt ledgers
// (hedges pay their way under the power cap), lets the first completion
// win, and folds the witnessed slowdown into placement so later tasks
// route around the degraded devices entirely. A deadline on each job's
// final report task demonstrates graceful degradation: under
// DeadlineShed, a late low-priority task is shed instead of failing the
// job.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"legato"
	"legato/internal/faults"
	"legato/internal/ft"
	"legato/internal/hw"
	"legato/internal/plot"
	"legato/internal/power"
	"legato/internal/sim"
)

// buildChains fills a job with three parallel four-stage chains of
// 8-core tasks (the x86 microservers are the clean favourites) plus a
// low-priority report task behind all of them with a deadline tighter
// than the degraded session can meet.
func buildChains(job *legato.Job) error {
	var outs []legato.DataHandle
	for c := 0; c < 3; c++ {
		prev := job.Data(fmt.Sprintf("chain%d/in", c), 4096)
		for stage := 0; stage < 4; stage++ {
			next := job.Data(fmt.Sprintf("chain%d/s%d", c, stage), 4096)
			if err := job.Task(fmt.Sprintf("chain%d/stage%d", c, stage)).
				Gops(400).Cores(8).In(prev).Out(next).Submit(); err != nil {
				return err
			}
			prev = next
		}
		outs = append(outs, prev)
	}
	return job.Task("report").Gops(40).Cores(1).In(outs...).
		Deadline(8 * time.Second).Submit()
}

func main() {
	log.SetFlags(0)

	probe, err := legato.NewSystem(legato.WithPlatform(legato.CloudPlatform))
	if err != nil {
		log.Fatal(err)
	}
	capW := 0.6 * float64(power.FleetPeakWatts(probe.Devices()))
	if err := probe.Close(context.Background()); err != nil {
		log.Fatal(err)
	}

	sys, err := legato.NewSystem(
		legato.WithPlatform(legato.CloudPlatform),
		legato.WithPolicy(legato.MinTime),
		legato.WithWorkers(3),
		legato.WithPowerCap(capW),
		// Silently slow every x86 microserver 6× almost immediately:
		// capacity is untouched (DegradeTo 1), so placement keeps
		// trusting the devices — only the watchdog can notice.
		legato.WithFaults(faults.Plan{
			DegradeMTBF:     ft.MTBFModel{hw.CPUx86: 0.05},
			DegradeTo:       1.0,
			DegradeSlowdown: 6.0,
			Seed:            7,
		}),
		legato.WithHedging(legato.HedgePolicy{Multiplier: 1.5}),
		legato.WithDeadlineMode(legato.DeadlineShed),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer sys.Close(ctx)

	var jobs []*legato.Job
	for n := 0; n < 3; n++ {
		job, err := sys.NewJob(fmt.Sprintf("render-%d", n))
		if err != nil {
			log.Fatal(err)
		}
		if err := buildChains(job); err != nil {
			log.Fatal(err)
		}
		if err := job.Start(ctx); err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		rep, err := job.Wait(ctx)
		if err != nil {
			log.Fatalf("%s: %v", job.Name(), err)
		}
		fmt.Printf("%-9s done: makespan %6.3f s · stragglers %d · hedges %d launched / %d won · %5.1f J wasted · %d shed\n",
			job.Name(), sim.ToSeconds(rep.Makespan), rep.Stragglers,
			rep.HedgesLaunched, rep.HedgesWon, rep.HedgeWastedJ, rep.TasksShed)
	}

	st := sys.Stats()
	fmt.Printf("\nfleet under a %.0f W cap: peak draw %.1f W (witness: hedges never breach the budget)\n",
		st.PowerCapW, st.PeakDrawW)
	fmt.Printf("session      %d stragglers flagged, %d hedges launched, %d won, %d denied\n",
		st.StragglersDetected, st.HedgesLaunched, st.HedgesWon, st.HedgesDenied)
	fmt.Printf("energy       %.1f J platform, of which %.1f J burned by cancelled losers\n",
		st.PlatformEnergyJ, st.HedgeWastedJ)
	fmt.Printf("deadlines    %d missed, %d tasks shed gracefully\n\n",
		st.DeadlineMisses, st.TasksShed)
	if st.PeakDrawW > st.PowerCapW {
		log.Fatal("power-cap witness violated")
	}
	if st.HedgesWon == 0 {
		log.Fatal("no hedge won: the tail-tolerance path was not exercised")
	}

	// The watt-ledger samples recorded as "power" trace spans render the
	// fleet draw-vs-time curve directly.
	xs, ys := sys.Tracer().Series("power")
	chart := plot.Chart{
		Title:  "fleet draw vs virtual time (power spans)",
		XLabel: "s", YLabel: "W", Height: 10,
	}
	chart.Add(plot.Series{Name: "draw", X: xs, Y: ys})
	fmt.Print(chart.Render())
}
