package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFArithmetic(t *testing.T) {
	// Multiplicative identity and commutativity on a sample.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for %d", a)
		}
		inv := gfInv(byte(a))
		if gfMul(byte(a), inv) != 1 {
			t.Fatalf("a * a^-1 != 1 for %d", a)
		}
	}
	for i := 0; i < 1000; i++ {
		a, b := byte(i*7+1), byte(i*13+5)
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("mul not commutative for %d,%d", a, b)
		}
		if gfMul(a, b) != mulSlow(a, b) {
			t.Fatalf("table mul disagrees with slow mul for %d,%d", a, b)
		}
	}
}

func TestGFDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(1, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := New(200, 100); err == nil {
		t.Fatal("k+m>256 accepted")
	}
	c, err := New(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.DataShards() != 10 || c.ParityShards() != 4 {
		t.Fatal("geometry accessors wrong")
	}
}

func makeShards(rng *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	return data
}

func TestEncodeVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, _ := New(6, 3)
	data := makeShards(rng, 6, 1024)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]byte{}, data...), parity...)
	ok, err := c.Verify(all)
	if err != nil || !ok {
		t.Fatalf("verify: ok=%v err=%v", ok, err)
	}
	// Corrupt one byte → verification fails.
	all[2][10] ^= 0xFF
	ok, err = c.Verify(all)
	if err != nil || ok {
		t.Fatalf("verify after corruption: ok=%v err=%v", ok, err)
	}
}

func TestReconstructDataLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, _ := New(5, 3)
	data := makeShards(rng, 5, 512)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([][]byte, 5)
	for i := range data {
		orig[i] = append([]byte(nil), data[i]...)
	}
	shards := append(append([][]byte{}, data...), parity...)
	// Lose 3 shards: two data, one parity.
	shards[0], shards[3], shards[6] = nil, nil, nil
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("data shard %d not recovered", i)
		}
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("verify after reconstruct: ok=%v err=%v", ok, err)
	}
}

func TestReconstructParityOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, _ := New(4, 2)
	data := makeShards(rng, 4, 256)
	parity, _ := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	want5 := append([]byte(nil), shards[5]...)
	shards[4], shards[5] = nil, nil
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[5], want5) {
		t.Fatal("parity shard not recomputed correctly")
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, _ := New(4, 2)
	data := makeShards(rng, 4, 64)
	parity, _ := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[1], shards[4] = nil, nil, nil // 3 lost, only 3 < 4 remain
	if err := c.Reconstruct(shards); err != ErrTooFewShards {
		t.Fatalf("want ErrTooFewShards, got %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	c, _ := New(3, 2)
	if _, err := c.Encode([][]byte{{1}, {2}}); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	if _, err := c.Encode([][]byte{{1}, {2, 3}, {4}}); err == nil {
		t.Fatal("ragged shards accepted")
	}
	if _, err := c.Encode([][]byte{{}, {}, {}}); err == nil {
		t.Fatal("empty shards accepted")
	}
}

// Property: for random geometry and random erasures of ≤ m shards,
// reconstruction restores the original data exactly.
func TestReconstructProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		k := 1 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		size := 1 + rng.Intn(300)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		data := makeShards(rng, k, size)
		orig := make([][]byte, k)
		for i := range data {
			orig[i] = append([]byte(nil), data[i]...)
		}
		parity, err := c.Encode(data)
		if err != nil {
			return false
		}
		shards := append(append([][]byte{}, data...), parity...)
		// Erase up to m random shards.
		erase := rng.Intn(m + 1)
		perm := rng.Perm(k + m)
		for _, idx := range perm[:erase] {
			shards[idx] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		ok, err := c.Verify(shards)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode4x2_1MiB(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	c, _ := New(4, 2)
	data := makeShards(rng, 4, 1<<20)
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}
