package legato

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"legato/internal/faults"
	"legato/internal/ft"
	"legato/internal/hw"
)

// WithHedging end to end on the public API: a fault plan silently slows
// the x86 microservers (capacity untouched), the watchdog hedges onto a
// different class, the counters surface in Report and SessionStats, and
// the tracer carries "hedge" spans. A deadlined low-priority report task
// is shed gracefully under DeadlineShed.
func TestWithHedgingEndToEnd(t *testing.T) {
	sys, err := NewSystem(
		WithPolicy(MinTime),
		WithWorkers(2),
		WithFaults(faults.Plan{
			DegradeMTBF:     ft.MTBFModel{hw.CPUx86: 1e-6},
			DegradeTo:       1.0,
			DegradeSlowdown: 6.0,
			Seed:            3,
		}),
		WithHedging(HedgePolicy{Multiplier: 1.5}),
		WithDeadlineMode(DeadlineShed),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	ctx := context.Background()

	job, err := sys.NewJob("tail")
	if err != nil {
		t.Fatal(err)
	}
	var outs []DataHandle
	for c := 0; c < 2; c++ {
		prev := job.Data(fmt.Sprintf("c%d/in", c), 1024)
		for i := 0; i < 3; i++ {
			next := job.Data(fmt.Sprintf("c%d/d%d", c, i), 1024)
			if err := job.Task(fmt.Sprintf("c%d/t%d", c, i)).
				Gops(400).Cores(8).In(prev).Out(next).Submit(); err != nil {
				t.Fatal(err)
			}
			prev = next
		}
		outs = append(outs, prev)
	}
	// Behind ~3 stages of degraded work with a 4 s budget: shed, and the
	// job still completes.
	if err := job.Task("report").Gops(10).Cores(1).In(outs...).
		Deadline(4 * time.Second).Submit(); err != nil {
		t.Fatal(err)
	}

	rep, err := job.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stragglers == 0 || rep.HedgesLaunched == 0 || rep.HedgesWon == 0 {
		t.Fatalf("report stragglers=%d launched=%d won=%d, want the tail path exercised",
			rep.Stragglers, rep.HedgesLaunched, rep.HedgesWon)
	}
	if rep.HedgeWastedJ <= 0 {
		t.Fatalf("report hedge waste = %v J, want > 0", rep.HedgeWastedJ)
	}
	if rep.TasksShed != 1 || rep.DeadlineMisses == 0 {
		t.Fatalf("report shed=%d misses=%d, want the report task shed", rep.TasksShed, rep.DeadlineMisses)
	}
	var hedged, shed int
	for _, rec := range rep.Records {
		if rec.Hedged {
			hedged++
		}
		if rec.Shed {
			shed++
		}
	}
	if hedged == 0 || shed != 1 {
		t.Fatalf("records: %d hedged, %d shed, want >0 and 1", hedged, shed)
	}

	st := sys.Stats()
	if st.StragglersDetected != rep.Stragglers || st.HedgesWon != rep.HedgesWon ||
		st.HedgeWastedJ != rep.HedgeWastedJ || st.TasksShed != rep.TasksShed {
		t.Fatalf("session stats %+v disagree with the sole job's report", st)
	}
	var hedgeSpans, deadlineSpans int
	for _, sp := range sys.Tracer().Spans() {
		switch sp.Category {
		case "hedge":
			hedgeSpans++
		case "deadline":
			deadlineSpans++
		}
	}
	if hedgeSpans == 0 {
		t.Fatal("tracer has no hedge spans")
	}
	if deadlineSpans == 0 {
		t.Fatal("tracer has no deadline spans")
	}
}

// TaskBuilder specs are validated at Submit with the typed sentinel.
func TestTaskBuilderValidation(t *testing.T) {
	sys, err := NewSystem(WithPolicy(MinTime))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("specs")
	if err != nil {
		t.Fatal(err)
	}
	for name, submit := range map[string]func() error{
		"zero gops":         job.Task("g0").Gops(0).Submit,
		"negative gops":     job.Task("g1").Gops(-3).Submit,
		"negative cores":    job.Task("c0").Gops(1).Cores(-1).Submit,
		"negative retry":    job.Task("r0").Gops(1).Retry(-1).Submit,
		"zero deadline":     job.Task("d0").Gops(1).Deadline(0).Submit,
		"negative deadline": job.Task("d1").Gops(1).Deadline(-time.Second).Submit,
	} {
		if err := submit(); !errors.Is(err, ErrInvalidTask) {
			t.Errorf("%s: err = %v, want ErrInvalidTask", name, err)
		}
	}
	// A valid spec still passes after the rejected ones.
	if err := job.Task("ok").Gops(1).Deadline(time.Minute).Submit(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
}
