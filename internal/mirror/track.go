package mirror

import (
	"math"

	"legato/internal/hungarian"
	"legato/internal/kalman"
	"legato/internal/mathx"
)

// Track is one live tracked object.
type Track struct {
	ID     int
	Kind   string
	filter *kalman.Filter
	// Missed counts consecutive frames without an associated detection.
	Missed int
	// Hits counts total associated detections.
	Hits int
	// lastTruth remembers the ground-truth id of the last associated
	// detection (scoring only).
	lastTruth int
}

// Position returns the track's current estimate.
func (t *Track) Position() (float64, float64) { return t.filter.Position() }

// Tracker maintains tracks over detection frames with a Kalman filter per
// track and Hungarian association (paper Sec. VI).
type Tracker struct {
	// GateDistance is the maximum association distance.
	GateDistance float64
	// MaxMissed retires a track after this many consecutive misses.
	MaxMissed int
	// MinHits promotes a track to confirmed.
	MinHits int
	// DT is the frame interval in seconds.
	DT float64

	tracks []*Track
	nextID int

	// Scoring counters (against ground truth).
	Matches    int
	Misses     int
	FalseP     int
	IDSwitches int
	GTCount    int
}

// NewTracker builds a tracker with the mirror pipeline's defaults.
func NewTracker(dt float64) *Tracker {
	return &Tracker{GateDistance: 8, MaxMissed: 10, MinHits: 3, DT: dt}
}

// Tracks returns the live (confirmed or tentative) tracks.
func (tr *Tracker) Tracks() []*Track { return tr.tracks }

// ConfirmedTracks returns tracks with at least MinHits associations.
func (tr *Tracker) ConfirmedTracks() []*Track {
	var out []*Track
	for _, t := range tr.tracks {
		if t.Hits >= tr.MinHits {
			out = append(out, t)
		}
	}
	return out
}

// Step consumes one detection frame: predict, associate, update, manage.
func (tr *Tracker) Step(dets []Detection) {
	for _, t := range tr.tracks {
		t.filter.Predict()
	}

	nT, nD := len(tr.tracks), len(dets)
	assignedDet := make([]int, nT)
	for i := range assignedDet {
		assignedDet[i] = -1
	}
	detUsed := make([]bool, nD)

	if nT > 0 && nD > 0 {
		// Cost matrix: Euclidean distance; pad with virtual columns when
		// tracks outnumber detections so the solver stays rectangular.
		cols := nD
		if cols < nT {
			cols = nT
		}
		const pad = 1e6
		cost := make([][]float64, nT)
		for i, t := range tr.tracks {
			cost[i] = make([]float64, cols)
			x, y := t.filter.Position()
			for j := 0; j < cols; j++ {
				if j < nD {
					cost[i][j] = math.Hypot(x-dets[j].X, y-dets[j].Y)
				} else {
					cost[i][j] = pad
				}
			}
		}
		assign, err := hungarian.SolveWithThreshold(cost, tr.GateDistance)
		if err == nil {
			for i, j := range assign {
				if j >= 0 && j < nD {
					assignedDet[i] = j
					detUsed[j] = true
				}
			}
		}
	}

	// Update matched tracks.
	for i, t := range tr.tracks {
		j := assignedDet[i]
		if j == -1 {
			t.Missed++
			continue
		}
		d := dets[j]
		z := measurement(d.X, d.Y)
		if _, err := t.filter.Update(z); err == nil {
			t.Missed = 0
			t.Hits++
			if t.Hits >= tr.MinHits {
				tr.Matches++
				if d.TruthID != 0 {
					if t.lastTruth != 0 && t.lastTruth != d.TruthID {
						tr.IDSwitches++
					}
					t.lastTruth = d.TruthID
				} else {
					tr.FalseP++
				}
			}
		}
	}

	// Spawn tracks for unmatched detections.
	for j, d := range dets {
		if detUsed[j] {
			continue
		}
		tr.nextID++
		tr.tracks = append(tr.tracks, &Track{
			ID:        tr.nextID,
			Kind:      d.Kind,
			filter:    kalman.ConstantVelocity2D(tr.DT, 0.01, 1.0, d.X, d.Y),
			Hits:      1,
			lastTruth: d.TruthID,
		})
	}

	// Retire stale tracks.
	live := tr.tracks[:0]
	for _, t := range tr.tracks {
		if t.Missed <= tr.MaxMissed {
			live = append(live, t)
		}
	}
	tr.tracks = live
}

// Observe scores a frame against ground truth: call after Step with the
// same frame's scene objects.
func (tr *Tracker) Observe(s *Scene) {
	tr.GTCount += len(s.Objects)
	// Misses: ground-truth objects with no confirmed track nearby.
	for _, o := range s.Objects {
		found := false
		for _, t := range tr.ConfirmedTracks() {
			x, y := t.Position()
			if math.Hypot(x-o.X, y-o.Y) <= tr.GateDistance {
				found = true
				break
			}
		}
		if !found {
			tr.Misses++
		}
	}
}

// MOTA returns the multi-object tracking accuracy:
// 1 − (misses + false positives + id switches) / ground-truth count.
func (tr *Tracker) MOTA() float64 {
	if tr.GTCount == 0 {
		return 0
	}
	return 1 - float64(tr.Misses+tr.FalseP+tr.IDSwitches)/float64(tr.GTCount)
}

// measurement builds a 2×1 position measurement.
func measurement(x, y float64) *mathx.Matrix {
	return mathx.NewMatrixFrom(2, 1, []float64{x, y})
}
