// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (see DESIGN.md §7 for the experiment
// index). Each driver returns structured rows plus a rendered table in the
// shape of the corresponding figure; cmd/legato-bench and the repository
// benchmarks call into this package so the numbers in EXPERIMENTS.md come
// from exactly one code path.
package experiments

import (
	"fmt"
	"strings"

	"legato/internal/fpga"
	"legato/internal/undervolt"
)

// Fig5Row is one board's summary from the undervolting sweep.
type Fig5Row struct {
	Board            string
	VMin             float64
	VCrash           float64
	FaultsAtCrash    float64 // faults/Mbit at the last responding step
	PaperFaults      float64 // published value
	MaxSavingPercent float64
	PaperSavingNote  string
}

// Fig5Result carries the per-board sweeps and the summary rows.
type Fig5Result struct {
	Sweeps []*undervolt.Sweep
	Rows   []Fig5Row
}

// Fig5 sweeps all four published boards (VC707, ZC702, KC705-A, KC705-B)
// from nominal voltage to crash, reproducing the regions, power curve and
// fault-rate curve of Fig. 5.
func Fig5(seed int64) (*Fig5Result, error) {
	sweeps, err := undervolt.RunAll(seed, 0.45, 0.005)
	if err != nil {
		return nil, err
	}
	published := map[string]float64{}
	for _, p := range fpga.AllProfiles() {
		published[p.Name] = p.FaultsPerMbitAtCrash
	}
	res := &Fig5Result{Sweeps: sweeps}
	for _, s := range sweeps {
		res.Rows = append(res.Rows, Fig5Row{
			Board:            s.Board,
			VMin:             s.VMinObserved,
			VCrash:           s.VCrashObserved,
			FaultsAtCrash:    s.FaultsAtCrash(),
			PaperFaults:      published[s.Board],
			MaxSavingPercent: s.MaxSaving(),
			PaperSavingNote:  ">90% (VC707)",
		})
	}
	return res, nil
}

// Table renders the Fig. 5 summary: measured vs published endpoints.
func (r *Fig5Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig. 5 — FPGA undervolting: voltage regions, power saving, fault rates\n")
	fmt.Fprintf(&sb, "%-9s %8s %8s %16s %14s %10s\n",
		"board", "Vmin", "Vcrash", "faults/Mbit", "paper", "saving %")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-9s %8.3f %8.3f %16.1f %14.0f %10.1f\n",
			row.Board, row.VMin, row.VCrash, row.FaultsAtCrash, row.PaperFaults, row.MaxSavingPercent)
	}
	return sb.String()
}
