// Package ecc implements SECDED (single-error-correct, double-error-
// detect) Hamming(72,64) coding as used to protect BRAM contents against
// undervolting-induced bit flips — the mitigation direction of the
// LEGaTO resilience work (Sec. III-C; the underlying MICRO'18 study [7]
// evaluates ECC as the enabler for operating FPGAs inside the critical
// voltage region).
//
// Each 64-bit data word is extended with 8 check bits: 7 Hamming parity
// bits (positions 1,2,4,...,64 in the 1-indexed codeword) plus one
// overall parity bit for double-error detection.
package ecc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// CodewordBytes is the encoded size of one 64-bit word.
const CodewordBytes = 9

// WordBytes is the data size of one codeword.
const WordBytes = 8

// ErrDoubleBit reports an uncorrectable double-bit error.
var ErrDoubleBit = errors.New("ecc: uncorrectable double-bit error")

// dataBitPosition maps data bit i (0..63) to its position in the 1-indexed
// 72-bit codeword (positions that are powers of two hold parity bits).
var dataBitPosition [64]int

// positionOfParity holds the codeword positions of the 7 Hamming parity
// bits (1, 2, 4, 8, 16, 32, 64).
var positionOfParity = [7]int{1, 2, 4, 8, 16, 32, 64}

func init() {
	pos := 1
	i := 0
	for i < 64 {
		// Skip power-of-two positions: they hold parity.
		if pos&(pos-1) != 0 {
			dataBitPosition[i] = pos
			i++
		}
		pos++
	}
}

// EncodeWord produces the 72-bit codeword of a 64-bit value as 9 bytes:
// 8 data bytes followed by the check byte (7 Hamming bits + overall
// parity in the MSB).
func EncodeWord(v uint64) [CodewordBytes]byte {
	var out [CodewordBytes]byte
	binary.LittleEndian.PutUint64(out[:8], v)

	var check byte
	for p := 0; p < 7; p++ {
		parity := 0
		mask := positionOfParity[p]
		for i := 0; i < 64; i++ {
			if dataBitPosition[i]&mask != 0 && v>>uint(i)&1 == 1 {
				parity ^= 1
			}
		}
		check |= byte(parity) << uint(p)
	}
	// Overall parity over data + the 7 Hamming bits.
	overall := bits.OnesCount64(v) + bits.OnesCount8(check)
	check |= byte(overall&1) << 7
	out[8] = check
	return out
}

// DecodeWord recovers the data word, correcting a single flipped bit
// (data or check) and detecting double-bit errors.
func DecodeWord(cw [CodewordBytes]byte) (uint64, bool, error) {
	v := binary.LittleEndian.Uint64(cw[:8])
	check := cw[8]

	// Recompute the syndrome.
	syndrome := 0
	for p := 0; p < 7; p++ {
		parity := 0
		mask := positionOfParity[p]
		for i := 0; i < 64; i++ {
			if dataBitPosition[i]&mask != 0 && v>>uint(i)&1 == 1 {
				parity ^= 1
			}
		}
		if byte(parity) != check>>uint(p)&1 {
			syndrome |= mask
		}
	}
	overall := (bits.OnesCount64(v) + bits.OnesCount8(check&0x7f)) & 1
	overallStored := int(check >> 7)
	overallMismatch := overall != overallStored

	switch {
	case syndrome == 0 && !overallMismatch:
		return v, false, nil
	case syndrome == 0 && overallMismatch:
		// The overall parity bit itself flipped.
		return v, true, nil
	case overallMismatch:
		// Single-bit error at codeword position = syndrome.
		for i := 0; i < 64; i++ {
			if dataBitPosition[i] == syndrome {
				return v ^ 1<<uint(i), true, nil
			}
		}
		// The flipped bit was one of the Hamming parity bits.
		for _, p := range positionOfParity {
			if p == syndrome {
				return v, true, nil
			}
		}
		return 0, false, fmt.Errorf("ecc: impossible syndrome %d", syndrome)
	default:
		// Syndrome nonzero but overall parity matches: two bits flipped.
		return 0, false, ErrDoubleBit
	}
}

// Encode protects a byte slice (padded to 8-byte words) and returns the
// encoded image: ⌈len/8⌉ codewords of 9 bytes.
func Encode(data []byte) []byte {
	words := (len(data) + WordBytes - 1) / WordBytes
	out := make([]byte, 0, words*CodewordBytes)
	var buf [WordBytes]byte
	for w := 0; w < words; w++ {
		for i := range buf {
			buf[i] = 0
		}
		copy(buf[:], data[w*WordBytes:])
		cw := EncodeWord(binary.LittleEndian.Uint64(buf[:]))
		out = append(out, cw[:]...)
	}
	return out
}

// DecodeStats reports what decoding encountered.
type DecodeStats struct {
	Words       int
	Corrected   int
	Uncorrected int
}

// Decode recovers data of the given original length from an encoded
// image, correcting single-bit errors per word. Words with double-bit
// errors are returned as stored (corrupted) and counted in the stats.
func Decode(encoded []byte, origLen int) ([]byte, DecodeStats, error) {
	if len(encoded)%CodewordBytes != 0 {
		return nil, DecodeStats{}, fmt.Errorf("ecc: encoded length %d not a codeword multiple", len(encoded))
	}
	words := len(encoded) / CodewordBytes
	stats := DecodeStats{Words: words}
	out := make([]byte, 0, words*WordBytes)
	var cw [CodewordBytes]byte
	for w := 0; w < words; w++ {
		copy(cw[:], encoded[w*CodewordBytes:])
		v, corrected, err := DecodeWord(cw)
		if err != nil {
			// Uncorrectable: keep the raw (corrupted) data bits.
			stats.Uncorrected++
			v = binary.LittleEndian.Uint64(cw[:8])
		} else if corrected {
			stats.Corrected++
		}
		var buf [WordBytes]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		out = append(out, buf[:]...)
	}
	if origLen > len(out) {
		return nil, stats, fmt.Errorf("ecc: original length %d exceeds decoded %d", origLen, len(out))
	}
	return out[:origLen], stats, nil
}

// Overhead returns the storage overhead factor of the code (9/8).
func Overhead() float64 { return float64(CodewordBytes) / float64(WordBytes) }
