module legato

go 1.22
