package hungarian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivial(t *testing.T) {
	a, cost, err := Solve([][]float64{{5}})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 0 || cost != 5 {
		t.Fatalf("trivial: %v %v", a, cost)
	}
	if a, _, err := Solve(nil); err != nil || a != nil {
		t.Fatal("empty matrix should be a no-op")
	}
}

func TestKnownOptimal(t *testing.T) {
	// Classic example: optimal assignment cost 5 via (0,1),(1,0),(2,2).
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	a, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Fatalf("total: got %v want 5 (assignment %v)", total, a)
	}
}

func TestRectangular(t *testing.T) {
	// 2 rows, 4 columns: rows pick their cheapest distinct columns.
	cost := [][]float64{
		{9, 9, 1, 9},
		{9, 9, 2, 1},
	}
	a, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || a[0] != 2 || a[1] != 3 {
		t.Fatalf("rectangular: %v total %v", a, total)
	}
}

func TestValidation(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, _, err := Solve([][]float64{{1}, {2}}); err == nil {
		t.Fatal("rows > cols accepted")
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestThresholdGating(t *testing.T) {
	cost := [][]float64{
		{0.1, 50},
		{50, 0.2},
	}
	a, err := SolveWithThreshold(cost, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 0 || a[1] != 1 {
		t.Fatalf("gating broke good pairs: %v", a)
	}
	costBad := [][]float64{
		{0.1, 50},
		{50, 40},
	}
	a, err = SolveWithThreshold(costBad, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 0 || a[1] != -1 {
		t.Fatalf("over-threshold pair not voided: %v", a)
	}
}

// brute force optimal for small square instances.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			s := 0.0
			for i, j := range perm {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// Property: Hungarian matches brute force on random instances, and the
// assignment is a valid permutation.
func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		a, total, err := Solve(cost)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, c := range a {
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
		}
		want := bruteForce(cost)
		return math.Abs(total-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
