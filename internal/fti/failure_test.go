package fti

import (
	"testing"

	"legato/internal/gpu"
	"legato/internal/mpi"
	"legato/internal/sim"
)

// TestL1OnlyNodeLossIsUnrecoverable: with pure L1 checkpoints, losing the
// node loses the data — the reason the higher levels exist.
func TestL1OnlyNodeLossIsUnrecoverable(t *testing.T) {
	_, w, st := harness(t, 2, 2)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 2}, r, nil, st)
		buf := gpu.HostAlloc(32)
		_ = f.Protect(1, buf)
		if err := f.CheckpointAt(1, L1); err != nil {
			t.Error(err)
		}
		f.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	st.FailNode(0)
	eng2 := sim.NewEngine()
	st.Rebind(eng2)
	w2, _ := mpi.NewWorld(eng2, mpi.Config{Size: 2, RanksPerNode: 1})
	errs := make([]error, 2)
	_ = w2.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 2}, r, nil, st)
		buf := gpu.HostAlloc(32)
		_ = f.Protect(1, buf)
		_, errs[r.Rank()] = f.Recover()
	})
	if errs[0] == nil {
		t.Fatal("rank 0 recovered from a lost L1-only checkpoint")
	}
}

// TestCounterSurvivesLevels: the protected loop counter of Listing 1 round
// trips through every level.
func TestCounterSurvivesLevels(t *testing.T) {
	for _, level := range []Level{L1, L2, L3, L4} {
		level := level
		_, w, st := harness(t, 4, 4)
		err := w.Run(func(r *mpi.Rank) {
			f, _ := Init(Config{GroupSize: 4}, r, nil, st)
			iter := 1234 + r.Rank()
			_ = f.ProtectCounter(0, &iter)
			if err := f.CheckpointAt(iter, level); err != nil {
				t.Errorf("level %d: %v", level, err)
				return
			}
			iter = -1 // clobber
			if _, err := f.Recover(); err != nil {
				t.Errorf("level %d recover: %v", level, err)
				return
			}
			if iter != 1234+r.Rank() {
				t.Errorf("level %d: counter %d, want %d", level, iter, 1234+r.Rank())
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointBytesAccounting: store-level traffic accounting grows with
// level (L2 doubles, L3 adds parity, L4 adds a global copy).
func TestCheckpointBytesAccounting(t *testing.T) {
	sizes := map[Level]int64{}
	for _, level := range []Level{L1, L2, L3, L4} {
		level := level
		_, w, st := harness(t, 4, 4)
		err := w.Run(func(r *mpi.Rank) {
			f, _ := Init(Config{GroupSize: 4}, r, nil, st)
			buf := gpu.HostAlloc(1 << 16)
			_ = f.Protect(1, buf)
			if err := f.CheckpointAt(1, level); err != nil {
				t.Error(err)
			}
			f.Finalize()
		})
		if err != nil {
			t.Fatal(err)
		}
		sizes[level] = st.TotalCheckpointBytes()
	}
	if !(sizes[L1] < sizes[L2] && sizes[L1] < sizes[L3] && sizes[L2] < sizes[L4]) {
		t.Fatalf("level traffic ordering wrong: %v", sizes)
	}
	// L1: 4 ranks × 64 KiB.
	if sizes[L1] != 4<<16 {
		t.Fatalf("L1 bytes: %d", sizes[L1])
	}
	// L2: twice that.
	if sizes[L2] != 8<<16 {
		t.Fatalf("L2 bytes: %d", sizes[L2])
	}
}

// TestSnapshotAfterRecoveryContinuesSchedule: after a restart, later
// snapshots checkpoint again with increasing ids.
func TestSnapshotAfterRecoveryContinuesSchedule(t *testing.T) {
	_, w, st := harness(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 1, CkptEvery: 2}, r, nil, st)
		buf := gpu.HostAlloc(16)
		_ = f.Protect(1, buf)
		for i := 0; i < 4; i++ {
			if _, _, err := f.Snapshot(i); err != nil {
				t.Error(err)
			}
		}
		f.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := sim.NewEngine()
	st.Rebind(eng2)
	w2, _ := mpi.NewWorld(eng2, mpi.Config{Size: 1})
	err = w2.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 1, CkptEvery: 2}, r, nil, st)
		buf := gpu.HostAlloc(16)
		_ = f.Protect(1, buf)
		recovered := false
		for i := 0; i < 6; i++ {
			_, rec, err := f.Snapshot(i)
			if err != nil {
				t.Error(err)
				return
			}
			recovered = recovered || rec
		}
		if !recovered {
			t.Error("restart did not recover")
		}
		// The first Snapshot call performs the recovery; the remaining 5
		// count toward the schedule: at CkptEvery=2 that is 2 checkpoints.
		if f.Stats.Checkpoints != 2 {
			t.Errorf("post-recovery checkpoints: %d", f.Stats.Checkpoints)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPhantomAndRealMixed: phantom and real buffers can coexist in one
// checkpoint set.
func TestPhantomAndRealMixed(t *testing.T) {
	eng, w, st := harness(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		dev := gpu.New(eng, gpu.Config{})
		f, _ := Init(Config{GroupSize: 1, Method: Async}, r, dev, st)
		real := gpu.HostAlloc(128)
		copy(real.Data(), []byte("real-data"))
		ph, _ := dev.MallocManagedPhantom(1 << 20)
		_ = f.Protect(1, real)
		_ = f.Protect(2, ph)
		if err := f.CheckpointAt(1, L1); err != nil {
			t.Error(err)
			return
		}
		copy(real.Data(), make([]byte, 16)) // clobber
		if _, err := f.Recover(); err != nil {
			t.Error(err)
			return
		}
		if string(real.Data()[:9]) != "real-data" {
			t.Errorf("real data corrupted: %q", real.Data()[:9])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
