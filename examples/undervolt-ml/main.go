// Undervolted ML inference (paper Sec. III-C): train a small classifier,
// quantise it to int8, deploy the weights into a ZC702-class FPGA's BRAM
// and sweep VCCBRAM below the guardband — accuracy degrades gracefully
// while the BRAM rail power collapses, the "inherent resilience of ML
// models" the paper leverages.
package main

import (
	"fmt"
	"log"

	"legato/internal/experiments"
)

func main() {
	log.SetFlags(0)
	rows, baseline, err := experiments.UndervoltML(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.MLTable(rows, baseline))

	last := rows[len(rows)-1]
	fmt.Printf("\nat %.2f V: %.1f%% rail-power saving with accuracy %.3f (baseline %.3f)\n",
		last.Voltage, last.SavingPercent, last.Accuracy, baseline)
	fmt.Println("→ the model tolerates undervolting-induced bit flips far below the")
	fmt.Println("  vendor guardband, so the energy win extends into the critical region.")
}
