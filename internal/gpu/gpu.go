// Package gpu simulates the CUDA device semantics that the FTI GPU/CPU
// checkpointing extension depends on (paper Sec. IV, Listing 1):
//
//   - three address classes — host memory, device memory (cudaMalloc),
//     and unified virtual memory (cudaMallocManaged / UVM) — with the
//     classification FTI_Protect performs;
//   - streams with asynchronous, chunked device-to-host copies over a
//     pinned-DMA engine (the optimised checkpoint path);
//   - the slow page-fault-driven UVM migration path (the initial
//     checkpoint implementation's cost);
//   - kernel launches with a throughput cost model.
//
// Data is held in real byte slices so checkpoint and recovery correctness
// are testable end to end; only the *timing* is modelled.
package gpu

import (
	"fmt"

	"legato/internal/sim"
)

// MemKind classifies an allocation, mirroring the three address classes of
// Listing 1 (host, UVM via cudaMallocManaged, device via cudaMalloc).
type MemKind int

const (
	// HostMem is ordinary host memory.
	HostMem MemKind = iota
	// DeviceMem is device memory; the host cannot dereference it and must
	// copy through the GPU's DMA engine.
	DeviceMem
	// ManagedMem is UVM: host-dereferenceable, but host access triggers
	// page-fault migration at far lower bandwidth than explicit DMA.
	ManagedMem
)

// String names the kind.
func (k MemKind) String() string {
	switch k {
	case HostMem:
		return "host"
	case DeviceMem:
		return "device"
	case ManagedMem:
		return "managed"
	default:
		return fmt.Sprintf("memkind(%d)", int(k))
	}
}

// Config sets the device's cost model. The defaults are calibrated so the
// Fig. 6 experiment lands on the published behaviour: pinned DMA at PCIe
// speed, page-fault UVM migration an order of magnitude slower, matching
// the 12.05× checkpoint / 5.13× recovery gap between the initial and the
// optimised FTI implementations.
type Config struct {
	// Name identifies the device.
	Name string
	// MemBytes is device memory capacity (default 16 GiB).
	MemBytes int64
	// GBPerSecDMA is pinned DMA bandwidth, both directions (default 11 GB/s).
	GBPerSecDMA float64
	// GBPerSecUVMFaultD2H is page-fault-driven device-to-host migration
	// bandwidth (default 0.347 GB/s, fitted to the published 12.05x
	// checkpoint gap).
	GBPerSecUVMFaultD2H float64
	// GBPerSecUVMFaultH2D is page-fault-driven host-to-device migration
	// bandwidth (default 0.88 GB/s, fitted to the published 5.13x
	// recovery gap).
	GBPerSecUVMFaultH2D float64
	// GOPS is kernel throughput in giga-operations/second (default 5000).
	GOPS float64
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "gpu0"
	}
	if c.MemBytes == 0 {
		c.MemBytes = 16 << 30
	}
	if c.GBPerSecDMA == 0 {
		c.GBPerSecDMA = 11
	}
	if c.GBPerSecUVMFaultD2H == 0 {
		c.GBPerSecUVMFaultD2H = 0.347
	}
	if c.GBPerSecUVMFaultH2D == 0 {
		c.GBPerSecUVMFaultH2D = 0.88
	}
	if c.GOPS == 0 {
		c.GOPS = 5000
	}
	return c
}

// Device is one simulated GPU.
type Device struct {
	cfg Config
	eng *sim.Engine

	// dma serialises explicit copies (one copy engine, as on real parts the
	// per-direction engines are few; one is the conservative model).
	dma *sim.Pipe
	// uvmD2H and uvmH2D serialise page-fault migrations.
	uvmD2H *sim.Pipe
	uvmH2D *sim.Pipe
	// compute serialises kernel launches.
	compute *sim.Resource

	allocated int64
	nextID    int
}

// New creates a device on eng with the given configuration.
func New(eng *sim.Engine, cfg Config) *Device {
	cfg = cfg.withDefaults()
	return &Device{
		cfg:     cfg,
		eng:     eng,
		dma:     sim.NewPipe(eng, cfg.GBPerSecDMA*1e9, 10*sim.Microsecond),
		uvmD2H:  sim.NewPipe(eng, cfg.GBPerSecUVMFaultD2H*1e9, 20*sim.Microsecond),
		uvmH2D:  sim.NewPipe(eng, cfg.GBPerSecUVMFaultH2D*1e9, 20*sim.Microsecond),
		compute: sim.NewResource(eng, 1),
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// Allocated returns the bytes currently allocated on the device.
func (d *Device) Allocated() int64 { return d.allocated }

// Buffer is one allocation. Host code may touch Data directly only for
// HostMem and ManagedMem buffers (UVM host access costs fault-migration
// time, which the FTI paths account for); DeviceMem data must move through
// explicit copies.
type Buffer struct {
	Kind MemKind
	Dev  *Device // nil for HostMem
	ID   int

	data []byte
	// size is the modelled length; for phantom buffers it exceeds
	// len(data) (which is zero).
	size int64
	// phantom buffers carry no real bytes: copies take modelled time but
	// move nothing. They let TB-scale experiments (Fig. 6) run on
	// laptop memory; correctness tests use real buffers.
	phantom bool
}

// Len returns the buffer's modelled size in bytes.
func (b *Buffer) Len() int64 { return b.size }

// Phantom reports whether the buffer is size-only (no backing bytes).
func (b *Buffer) Phantom() bool { return b.phantom }

// HostAccessible reports whether host code may dereference the buffer.
func (b *Buffer) HostAccessible() bool { return b.Kind != DeviceMem }

// Data exposes the backing bytes for host-accessible buffers; it panics for
// device memory, which the host must copy explicitly (as dereferencing a
// cudaMalloc pointer would fault on real hardware).
func (b *Buffer) Data() []byte {
	if !b.HostAccessible() {
		panic(fmt.Sprintf("gpu: host dereference of device pointer (buffer %d on %s)", b.ID, b.Dev.Name()))
	}
	if b.phantom {
		panic(fmt.Sprintf("gpu: dereference of phantom buffer %d (size-only model)", b.ID))
	}
	return b.data
}

// DeviceData exposes the backing bytes for kernel code. Only kernels
// (functions passed to Launch) should use it.
func (b *Buffer) DeviceData() []byte { return b.data }

// HostAlloc allocates ordinary host memory (not tied to a device).
func HostAlloc(n int64) *Buffer {
	return &Buffer{Kind: HostMem, data: make([]byte, n), size: n}
}

// HostAllocPhantom allocates a size-only host buffer (no backing bytes).
func HostAllocPhantom(n int64) *Buffer {
	return &Buffer{Kind: HostMem, size: n, phantom: true}
}

// Malloc allocates device memory (cudaMalloc).
func (d *Device) Malloc(n int64) (*Buffer, error) {
	if d.allocated+n > d.cfg.MemBytes {
		return nil, fmt.Errorf("gpu: %s out of memory (%d + %d > %d)", d.cfg.Name, d.allocated, n, d.cfg.MemBytes)
	}
	d.allocated += n
	d.nextID++
	return &Buffer{Kind: DeviceMem, Dev: d, ID: d.nextID, data: make([]byte, n), size: n}, nil
}

// MallocPhantom allocates size-only device memory: copies cost modelled
// time but move no bytes. Device capacity is still accounted.
func (d *Device) MallocPhantom(n int64) (*Buffer, error) {
	if d.allocated+n > d.cfg.MemBytes {
		return nil, fmt.Errorf("gpu: %s out of memory (%d + %d > %d)", d.cfg.Name, d.allocated, n, d.cfg.MemBytes)
	}
	d.allocated += n
	d.nextID++
	return &Buffer{Kind: DeviceMem, Dev: d, ID: d.nextID, size: n, phantom: true}, nil
}

// MallocManaged allocates unified memory (cudaMallocManaged).
func (d *Device) MallocManaged(n int64) (*Buffer, error) {
	if d.allocated+n > d.cfg.MemBytes {
		return nil, fmt.Errorf("gpu: %s out of memory (%d + %d > %d)", d.cfg.Name, d.allocated, n, d.cfg.MemBytes)
	}
	d.allocated += n
	d.nextID++
	return &Buffer{Kind: ManagedMem, Dev: d, ID: d.nextID, data: make([]byte, n), size: n}, nil
}

// MallocManagedPhantom allocates size-only unified memory.
func (d *Device) MallocManagedPhantom(n int64) (*Buffer, error) {
	if d.allocated+n > d.cfg.MemBytes {
		return nil, fmt.Errorf("gpu: %s out of memory (%d + %d > %d)", d.cfg.Name, d.allocated, n, d.cfg.MemBytes)
	}
	d.allocated += n
	d.nextID++
	return &Buffer{Kind: ManagedMem, Dev: d, ID: d.nextID, size: n, phantom: true}, nil
}

// Free releases a device or managed buffer.
func (d *Device) Free(b *Buffer) {
	if b.Dev != d {
		panic("gpu: freeing buffer on wrong device")
	}
	d.allocated -= b.Len()
	b.data = nil
}

// Launch runs a kernel of the given cost (giga-operations), blocking the
// calling process for its duration. body mutates buffer contents and runs
// at completion time.
func (d *Device) Launch(p *sim.Proc, gops float64, body func()) {
	span := sim.Seconds(gops / d.cfg.GOPS)
	p.Await(func(done func()) {
		d.compute.Use(span, func() {
			if body != nil {
				body()
			}
			done()
		})
	})
}

// copyWindow validates a copy range against a buffer.
func copyWindow(b *Buffer, off, n int64) error {
	if off < 0 || n < 0 || off+n > b.Len() {
		return fmt.Errorf("gpu: copy window [%d,%d) outside buffer of %d bytes", off, off+n, b.Len())
	}
	return nil
}

// MemcpyD2H copies n bytes from device/managed buffer src (at offset off)
// into dst via the pinned-DMA engine, blocking the calling process.
func (d *Device) MemcpyD2H(p *sim.Proc, dst []byte, src *Buffer, off, n int64) error {
	if err := copyWindow(src, off, n); err != nil {
		return err
	}
	if !src.phantom && int64(len(dst)) < n {
		return fmt.Errorf("gpu: destination too small (%d < %d)", len(dst), n)
	}
	p.TransferP(d.dma, n)
	if !src.phantom {
		copy(dst, src.data[off:off+n])
	}
	return nil
}

// MemcpyH2D copies n bytes from src into device/managed buffer dst at
// offset off via the pinned-DMA engine, blocking the calling process.
func (d *Device) MemcpyH2D(p *sim.Proc, dst *Buffer, off int64, src []byte, n int64) error {
	if err := copyWindow(dst, off, n); err != nil {
		return err
	}
	if !dst.phantom && int64(len(src)) < n {
		return fmt.Errorf("gpu: source too small (%d < %d)", len(src), n)
	}
	p.TransferP(d.dma, n)
	if !dst.phantom {
		copy(dst.data[off:off+n], src[:n])
	}
	return nil
}

// UVMFetchD2H models host code reading a managed buffer whose pages live on
// the device: page-fault migration at the slow UVM rate. This is the
// initial FTI implementation's path for UVM data.
func (d *Device) UVMFetchD2H(p *sim.Proc, dst []byte, src *Buffer, off, n int64) error {
	if src.Kind != ManagedMem {
		return fmt.Errorf("gpu: UVM fetch of non-managed buffer (%s)", src.Kind)
	}
	if err := copyWindow(src, off, n); err != nil {
		return err
	}
	p.TransferP(d.uvmD2H, n)
	if !src.phantom {
		copy(dst, src.data[off:off+n])
	}
	return nil
}

// UVMPopulateH2D models host code writing a managed buffer whose pages must
// migrate back to the device: the slow recovery path of the initial FTI
// implementation.
func (d *Device) UVMPopulateH2D(p *sim.Proc, dst *Buffer, off int64, src []byte, n int64) error {
	if dst.Kind != ManagedMem {
		return fmt.Errorf("gpu: UVM populate of non-managed buffer (%s)", dst.Kind)
	}
	if err := copyWindow(dst, off, n); err != nil {
		return err
	}
	p.TransferP(d.uvmH2D, n)
	if !dst.phantom {
		copy(dst.data[off:off+n], src[:n])
	}
	return nil
}

// Stream is an ordered queue of asynchronous operations, as used by the
// optimised FTI implementation to overlap device-to-host movement with
// file writes.
type Stream struct {
	dev     *Device
	pending int
	waiters []func()
}

// NewStream creates a stream on the device.
func (d *Device) NewStream() *Stream { return &Stream{dev: d} }

// MemcpyD2HAsync enqueues an async chunk copy; done (optional) fires when
// the chunk has landed in dst.
func (s *Stream) MemcpyD2HAsync(dst []byte, src *Buffer, off, n int64, done func()) error {
	if err := copyWindow(src, off, n); err != nil {
		return err
	}
	if !src.phantom && int64(len(dst)) < n {
		return fmt.Errorf("gpu: destination too small (%d < %d)", len(dst), n)
	}
	s.pending++
	s.dev.dma.Transfer(n, func() {
		if !src.phantom {
			copy(dst, src.data[off:off+n])
		}
		s.complete()
		if done != nil {
			done()
		}
	})
	return nil
}

// MemcpyH2DAsync enqueues an async host-to-device chunk copy.
func (s *Stream) MemcpyH2DAsync(dst *Buffer, off int64, src []byte, n int64, done func()) error {
	if err := copyWindow(dst, off, n); err != nil {
		return err
	}
	if !dst.phantom && int64(len(src)) < n {
		return fmt.Errorf("gpu: source too small (%d < %d)", len(src), n)
	}
	s.pending++
	s.dev.dma.Transfer(n, func() {
		if !dst.phantom {
			copy(dst.data[off:off+n], src[:n])
		}
		s.complete()
		if done != nil {
			done()
		}
	})
	return nil
}

func (s *Stream) complete() {
	s.pending--
	if s.pending == 0 {
		ws := s.waiters
		s.waiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// Synchronize blocks the calling process until every operation enqueued on
// the stream so far has completed.
func (s *Stream) Synchronize(p *sim.Proc) {
	if s.pending == 0 {
		return
	}
	p.Await(func(done func()) {
		s.waiters = append(s.waiters, done)
	})
}
