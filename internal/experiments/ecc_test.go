package experiments

import (
	"strings"
	"testing"
)

func TestECCMitigation(t *testing.T) {
	rows, err := ECCMitigation(64<<10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("sweep too short: %d", len(rows))
	}
	// In the guardband both stores are clean.
	if rows[0].PlainBadWords != 0 || rows[0].ECCBadWords != 0 {
		t.Fatalf("corruption at nominal voltage: %+v", rows[0])
	}
	// Deep in the critical region the raw store corrupts; ECC must correct
	// (residual strictly below raw, and corrections actually happened).
	last := rows[len(rows)-1]
	if last.FaultsPerMbit == 0 {
		t.Fatal("sweep never reached the critical region")
	}
	sawRawCorruption := false
	for _, r := range rows {
		if r.PlainBadWords > 0 {
			sawRawCorruption = true
			if r.ECCBadWords > r.PlainBadWords {
				t.Fatalf("ECC worse than raw at %.2f V: %+v", r.Voltage, r)
			}
		}
	}
	if !sawRawCorruption {
		t.Fatal("payload never hit by faults — enlarge the payload")
	}
	totalCorrected := 0
	totalECCBad := 0
	totalRawBad := 0
	for _, r := range rows {
		totalCorrected += r.Corrected
		totalECCBad += r.ECCBadWords
		totalRawBad += r.PlainBadWords
	}
	if totalCorrected == 0 {
		t.Fatal("ECC corrected nothing across the sweep")
	}
	if totalECCBad*10 > totalRawBad {
		t.Fatalf("ECC left too much residual corruption: %d vs raw %d", totalECCBad, totalRawBad)
	}
	if !strings.Contains(ECCTable(rows), "overhead") {
		t.Fatal("table broken")
	}
}
