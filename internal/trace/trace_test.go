package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"legato/internal/sim"
)

func TestSpanTiming(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	var id int
	eng.Schedule(10, func() { id = tr.Begin("task-a", "compute", "cpu0") })
	eng.Schedule(25, func() { tr.End(id) })
	eng.Run()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans: %d", len(spans))
	}
	if spans[0].Start != 10 || spans[0].End != 25 || spans[0].Duration() != 15 {
		t.Fatalf("span timing: %+v", spans[0])
	}
}

func TestEndUnknownIgnored(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	tr.End(42) // must not panic
	if len(tr.Spans()) != 0 {
		t.Fatal("phantom span")
	}
}

func TestByCategory(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	a := tr.Begin("x", "compute", "cpu0")
	eng.Schedule(5, func() { tr.End(a) })
	eng.Schedule(5, func() {
		b := tr.Begin("y", "io", "nvme0")
		eng.Schedule(7, func() { tr.End(b) })
	})
	eng.Run()
	cats := tr.ByCategory()
	if cats["compute"] != 5 || cats["io"] != 7 {
		t.Fatalf("categories: %v", cats)
	}
}

func TestCounters(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	tr.Count("bytes", 100)
	tr.Count("bytes", 50)
	if tr.Counter("bytes") != 150 {
		t.Fatalf("counter: %v", tr.Counter("bytes"))
	}
}

func TestExportParaver(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	id := tr.Begin("task", "compute", "gpu0")
	eng.Schedule(3, func() { tr.End(id) })
	eng.Run()
	tr.Count("faults", 2)
	out := tr.ExportParaver()
	for _, frag := range []string{"#Paraver", "gpu0", "compute", "task", "faults"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("export missing %q:\n%s", frag, out)
		}
	}
}

// TestConcurrentTracerUse hammers Begin/End/Add/Count on one tracer from
// parallel goroutines while sibling tracers Merge into it — the shape of
// a session trace receiving completed jobs while others still record.
// Run under -race; the witness is no race and no lost span.
func TestConcurrentTracerUse(t *testing.T) {
	session := New(sim.NewEngine())
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := New(sim.NewEngine())
			for i := 0; i < perWorker; i++ {
				id := session.Begin(fmt.Sprintf("w%d/t%d", w, i), "task", "dev")
				session.End(id)
				local.Add(Span{Name: fmt.Sprintf("w%d/l%d", w, i), Category: "local", Resource: "dev"})
				local.Count("bytes", 1)
				session.Count("ops", 1)
			}
			session.Merge(local)
		}(w)
	}
	wg.Wait()
	if got := len(session.Spans()); got != 2*workers*perWorker {
		t.Fatalf("lost spans under concurrency: %d, want %d", got, 2*workers*perWorker)
	}
	if session.Counter("ops") != workers*perWorker || session.Counter("bytes") != workers*perWorker {
		t.Fatalf("lost counts: ops=%v bytes=%v", session.Counter("ops"), session.Counter("bytes"))
	}
}

func TestMergeSelfAndNilAreNoOps(t *testing.T) {
	tr := New(sim.NewEngine())
	tr.Add(Span{Name: "x", Category: "task", Resource: "d"})
	tr.Merge(nil)
	tr.Merge(tr)
	if len(tr.Spans()) != 1 {
		t.Fatalf("self/nil merge changed spans: %d", len(tr.Spans()))
	}
}

// TestSeriesVirtualTimeOrder records samples out of submission order and
// checks Series returns them sorted by virtual time.
func TestSeriesVirtualTimeOrder(t *testing.T) {
	tr := New(sim.NewEngine())
	at := func(s sim.Time, v float64) {
		tr.Add(Span{Name: "draw", Category: "power", Resource: "fleet", Start: s, End: s, Value: v})
	}
	at(30, 3)
	at(10, 1)
	at(20, 2)
	at(5, 0.5)
	xs, ys := tr.Series("power")
	if len(xs) != 4 {
		t.Fatalf("series length %d", len(xs))
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatalf("series x values not time-sorted: %v", xs)
	}
	want := []float64{0.5, 1, 2, 3}
	for i, v := range want {
		if ys[i] != v {
			t.Fatalf("series values out of order: %v", ys)
		}
	}
}

func TestCountersCopy(t *testing.T) {
	tr := New(sim.NewEngine())
	tr.Count("a", 2)
	c := tr.Counters()
	c["a"] = 99
	if tr.Counter("a") != 2 {
		t.Fatal("Counters returned a live reference")
	}
}

func TestParaverTextMatchesExport(t *testing.T) {
	tr := New(sim.NewEngine())
	tr.Add(Span{Name: "t0", Category: "task", Resource: "gpu0", Start: 1, End: 5})
	tr.Count("hedges", 1)
	if got, want := ParaverText(tr.Spans(), tr.Counters()), tr.ExportParaver(); got != want {
		t.Fatalf("package-level render diverges:\n%s\nvs\n%s", got, want)
	}
}

func TestSummary(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	id := tr.Begin("t", "ckpt", "node0")
	eng.Schedule(4, func() { tr.End(id) })
	eng.Run()
	if !strings.Contains(tr.Summary(), "ckpt") {
		t.Fatal("summary missing category")
	}
}
