package taskrt

import (
	"errors"
	"testing"
	"time"

	"legato/internal/hw"
	"legato/internal/power"
	"legato/internal/sim"
)

// tailDevices returns the tail-test pair: "fast" is the MinTime favourite
// (Xeon, 25 Gops/core — a 100-Gop task takes 4 s), "backup" a slower ARM
// server of a different class (18 Gops/core, 5.56 s). The straggler
// watchdog at 1.5× fires at 6 s, so a hedge on backup completes at
// ~11.56 s — well before a 4×-degraded primary's ~16 s.
func tailDevices(eng *sim.Engine) []*hw.Device {
	return []*hw.Device{
		hw.NewDevice(eng, "fast", hw.XeonD()),
		hw.NewDevice(eng, "backup", hw.ARMv8Server()),
	}
}

// A silent mid-flight slowdown of the favourite device trips the watchdog;
// the hedge on the other class wins, the task's record commits the
// replica's device with the full straggle-inclusive latency, and the
// cancelled primary's burned energy is accounted as hedge waste.
func TestStragglerHedgeWins(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, tailDevices(eng), MinTime)
	rt.SetHedging(HedgePolicy{Multiplier: 1.5})
	rt.ScheduleFault(time.Millisecond, func() { rt.DegradeDevice("fast", 4) })
	if err := rt.Submit(Task{Name: "work", Gops: 100, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stragglers != 1 || res.HedgesLaunched != 1 || res.HedgesWon != 1 {
		t.Fatalf("stragglers=%d launched=%d won=%d, want 1/1/1",
			res.Stragglers, res.HedgesLaunched, res.HedgesWon)
	}
	if res.HedgeWastedJ <= 0 {
		t.Fatalf("hedge waste = %v J, want > 0 (the cancelled primary burned energy)", res.HedgeWastedJ)
	}
	rec := res.Records[0]
	if rec.Device != "backup" || !rec.Hedged {
		t.Fatalf("record device=%s hedged=%v, want the winning replica on backup", rec.Device, rec.Hedged)
	}
	if rec.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (a hedge is not a retry)", rec.Attempts)
	}
	lat := rec.End - rec.Start
	if lat < 11*time.Second || lat > 12*time.Second {
		t.Fatalf("latency = %v, want ~11.56 s (6 s straggle window + 5.56 s replica)", lat)
	}
}

// Without a hedging policy the watchdog never arms: the degraded device
// runs the task to its stretched completion, unnoticed.
func TestNoHedgingNoWatchdog(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, tailDevices(eng), MinTime)
	rt.ScheduleFault(time.Millisecond, func() { rt.DegradeDevice("fast", 4) })
	if err := rt.Submit(Task{Name: "work", Gops: 100, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stragglers != 0 || res.HedgesLaunched != 0 {
		t.Fatalf("stragglers=%d launched=%d, want 0/0 without a policy",
			res.Stragglers, res.HedgesLaunched)
	}
	rec := res.Records[0]
	if rec.Device != "fast" || rec.Hedged {
		t.Fatalf("record device=%s hedged=%v, want the degraded primary", rec.Device, rec.Hedged)
	}
	if lat := rec.End - rec.Start; lat < 15*time.Second {
		t.Fatalf("latency = %v, want ~16 s (4x slowdown ran to completion)", lat)
	}
}

// A mild slowdown lets the primary beat its own hedge: first completion
// wins, the replica is cancelled deterministically, and its burned energy
// is the only cost.
func TestPrimaryBeatsHedge(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, tailDevices(eng), MinTime)
	rt.SetHedging(HedgePolicy{Multiplier: 1.5})
	// 1.6x: finishes at ~6.4 s, just after the 6 s watchdog; the backup
	// replica would need until ~11.56 s.
	rt.ScheduleFault(time.Millisecond, func() { rt.DegradeDevice("fast", 1.6) })
	if err := rt.Submit(Task{Name: "work", Gops: 100, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stragglers != 1 || res.HedgesLaunched != 1 || res.HedgesWon != 0 {
		t.Fatalf("stragglers=%d launched=%d won=%d, want 1/1/0",
			res.Stragglers, res.HedgesLaunched, res.HedgesWon)
	}
	if res.HedgeWastedJ <= 0 {
		t.Fatalf("hedge waste = %v J, want > 0 (the cancelled replica ran ~0.4 s)", res.HedgeWastedJ)
	}
	rec := res.Records[0]
	if rec.Device != "fast" || rec.Hedged {
		t.Fatalf("record device=%s hedged=%v, want the surviving primary", rec.Device, rec.Hedged)
	}
}

// Losing the primary's device while a hedge is in flight promotes the
// replica to sole execution — no retry, no extra attempt.
func TestHedgePromotedOnPrimaryDeviceLoss(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, tailDevices(eng), MinTime)
	rt.SetHedging(HedgePolicy{Multiplier: 1.5})
	rt.ScheduleFault(time.Millisecond, func() { rt.DegradeDevice("fast", 4) })
	// Watchdog fires at 6 s; kill the straggling primary's device at 8 s.
	rt.ScheduleFault(8*time.Second, func() {
		revoked, _ := rt.FailDevice("fast")
		if revoked != 1 {
			t.Errorf("revoked = %d, want 1 (the straggling primary)", revoked)
		}
	})
	if err := rt.Submit(Task{Name: "work", Gops: 100, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (promotion, not re-placement)", res.Retries)
	}
	rec := res.Records[0]
	if rec.Device != "backup" || !rec.Hedged || rec.Attempts != 1 {
		t.Fatalf("record device=%s hedged=%v attempts=%d, want the promoted replica",
			rec.Device, rec.Hedged, rec.Attempts)
	}
	if res.HedgesWon != 0 {
		t.Fatalf("hedges won = %d, want 0 (promotion is not a race win)", res.HedgesWon)
	}
}

// A hedge whose watt draw does not fit under the power cap is denied and
// re-armed, never force-admitted: the cap invariant outranks tail rescue.
func TestHedgeDeniedByPowerCap(t *testing.T) {
	eng := sim.NewEngine()
	devs := tailDevices(eng)
	rt := New(eng, devs, MinTime)
	// Idle floor 31 W; the primary's 1-core draw on fast is ~4.06 W. A
	// 36 W cap admits the primary (35.06 W) but not the backup replica's
	// extra 2.25 W.
	rt.SetPowerAdmission(power.NewLedger(36, devs, power.RaceToIdle))
	rt.SetHedging(HedgePolicy{Multiplier: 1.5})
	rt.ScheduleFault(time.Millisecond, func() { rt.DegradeDevice("fast", 4) })
	if err := rt.Submit(Task{Name: "work", Gops: 100, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HedgesLaunched != 0 || res.HedgesWon != 0 {
		t.Fatalf("launched=%d won=%d, want no replica under the tight cap",
			res.HedgesLaunched, res.HedgesWon)
	}
	if res.HedgesDenied == 0 {
		t.Fatal("hedges denied = 0, want the watt-ledger refusals counted")
	}
	if rec := res.Records[0]; rec.Device != "fast" || rec.Hedged {
		t.Fatalf("record device=%s hedged=%v, want the degraded primary", rec.Device, rec.Hedged)
	}
}

// Strict deadline mode fails the job with the typed sentinel when a task
// is still unfinished at its (virtual-clock) deadline.
func TestDeadlineStrict(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, tailDevices(eng), MinTime)
	if err := rt.Submit(Task{Name: "late", Gops: 100, Cores: 1, Deadline: time.Second}); err != nil {
		t.Fatal(err)
	}
	_, err := rt.Run()
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

// Shed mode drops an unstarted low-priority task at its deadline: the job
// completes, the shed record carries no execution, and successors are
// released so the graph drains.
func TestDeadlineShedUnstartedTask(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, tailDevices(eng), MinTime)
	rt.SetDeadlineMode(DeadlineShed)
	d := rt.Data("d", 1<<10)
	out := rt.Data("out", 1<<10)
	if err := rt.Submit(Task{Name: "long", Gops: 100, Cores: 1, Out: []*Data{d}}); err != nil {
		t.Fatal(err)
	}
	// Blocked behind 4 s of work with a 1 s deadline: shed at 1 s.
	if err := rt.Submit(Task{Name: "optional", Gops: 10, Cores: 1, Deadline: time.Second,
		In: []*Data{d}, Out: []*Data{out}}); err != nil {
		t.Fatal(err)
	}
	// A successor of the shed task must still run.
	if err := rt.Submit(Task{Name: "tail", Gops: 10, Cores: 1, In: []*Data{out}}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 1 || res.TasksShed != 1 {
		t.Fatalf("misses=%d shed=%d, want 1/1", res.DeadlineMisses, res.TasksShed)
	}
	var shed, tail *Record
	for i := range res.Records {
		switch res.Records[i].Name {
		case "optional":
			shed = &res.Records[i]
		case "tail":
			tail = &res.Records[i]
		}
	}
	if shed == nil || !shed.Shed || !shed.MissedDeadline || shed.Device != "" {
		t.Fatalf("shed record = %+v, want Shed+MissedDeadline with no device", shed)
	}
	if shed.End != sim.Time(time.Second) {
		t.Fatalf("shed at %v, want the 1 s deadline instant", shed.End)
	}
	if tail == nil || tail.Shed || tail.End <= shed.End {
		t.Fatalf("successor record = %+v, want executed after the shed", tail)
	}
}

// Shed mode best-efforts a task that already started (or carries
// priority): the deadline miss is flagged on the record but the execution
// runs to completion.
func TestDeadlineShedBestEffortsStartedTask(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, tailDevices(eng), MinTime)
	rt.SetDeadlineMode(DeadlineShed)
	if err := rt.Submit(Task{Name: "running", Gops: 100, Cores: 1, Deadline: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 1 || res.TasksShed != 0 {
		t.Fatalf("misses=%d shed=%d, want 1 miss and no shed", res.DeadlineMisses, res.TasksShed)
	}
	rec := res.Records[0]
	if !rec.MissedDeadline || rec.Shed {
		t.Fatalf("record = %+v, want MissedDeadline on a completed execution", rec)
	}
	if rec.End != sim.Time(4*time.Second) {
		t.Fatalf("End = %v, want the full 4 s execution", rec.End)
	}
}

// Submit rejects malformed task specs with the typed sentinel.
func TestSubmitValidatesTaskSpec(t *testing.T) {
	eng := sim.NewEngine()
	rt := New(eng, tailDevices(eng), MinTime)
	for _, tc := range []struct {
		name string
		task Task
	}{
		{"negative gops", Task{Name: "g", Gops: -1}},
		{"negative cores", Task{Name: "c", Gops: 1, Cores: -2}},
		{"negative retry", Task{Name: "r", Gops: 1, Retry: -1}},
		{"negative deadline", Task{Name: "d", Gops: 1, Deadline: -time.Second}},
	} {
		if err := rt.Submit(tc.task); !errors.Is(err, ErrInvalidTask) {
			t.Errorf("%s: err = %v, want ErrInvalidTask", tc.name, err)
		}
	}
}
