package legato

import (
	"strings"
	"testing"

	"legato/internal/hw"
)

func TestCloudSystemRunsTaskGraph(t *testing.T) {
	sys, err := NewSystem(Config{Policy: MinTime})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	mk := func(name string, in, out []string) Task {
		return Task{Name: name, Gops: 5, In: in, Out: out,
			Fn: func() { order = append(order, name) }}
	}
	if err := sys.Submit(mk("produce", nil, []string{"A"})); err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(mk("consume", []string{"A"}, []string{"B"})); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "produce" || order[1] != "consume" {
		t.Fatalf("dependence order: %v", order)
	}
	if rep.Makespan <= 0 || rep.TaskEnergyJ <= 0 || rep.PlatformEnergyJ <= 0 {
		t.Fatalf("report not populated: %+v", rep)
	}
	if !strings.Contains(rep.Energy.String(), "recs0") {
		t.Fatal("per-device energy breakdown missing")
	}
}

func TestEdgeSystem(t *testing.T) {
	sys, err := NewSystem(Config{Platform: EdgePlatform, Policy: MinEnergy})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Devices()) != 3 {
		t.Fatalf("edge devices: %d", len(sys.Devices()))
	}
	if sys.Manager() != nil {
		t.Fatal("edge platform should have no chassis manager")
	}
	if err := sys.Submit(Task{Name: "t", Gops: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	sys, _ := NewSystem(Config{})
	if err := sys.Submit(Task{}); err == nil {
		t.Fatal("unnamed task accepted")
	}
}

func TestReplicationExpandsToDMRWithVote(t *testing.T) {
	sys, err := NewSystem(Config{Policy: MinTime})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(Task{
		Name: "critical", Gops: 10, Out: []string{"R"},
		Req: Requirements{Replicate: true},
	}); err != nil {
		t.Fatal(err)
	}
	var after bool
	if err := sys.Submit(Task{Name: "reader", Gops: 1, In: []string{"R"},
		Fn: func() { after = true }}); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !after {
		t.Fatal("downstream task did not run")
	}
	if rep.ReplicatedTasks != 1 {
		t.Fatalf("replicated tasks: %d", rep.ReplicatedTasks)
	}
	// Expansion: replica a, replica b, vote, reader = 4 records.
	if len(rep.Records) != 4 {
		t.Fatalf("records: %d, want 4 (a, b, vote, reader)", len(rep.Records))
	}
	// Replicas must land on different device classes (diversity).
	classes := map[hw.Class]bool{}
	var voteStart, aEnd, bEnd int64
	for _, r := range rep.Records {
		switch {
		case strings.HasSuffix(r.Name, "#a"):
			classes[r.Class] = true
			aEnd = int64(r.End)
		case strings.HasSuffix(r.Name, "#b"):
			classes[r.Class] = true
			bEnd = int64(r.End)
		case strings.HasSuffix(r.Name, "#vote"):
			voteStart = int64(r.Start)
		}
	}
	if len(classes) < 2 {
		t.Fatalf("replicas not on diverse classes: %v", classes)
	}
	if voteStart < aEnd || voteStart < bEnd {
		t.Fatal("vote ran before both replicas finished")
	}
}

func TestSecureTaskChargesEnclave(t *testing.T) {
	sys, err := NewSystem(Config{Policy: MinTime})
	if err != nil {
		t.Fatal(err)
	}
	sys.Data("payload", 4096)
	if err := sys.Submit(Task{
		Name: "gateway", Gops: 5, In: []string{"payload"},
		Req: Requirements{Secure: true},
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SecurityEnergyJ <= 0 {
		t.Fatal("secure task charged no enclave energy")
	}
}

func TestPolicyChangesPlacement(t *testing.T) {
	run := func(p Policy) float64 {
		sys, err := NewSystem(Config{Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := sys.Submit(Task{Name: "t", Gops: 50,
				Targets: []hw.Class{hw.CPUx86, hw.CPUARM}}); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.TaskEnergyJ
	}
	if eco, fast := run(MinEnergy), run(MinTime); eco >= fast {
		t.Fatalf("energy policy (%v J) not below time policy (%v J)", eco, fast)
	}
}
