// Package energy implements the power and energy accounting layer of the
// LEGaTO reproduction: power meters that integrate piecewise-constant power
// draw over virtual time, PDU- and PowerSpy-style probes as used by HEATS
// (paper Sec. V, Fig. 7), and report helpers for the experiment harness.
package energy

import (
	"fmt"
	"sort"

	"legato/internal/sim"
)

// Joules is an energy amount in joules.
type Joules = float64

// Watts is a power draw in watts.
type Watts = float64

// Meter integrates piecewise-constant power over virtual time. Set the
// current draw with SetPower; Energy reports the integral so far.
type Meter struct {
	eng *sim.Engine

	name      string
	power     Watts
	lastEdge  sim.Time
	energy    Joules
	peakPower Watts
	samples   []Sample
	sampling  bool
}

// Sample is one recorded (time, power) point.
type Sample struct {
	At    sim.Time
	Power Watts
}

// NewMeter creates a meter attached to the simulation clock.
func NewMeter(eng *sim.Engine, name string) *Meter {
	return &Meter{eng: eng, name: name, lastEdge: eng.Now()}
}

// Name returns the meter's identifier.
func (m *Meter) Name() string { return m.name }

// EnableSampling records a sample at every power edge (for traces/plots).
func (m *Meter) EnableSampling() { m.sampling = true }

// Samples returns the recorded power edges.
func (m *Meter) Samples() []Sample { return m.samples }

// SetPower accrues energy at the previous draw up to now, then switches the
// draw to p.
func (m *Meter) SetPower(p Watts) {
	m.accrue()
	m.power = p
	if p > m.peakPower {
		m.peakPower = p
	}
	if m.sampling {
		m.samples = append(m.samples, Sample{At: m.eng.Now(), Power: p})
	}
}

// AddPower adjusts the current draw by delta watts (may be negative).
func (m *Meter) AddPower(delta Watts) { m.SetPower(m.power + delta) }

// Power returns the instantaneous draw.
func (m *Meter) Power() Watts { return m.power }

// PeakPower returns the maximum draw observed.
func (m *Meter) PeakPower() Watts { return m.peakPower }

// Energy returns joules accumulated up to the current virtual time.
func (m *Meter) Energy() Joules {
	m.accrue()
	return m.energy
}

// AddEnergy deposits a one-shot energy amount (e.g. a task's modelled cost).
func (m *Meter) AddEnergy(j Joules) {
	m.accrue()
	m.energy += j
}

func (m *Meter) accrue() {
	now := m.eng.Now()
	if now > m.lastEdge {
		m.energy += m.power * sim.ToSeconds(now-m.lastEdge)
		m.lastEdge = now
	}
}

// Probe is the monitoring-facing view of a power source, as exposed to the
// HEATS monitoring module by PDUs (per-node) and PowerSpy devices
// (per-outlet) in the paper's testbed.
type Probe interface {
	// Read returns the instantaneous power draw.
	Read() Watts
	// ProbeName identifies the probe for telemetry.
	ProbeName() string
}

// MeterProbe adapts a Meter into a Probe.
type MeterProbe struct{ M *Meter }

// Read returns the meter's instantaneous power.
func (p MeterProbe) Read() Watts { return p.M.Power() }

// ProbeName returns the underlying meter name.
func (p MeterProbe) ProbeName() string { return p.M.Name() }

// Aggregate sums several probes, like a PDU covering a whole chassis.
type Aggregate struct {
	Name   string
	Probes []Probe
}

// Read returns the summed instantaneous power of all members.
func (a *Aggregate) Read() Watts {
	total := Watts(0)
	for _, p := range a.Probes {
		total += p.Read()
	}
	return total
}

// ProbeName identifies the aggregate probe.
func (a *Aggregate) ProbeName() string { return a.Name }

// Report is a per-component energy summary for experiment output.
type Report struct {
	rows map[string]Joules
}

// NewReport creates an empty report.
func NewReport() *Report { return &Report{rows: make(map[string]Joules)} }

// Add deposits energy attributed to a component.
func (r *Report) Add(component string, j Joules) { r.rows[component] += j }

// Get returns the energy attributed to a component.
func (r *Report) Get(component string) Joules { return r.rows[component] }

// Total returns the summed energy over all components.
func (r *Report) Total() Joules {
	t := Joules(0)
	for _, v := range r.rows {
		t += v
	}
	return t
}

// String renders the report as an aligned table, components sorted by name.
func (r *Report) String() string {
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := fmt.Sprintf("%-24s %12s\n", "component", "energy (J)")
	for _, k := range keys {
		s += fmt.Sprintf("%-24s %12.3f\n", k, r.rows[k])
	}
	s += fmt.Sprintf("%-24s %12.3f\n", "TOTAL", r.Total())
	return s
}
