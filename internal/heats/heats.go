// Package heats implements HEATS, the heterogeneity- and energy-aware
// scheduler of paper Sec. V (Fig. 7, [10]). HEATS "allows customers to
// trade performance vs. energy requirements": it learns per-node
// performance and energy profiles, scores candidate nodes by normalised
// predictions weighted by the client's energy/performance ratio α, places
// each task on the best-fitting node, and periodically re-evaluates
// running tasks, migrating them when a sufficiently better host appears.
package heats

import (
	"fmt"
	"sort"

	"legato/internal/cluster"
	"legato/internal/monitor"
	"legato/internal/sim"
)

// Estimate is the model's prediction for one (task kind, node) pair.
type Estimate struct {
	Seconds float64
	Joules  float64
}

// Model holds learned profiles: task kind → node name → estimate, built in
// the profiling/learning phase of Fig. 7.
type Model struct {
	profiles map[string]map[string]Estimate
}

// NewModel creates an empty model.
func NewModel() *Model {
	return &Model{profiles: make(map[string]map[string]Estimate)}
}

// Learn records the estimate for a task kind on a node.
func (m *Model) Learn(kind, node string, e Estimate) {
	if m.profiles[kind] == nil {
		m.profiles[kind] = make(map[string]Estimate)
	}
	m.profiles[kind][node] = e
}

// Predict returns the estimate for kind on node.
func (m *Model) Predict(kind, node string) (Estimate, bool) {
	e, ok := m.profiles[kind][node]
	return e, ok
}

// ProfileCluster runs the probing phase: for each task kind, estimate
// execution time and dynamic energy on every node from the device models
// (standing in for the "software probing + learning" of Fig. 7).
func ProfileCluster(cl *cluster.Cluster, kinds map[string]*cluster.Task) *Model {
	m := NewModel()
	for kind, proto := range kinds {
		for _, n := range cl.Nodes {
			if n.Dev.Spec.Cores < proto.CPU {
				continue
			}
			secs := sim.ToSeconds(n.Dev.ExecTime(proto.Gops, proto.CPU))
			joules := n.Dev.EnergyFor(proto.Gops, proto.CPU)
			m.Learn(kind, n.Name, Estimate{Seconds: secs, Joules: joules})
		}
	}
	return m
}

// Config parametrises the scheduler.
type Config struct {
	// Alpha weighs energy against performance in [0,1]: 0 = pure
	// performance, 1 = pure energy (the customer requirement).
	Alpha float64
	// ReschedulePeriod is the interval of the migration loop
	// (default 5 s of simulated time; 0 uses the default, negative
	// disables rescheduling).
	ReschedulePeriod sim.Time
	// MigrationGainThreshold is the minimum relative score improvement
	// before a migration is worthwhile (default 0.2).
	MigrationGainThreshold float64
}

// Scheduler is the HEATS control loop.
type Scheduler struct {
	cfg   Config
	eng   *sim.Engine
	cl    *cluster.Cluster
	mon   *monitor.Monitor
	model *Model

	queue   []*cluster.Task
	running map[*cluster.Task]struct{}
	pending int

	// Migrations counts performed migrations.
	Migrations int
	// Placements counts initial placements.
	Placements int
	// lastDone is the completion time of the latest task (the makespan).
	lastDone sim.Time
}

// New creates a scheduler.
func New(eng *sim.Engine, cl *cluster.Cluster, mon *monitor.Monitor, model *Model, cfg Config) *Scheduler {
	if cfg.ReschedulePeriod == 0 {
		cfg.ReschedulePeriod = 5 * sim.Second
	}
	if cfg.MigrationGainThreshold == 0 {
		cfg.MigrationGainThreshold = 0.2
	}
	if cfg.Alpha < 0 {
		cfg.Alpha = 0
	}
	if cfg.Alpha > 1 {
		cfg.Alpha = 1
	}
	return &Scheduler{
		cfg: cfg, eng: eng, cl: cl, mon: mon, model: model,
		running: make(map[*cluster.Task]struct{}),
	}
}

// Submit queues tasks for placement.
func (s *Scheduler) Submit(tasks ...*cluster.Task) {
	for _, t := range tasks {
		t := t
		s.pending++
		prev := t.OnDone
		t.OnDone = func() {
			delete(s.running, t)
			s.pending--
			if s.eng.Now() > s.lastDone {
				s.lastDone = s.eng.Now()
			}
			if prev != nil {
				prev()
			}
			// Freed resources may unblock queued tasks.
			s.schedule()
		}
		s.queue = append(s.queue, t)
	}
	s.schedule()
}

// score returns the weighted, normalised score of running kind on node
// (lower is better), given the min/max over the feasible set.
func score(e Estimate, minT, maxT, minE, maxE, alpha float64) float64 {
	normT, normE := 0.0, 0.0
	if maxT > minT {
		normT = (e.Seconds - minT) / (maxT - minT)
	}
	if maxE > minE {
		normE = (e.Joules - minE) / (maxE - minE)
	}
	return alpha*normE + (1-alpha)*normT
}

// bestNode returns the best feasible node for t and its score; ok=false if
// nothing fits now.
func (s *Scheduler) bestNode(t *cluster.Task, exclude *cluster.Node) (*cluster.Node, float64, bool) {
	type cand struct {
		node *cluster.Node
		est  Estimate
	}
	var cands []cand
	for _, n := range s.cl.Nodes {
		if n == exclude || !n.Fits(t) {
			continue
		}
		if e, ok := s.model.Predict(t.Kind, n.Name); ok {
			cands = append(cands, cand{node: n, est: e})
		}
	}
	if len(cands) == 0 {
		return nil, 0, false
	}
	minT, maxT := cands[0].est.Seconds, cands[0].est.Seconds
	minE, maxE := cands[0].est.Joules, cands[0].est.Joules
	for _, c := range cands[1:] {
		if c.est.Seconds < minT {
			minT = c.est.Seconds
		}
		if c.est.Seconds > maxT {
			maxT = c.est.Seconds
		}
		if c.est.Joules < minE {
			minE = c.est.Joules
		}
		if c.est.Joules > maxE {
			maxE = c.est.Joules
		}
	}
	best := -1
	bestScore := 0.0
	for i, c := range cands {
		sc := score(c.est, minT, maxT, minE, maxE, s.cfg.Alpha)
		if best == -1 || sc < bestScore {
			best, bestScore = i, sc
		}
	}
	return cands[best].node, bestScore, true
}

// schedule places queued tasks (the "scheduling phase ... for the queue of
// all pending tasks").
func (s *Scheduler) schedule() {
	s.mon.Poll()
	var remaining []*cluster.Task
	for _, t := range s.queue {
		n, _, ok := s.bestNode(t, nil)
		if !ok {
			remaining = append(remaining, t)
			continue
		}
		if err := s.cl.Place(t, n); err != nil {
			remaining = append(remaining, t)
			continue
		}
		s.running[t] = struct{}{}
		s.Placements++
	}
	s.queue = remaining
}

// reschedule re-evaluates running tasks and migrates those with a
// sufficiently better host ("when a better fit than the current host of a
// task is found, the scheduler performs a migration").
func (s *Scheduler) reschedule() {
	s.mon.Poll()
	for t := range s.running {
		cur := t.Node()
		if cur == nil || t.Done() {
			continue
		}
		curEst, ok := s.model.Predict(t.Kind, cur.Name)
		if !ok {
			continue
		}
		// Score the current host against alternatives on the remaining work.
		alt, altScore, ok := s.bestNode(t, cur)
		if !ok {
			continue
		}
		altEst, _ := s.model.Predict(t.Kind, alt.Name)
		// Compare unnormalised objective on remaining work: weighted
		// combination where both terms are relative to the current host.
		frac := 0.0
		if t.Gops > 0 {
			frac = t.Remaining() / t.Gops
		}
		curCost := s.cfg.Alpha*curEst.Joules*frac + (1-s.cfg.Alpha)*curEst.Seconds*frac
		altCost := s.cfg.Alpha*altEst.Joules*frac + (1-s.cfg.Alpha)*altEst.Seconds*frac
		if curCost <= 0 {
			continue
		}
		if (curCost-altCost)/curCost > s.cfg.MigrationGainThreshold {
			if err := s.cl.Migrate(t, alt); err == nil {
				s.Migrations++
			}
		}
		_ = altScore
	}
}

// Run drives the scheduler until every submitted task has completed,
// rescheduling every ReschedulePeriod, and returns the makespan (the
// completion time of the last task).
func (s *Scheduler) Run() (sim.Time, error) {
	if s.cfg.ReschedulePeriod > 0 {
		var tick func()
		tick = func() {
			if s.pending == 0 {
				return // all work done: let the engine drain
			}
			s.schedule()
			s.reschedule()
			s.eng.Schedule(s.cfg.ReschedulePeriod, tick)
		}
		s.eng.Schedule(s.cfg.ReschedulePeriod, tick)
	}
	s.eng.Run()
	if s.pending > 0 || len(s.queue) > 0 {
		return s.lastDone, fmt.Errorf("heats: %d tasks never completed (%d queued)", s.pending, len(s.queue))
	}
	return s.lastDone, nil
}

// NodesByName returns cluster nodes sorted by name (test helper).
func NodesByName(cl *cluster.Cluster) []*cluster.Node {
	nodes := append([]*cluster.Node(nil), cl.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes
}
