// Package fti reproduces the FTI multilevel checkpoint library [9] with the
// LEGaTO GPU/CPU extension of paper Sec. IV: a single Protect call covers
// host, device and UVM addresses; checkpoints are written at four levels
// (L1 node-local NVMe, L2 partner copy, L3 Reed-Solomon group encoding,
// L4 global store); and the device paths come in the paper's two flavours —
// the *initial* implementation (page-fault UVM fetch, strictly sequential
// write) and the *async* implementation (chunked DMA copies overlapped with
// file I/O), whose gap reproduces the published 12.05× checkpoint and
// 5.13× recovery overhead reductions (Fig. 6).
package fti

import (
	"fmt"

	"legato/internal/sim"
)

// file is one stored checkpoint object. Phantom files carry only a size —
// used by TB-scale timing runs; real files carry checkpoint bytes so
// recovery correctness is testable.
type file struct {
	data    []byte
	size    int64
	phantom bool
	// preWritten marks files whose NVMe write time was already charged
	// chunk-by-chunk (the async path); localPut then skips the bulk charge.
	preWritten bool
}

// nodeFS is the node-local storage of one compute node: an NVMe device
// shared by the node's ranks, reachable from other nodes over the network.
type nodeFS struct {
	files map[string]*file
	// write and read serialise NVMe access per direction.
	write *sim.Pipe
	read  *sim.Pipe
	// net models the node's NIC for remote (partner/RS) storage traffic.
	net *sim.Pipe
}

// StoreConfig parametrises the storage model. Defaults are calibrated to
// the Fig. 6 testbed: node-local NVMe sustaining 4 GB/s per process with
// four processes per node, and a shared parallel file system whose
// bandwidth does not scale with node count (the reason multilevel
// checkpointing exists).
type StoreConfig struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// NVMeWriteGBps is per-node NVMe write bandwidth (default 16 GB/s:
	// 4 processes × 4 GB/s).
	NVMeWriteGBps float64
	// NVMeReadGBps is per-node NVMe read bandwidth (default 16 GB/s).
	NVMeReadGBps float64
	// NetGBps is per-node NIC bandwidth for remote checkpoint traffic
	// (default 10 GB/s).
	NetGBps float64
	// PFSGBps is the aggregate parallel-file-system bandwidth shared by
	// all nodes (default 10 GB/s).
	PFSGBps float64
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.NVMeWriteGBps == 0 {
		c.NVMeWriteGBps = 16
	}
	if c.NVMeReadGBps == 0 {
		c.NVMeReadGBps = 16
	}
	if c.NetGBps == 0 {
		c.NetGBps = 10
	}
	if c.PFSGBps == 0 {
		c.PFSGBps = 10
	}
	return c
}

// Store is the checkpoint storage fabric shared by all ranks: per-node
// local stores plus a global (PFS) store. It survives across application
// runs, which is how restarted jobs find their checkpoints.
type Store struct {
	eng   *sim.Engine
	cfg   StoreConfig
	nodes []*nodeFS

	global         map[string]*file
	pfsWrite       *sim.Pipe
	pfsRead        *sim.Pipe
	meta           map[int]*rankMeta // rank → last committed checkpoint
	failedNodes    map[int]bool
	totalCkptBytes int64
}

// rankMeta records the last committed checkpoint of one rank.
type rankMeta struct {
	CkptID int
	Level  Level
	Iter   int
	VarIDs []int
}

// NewStore builds the storage fabric on eng.
func NewStore(eng *sim.Engine, cfg StoreConfig) (*Store, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("fti: store needs at least one node, got %d", cfg.Nodes)
	}
	cfg = cfg.withDefaults()
	s := &Store{
		eng:         eng,
		cfg:         cfg,
		global:      make(map[string]*file),
		pfsWrite:    sim.NewPipe(eng, cfg.PFSGBps*1e9, 100*sim.Microsecond),
		pfsRead:     sim.NewPipe(eng, cfg.PFSGBps*1e9, 100*sim.Microsecond),
		meta:        make(map[int]*rankMeta),
		failedNodes: make(map[int]bool),
	}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &nodeFS{
			files: make(map[string]*file),
			write: sim.NewPipe(eng, cfg.NVMeWriteGBps*1e9, 20*sim.Microsecond),
			read:  sim.NewPipe(eng, cfg.NVMeReadGBps*1e9, 20*sim.Microsecond),
			net:   sim.NewPipe(eng, cfg.NetGBps*1e9, 5*sim.Microsecond),
		})
	}
	return s, nil
}

// Nodes returns the node count.
func (s *Store) Nodes() int { return len(s.nodes) }

// TotalCheckpointBytes reports cumulative checkpoint traffic (modelled).
func (s *Store) TotalCheckpointBytes() int64 { return s.totalCkptBytes }

// Rebind attaches the store's I/O pipes to a new engine. Checkpoint data
// persists across application runs (that is the point of a checkpoint
// store), but simulated time restarts with each run's engine.
func (s *Store) Rebind(eng *sim.Engine) {
	s.eng = eng
	s.pfsWrite = sim.NewPipe(eng, s.cfg.PFSGBps*1e9, 100*sim.Microsecond)
	s.pfsRead = sim.NewPipe(eng, s.cfg.PFSGBps*1e9, 100*sim.Microsecond)
	for _, n := range s.nodes {
		n.write = sim.NewPipe(eng, s.cfg.NVMeWriteGBps*1e9, 20*sim.Microsecond)
		n.read = sim.NewPipe(eng, s.cfg.NVMeReadGBps*1e9, 20*sim.Microsecond)
		n.net = sim.NewPipe(eng, s.cfg.NetGBps*1e9, 5*sim.Microsecond)
	}
}

// DropFile removes a single file from node n's store (targeted fault
// injection).
func (s *Store) DropFile(n int, name string) {
	delete(s.nodes[n].files, name)
}

// FailNode wipes node n's local storage, modelling a node loss. Level-1
// checkpoints of the node's ranks are gone; higher levels survive.
func (s *Store) FailNode(n int) {
	if n < 0 || n >= len(s.nodes) {
		panic(fmt.Sprintf("fti: FailNode(%d) with %d nodes", n, len(s.nodes)))
	}
	s.nodes[n].files = make(map[string]*file)
	s.failedNodes[n] = true
}

// RepairNode marks a failed node as replaced (empty local storage).
func (s *Store) RepairNode(n int) { delete(s.failedNodes, n) }

// localPut writes a file to node n's local store, charging NVMe write time
// to the calling process. remote=true additionally charges both NICs.
func (s *Store) localPut(p *sim.Proc, n int, name string, f *file, remote bool, fromNode int) {
	if !f.preWritten {
		if remote {
			p.TransferP(s.nodes[fromNode].net, f.size)
		}
		p.TransferP(s.nodes[n].write, f.size)
	}
	s.nodes[n].files[name] = f
	s.totalCkptBytes += f.size
}

// localGet reads a file from node n, charging NVMe read time (plus network
// time when reading from a remote node).
func (s *Store) localGet(p *sim.Proc, n int, name string, remote bool, toNode int) (*file, bool) {
	f, ok := s.nodes[n].files[name]
	if !ok {
		return nil, false
	}
	p.TransferP(s.nodes[n].read, f.size)
	if remote {
		p.TransferP(s.nodes[toNode].net, f.size)
	}
	return f, true
}

// localExists checks for a file without charging I/O time (metadata op).
func (s *Store) localExists(n int, name string) bool {
	_, ok := s.nodes[n].files[name]
	return ok
}

// globalPut writes to the PFS, charging the shared PFS write pipe.
func (s *Store) globalPut(p *sim.Proc, name string, f *file) {
	p.TransferP(s.pfsWrite, f.size)
	s.global[name] = f
	s.totalCkptBytes += f.size
}

// globalGet reads from the PFS.
func (s *Store) globalGet(p *sim.Proc, name string) (*file, bool) {
	f, ok := s.global[name]
	if !ok {
		return nil, false
	}
	p.TransferP(s.pfsRead, f.size)
	return f, true
}

// commitMeta records rank r's last successful checkpoint. Metadata is tiny
// and replicated (FTI keeps it on every level); no I/O time is charged.
func (s *Store) commitMeta(r int, m *rankMeta) { s.meta[r] = m }

// lastMeta returns rank r's last committed checkpoint, if any.
func (s *Store) lastMeta(r int) (*rankMeta, bool) {
	m, ok := s.meta[r]
	return m, ok
}

// cloneBytes snapshots a byte slice (checkpoint isolation: later
// application writes must not mutate stored checkpoints).
func cloneBytes(b []byte) []byte {
	return append([]byte(nil), b...)
}
