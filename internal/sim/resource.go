package sim

// Resource models a capacity-limited server (CPU cores, a DMA engine, a
// storage device) in virtual time. Requests queue FIFO; each acquisition
// holds one unit of capacity for a caller-controlled span.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []func()

	// Busy accumulates unit-busy virtual time for utilisation reporting.
	Busy Time
}

// NewResource creates a resource with the given unit capacity.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiting acquisitions.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire requests one unit; acquired runs (possibly immediately) once a
// unit is available. The holder must call Release exactly once.
func (r *Resource) Acquire(acquired func()) {
	if r.inUse < r.capacity {
		r.inUse++
		acquired()
		return
	}
	r.waiters = append(r.waiters, acquired)
}

// Release returns one unit and wakes the oldest waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		next() // unit transfers directly to the waiter
		return
	}
	r.inUse--
}

// Use is the common acquire→hold→release pattern: it acquires a unit,
// holds it for span of virtual time, then releases and calls done.
func (r *Resource) Use(span Time, done func()) {
	r.Acquire(func() {
		start := r.eng.Now()
		r.eng.Schedule(span, func() {
			r.Busy += r.eng.Now() - start
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Pipe models a bandwidth-limited, FIFO transfer channel (a PCIe link, a
// NVMe device, a network hop). Transfers serialise: each occupies the pipe
// for size/bandwidth plus a fixed per-transfer latency.
type Pipe struct {
	eng *Engine
	res *Resource

	// BytesPerSecond is the sustained bandwidth of the channel.
	BytesPerSecond float64
	// Latency is the fixed per-transfer setup cost.
	Latency Time

	// Transferred accumulates total bytes moved, for reporting.
	Transferred int64
}

// NewPipe builds a transfer channel with the given bandwidth and latency.
func NewPipe(eng *Engine, bytesPerSecond float64, latency Time) *Pipe {
	if bytesPerSecond <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	return &Pipe{eng: eng, res: NewResource(eng, 1), BytesPerSecond: bytesPerSecond, Latency: latency}
}

// TransferTime returns the service time for a transfer of size bytes,
// excluding queueing.
func (p *Pipe) TransferTime(size int64) Time {
	sec := float64(size) / p.BytesPerSecond
	return p.Latency + Time(sec*float64(Second))
}

// Transfer queues a transfer of size bytes; done runs when it completes.
func (p *Pipe) Transfer(size int64, done func()) {
	p.res.Use(p.TransferTime(size), func() {
		p.Transferred += size
		if done != nil {
			done()
		}
	})
}

// Convenient duration units in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a float64 second count to virtual time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// ToSeconds converts virtual time to float64 seconds.
func ToSeconds(t Time) float64 { return float64(t) / float64(Second) }
