package heat2d

import (
	"math"
	"testing"

	"legato/internal/fti"
	"legato/internal/gpu"
	"legato/internal/mpi"
	"legato/internal/sim"
)

func run(t *testing.T, ranks, nodes int, p Params, st *fti.Store) ([]RankResult, *fti.Store) {
	t.Helper()
	eng := sim.NewEngine()
	w, err := mpi.NewWorld(eng, mpi.Config{Size: ranks, RanksPerNode: (ranks + nodes - 1) / nodes})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		st, err = fti.NewStore(eng, fti.StoreConfig{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		st.Rebind(eng)
	}
	res, err := Run(eng, w, st, p)
	if err != nil {
		t.Fatalf("heat2d run: %v", err)
	}
	return res, st
}

func baseParams() Params {
	return Params{
		NX: 32, NY: 16, Iters: 12,
		FTI: fti.Config{GroupSize: 2, CkptEvery: 4},
		GPU: gpu.Config{},
	}
}

func TestMatchesSerialReference(t *testing.T) {
	const ranks = 4
	p := baseParams()
	res, _ := run(t, ranks, ranks, p, nil)
	want := Reference(p.NX, p.NY, p.Iters, ranks, 100)
	for r := 0; r < ranks; r++ {
		if math.Abs(res[r].Checksum-want[r]) > 1e-6*math.Abs(want[r])+1e-9 {
			t.Fatalf("rank %d checksum %.9f, serial reference %.9f", r, res[r].Checksum, want[r])
		}
	}
}

func TestSingleRankMatchesReference(t *testing.T) {
	p := baseParams()
	p.FTI.GroupSize = 1
	res, _ := run(t, 1, 1, p, nil)
	want := Reference(p.NX, p.NY, p.Iters, 1, 100)
	if math.Abs(res[0].Checksum-want[0]) > 1e-6*math.Abs(want[0]) {
		t.Fatalf("checksum %.9f, reference %.9f", res[0].Checksum, want[0])
	}
}

func TestHeatPropagatesDownward(t *testing.T) {
	p := baseParams()
	p.Iters = 30
	res, _ := run(t, 2, 2, p, nil)
	// After 30 iterations, heat from the hot top row must have reached the
	// second rank's domain (checksum > 0).
	if res[1].Checksum <= 0 {
		t.Fatalf("no heat reached rank 1 after %d iterations (checksum %v)", p.Iters, res[1].Checksum)
	}
}

func TestCheckpointsHappen(t *testing.T) {
	p := baseParams()
	res, _ := run(t, 2, 2, p, nil)
	// 12 iterations, checkpoint every 4 snapshots → 3 checkpoints.
	for _, r := range res {
		if r.Stats.Checkpoints != 3 {
			t.Fatalf("rank %d: %d checkpoints, want 3", r.Rank, r.Stats.Checkpoints)
		}
	}
}

func TestCrashAndRecoverMatchesUninterrupted(t *testing.T) {
	const ranks = 4
	p := baseParams()
	p.Iters = 16
	p.FTI.CkptEvery = 5

	// Reference: uninterrupted run.
	ref, _ := run(t, ranks, ranks, p, nil)

	// Crashed run: fail after iteration 11 (checkpoints at snapshot 5 and
	// 10 → last covers iteration 9).
	pc := p
	pc.FailAtIter = 11
	_, st := run(t, ranks, ranks, pc, nil)

	// Restarted run against the same store: recovers and completes.
	pr := p
	res2, _ := run(t, ranks, ranks, pr, st)
	for r := 0; r < ranks; r++ {
		if !res2[r].Recovered {
			t.Fatalf("rank %d did not take the recovery path", r)
		}
		if math.Abs(res2[r].Checksum-ref[r].Checksum) > 1e-9*math.Abs(ref[r].Checksum)+1e-12 {
			t.Fatalf("rank %d: recovered run checksum %.12f != uninterrupted %.12f",
				r, res2[r].Checksum, ref[r].Checksum)
		}
	}
}

func TestCrashRecoverWithNodeLossUsesL2(t *testing.T) {
	const ranks = 4
	p := baseParams()
	p.Iters = 16
	p.FTI.CkptEvery = 5
	p.FTI.L2Every = 1 // every checkpoint carries a partner copy

	ref, _ := run(t, ranks, ranks, p, nil)

	pc := p
	pc.FailAtIter = 11
	_, st := run(t, ranks, ranks, pc, nil)
	st.FailNode(2) // rank 2 loses its local checkpoints

	res2, _ := run(t, ranks, ranks, p, st)
	for r := 0; r < ranks; r++ {
		if math.Abs(res2[r].Checksum-ref[r].Checksum) > 1e-9*math.Abs(ref[r].Checksum)+1e-12 {
			t.Fatalf("rank %d after node loss: checksum %.12f != %.12f",
				r, res2[r].Checksum, ref[r].Checksum)
		}
	}
}

func TestPhantomModeProducesTimingOnly(t *testing.T) {
	p := Params{
		Iters:               10,
		Phantom:             true,
		PhantomBytesPerRank: 1 << 30,
		KernelGOPS:          10,
		FTI:                 fti.Config{GroupSize: 2, CkptEvery: 5, Method: fti.Async},
		GPU:                 gpu.Config{MemBytes: 4 << 30},
	}
	res, _ := run(t, 2, 2, p, nil)
	for _, r := range res {
		if r.Stats.Checkpoints != 2 {
			t.Fatalf("rank %d phantom checkpoints: %d", r.Rank, r.Stats.Checkpoints)
		}
		if r.Stats.LastCkptTime() <= 0 {
			t.Fatal("phantom checkpoint cost no simulated time")
		}
		if r.Checksum != 0 {
			t.Fatal("phantom mode computed a checksum")
		}
	}
}

func TestInvalidDecompositionRejected(t *testing.T) {
	eng := sim.NewEngine()
	w, _ := mpi.NewWorld(eng, mpi.Config{Size: 3})
	st, _ := fti.NewStore(eng, fti.StoreConfig{Nodes: 3})
	p := baseParams()
	p.NX = 32 // not divisible by 3
	p.FTI.GroupSize = 3
	if _, err := Run(eng, w, st, p); err == nil {
		t.Fatal("indivisible decomposition accepted")
	}
}
