package heats

import (
	"fmt"
	"testing"

	"legato/internal/cluster"
	"legato/internal/hw"
	"legato/internal/monitor"
	"legato/internal/sim"
)

// testbed builds the HEATS evaluation cluster: high-performance x86 nodes
// plus low-power ARM nodes.
func testbed(eng *sim.Engine, x86, arm int) *cluster.Cluster {
	cl := cluster.New(eng)
	for i := 0; i < x86; i++ {
		cl.AddNode(fmt.Sprintf("x86-%d", i), hw.XeonD())
	}
	for i := 0; i < arm; i++ {
		cl.AddNode(fmt.Sprintf("arm-%d", i), hw.ARMv8Server())
	}
	return cl
}

func batch(n int, cpu int, gops float64) []*cluster.Task {
	tasks := make([]*cluster.Task, n)
	for i := range tasks {
		tasks[i] = &cluster.Task{
			Name: fmt.Sprintf("task-%d", i), Kind: "batch",
			CPU: cpu, MemBytes: 1 << 28, Gops: gops,
		}
	}
	return tasks
}

func protoKinds() map[string]*cluster.Task {
	return map[string]*cluster.Task{
		"batch": {Kind: "batch", CPU: 4, Gops: 200},
	}
}

func TestProfileCluster(t *testing.T) {
	eng := sim.NewEngine()
	cl := testbed(eng, 1, 1)
	m := ProfileCluster(cl, protoKinds())
	x, ok := m.Predict("batch", "x86-0")
	if !ok {
		t.Fatal("no x86 profile")
	}
	a, ok := m.Predict("batch", "arm-0")
	if !ok {
		t.Fatal("no arm profile")
	}
	// x86 faster, ARM cheaper in energy.
	if x.Seconds >= a.Seconds {
		t.Fatalf("x86 (%v s) not faster than arm (%v s)", x.Seconds, a.Seconds)
	}
	if a.Joules >= x.Joules {
		t.Fatalf("arm (%v J) not cheaper than x86 (%v J)", a.Joules, x.Joules)
	}
}

// runBatch schedules a batch under alpha and returns makespan seconds and
// total dynamic task energy.
func runBatch(t *testing.T, alpha float64) (float64, float64, *Scheduler) {
	t.Helper()
	eng := sim.NewEngine()
	cl := testbed(eng, 2, 2)
	mon := monitor.New(eng, cl)
	model := ProfileCluster(cl, protoKinds())
	s := New(eng, cl, mon, model, Config{Alpha: alpha})
	// Six tasks fit the testbed without queueing, so the α trade-off is
	// visible in the placement itself rather than masked by spillover.
	tasks := batch(6, 4, 200)
	s.Submit(tasks...)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	energy := 0.0
	for _, task := range tasks {
		energy += task.EnergyJ
	}
	return sim.ToSeconds(end), energy, s
}

func TestAllTasksComplete(t *testing.T) {
	_, _, s := runBatch(t, 0.5)
	if s.Placements < 6 {
		t.Fatalf("placements: %d", s.Placements)
	}
}

func TestAlphaTradesEnergyForTime(t *testing.T) {
	perfTime, perfEnergy, _ := runBatch(t, 0)
	ecoTime, ecoEnergy, _ := runBatch(t, 1)
	if ecoEnergy >= perfEnergy {
		t.Fatalf("energy-first used more task energy (%.1f J) than perf-first (%.1f J)",
			ecoEnergy, perfEnergy)
	}
	if ecoTime <= perfTime {
		t.Fatalf("energy-first (%.2f s) not slower than perf-first (%.2f s)", ecoTime, perfTime)
	}
}

func TestAlphaSweepMonotone(t *testing.T) {
	prevEnergy := -1.0
	for _, alpha := range []float64{0, 0.5, 1} {
		_, energy, _ := runBatch(t, alpha)
		if prevEnergy >= 0 && energy > prevEnergy*1.0001 {
			t.Fatalf("task energy rose along the alpha sweep at α=%v: %.1f > %.1f",
				alpha, energy, prevEnergy)
		}
		prevEnergy = energy
	}
}

func TestMigrationImprovesPlacement(t *testing.T) {
	// One long task starts on a slow node because the fast nodes are full;
	// when the fast nodes free up, HEATS must migrate it.
	eng := sim.NewEngine()
	cl := testbed(eng, 1, 1)
	mon := monitor.New(eng, cl)
	model := ProfileCluster(cl, map[string]*cluster.Task{
		"long":  {Kind: "long", CPU: 8, Gops: 4000},
		"short": {Kind: "short", CPU: 16, Gops: 400},
	})
	s := New(eng, cl, mon, model, Config{Alpha: 0, ReschedulePeriod: 2 * sim.Second})
	blocker := &cluster.Task{Name: "blocker", Kind: "short", CPU: 16, MemBytes: 1 << 28, Gops: 400}
	long := &cluster.Task{Name: "long", Kind: "long", CPU: 8, MemBytes: 1 << 28, Gops: 4000}
	s.Submit(blocker, long)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Migrations == 0 {
		t.Fatal("no migration despite a better host freeing up")
	}
	if long.Migrations() == 0 {
		t.Fatal("long task was not the one migrated")
	}
}

func TestQueuedTaskEventuallyPlaced(t *testing.T) {
	eng := sim.NewEngine()
	cl := testbed(eng, 1, 0)
	mon := monitor.New(eng, cl)
	model := ProfileCluster(cl, protoKinds())
	s := New(eng, cl, mon, model, Config{Alpha: 0})
	// Two 16-core tasks on a single 16-core node: strict queueing.
	a := &cluster.Task{Name: "a", Kind: "batch", CPU: 16, Gops: 400}
	b := &cluster.Task{Name: "b", Kind: "batch", CPU: 16, Gops: 400}
	s.Submit(a, b)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !a.Done() || !b.Done() {
		t.Fatal("queued task never ran")
	}
}

func TestMonitorSeriesRecorded(t *testing.T) {
	eng := sim.NewEngine()
	cl := testbed(eng, 1, 1)
	mon := monitor.New(eng, cl)
	model := ProfileCluster(cl, protoKinds())
	s := New(eng, cl, mon, model, Config{Alpha: 0.5})
	s.Submit(batch(4, 4, 100)...)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(mon.Series("x86-0")) == 0 {
		t.Fatal("no monitoring series recorded")
	}
	if _, ok := mon.Latest("x86-0"); !ok {
		t.Fatal("no latest snapshot")
	}
	if mon.Report() == "" {
		t.Fatal("empty report")
	}
	if mon.Utilization("x86-0") < 0 {
		t.Fatal("bad utilization")
	}
}
