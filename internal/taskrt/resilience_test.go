package taskrt

import (
	"errors"
	"testing"
	"time"

	"legato/internal/hw"
	"legato/internal/sim"
)

// twoCPUs returns two x86 devices: cpu0 is the MinTime favourite (full
// Xeon), cpu1 a slower fallback of the same class.
func twoCPUs(eng *sim.Engine) []*hw.Device {
	fast := hw.XeonD()
	slow := hw.XeonD()
	slow.GOPS = fast.GOPS / 2
	return []*hw.Device{
		hw.NewDevice(eng, "cpu0", fast),
		hw.NewDevice(eng, "cpu1", slow),
	}
}

func chain(rt *Runtime, n int, gops float64) error {
	prev := rt.Data("d0", 1<<10)
	for i := 0; i < n; i++ {
		next := rt.Data("d"+string(rune('1'+i)), 1<<10)
		if err := rt.Submit(Task{Name: "t" + string(rune('0'+i)), Gops: gops,
			In: []*Data{prev}, Out: []*Data{next}}); err != nil {
			return err
		}
		prev = next
	}
	return nil
}

// A crash mid-task revokes the execution and re-places it on the surviving
// device; the run completes with the retry counted and the final record on
// the survivor.
func TestCrashRevokesAndRetries(t *testing.T) {
	eng := sim.NewEngine()
	devs := twoCPUs(eng)
	rt := New(eng, devs, MinTime)
	rt.SetRetryPolicy(3, time.Millisecond)
	if err := rt.Submit(Task{Name: "work", Gops: 100}); err != nil {
		t.Fatal(err)
	}
	// The task runs on cpu0 (fastest); kill cpu0 mid-execution.
	rt.ScheduleFault(time.Millisecond, func() {
		revoked, _ := rt.FailDevice("cpu0")
		if revoked != 1 {
			t.Errorf("revoked = %d, want 1", revoked)
		}
	})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Fatalf("retries = %d, want 1", res.Retries)
	}
	rec := res.Records[0]
	if rec.Device != "cpu1" {
		t.Fatalf("final execution on %s, want the survivor cpu1", rec.Device)
	}
	if rec.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", rec.Attempts)
	}
}

// Losing every compatible device mid-run aborts with ErrDeviceLost.
func TestDeviceLostAborts(t *testing.T) {
	eng := sim.NewEngine()
	devs := twoCPUs(eng)
	rt := New(eng, devs, MinTime)
	rt.SetRetryPolicy(5, time.Millisecond)
	if err := rt.Submit(Task{Name: "work", Gops: 100}); err != nil {
		t.Fatal(err)
	}
	rt.ScheduleFault(time.Millisecond, func() { rt.FailDevice("cpu0") })
	rt.ScheduleFault(2*time.Millisecond, func() { rt.FailDevice("cpu1") })
	_, err := rt.Run()
	if !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("err = %v, want ErrDeviceLost", err)
	}
}

// A critical task whose every execution is corrupted exhausts its attempt
// budget and aborts with ErrRetriesExhausted.
func TestRetriesExhausted(t *testing.T) {
	eng := sim.NewEngine()
	devs := twoCPUs(eng)
	rt := New(eng, devs, MinTime)
	rt.SetRetryPolicy(2, time.Millisecond)
	rt.SetCorruptor(func(Record) bool { return true })
	if err := rt.Submit(Task{Name: "doomed", Gops: 10, Critical: true}); err != nil {
		t.Fatal(err)
	}
	_, err := rt.Run()
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

// A detected corruption (critical task) re-executes; a silent one
// (non-critical) is carried in the record.
func TestSDCDetectionSemantics(t *testing.T) {
	eng := sim.NewEngine()
	devs := twoCPUs(eng)
	rt := New(eng, devs, MinTime)
	rt.SetRetryPolicy(3, time.Millisecond)
	first := true
	rt.SetCorruptor(func(Record) bool {
		hit := first
		first = false
		return hit
	})
	if err := rt.Submit(Task{Name: "crit", Gops: 10, Critical: true}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SDCDetected != 1 || res.Retries != 1 {
		t.Fatalf("detected=%d retries=%d, want 1/1", res.SDCDetected, res.Retries)
	}
	if res.Records[0].Corrupted {
		t.Fatal("re-executed critical task still marked corrupted")
	}

	eng2 := sim.NewEngine()
	rt2 := New(eng2, twoCPUs(eng2), MinTime)
	first2 := true
	rt2.SetCorruptor(func(Record) bool {
		hit := first2
		first2 = false
		return hit
	})
	if err := rt2.Submit(Task{Name: "plain", Gops: 10}); err != nil {
		t.Fatal(err)
	}
	res2, err := rt2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.SDCSilent != 1 || res2.Retries != 0 {
		t.Fatalf("silent=%d retries=%d, want 1/0", res2.SDCSilent, res2.Retries)
	}
	if !res2.Records[0].Corrupted {
		t.Fatal("silently corrupted record not marked")
	}
}

// Without checkpoints, a late crash invalidates every completed task whose
// output lived on the lost device and is still needed; with checkpoints,
// only the un-persisted tail re-executes.
func TestCheckpointLimitsRestores(t *testing.T) {
	run := func(ckptEvery int) (*Result, error) {
		eng := sim.NewEngine()
		devs := twoCPUs(eng)
		rt := New(eng, devs, MinTime)
		rt.SetRetryPolicy(3, time.Millisecond)
		if ckptEvery > 0 {
			rt.SetCheckpoint(ckptEvery,
				func(int64) sim.Time { return 0 }, // commits instantly
				func(int64) sim.Time { return time.Millisecond })
		}
		if err := chain(rt, 5, 50); err != nil {
			return nil, err
		}
		// cpu0 runs the whole chain at 2s/task (Gops 50 over a 25 GOPS/core
		// Xeon lane): completions land at 2s, 4s, ... Crash at 4.5s — t0 and
		// t1 are done-but-unpersisted, t2 is in flight. Without checkpoints
		// the transitive invalidation drags t0 and t1 back in (their outputs
		// died with cpu0); with an instant per-task checkpoint both are
		// persisted and only the revoked t2 re-executes.
		rt.ScheduleFault(4500*time.Millisecond, func() { rt.FailDevice("cpu0") })
		return rt.Run()
	}

	bare, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Restores == 0 {
		t.Fatalf("uncheckpointed run restored nothing: %+v", bare)
	}
	if ckpt.Checkpoints == 0 {
		t.Fatalf("checkpointed run committed nothing: %+v", ckpt)
	}
	if ckpt.Restores >= bare.Restores {
		t.Fatalf("checkpoints did not reduce restores: %d (ckpt) vs %d (bare)",
			ckpt.Restores, bare.Restores)
	}
	if ckpt.Makespan >= bare.Makespan {
		t.Fatalf("checkpointed recovery not faster: %v vs %v", ckpt.Makespan, bare.Makespan)
	}
}

// A fault scheduled beyond the graph's lifetime is cancelled when the last
// task completes: the run ends at its natural makespan and the device
// stays healthy.
func TestFaultAfterCompletionCancelled(t *testing.T) {
	eng := sim.NewEngine()
	devs := twoCPUs(eng)
	rt := New(eng, devs, MinTime)
	if err := chain(rt, 3, 10); err != nil {
		t.Fatal(err)
	}
	rt.ScheduleFault(time.Hour, func() { rt.FailDevice("cpu0") })
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan >= time.Hour {
		t.Fatalf("pending fault stretched the run to %v", res.Makespan)
	}
	if !devs[0].Healthy() {
		t.Fatal("device failed after the graph completed")
	}
	if res.Restores != 0 || res.Retries != 0 {
		t.Fatalf("phantom recovery work: %+v", res)
	}
}

// Retried hook fires with the reason, DeviceLost with the counts, and
// Checkpointed when a snapshot commits.
func TestResilienceHooks(t *testing.T) {
	eng := sim.NewEngine()
	devs := twoCPUs(eng)
	rt := New(eng, devs, MinTime)
	rt.SetRetryPolicy(3, time.Millisecond)
	rt.SetCheckpoint(1, func(int64) sim.Time { return 0 }, nil)
	var retried, lost, ckpts int
	var reason string
	rt.AddHooks(Hooks{
		Retried:      func(_ string, _ int, r string, _ sim.Time) { retried++; reason = r },
		DeviceLost:   func(id string, _, _ int, _ sim.Time) { lost++ },
		Checkpointed: func(int, int64, sim.Time, sim.Time) { ckpts++ },
	})
	if err := chain(rt, 3, 50); err != nil {
		t.Fatal(err)
	}
	rt.ScheduleFault(time.Millisecond, func() { rt.FailDevice("cpu0") })
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if retried == 0 || reason != "crash" {
		t.Fatalf("retried hook: count=%d reason=%q", retried, reason)
	}
	if lost != 1 {
		t.Fatalf("device-lost hook fired %d times", lost)
	}
	if ckpts == 0 {
		t.Fatal("checkpoint hook never fired")
	}
}
