// legato-bench regenerates every table and figure of the paper's
// evaluation in one run, printing paper-vs-measured tables — the source of
// the numbers recorded in EXPERIMENTS.md.
//
// Usage:
//
//	legato-bench [-quick] [-json]
//
// With -json, each section additionally writes a machine-readable
// BENCH_<section>.json record (name, ops, ns_per_op, energy_j, p99_s)
// next to the working directory, for trend tracking across revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"legato/internal/experiments"
	"legato/internal/mirror"
	"legato/internal/sim"
)

func section(title string) {
	fmt.Printf("\n========================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("========================================================================\n")
}

// benchRecord is the machine-readable summary of one section written by
// -json. ns_per_op is host wall-clock per workload unit (the simulator is
// what is being benchmarked here, so wall time is the honest measure);
// energy_j and p99_s are fleet-side results where the experiment has them.
type benchRecord struct {
	Name    string  `json:"name"`
	Ops     int     `json:"ops"`
	NsPerOp float64 `json:"ns_per_op"`
	EnergyJ float64 `json:"energy_j,omitempty"`
	P99S    float64 `json:"p99_s,omitempty"`
}

// recorder times sections and flushes one BENCH_<name>.json per record.
type recorder struct {
	enabled bool
	t0      time.Time
	records []benchRecord
}

func (r *recorder) start() { r.t0 = time.Now() }

func (r *recorder) add(name string, ops int, energyJ, p99s float64) {
	if !r.enabled {
		return
	}
	if ops < 1 {
		ops = 1
	}
	r.records = append(r.records, benchRecord{
		Name:    name,
		Ops:     ops,
		NsPerOp: float64(time.Since(r.t0).Nanoseconds()) / float64(ops),
		EnergyJ: energyJ,
		P99S:    p99s,
	})
}

func (r *recorder) flush() error {
	for _, rec := range r.records {
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_"+rec.Name+".json", append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	jsonOut := flag.Bool("json", false, "write BENCH_<section>.json records")
	flag.Parse()
	rec := recorder{enabled: *jsonOut}

	nodes := []int{1, 4, 8, 16}
	sizes := []float64{16, 32}
	frames := 600
	jobs := 600
	if *quick {
		nodes = []int{1, 4}
		sizes = []float64{16}
		frames = 200
		jobs = 200
	}

	section("E7 (Figs. 3-4): RECS|BOX platform")
	rec.start()
	inv, err := experiments.RECSBoxInventory()
	if err != nil {
		log.Fatal(err)
	}
	rec.add("recsbox", 1, 0, 0)
	fmt.Print(inv)

	section("E1/E2 (Fig. 5): FPGA undervolting")
	rec.start()
	fig5, err := experiments.Fig5(1)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("fig5_undervolt", len(fig5.Rows), 0, 0)
	fmt.Print(fig5.Table())

	section("E3/E4 (Fig. 6): Heat2D checkpoint/restart + MTBF estimate")
	rec.start()
	fig6, err := experiments.Fig6(nodes, sizes)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("fig6_checkpoint", len(nodes)*len(sizes), 0, 0)
	fmt.Print(fig6.Table())
	factor, err := experiments.MTBF(fig6, sizes[0], 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MTBF sustainability factor (Daly, 4h reference): %.1fx (paper: 7x)\n", factor)

	section("E5 (Fig. 7): HEATS energy/performance trade-off")
	rec.start()
	heats, err := experiments.HEATS([]float64{0, 0.25, 0.5, 0.75, 1}, 6)
	if err != nil {
		log.Fatal(err)
	}
	lastHEATS := heats.Rows[len(heats.Rows)-1]
	rec.add("heats", len(heats.Rows), lastHEATS.TotalEnergyJ, 0)
	fmt.Print(heats.Table())

	section("E6 (Sec. VI): Smart Mirror")
	rec.start()
	mrows, err := experiments.Mirror(frames, 1)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("mirror", frames, 0, 0)
	fmt.Print(mirror.CompareTable(mrows))

	section("E8 (Sec. III-C): NN inference under undervolting")
	rec.start()
	mlRows, baseline, err := experiments.UndervoltML(2)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("undervolt_ml", len(mlRows), 0, 0)
	fmt.Print(experiments.MLTable(mlRows, baseline))

	section("E9 (Sec. I): selective replication")
	rec.start()
	rep, err := experiments.Replication(jobs, 5, 3)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("replication", jobs, 0, 0)
	fmt.Print(experiments.ReplicationTable(rep))

	section("E10 (Sec. II-C): XiTAO elasticity")
	rec.start()
	xt, err := experiments.XiTAOElasticity(8)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("xitao", len(xt), 0, 0)
	fmt.Print(experiments.XiTAOTable(xt))

	section("E11: concurrent multi-job engine throughput")
	widths := []int{1, 2, 4, 8}
	mjJobs := 8
	if *quick {
		widths = []int{1, 4}
		mjJobs = 4
	}
	rec.start()
	mj, err := experiments.MultiJob(widths, mjJobs)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("multijob", mjJobs*len(widths), mj[len(mj)-1].EnergyJ, 0)
	fmt.Print(experiments.MultiJobTable(mj))

	section("E12: resilient session under MTBF-driven device loss")
	rsJobs, rsWorkers := 8, 8
	if *quick {
		rsJobs, rsWorkers = 4, 4
	}
	rec.start()
	rs, err := experiments.Resilient(rsJobs, rsWorkers, 1)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("resilient", rsJobs, 0, 0)
	fmt.Print(experiments.ResilientTable(rs))

	section("E13: fleet power cap and energy-aware placement")
	pcJobs, pcWorkers := 8, 8
	if *quick {
		pcJobs, pcWorkers = 4, 4
	}
	rec.start()
	pc, err := experiments.PowerCap(pcJobs, pcWorkers)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("powercap", pcJobs, pc.CappedEnergyJ, 0)
	fmt.Print(experiments.PowerCapTable(pc))

	section("E14: tail latency under silent degradation, hedged vs unhedged")
	tlJobs, tlWorkers := 6, 4
	if *quick {
		tlJobs, tlWorkers = 4, 2
	}
	rec.start()
	tl, err := experiments.Tail(tlJobs, tlWorkers, 1)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("tail", tlJobs, tl.HedgedEnergyJ, sim.ToSeconds(tl.HedgedP99))
	fmt.Print(experiments.TailTable(tl))

	section("Ablation: SECDED ECC mitigation for sub-guardband operation")
	rec.start()
	eccRows, err := experiments.ECCMitigation(64<<10, 4)
	if err != nil {
		log.Fatal(err)
	}
	rec.add("ecc", len(eccRows), 0, 0)
	fmt.Print(experiments.ECCTable(eccRows))

	if err := rec.flush(); err != nil {
		log.Fatal(err)
	}
}
