package hw

import (
	"fmt"

	"legato/internal/sim"
)

// The RECS|BOX platform (paper Figs. 3-4): a 3RU server whose backplane
// hosts up to 15 carriers; carriers come in three classes (low-power with
// up to 16 microserver sites, high-performance with up to 3 sites, and PCIe
// expansion), for at most 144 microservers per box. Microservers are
// interconnected by a high-speed/low-latency network (PCIe, high-speed
// serial), a compute network (up to 40 GbE) and a dedicated management
// network (KVM, monitoring).

// CarrierClass enumerates the RECS|BOX carrier types of Fig. 4.
type CarrierClass int

const (
	// LowPowerCarrier hosts up to 16 low-power microservers (Apalis/Jetson).
	LowPowerCarrier CarrierClass = iota
	// HighPerfCarrier hosts up to 3 COM Express high-performance microservers.
	HighPerfCarrier
	// PCIeExpansionCarrier hosts PCIe peripherals, e.g. a GPU accelerator.
	PCIeExpansionCarrier
)

// String names the carrier class.
func (c CarrierClass) String() string {
	switch c {
	case LowPowerCarrier:
		return "low-power"
	case HighPerfCarrier:
		return "high-performance"
	case PCIeExpansionCarrier:
		return "pcie-expansion"
	default:
		return fmt.Sprintf("carrier(%d)", int(c))
	}
}

// Sites returns the maximum number of microserver sites for the class.
func (c CarrierClass) Sites() int {
	switch c {
	case LowPowerCarrier:
		return 16
	case HighPerfCarrier:
		return 3
	case PCIeExpansionCarrier:
		return 1
	default:
		return 0
	}
}

// lowPowerAllowed lists the classes a low-power site accepts (Fig. 4:
// GPU SoC, FPGA SoC, ARM SoC).
func lowPowerAllowed(class Class) bool {
	return class == CPUARM || class == GPU || class == FPGA
}

// highPerfAllowed lists the classes a high-performance site accepts
// (Fig. 4: x86, ARMv8, FPGA via COM Express).
func highPerfAllowed(class Class) bool {
	return class == CPUx86 || class == CPUARM || class == FPGA
}

// Microserver is one self-sustained compute module on a carrier.
type Microserver struct {
	ID     string
	Device *Device
	// Carrier backlink, set on insertion.
	Carrier *Carrier
	// Site is the slot index within the carrier.
	Site int
}

// Carrier is one RECS|BOX carrier board.
type Carrier struct {
	Class CarrierClass
	Index int
	Slots []*Microserver // fixed length = Class.Sites()
}

// NewCarrier creates an empty carrier of the given class.
func NewCarrier(class CarrierClass, index int) *Carrier {
	return &Carrier{Class: class, Index: index, Slots: make([]*Microserver, class.Sites())}
}

// Occupied returns the number of populated sites.
func (c *Carrier) Occupied() int {
	n := 0
	for _, s := range c.Slots {
		if s != nil {
			n++
		}
	}
	return n
}

// accepts validates that a device class may populate this carrier.
func (c *Carrier) accepts(class Class) bool {
	switch c.Class {
	case LowPowerCarrier:
		return lowPowerAllowed(class)
	case HighPerfCarrier:
		return highPerfAllowed(class)
	case PCIeExpansionCarrier:
		return class == GPU || class == FPGA || class == DFE
	default:
		return false
	}
}

// NetworkKind enumerates the RECS|BOX interconnects (Fig. 4).
type NetworkKind int

const (
	// ComputeNet is the up-to-40GbE compute network.
	ComputeNet NetworkKind = iota
	// MgmtNet is the management network (KVM, monitoring).
	MgmtNet
	// HighSpeedNet is the PCIe / high-speed-serial low-latency fabric.
	HighSpeedNet
)

// Network is a shared interconnect with a bandwidth/latency cost model.
type Network struct {
	Kind NetworkKind
	Pipe *sim.Pipe
}

// RECSBox is a populated RECS|BOX chassis.
type RECSBox struct {
	Name     string
	Carriers []*Carrier
	eng      *sim.Engine

	Compute   *Network
	Mgmt      *Network
	HighSpeed *Network

	nextID int
}

// MaxCarriers is the backplane capacity (Fig. 4: up to 15 carriers).
const MaxCarriers = 15

// MaxMicroservers is the chassis capacity (Sec. II-A: up to 144 nodes).
const MaxMicroservers = 144

// NewRECSBox creates an empty chassis with its three networks.
func NewRECSBox(eng *sim.Engine, name string) *RECSBox {
	return &RECSBox{
		Name: name,
		eng:  eng,
		Compute: &Network{Kind: ComputeNet,
			Pipe: sim.NewPipe(eng, 40e9/8, 10*sim.Microsecond)}, // 40 GbE
		Mgmt: &Network{Kind: MgmtNet,
			Pipe: sim.NewPipe(eng, 1e9/8, 100*sim.Microsecond)}, // 1 GbE
		HighSpeed: &Network{Kind: HighSpeedNet,
			Pipe: sim.NewPipe(eng, 15.75e9, 500*sim.Nanosecond)}, // PCIe3 x16
	}
}

// AddCarrier installs a carrier; it fails beyond backplane capacity.
func (b *RECSBox) AddCarrier(class CarrierClass) (*Carrier, error) {
	if len(b.Carriers) >= MaxCarriers {
		return nil, fmt.Errorf("hw: %s backplane full (%d carriers)", b.Name, MaxCarriers)
	}
	c := NewCarrier(class, len(b.Carriers))
	b.Carriers = append(b.Carriers, c)
	return c, nil
}

// Populate inserts a microserver built from spec into the first free,
// compatible site of carrier c.
func (b *RECSBox) Populate(c *Carrier, spec Spec) (*Microserver, error) {
	if !c.accepts(spec.Class) {
		return nil, fmt.Errorf("hw: %s carrier does not accept %s devices", c.Class, spec.Class)
	}
	if b.CountMicroservers() >= MaxMicroservers {
		return nil, fmt.Errorf("hw: %s at chassis capacity (%d microservers)", b.Name, MaxMicroservers)
	}
	for site, s := range c.Slots {
		if s != nil {
			continue
		}
		b.nextID++
		id := fmt.Sprintf("%s/c%d/s%d/%s", b.Name, c.Index, site, spec.Name)
		ms := &Microserver{
			ID:      id,
			Device:  NewDevice(b.eng, id, spec),
			Carrier: c,
			Site:    site,
		}
		c.Slots[site] = ms
		return ms, nil
	}
	return nil, fmt.Errorf("hw: carrier %d full (%d sites)", c.Index, c.Class.Sites())
}

// CountMicroservers returns the number of populated sites chassis-wide.
func (b *RECSBox) CountMicroservers() int {
	n := 0
	for _, c := range b.Carriers {
		n += c.Occupied()
	}
	return n
}

// Microservers returns every populated microserver in carrier/site order.
func (b *RECSBox) Microservers() []*Microserver {
	var out []*Microserver
	for _, c := range b.Carriers {
		for _, s := range c.Slots {
			if s != nil {
				out = append(out, s)
			}
		}
	}
	return out
}

// TotalPower sums the instantaneous draw of every microserver.
func (b *RECSBox) TotalPower() float64 {
	p := 0.0
	for _, ms := range b.Microservers() {
		p += ms.Device.Meter().Power()
	}
	return p
}

// Validate checks the structural invariants of Figs. 3-4.
func (b *RECSBox) Validate() error {
	if len(b.Carriers) > MaxCarriers {
		return fmt.Errorf("hw: %d carriers exceeds backplane capacity %d", len(b.Carriers), MaxCarriers)
	}
	if n := b.CountMicroservers(); n > MaxMicroservers {
		return fmt.Errorf("hw: %d microservers exceeds chassis capacity %d", n, MaxMicroservers)
	}
	for _, c := range b.Carriers {
		if len(c.Slots) != c.Class.Sites() {
			return fmt.Errorf("hw: carrier %d has %d slots, class allows %d", c.Index, len(c.Slots), c.Class.Sites())
		}
		for site, ms := range c.Slots {
			if ms == nil {
				continue
			}
			if !c.accepts(ms.Device.Spec.Class) {
				return fmt.Errorf("hw: carrier %d site %d holds incompatible %s", c.Index, site, ms.Device.Spec.Class)
			}
		}
	}
	return nil
}

// StandardCloudBox builds a representative fully-mixed RECS|BOX used by the
// cluster experiments: two high-performance carriers (x86 + ARM + FPGA),
// one PCIe expansion carrier with a GPU, and one low-power carrier with a
// mix of Jetson and Apalis modules.
func StandardCloudBox(eng *sim.Engine, name string) (*RECSBox, error) {
	b := NewRECSBox(eng, name)

	hp1, err := b.AddCarrier(HighPerfCarrier)
	if err != nil {
		return nil, err
	}
	for _, spec := range []Spec{XeonD(), XeonD(), ARMv8Server()} {
		if _, err := b.Populate(hp1, spec); err != nil {
			return nil, err
		}
	}

	hp2, err := b.AddCarrier(HighPerfCarrier)
	if err != nil {
		return nil, err
	}
	for _, spec := range []Spec{XeonD(), VirtexFPGA(), KintexFPGA()} {
		if _, err := b.Populate(hp2, spec); err != nil {
			return nil, err
		}
	}

	px, err := b.AddCarrier(PCIeExpansionCarrier)
	if err != nil {
		return nil, err
	}
	if _, err := b.Populate(px, GTX1080()); err != nil {
		return nil, err
	}

	lp, err := b.AddCarrier(LowPowerCarrier)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		if _, err := b.Populate(lp, JetsonTX2()); err != nil {
			return nil, err
		}
		if _, err := b.Populate(lp, ApalisARM()); err != nil {
			return nil, err
		}
	}

	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}
