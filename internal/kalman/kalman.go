// Package kalman implements the linear Kalman filter used by the Smart
// Mirror tracking pipeline (paper Sec. VI: "Kalman and Hungarian filters
// are used to keep track" of detections). The filter is generic over state
// and measurement dimension; a constant-velocity 2-D tracker constructor
// matches the mirror's object-tracking use.
package kalman

import (
	"fmt"

	"legato/internal/mathx"
)

// Filter is a linear Kalman filter:
//
//	x' = F·x + w,  w ~ N(0, Q)
//	z  = H·x + v,  v ~ N(0, R)
type Filter struct {
	// F is the state-transition model (n×n).
	F *mathx.Matrix
	// H is the observation model (m×n).
	H *mathx.Matrix
	// Q is the process-noise covariance (n×n).
	Q *mathx.Matrix
	// R is the measurement-noise covariance (m×m).
	R *mathx.Matrix

	// X is the state estimate (n×1); P its covariance (n×n).
	X *mathx.Matrix
	P *mathx.Matrix
}

// New builds a filter from its matrices, validating dimensions.
func New(f, h, q, r, x0, p0 *mathx.Matrix) (*Filter, error) {
	n := f.Rows
	if f.Cols != n {
		return nil, fmt.Errorf("kalman: F must be square, got %dx%d", f.Rows, f.Cols)
	}
	if h.Cols != n {
		return nil, fmt.Errorf("kalman: H has %d columns, state dim is %d", h.Cols, n)
	}
	m := h.Rows
	if q.Rows != n || q.Cols != n {
		return nil, fmt.Errorf("kalman: Q must be %dx%d", n, n)
	}
	if r.Rows != m || r.Cols != m {
		return nil, fmt.Errorf("kalman: R must be %dx%d", m, m)
	}
	if x0.Rows != n || x0.Cols != 1 {
		return nil, fmt.Errorf("kalman: x0 must be %dx1", n)
	}
	if p0.Rows != n || p0.Cols != n {
		return nil, fmt.Errorf("kalman: P0 must be %dx%d", n, n)
	}
	return &Filter{F: f, H: h, Q: q, R: r, X: x0.Clone(), P: p0.Clone()}, nil
}

// Predict advances the state estimate one step.
func (k *Filter) Predict() {
	k.X = k.F.Mul(k.X)
	k.P = k.F.Mul(k.P).Mul(k.F.Transpose()).Add(k.Q)
}

// Update incorporates measurement z (m×1). It returns the innovation
// (residual) vector.
func (k *Filter) Update(z *mathx.Matrix) (*mathx.Matrix, error) {
	if z.Rows != k.H.Rows || z.Cols != 1 {
		return nil, fmt.Errorf("kalman: measurement must be %dx1, got %dx%d", k.H.Rows, z.Rows, z.Cols)
	}
	y := z.Sub(k.H.Mul(k.X))                        // innovation
	s := k.H.Mul(k.P).Mul(k.H.Transpose()).Add(k.R) // innovation covariance
	sInv, err := s.Inverse()
	if err != nil {
		return nil, fmt.Errorf("kalman: singular innovation covariance: %w", err)
	}
	gain := k.P.Mul(k.H.Transpose()).Mul(sInv) // Kalman gain
	k.X = k.X.Add(gain.Mul(y))
	n := k.P.Rows
	k.P = mathx.Identity(n).Sub(gain.Mul(k.H)).Mul(k.P)
	return y, nil
}

// ConstantVelocity2D builds a 4-state (x, y, vx, vy) constant-velocity
// tracker observing position only, with time step dt, process noise q and
// measurement noise r.
func ConstantVelocity2D(dt, q, r float64, x0, y0 float64) *Filter {
	f := mathx.NewMatrixFrom(4, 4, []float64{
		1, 0, dt, 0,
		0, 1, 0, dt,
		0, 0, 1, 0,
		0, 0, 0, 1,
	})
	h := mathx.NewMatrixFrom(2, 4, []float64{
		1, 0, 0, 0,
		0, 1, 0, 0,
	})
	qm := mathx.Identity(4).Scale(q)
	rm := mathx.Identity(2).Scale(r)
	x := mathx.NewMatrixFrom(4, 1, []float64{x0, y0, 0, 0})
	p := mathx.Identity(4).Scale(10)
	filt, err := New(f, h, qm, rm, x, p)
	if err != nil {
		panic(err) // dimensions are correct by construction
	}
	return filt
}

// Position returns the current (x, y) estimate of a ConstantVelocity2D
// filter.
func (k *Filter) Position() (float64, float64) {
	return k.X.At(0, 0), k.X.At(1, 0)
}

// Velocity returns the current (vx, vy) estimate of a ConstantVelocity2D
// filter.
func (k *Filter) Velocity() (float64, float64) {
	return k.X.At(2, 0), k.X.At(3, 0)
}
