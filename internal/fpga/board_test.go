package fpga

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfilesPublished(t *testing.T) {
	for _, p := range AllProfiles() {
		if p.VNom != 1.0 {
			t.Fatalf("%s: nominal VCCBRAM must be 1.0 V (28 nm parts), got %v", p.Name, p.VNom)
		}
		if !(p.VCrash < p.VMin && p.VMin < p.VNom) {
			t.Fatalf("%s: voltage ordering broken: crash %v, min %v, nom %v", p.Name, p.VCrash, p.VMin, p.VNom)
		}
		if p.FaultsPerMbitAtCrash <= 0 || p.BRAMBlocks <= 0 {
			t.Fatalf("%s: missing characterisation", p.Name)
		}
	}
}

func TestBoardSafeAtNominal(t *testing.T) {
	b := NewBoard(ZC702(), 1)
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := b.Write(100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := b.Read(100, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("nominal-voltage corruption at byte %d", i)
		}
	}
	if b.FaultCount() != 0 {
		t.Fatalf("faults at nominal: %d", b.FaultCount())
	}
}

func TestBoardGuardbandIsSafe(t *testing.T) {
	p := ZC702()
	b := NewBoard(p, 2)
	b.SetVCCBRAM(p.VMin) // bottom of the guardband: still safe
	if b.FaultCount() != 0 {
		t.Fatalf("faults at Vmin: %d (guardband must be fault-free)", b.FaultCount())
	}
	if !b.Done() {
		t.Fatal("DONE dropped within guardband")
	}
}

func TestBoardCriticalRegionFaults(t *testing.T) {
	p := ZC702()
	b := NewBoard(p, 3)
	mid := (p.VMin + p.VCrash) / 2
	b.SetVCCBRAM(mid)
	if !b.Done() {
		t.Fatal("board crashed above Vcrash")
	}
	if b.FaultCount() == 0 {
		t.Fatal("no faults in the critical region")
	}
	// Fault density at mid-region must be far below the crash density.
	if b.FaultsPerMbit() >= p.FaultsPerMbitAtCrash {
		t.Fatalf("mid-region density %v not below crash density %v",
			b.FaultsPerMbit(), p.FaultsPerMbitAtCrash)
	}
}

func TestBoardFaultCountAtCrashMatchesPaper(t *testing.T) {
	for _, p := range AllProfiles() {
		b := NewBoard(p, 4)
		b.SetVCCBRAM(p.VCrash) // last responding voltage
		got := b.FaultsPerMbit()
		want := p.FaultsPerMbitAtCrash
		if math.Abs(got-want)/want > 0.02 {
			t.Fatalf("%s: faults/Mbit at Vcrash: got %.1f want %.1f", p.Name, got, want)
		}
	}
}

func TestBoardCrash(t *testing.T) {
	p := VC707()
	b := NewBoard(p, 5)
	b.SetVCCBRAM(p.VCrash - 0.01)
	if b.Done() {
		t.Fatal("DONE still set below Vcrash")
	}
	if err := b.Write(0, []byte{1}); err != ErrCrashed {
		t.Fatalf("write to crashed board: got %v want ErrCrashed", err)
	}
	if err := b.Read(0, make([]byte, 1)); err != ErrCrashed {
		t.Fatalf("read from crashed board: got %v want ErrCrashed", err)
	}
	// Raising voltage alone does not revive the board...
	b.SetVCCBRAM(p.VNom)
	if b.Done() {
		t.Fatal("board revived without reconfiguration")
	}
	// ...reconfiguration does.
	b.Reconfigure()
	if !b.Done() {
		t.Fatal("reconfigure did not restore DONE")
	}
	if b.FaultCount() != 0 {
		t.Fatal("faults at nominal after reconfigure")
	}
}

func TestReconfigureRestoresFaultMaskAtLowVoltage(t *testing.T) {
	p := ZC702()
	b := NewBoard(p, 6)
	mid := (p.VMin + p.VCrash) / 2
	b.SetVCCBRAM(mid)
	want := b.FaultCount()
	b.SetVCCBRAM(p.VCrash - 0.05) // crash
	b.SetVCCBRAM(mid)             // back up, still dead
	if b.Done() {
		t.Fatal("board alive without reconfigure")
	}
	b.Reconfigure()
	if !b.Done() {
		t.Fatal("reconfigure failed")
	}
	if got := b.FaultCount(); got != want {
		t.Fatalf("fault set after reconfigure: got %d want %d", got, want)
	}
}

func TestFaultMonotonicity(t *testing.T) {
	p := KC705A()
	b := NewBoard(p, 7)
	prev := -1
	for v := p.VMin; v >= p.VCrash; v -= 0.005 {
		b.SetVCCBRAM(v)
		n := b.FaultCount()
		if n < prev {
			t.Fatalf("fault count decreased from %d to %d at %.3f V", prev, n, v)
		}
		prev = n
	}
}

func TestFaultRateExponentialShape(t *testing.T) {
	p := VC707()
	b := NewBoard(p, 8)
	// Sample density at three equally spaced voltages in the critical
	// region; exponential growth means ratios between consecutive samples
	// are roughly equal and > 1.
	span := p.VMin - p.VCrash
	var d [3]float64
	for i, f := range []float64{0.75, 0.5, 0.25} {
		b.SetVCCBRAM(p.VCrash + span*f)
		d[i] = b.FaultsPerMbit()
	}
	if !(d[0] < d[1] && d[1] < d[2]) {
		t.Fatalf("density not increasing: %v", d)
	}
	r1, r2 := d[1]/d[0], d[2]/d[1]
	if r1 < 1.5 || r2 < 1.5 {
		t.Fatalf("growth not exponential-like: ratios %v %v", r1, r2)
	}
	if math.Abs(math.Log(r1)-math.Log(r2)) > 0.35 {
		t.Fatalf("log-ratios diverge too much for an exponential: %v vs %v", r1, r2)
	}
}

func TestPowerModel(t *testing.T) {
	p := VC707()
	b := NewBoard(p, 9)
	if math.Abs(b.RailPower()-p.NominalRailWatts) > 1e-12 {
		t.Fatalf("nominal rail power: %v", b.RailPower())
	}
	b.SetVCCBRAM(p.VCrash)
	saving := b.PowerSavingPercent()
	if saving <= 90 {
		t.Fatalf("saving at Vcrash: got %.1f%%, paper reports >90%%", saving)
	}
	// Power must decrease monotonically with voltage.
	prev := math.Inf(1)
	for v := p.VNom; v >= p.VCrash; v -= 0.01 {
		b2 := NewBoard(p, 9)
		b2.SetVCCBRAM(v)
		if pw := b2.RailPower(); pw > prev {
			t.Fatalf("power increased while undervolting at %.2f V", v)
		} else {
			prev = pw
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	p := ZC702()
	a := NewBoard(p, 42)
	b := NewBoard(p, 42)
	mid := (p.VMin + p.VCrash) / 2
	a.SetVCCBRAM(mid)
	b.SetVCCBRAM(mid)
	bufA := make([]byte, a.MemBytes())
	bufB := make([]byte, b.MemBytes())
	if err := a.Read(0, bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Read(0, bufB); err != nil {
		t.Fatal(err)
	}
	for i := range bufA {
		if bufA[i] != bufB[i] {
			t.Fatalf("same-seed boards diverge at byte %d", i)
		}
	}
	c := NewBoard(p, 43)
	c.SetVCCBRAM(mid)
	if a.FaultCount() != c.FaultCount() {
		// Counts must match (law-driven), positions differ.
		t.Fatalf("fault count should be seed-independent: %d vs %d", a.FaultCount(), c.FaultCount())
	}
}

func TestReadWriteBounds(t *testing.T) {
	b := NewBoard(ZC702(), 10)
	if err := b.Write(int64(b.MemBytes())-1, []byte{1, 2}); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if err := b.Read(-1, make([]byte, 1)); err == nil {
		t.Fatal("negative-offset read accepted")
	}
}

// Property: at any voltage in the critical region, a write-then-read of
// random data differs from the original in exactly the board's faulty bits
// that fall inside the window.
func TestFaultsAreXORStable(t *testing.T) {
	p := ZC702()
	b := NewBoard(p, 11)
	rng := rand.New(rand.NewSource(12))
	f := func() bool {
		v := p.VCrash + rng.Float64()*(p.VMin-p.VCrash)
		b.SetVCCBRAM(v)
		data := make([]byte, 4096)
		rng.Read(data)
		off := int64(rng.Intn(b.MemBytes() - len(data)))
		if err := b.Write(off, data); err != nil {
			return false
		}
		got1 := make([]byte, len(data))
		got2 := make([]byte, len(data))
		if err := b.Read(off, got1); err != nil {
			return false
		}
		if err := b.Read(off, got2); err != nil {
			return false
		}
		// Faults are stable: two reads agree.
		for i := range got1 {
			if got1[i] != got2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
