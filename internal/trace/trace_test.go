package trace

import (
	"strings"
	"testing"

	"legato/internal/sim"
)

func TestSpanTiming(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	var id int
	eng.Schedule(10, func() { id = tr.Begin("task-a", "compute", "cpu0") })
	eng.Schedule(25, func() { tr.End(id) })
	eng.Run()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans: %d", len(spans))
	}
	if spans[0].Start != 10 || spans[0].End != 25 || spans[0].Duration() != 15 {
		t.Fatalf("span timing: %+v", spans[0])
	}
}

func TestEndUnknownIgnored(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	tr.End(42) // must not panic
	if len(tr.Spans()) != 0 {
		t.Fatal("phantom span")
	}
}

func TestByCategory(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	a := tr.Begin("x", "compute", "cpu0")
	eng.Schedule(5, func() { tr.End(a) })
	eng.Schedule(5, func() {
		b := tr.Begin("y", "io", "nvme0")
		eng.Schedule(7, func() { tr.End(b) })
	})
	eng.Run()
	cats := tr.ByCategory()
	if cats["compute"] != 5 || cats["io"] != 7 {
		t.Fatalf("categories: %v", cats)
	}
}

func TestCounters(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	tr.Count("bytes", 100)
	tr.Count("bytes", 50)
	if tr.Counter("bytes") != 150 {
		t.Fatalf("counter: %v", tr.Counter("bytes"))
	}
}

func TestExportParaver(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	id := tr.Begin("task", "compute", "gpu0")
	eng.Schedule(3, func() { tr.End(id) })
	eng.Run()
	tr.Count("faults", 2)
	out := tr.ExportParaver()
	for _, frag := range []string{"#Paraver", "gpu0", "compute", "task", "faults"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("export missing %q:\n%s", frag, out)
		}
	}
}

func TestSummary(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng)
	id := tr.Begin("t", "ckpt", "node0")
	eng.Schedule(4, func() { tr.End(id) })
	eng.Run()
	if !strings.Contains(tr.Summary(), "ckpt") {
		t.Fatal("summary missing category")
	}
}
