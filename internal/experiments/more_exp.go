package experiments

import (
	"fmt"
	"strings"

	"legato/internal/fpga"
	"legato/internal/ft"
	"legato/internal/hw"
	"legato/internal/mirror"
	"legato/internal/nn"
	"legato/internal/sim"
	"legato/internal/xitao"
)

// --- E6: Smart Mirror --------------------------------------------------

// Mirror runs the Sec. VI comparison: workstation baseline vs optimised
// edge server.
func Mirror(frames int, seed int64) ([]*mirror.Result, error) {
	eng := sim.NewEngine()
	ws, err := mirror.Evaluate(mirror.WorkstationConfig(eng), frames, seed)
	if err != nil {
		return nil, err
	}
	ecfg, err := mirror.EdgeConfig(eng)
	if err != nil {
		return nil, err
	}
	edge, err := mirror.Evaluate(ecfg, frames, seed+1)
	if err != nil {
		return nil, err
	}
	return []*mirror.Result{ws, edge}, nil
}

// --- E8: undervolted ML ------------------------------------------------

// MLRow is one voltage point of the ML-resilience sweep.
type MLRow struct {
	Voltage       float64
	Accuracy      float64
	FaultsPerMbit float64
	SavingPercent float64
}

// UndervoltML trains the quantised MLP, deploys it to a VC707-class board
// (the highest published crash-point fault density, 652 faults/Mbit) and
// sweeps VCCBRAM, reporting accuracy vs power saving (Sec. III-C). The
// model is sized so the BRAM fault map meaningfully intersects the weight
// image.
func UndervoltML(seed int64) ([]MLRow, float64, error) {
	X, y := nn.Blobs(2000, 64, 8, 3.2, seed)
	trainX, trainY := X[:1600], y[:1600]
	testX, testY := X[1600:], y[1600:]
	m := nn.NewMLP(64, 256, 8, seed+1)
	m.Train(trainX, trainY, 6, 0.01, seed+2)
	q := m.Quantise()
	baseline := q.Accuracy(testX, testY)

	p := fpga.VC707()
	b := fpga.NewBoard(p, seed+3)
	if err := q.StoreToBRAM(b); err != nil {
		return nil, 0, err
	}
	var rows []MLRow
	// Integer stepping avoids float drift so the crash-edge point (max
	// fault density) is always measured.
	steps := int((p.VNom-p.VCrash)/0.02 + 0.5)
	for i := 0; i <= steps; i++ {
		v := p.VNom - float64(i)*0.02
		if v < p.VCrash {
			v = p.VCrash
		}
		b.SetVCCBRAM(v)
		if !b.Done() {
			break
		}
		deployed, err := nn.LoadFromBRAM(q, b)
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, MLRow{
			Voltage:       v,
			Accuracy:      deployed.Accuracy(testX, testY),
			FaultsPerMbit: b.FaultsPerMbit(),
			SavingPercent: b.PowerSavingPercent(),
		})
	}
	return rows, baseline, nil
}

// MLTable renders the sweep.
func MLTable(rows []MLRow, baseline float64) string {
	var sb strings.Builder
	sb.WriteString("Sec. III-C — NN inference accuracy under BRAM undervolting (VC707)\n")
	fmt.Fprintf(&sb, "baseline int8 accuracy: %.3f\n", baseline)
	fmt.Fprintf(&sb, "%8s %10s %14s %10s\n", "V", "accuracy", "faults/Mbit", "saving %")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8.2f %10.3f %14.1f %10.1f\n",
			r.Voltage, r.Accuracy, r.FaultsPerMbit, r.SavingPercent)
	}
	return sb.String()
}

// --- E9: selective replication ------------------------------------------

// ReplicationRow is one strategy's outcome.
type ReplicationRow struct {
	Mode           string
	TaintedOutputs int
	EnergyJ        float64
	Detected       int
	Injected       int
}

// Replication runs the selective-replication study: a wide job set with a
// critical fraction, under each strategy.
func Replication(jobs int, criticalEvery int, seed int64) ([]ReplicationRow, error) {
	model := ft.SDCModel{hw.CPUx86: 0.01, hw.CPUARM: 0.01, hw.GPU: 0.015, hw.FPGA: 0.02}
	var rows []ReplicationRow
	for _, mode := range []ft.Mode{ft.NoReplication, ft.SelectiveCritical, ft.ReplicateAll} {
		c := ft.NewCampaign(mode, model, nil, seed)
		for i := 0; i < jobs; i++ {
			j := &ft.Job{Name: "job", Gops: 10, Critical: criticalEvery > 0 && i%criticalEvery == 0}
			if err := c.Add(j); err != nil {
				return nil, err
			}
		}
		c.Run()
		rows = append(rows, ReplicationRow{
			Mode:           mode.String(),
			TaintedOutputs: c.TaintedOutputs,
			EnergyJ:        c.EnergyJ,
			Detected:       c.SDCsDetected,
			Injected:       c.SDCsInjected,
		})
	}
	return rows, nil
}

// ReplicationTable renders the study.
func ReplicationTable(rows []ReplicationRow) string {
	var sb strings.Builder
	sb.WriteString("Sec. I — selective replication: reliability vs energy\n")
	fmt.Fprintf(&sb, "%-20s %9s %9s %10s %12s\n", "mode", "injected", "detected", "tainted", "energy (J)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-20s %9d %9d %10d %12.1f\n",
			r.Mode, r.Injected, r.Detected, r.TaintedOutputs, r.EnergyJ)
	}
	return sb.String()
}

// --- E4: MTBF sustainability ---------------------------------------------

// MTBF computes the Daly-model improvement factor from the measured Fig. 6
// checkpoint/recovery costs.
func MTBF(fig6 *Fig6Result, perProcGB float64, refMTBFHours float64) (factor float64, err error) {
	rows := fig6.Rows[perProcGB]
	if len(rows) == 0 {
		return 0, fmt.Errorf("experiments: no Fig. 6 rows for %v GB", perProcGB)
	}
	r := rows[0]
	initial := ft.DalyModel{CkptSeconds: r.CkptInitial, RestartSeconds: r.RecInitial}
	async := ft.DalyModel{CkptSeconds: r.CkptAsync, RestartSeconds: r.RecAsync}
	return ft.MTBFImprovement(initial, async, refMTBFHours*3600), nil
}

// --- E10: XiTAO elasticity ablation ---------------------------------------

// XiTAORow is one width policy's outcome on the mixed DAG.
type XiTAORow struct {
	Policy      string
	MakespanSec float64
	Efficiency  float64
}

// XiTAOElasticity runs the mixed workload under each width policy.
func XiTAOElasticity(cores int) ([]XiTAORow, error) {
	var rows []XiTAORow
	for _, pol := range []xitao.WidthPolicy{xitao.Elastic, xitao.FixedWide, xitao.FixedOne} {
		eng := sim.NewEngine()
		rt := xitao.New(eng, cores, pol)
		for i := 0; i < 3; i++ {
			if err := rt.Submit(&xitao.TAO{Name: "wide", Work: 200, ParallelFrac: 0.95}); err != nil {
				return nil, err
			}
		}
		for i := 0; i < 4; i++ {
			if err := rt.Submit(&xitao.TAO{Name: "narrow", Work: 40, ParallelFrac: 0.1}); err != nil {
				return nil, err
			}
		}
		res, err := rt.Run()
		if err != nil {
			return nil, err
		}
		rows = append(rows, XiTAORow{
			Policy:      pol.String(),
			MakespanSec: sim.ToSeconds(res.Makespan),
			Efficiency:  res.Efficiency,
		})
	}
	return rows, nil
}

// XiTAOTable renders the ablation.
func XiTAOTable(rows []XiTAORow) string {
	var sb strings.Builder
	sb.WriteString("Sec. II-C — XiTAO elastic-width ablation (8 cores, mixed DAG)\n")
	fmt.Fprintf(&sb, "%-12s %12s %12s\n", "policy", "makespan s", "efficiency")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %12.2f %12.2f\n", r.Policy, r.MakespanSec, r.Efficiency)
	}
	return sb.String()
}

// --- E7: RECS|BOX topology -------------------------------------------------

// RECSBoxInventory builds the standard chassis and renders its population
// (Figs. 3-4 structural reproduction).
func RECSBoxInventory() (string, error) {
	eng := sim.NewEngine()
	box, err := hw.StandardCloudBox(eng, "recs0")
	if err != nil {
		return "", err
	}
	if err := box.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figs. 3-4 — RECS|BOX population\n")
	fmt.Fprintf(&sb, "%-36s %-10s %8s\n", "microserver", "class", "idle W")
	for _, ms := range box.Microservers() {
		fmt.Fprintf(&sb, "%-36s %-10s %8.1f\n",
			ms.ID, ms.Device.Spec.Class, ms.Device.Spec.IdleWatts)
	}
	fmt.Fprintf(&sb, "microservers: %d/%d, carriers: %d/%d, idle chassis power %.1f W\n",
		box.CountMicroservers(), hw.MaxMicroservers, len(box.Carriers), hw.MaxCarriers,
		box.TotalPower())
	return sb.String(), nil
}
