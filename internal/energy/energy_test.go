package energy

import (
	"math"
	"strings"
	"testing"

	"legato/internal/sim"
)

func TestMeterIntegration(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng, "cpu")
	m.SetPower(100)
	eng.Schedule(sim.Seconds(2), func() { m.SetPower(50) })
	eng.Schedule(sim.Seconds(4), func() { m.SetPower(0) })
	eng.Run()
	// 100W * 2s + 50W * 2s = 300 J
	if e := m.Energy(); math.Abs(e-300) > 1e-9 {
		t.Fatalf("energy: got %v want 300", e)
	}
	if m.PeakPower() != 100 {
		t.Fatalf("peak: got %v want 100", m.PeakPower())
	}
}

func TestMeterAddPower(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng, "node")
	m.SetPower(10)
	m.AddPower(5)
	if m.Power() != 15 {
		t.Fatalf("power after add: %v", m.Power())
	}
	m.AddPower(-15)
	if m.Power() != 0 {
		t.Fatalf("power after subtract: %v", m.Power())
	}
}

func TestMeterAddEnergy(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng, "x")
	m.AddEnergy(42)
	if m.Energy() != 42 {
		t.Fatalf("one-shot energy: %v", m.Energy())
	}
}

func TestMeterIdleAccruesNothing(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng, "idle")
	eng.Schedule(sim.Seconds(10), func() {})
	eng.Run()
	if m.Energy() != 0 {
		t.Fatalf("idle meter accrued %v J", m.Energy())
	}
}

func TestMeterSampling(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng, "s")
	m.EnableSampling()
	m.SetPower(1)
	eng.Schedule(sim.Seconds(1), func() { m.SetPower(2) })
	eng.Run()
	if n := len(m.Samples()); n != 2 {
		t.Fatalf("samples: got %d want 2", n)
	}
	if m.Samples()[1].Power != 2 || m.Samples()[1].At != sim.Seconds(1) {
		t.Fatalf("second sample wrong: %+v", m.Samples()[1])
	}
}

func TestAggregateProbe(t *testing.T) {
	eng := sim.NewEngine()
	a := NewMeter(eng, "a")
	b := NewMeter(eng, "b")
	a.SetPower(30)
	b.SetPower(12)
	agg := &Aggregate{Name: "pdu0", Probes: []Probe{MeterProbe{a}, MeterProbe{b}}}
	if agg.Read() != 42 {
		t.Fatalf("aggregate read: %v", agg.Read())
	}
	if agg.ProbeName() != "pdu0" {
		t.Fatalf("aggregate name: %v", agg.ProbeName())
	}
	mp := MeterProbe{a}
	if mp.ProbeName() != "a" {
		t.Fatalf("meter probe name: %v", mp.ProbeName())
	}
}

func TestReport(t *testing.T) {
	r := NewReport()
	r.Add("gpu", 10)
	r.Add("cpu", 5)
	r.Add("gpu", 2.5)
	if r.Get("gpu") != 12.5 {
		t.Fatalf("gpu energy: %v", r.Get("gpu"))
	}
	if r.Total() != 17.5 {
		t.Fatalf("total: %v", r.Total())
	}
	s := r.String()
	if !strings.Contains(s, "gpu") || !strings.Contains(s, "TOTAL") {
		t.Fatalf("report rendering missing rows:\n%s", s)
	}
	// cpu sorts before gpu.
	if strings.Index(s, "cpu") > strings.Index(s, "gpu") {
		t.Fatal("report rows not sorted")
	}
}
