// Package taskrt implements the OmpSs-style task runtime of the LEGaTO
// stack (paper Sec. II-C): tasks declare in/out/inout dependences on data
// regions, the runtime derives the task graph from program order, and a
// scheduler places ready tasks on the heterogeneous devices (SMP cores,
// GPUs, FPGAs) that the hw layer models — optimising for time, energy, or
// energy-delay product, which is how the task abstraction "maximises
// optimisation opportunities for low-energy computing" (Sec. I).
//
// The runtime is also the recovery layer of the resilience story (paper
// Sec. IV): a device may be failed mid-run (FailDevice), which revokes the
// tasks executing on it and re-places them on surviving devices with
// exponential backoff under a bounded attempt budget; completed-but-not-yet
// -checkpointed outputs resident on the lost device are invalidated and
// re-executed ("restored"); and jobs may opt into periodic asynchronous
// checkpoints (SetCheckpoint) so a crash restarts from the last snapshot
// instead of from zero.
package taskrt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"legato/internal/energy"
	"legato/internal/hw"
	"legato/internal/power"
	"legato/internal/sim"
)

// Typed failure sentinels, matchable with errors.Is through every wrapping
// layer up to the public legato surface.
var (
	// ErrDeviceLost marks a task that became unplaceable because every
	// device that could host it crashed or lost the capacity to fit it.
	ErrDeviceLost = errors.New("taskrt: device lost")
	// ErrRetriesExhausted marks a task that failed more times than its
	// attempt budget allows.
	ErrRetriesExhausted = errors.New("taskrt: retries exhausted")
	// ErrNoDevice marks a task no device could ever have hosted.
	ErrNoDevice = errors.New("taskrt: no compatible device")
)

// Admission arbitrates real device capacity between runtimes that execute
// concurrently on independent virtual clocks (the multi-job engine). Each
// runtime schedules against its own platform mirror, but before a task may
// occupy cores it must win the corresponding capacity from the shared
// ledger, keyed by device ID — so the union of all placements never
// oversubscribes the physical fleet.
//
// Implementations must be safe for concurrent use. Changed returns a
// channel that is closed on the next Release after the call; a runtime
// grabs it before dispatching so a release racing with a failed
// TryAcquire can never be missed. Capacity reports a device's current
// total capacity — zero for a lost device — letting runtimes distinguish
// transient contention (park and wait) from permanent loss (re-place or
// fail with ErrDeviceLost).
type Admission interface {
	TryAcquire(deviceID string, cores int) bool
	Release(deviceID string, cores int)
	Changed() <-chan struct{}
	Capacity(deviceID string) int
}

// PowerAdmission arbitrates the fleet watt budget between runtimes, the
// power sibling of Admission: before a task may start, its dynamic draw
// must fit under the shared power cap on top of the fleet's static draw.
// A refused TryDraw parks the job on Changed exactly like a core-admission
// stall. OperatingPoint exposes the governor's current DVFS prescription
// for a device; the runtime applies it to its platform mirror before
// scoring, so throttling reshapes both execution time and draw.
// power.Ledger implements this; implementations must be safe for
// concurrent use.
type PowerAdmission interface {
	TryDraw(deviceID string, watts energy.Watts) bool
	ReleaseDraw(deviceID string, watts energy.Watts)
	Changed() <-chan struct{}
	OperatingPoint(deviceID string) int
}

// Hooks observe the task lifecycle. Hooks registered with AddHooks are
// invoked on the goroutine driving the runtime: Queued at submission,
// Started when a task begins executing on a device, Finished when it
// completes (with the full Record). The resilience hooks fire on recovery
// events: Retried when a failed/corrupted execution is re-queued,
// DeviceLost when a device is failed mid-run, Checkpointed when an
// asynchronous checkpoint lands. Any field may be nil.
type Hooks struct {
	Queued   func(name string)
	Started  func(Record)
	Finished func(Record)
	// Retried fires when a task execution is abandoned and re-queued;
	// reason is "crash", "sdc" or "restore".
	Retried func(name string, attempt int, reason string, at sim.Time)
	// DeviceLost fires once per FailDevice call with the revocation and
	// invalidation counts.
	DeviceLost func(deviceID string, revoked, restored int, at sim.Time)
	// Checkpointed fires when an async checkpoint commits.
	Checkpointed func(tasks int, bytes int64, start, end sim.Time)
}

// Data is a named data region tasks depend on.
type Data struct {
	Name string
	Size int64

	lastWriter *node
	readers    []*node
	version    int
}

// Dep is a dependence declaration.
type Dep int

const (
	// In: the task reads the region.
	In Dep = iota
	// Out: the task overwrites the region.
	Out
	// InOut: the task reads and writes the region.
	InOut
)

// Task is one unit of work.
type Task struct {
	Name string
	// Gops is the task's computational cost in giga-operations.
	Gops float64
	// Cores is the requested parallel width on the chosen device
	// (default 1).
	Cores int
	// Targets lists acceptable device classes in preference order; empty
	// means any device.
	Targets []hw.Class
	// In, Out, InOut declare data dependences.
	In, Out, InOut []*Data
	// Priority breaks ties in the ready queue (higher first).
	Priority int
	// Critical marks the task reliability-critical (selective replication,
	// paper Sec. I: "only the most reliability-critical tasks will be
	// replicated"). Critical tasks detect silent data corruption (the DMR
	// vote catches a divergent replica) and re-execute; non-critical tasks
	// carry corruption silently.
	Critical bool
	// Retry is the per-task failure attempt budget (extra executions after
	// a crash or detected corruption); zero uses the runtime default.
	Retry int
	// Undervolt runs the task below the operating point's voltage by the
	// given level (1..power.MaxUndervolt): dynamic draw and energy shrink
	// quadratically, while power.SDCProbability(level) is added to the
	// task's silent-corruption risk when a fault plan is armed.
	Undervolt int
	// Fn runs at completion time (simulated); may be nil.
	Fn func()
}

// node is a submitted task with graph state.
type node struct {
	task    Task
	id      int
	deps    int     // unsatisfied predecessor count
	succ    []*node // successors
	pred    []*node // predecessors (for re-execution after invalidation)
	done    bool
	started bool

	attempts  int          // failed executions so far (crash/sdc)
	persisted bool         // output captured by a committed checkpoint
	handle    sim.Handle   // completion event while running
	grantW    energy.Watts // watt grant held while running (power ledger)

	record Record
}

// Record is the execution trace of one task.
type Record struct {
	ID       int
	Name     string
	Device   string
	Class    hw.Class
	Start    sim.Time
	End      sim.Time
	EnergyJ  energy.Joules
	Critical bool
	// Undervolt is the task's undervolt level (0 = guardband).
	Undervolt int
	// DrawW is the dynamic draw the execution held while running.
	DrawW energy.Watts
	// Attempts counts executions of the task (1 = first try succeeded).
	Attempts int
	// Corrupted marks a silent data corruption that went undetected (the
	// task was not replicated/critical).
	Corrupted bool
}

// Policy selects the placement objective.
type Policy int

const (
	// MinTime places each ready task on the device finishing it soonest.
	MinTime Policy = iota
	// MinEnergy places on the device with the lowest dynamic energy.
	MinEnergy
	// MinEDP minimises energy × delay.
	MinEDP
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case MinTime:
		return "min-time"
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-edp"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Runtime is one task-graph execution context.
type Runtime struct {
	eng     *sim.Engine
	devices []*hw.Device
	policy  Policy

	nodes  []*node
	ready  []*node
	nextID int
	inDAG  int // submitted, not finished

	adm     Admission      // nil: sole owner of its devices
	pow     PowerAdmission // nil: no fleet watt budget
	hooks   []Hooks
	held    map[string]int          // admission grants currently held, by device ID
	heldW   map[string]energy.Watts // watt grants currently held, by device ID
	blocked bool                    // a ready task lost admission this dispatch round

	// Resilience state.
	running      map[*node]struct{}
	retryMax     int      // default attempt budget (extra executions)
	retryBackoff sim.Time // base backoff, doubled per attempt
	corrupt      func(Record) bool
	failErr      error // terminal failure (retries exhausted)
	faultEvents  []sim.Handle

	// Checkpoint state.
	ckptEvery   int
	ckptCost    func(bytes int64) sim.Time
	restoreCost func(bytes int64) sim.Time
	sinceCkpt   int
	ckptBytes   int64

	retries     int
	restores    int
	ckpts       int
	sdcDetected int
	sdcSilent   int
}

// New creates a runtime over the given devices.
func New(eng *sim.Engine, devices []*hw.Device, policy Policy) *Runtime {
	return &Runtime{
		eng: eng, devices: devices, policy: policy,
		held:         make(map[string]int),
		heldW:        make(map[string]energy.Watts),
		running:      make(map[*node]struct{}),
		retryBackoff: time.Millisecond,
	}
}

// SetAdmission installs a shared capacity ledger. Must be called before the
// first Submit. With no admission the runtime assumes exclusive ownership
// of its devices, which is the historical single-tenant behaviour.
func (r *Runtime) SetAdmission(a Admission) { r.adm = a }

// SetPowerAdmission installs the shared fleet watt ledger. Must be called
// before the first Submit. With no power admission placements are gated by
// core capacity alone — the historical behaviour.
func (r *Runtime) SetPowerAdmission(p PowerAdmission) { r.pow = p }

// SetRetryPolicy sets the default failure attempt budget (extra executions
// after a crash or detected corruption; Task.Retry overrides per task) and
// the base backoff, which doubles on every consecutive failure.
func (r *Runtime) SetRetryPolicy(maxAttempts int, backoff sim.Time) {
	if maxAttempts >= 0 {
		r.retryMax = maxAttempts
	}
	if backoff > 0 {
		r.retryBackoff = backoff
	}
}

// SetCorruptor installs the silent-data-corruption oracle, consulted once
// per completed execution with the would-be record. Critical tasks detect
// a corruption (the DMR vote) and re-execute; others carry it silently.
func (r *Runtime) SetCorruptor(fn func(Record) bool) { r.corrupt = fn }

// SetCheckpoint enables asynchronous periodic checkpoints: every `every`
// task completions, the outputs produced since the previous checkpoint are
// captured and persist after cost(bytes) of virtual time (the async-FTI
// model: capture overlaps execution, so a checkpoint only costs time when a
// crash lands inside its window). restore(bytes) is charged before
// invalidated tasks re-execute after a device loss.
func (r *Runtime) SetCheckpoint(every int, cost, restore func(bytes int64) sim.Time) {
	r.ckptEvery = every
	r.ckptCost = cost
	r.restoreCost = restore
}

// ScheduleFault registers fn to run at the given virtual time *while the
// graph is still executing*: pending fault events are cancelled the moment
// the graph completes, so a failure process sampled beyond the job's
// lifetime cannot stretch the run.
func (r *Runtime) ScheduleFault(at sim.Time, fn func()) {
	r.faultEvents = append(r.faultEvents, r.eng.ScheduleAt(at, fn))
}

// Checkpoints reports how many checkpoints have committed.
func (r *Runtime) Checkpoints() int { return r.ckpts }

// AddHooks registers lifecycle observers; multiple sets compose and fire
// in registration order.
func (r *Runtime) AddHooks(h Hooks) { r.hooks = append(r.hooks, h) }

// Data declares a data region.
func (r *Runtime) Data(name string, size int64) *Data {
	return &Data{Name: name, Size: size}
}

// Submit adds a task, wiring dependences against earlier submissions
// (program order), exactly like OmpSs #pragma omp task in/out clauses.
func (r *Runtime) Submit(t Task) error {
	if t.Cores <= 0 {
		t.Cores = 1
	}
	if t.Gops < 0 {
		return fmt.Errorf("taskrt: task %q has negative cost", t.Name)
	}
	if t.Undervolt < 0 || t.Undervolt > power.MaxUndervolt {
		return fmt.Errorf("taskrt: task %q undervolt level %d outside [0, %d]",
			t.Name, t.Undervolt, power.MaxUndervolt)
	}
	n := &node{task: t, id: r.nextID}
	r.nextID++
	n.record = Record{ID: n.id, Name: t.Name, Critical: t.Critical, Undervolt: t.Undervolt}

	addEdge := func(from *node) {
		if from == nil || from.done {
			return
		}
		from.succ = append(from.succ, n)
		n.pred = append(n.pred, from)
		n.deps++
	}
	for _, d := range t.In {
		addEdge(d.lastWriter)
		d.readers = append(d.readers, n)
	}
	for _, d := range t.InOut {
		addEdge(d.lastWriter)
		for _, rd := range d.readers {
			if rd != n {
				addEdge(rd)
			}
		}
		d.lastWriter = n
		d.readers = d.readers[:0]
		d.version++
	}
	for _, d := range t.Out {
		// Output and anti dependences: wait for previous writer and readers
		// (no renaming in this runtime).
		addEdge(d.lastWriter)
		for _, rd := range d.readers {
			if rd != n {
				addEdge(rd)
			}
		}
		d.lastWriter = n
		d.readers = d.readers[:0]
		d.version++
	}

	r.nodes = append(r.nodes, n)
	r.inDAG++
	for _, h := range r.hooks {
		if h.Queued != nil {
			h.Queued(t.Name)
		}
	}
	if n.deps == 0 {
		r.enqueue(n)
	}
	return nil
}

// enqueue adds a ready node, keeping the queue priority-sorted.
func (r *Runtime) enqueue(n *node) {
	r.ready = append(r.ready, n)
	sort.SliceStable(r.ready, func(i, j int) bool {
		if r.ready[i].task.Priority != r.ready[j].task.Priority {
			return r.ready[i].task.Priority > r.ready[j].task.Priority
		}
		return r.ready[i].id < r.ready[j].id
	})
}

// unready removes a node from the ready queue if present.
func (r *Runtime) unready(n *node) {
	for i, m := range r.ready {
		if m == n {
			r.ready = append(r.ready[:i], r.ready[i+1:]...)
			return
		}
	}
}

func (r *Runtime) inReady(n *node) bool {
	for _, m := range r.ready {
		if m == n {
			return true
		}
	}
	return false
}

// compatible reports whether dev can run t.
func compatible(t Task, dev *hw.Device) bool {
	if !dev.Healthy() {
		return false
	}
	if dev.Spec.Cores < t.Cores {
		return false
	}
	return classMatch(t, dev.Spec.Class)
}

// classMatch reports whether t accepts the given device class.
func classMatch(t Task, c hw.Class) bool {
	if len(t.Targets) == 0 {
		return true
	}
	for _, want := range t.Targets {
		if want == c {
			return true
		}
	}
	return false
}

// score returns the policy objective for running t on dev now (lower is
// better); ok=false if the device cannot take the task at this instant.
func (r *Runtime) score(t Task, dev *hw.Device) (float64, bool) {
	if !compatible(t, dev) {
		return 0, false
	}
	free := dev.Spec.Cores - dev.BusyCores()
	if free < t.Cores {
		return 0, false
	}
	execSec := sim.ToSeconds(dev.ExecTime(t.Gops, t.Cores))
	energyJ := dev.EnergyFor(t.Gops, t.Cores) * power.UndervoltPowerScale(t.Undervolt)
	switch r.policy {
	case MinEnergy:
		return energyJ, true
	case MinEDP:
		return energyJ * execSec, true
	default:
		return execSec, true
	}
}

// applyOperatingPoints syncs the platform mirror to the governor's current
// DVFS prescription, so scoring, execution time and draw all see the
// throttled (or restored) operating points. Tasks already executing keep
// the span and energy they were scheduled with; only new placements are
// reshaped — the DVFS transition model.
func (r *Runtime) applyOperatingPoints() {
	if r.pow == nil {
		return
	}
	for _, dev := range r.devices {
		if p := r.pow.OperatingPoint(dev.ID); p != dev.StateIndex() {
			if err := dev.SetState(p); err != nil {
				// A mirror with fewer states than the reference ladder is a
				// construction bug; stay at the current point.
				continue
			}
		}
	}
}

// taskDrawW is the dynamic draw a task would hold on dev at its current
// operating point, shrunk by the task's undervolt level.
func taskDrawW(t Task, dev *hw.Device) energy.Watts {
	return dev.DynamicWatts(t.Cores) * power.UndervoltPowerScale(t.Undervolt)
}

// dispatch assigns as many ready tasks as possible.
func (r *Runtime) dispatch() {
	r.applyOperatingPoints()
	for {
		assigned := false
		for qi := 0; qi < len(r.ready); qi++ {
			n := r.ready[qi]
			best := -1
			bestScore := 0.0
			for di, dev := range r.devices {
				if r.adm != nil && r.adm.Capacity(dev.ID) < n.task.Cores {
					// The fleet behind this device lost the capacity to ever
					// fit the task (crash or degrade) — permanently unfit,
					// not a transient stall.
					continue
				}
				if s, ok := r.score(n.task, dev); ok && (best == -1 || s < bestScore) {
					best, bestScore = di, s
				}
			}
			if best == -1 {
				continue // no device free for this task right now
			}
			dev := r.devices[best]
			if r.adm != nil && !r.adm.TryAcquire(dev.ID, n.task.Cores) {
				// The fleet capacity behind this device is occupied by a
				// sibling job; leave the task queued and note the stall so
				// RunContext knows to wait for a global release.
				r.blocked = true
				continue
			}
			watts := energy.Watts(0)
			if r.pow != nil {
				watts = taskDrawW(n.task, dev)
				if !r.pow.TryDraw(dev.ID, watts) {
					// The placement fits the core budget but not the watt
					// budget: give the cores back and park. A PackAndThrottle
					// governor may have stepped the device down, so the next
					// dispatch round re-scores at the cheaper point.
					if r.adm != nil {
						r.adm.Release(dev.ID, n.task.Cores)
					}
					r.blocked = true
					r.applyOperatingPoints()
					continue
				}
			}
			r.ready = append(r.ready[:qi], r.ready[qi+1:]...)
			r.start(n, dev, watts)
			assigned = true
			break
		}
		if !assigned {
			return
		}
	}
}

// start runs n on dev. The caller has already won global admission for the
// task's cores (and watts of draw) when shared ledgers are installed.
func (r *Runtime) start(n *node, dev *hw.Device, watts energy.Watts) {
	t := n.task
	if err := dev.Acquire(t.Cores); err != nil {
		// Raced with another assignment; requeue and give back admission.
		if r.adm != nil {
			r.adm.Release(dev.ID, t.Cores)
		}
		if r.pow != nil {
			r.pow.ReleaseDraw(dev.ID, watts)
		}
		r.enqueue(n)
		return
	}
	if r.adm != nil {
		r.held[dev.ID] += t.Cores
	}
	if r.pow != nil {
		r.heldW[dev.ID] += watts
		n.grantW = watts
	}
	n.started = true
	n.record.Device = dev.ID
	n.record.Class = dev.Spec.Class
	n.record.Start = r.eng.Now()
	n.record.EnergyJ = dev.EnergyFor(t.Gops, t.Cores) * power.UndervoltPowerScale(t.Undervolt)
	n.record.DrawW = taskDrawW(t, dev)
	n.record.Attempts++
	r.running[n] = struct{}{}
	for _, h := range r.hooks {
		if h.Started != nil {
			h.Started(n.record)
		}
	}
	span := dev.ExecTime(t.Gops, t.Cores)
	n.handle = r.eng.Schedule(span, func() { r.complete(n, dev) })
}

// complete finishes one execution of n on dev: the device and admission
// grant are returned, the SDC oracle is consulted, and the node either
// finishes or re-queues for another attempt.
func (r *Runtime) complete(n *node, dev *hw.Device) {
	t := n.task
	delete(r.running, n)
	dev.Release(t.Cores)
	if r.adm != nil {
		r.held[dev.ID] -= t.Cores
		r.adm.Release(dev.ID, t.Cores)
	}
	if r.pow != nil {
		r.heldW[dev.ID] -= n.grantW
		r.pow.ReleaseDraw(dev.ID, n.grantW)
		n.grantW = 0
	}
	n.record.End = r.eng.Now()
	if r.corrupt != nil && r.corrupt(n.record) {
		if t.Critical {
			// The replica vote disagrees: corruption detected, re-execute.
			r.sdcDetected++
			n.started = false
			r.retry(n, "sdc")
			r.dispatch()
			return
		}
		n.record.Corrupted = true
		r.sdcSilent++
	}
	r.finishNode(n)
	r.dispatch()
}

// finishNode commits a successful execution: successors are released, the
// checkpoint schedule advances, and pending fault events are cancelled once
// the whole graph is done (a failure process sampled beyond the job's
// lifetime must not stretch the run).
func (r *Runtime) finishNode(n *node) {
	n.done = true
	r.inDAG--
	if n.task.Fn != nil {
		n.task.Fn()
	}
	for _, h := range r.hooks {
		if h.Finished != nil {
			h.Finished(n.record)
		}
	}
	for _, s := range n.succ {
		s.deps--
		if s.deps == 0 && !s.done {
			r.enqueue(s)
		}
	}
	r.maybeCheckpoint(n)
	if r.inDAG == 0 {
		for _, h := range r.faultEvents {
			h.Cancel()
		}
		r.faultEvents = r.faultEvents[:0]
	}
}

// maybeCheckpoint advances the checkpoint schedule after n completed and,
// every ckptEvery completions, starts an asynchronous capture of all not-
// yet-persisted outputs that commits cost(bytes) later.
func (r *Runtime) maybeCheckpoint(n *node) {
	if r.ckptEvery <= 0 {
		return
	}
	r.sinceCkpt++
	for _, d := range n.task.Out {
		r.ckptBytes += d.Size
	}
	for _, d := range n.task.InOut {
		r.ckptBytes += d.Size
	}
	if r.sinceCkpt < r.ckptEvery {
		return
	}
	r.sinceCkpt = 0
	bytes := r.ckptBytes
	r.ckptBytes = 0
	var snap []*node
	for _, m := range r.nodes {
		if m.done && !m.persisted {
			snap = append(snap, m)
		}
	}
	if len(snap) == 0 {
		return
	}
	var cost sim.Time
	if r.ckptCost != nil {
		cost = r.ckptCost(bytes)
	}
	start := r.eng.Now()
	r.eng.Schedule(cost, func() {
		committed := 0
		for _, m := range snap {
			// A crash inside the checkpoint window invalidates members of
			// the snapshot; only still-done nodes commit.
			if m.done {
				m.persisted = true
				committed++
			}
		}
		r.ckpts++
		for _, h := range r.hooks {
			if h.Checkpointed != nil {
				h.Checkpointed(committed, bytes, start, r.eng.Now())
			}
		}
	})
}

// budget returns n's failure attempt budget.
func (r *Runtime) budget(n *node) int {
	if n.task.Retry > 0 {
		return n.task.Retry
	}
	return r.retryMax
}

// retry re-queues a failed execution with exponential backoff, or records
// the terminal ErrRetriesExhausted failure once the budget is spent.
func (r *Runtime) retry(n *node, reason string) {
	n.attempts++
	if budget := r.budget(n); n.attempts > budget {
		if r.failErr == nil {
			r.failErr = fmt.Errorf("taskrt: task %q gave up after %d failed attempts (%s): %w",
				n.task.Name, n.attempts, reason, ErrRetriesExhausted)
		}
		return
	}
	r.retries++
	for _, h := range r.hooks {
		if h.Retried != nil {
			h.Retried(n.task.Name, n.attempts, reason, r.eng.Now())
		}
	}
	backoff := r.retryBackoff << uint(n.attempts-1)
	r.eng.Schedule(backoff, func() {
		// deps may have grown since the revocation if a predecessor's
		// output was invalidated by the same device loss — then the
		// completion path re-enqueues this node, not the backoff timer.
		if n.deps == 0 && !n.done && !n.started && !r.inReady(n) {
			r.enqueue(n)
			r.dispatch()
		}
	})
}

// FailDevice fails the named device mid-run: in-flight tasks on it are
// revoked (their grants returned, their executions re-queued under the
// retry budget), the mirror device is marked unhealthy so placement routes
// around it, and completed-but-unpersisted outputs resident on the device
// are invalidated and scheduled for re-execution after the restore cost —
// unless a committed checkpoint already captured them. It returns the
// revocation and invalidation counts; failing an unknown or already-failed
// device is a no-op.
func (r *Runtime) FailDevice(id string) (revoked, restored int) {
	var dev *hw.Device
	for _, d := range r.devices {
		if d.ID == id {
			dev = d
			break
		}
	}
	if dev == nil || !dev.Healthy() {
		return 0, 0
	}
	// Revoke in-flight executions.
	for n := range r.running {
		if n.record.Device != id {
			continue
		}
		delete(r.running, n)
		n.handle.Cancel()
		dev.Release(n.task.Cores)
		if r.adm != nil {
			r.held[id] -= n.task.Cores
			r.adm.Release(id, n.task.Cores)
		}
		if r.pow != nil {
			r.heldW[id] -= n.grantW
			r.pow.ReleaseDraw(id, n.grantW)
			n.grantW = 0
		}
		n.started = false
		revoked++
		r.retry(n, "crash")
	}
	dev.Fail()

	// Invalidate completed outputs that lived on the device and were never
	// checkpointed: they are gone, so any task whose output is still needed
	// (a pending successor, or a terminal output) must re-execute. The
	// closure is transitive — a re-executing task needs its inputs, so an
	// un-persisted predecessor on the lost device is dragged back in too —
	// which is exactly the "restart from zero vs restart from the last
	// snapshot" trade the checkpoint option buys out of.
	invalSet := make(map[*node]bool)
	for changed := true; changed; {
		changed = false
		for _, n := range r.nodes {
			if !n.done || n.persisted || n.record.Device != id || invalSet[n] {
				continue
			}
			needed := len(n.succ) == 0
			for _, s := range n.succ {
				if !s.done || invalSet[s] {
					needed = true
					break
				}
			}
			if needed {
				invalSet[n] = true
				changed = true
			}
		}
	}
	// Deterministic processing order: nodes slice order, not map order.
	var inval []*node
	for _, n := range r.nodes {
		if invalSet[n] {
			inval = append(inval, n)
		}
	}
	var restoreBytes int64
	for _, n := range inval {
		n.done = false
		n.started = false
		r.inDAG++
	}
	for _, n := range inval {
		for _, d := range n.task.Out {
			restoreBytes += d.Size
		}
		for _, d := range n.task.InOut {
			restoreBytes += d.Size
		}
		for _, s := range n.succ {
			if !s.done && !s.started {
				s.deps++
				r.unready(s)
			}
		}
	}
	var delay sim.Time
	if r.restoreCost != nil && restoreBytes > 0 {
		delay = r.restoreCost(restoreBytes)
	}
	restored = len(inval)
	r.restores += restored
	for _, n := range inval {
		n := n
		for _, h := range r.hooks {
			if h.Retried != nil {
				h.Retried(n.task.Name, n.attempts, "restore", r.eng.Now())
			}
		}
		r.eng.Schedule(delay, func() {
			if n.deps == 0 && !n.done && !n.started && !r.inReady(n) {
				r.enqueue(n)
				r.dispatch()
			}
		})
	}
	for _, h := range r.hooks {
		if h.DeviceLost != nil {
			h.DeviceLost(id, revoked, restored, r.eng.Now())
		}
	}
	r.dispatch()
	return revoked, restored
}

// Result summarises a completed run.
type Result struct {
	Makespan sim.Time
	Records  []Record
	// EnergyJ is the summed dynamic task energy.
	EnergyJ energy.Joules
	// Retries counts re-queued executions after crashes or detected SDCs.
	Retries int
	// Restores counts completed tasks re-executed after a device loss
	// invalidated their un-checkpointed outputs.
	Restores int
	// Checkpoints counts committed asynchronous checkpoints.
	Checkpoints int
	// SDCDetected counts corruptions caught by the replica vote.
	SDCDetected int
	// SDCSilent counts corruptions that went undetected.
	SDCSilent int
}

// Run executes the submitted graph to completion and returns the trace.
// It fails if tasks remain blocked (a dependence cycle cannot occur by
// construction, so leftovers mean no compatible device exists).
func (r *Runtime) Run() (*Result, error) { return r.RunContext(context.Background()) }

// RunContext executes the submitted graph to completion, honouring ctx:
// cancellation or deadline expiry is checked between every simulated event,
// aborts the run with the context's error, and returns any admission grants
// held by in-flight tasks so sibling runtimes can make progress. When the
// runtime shares devices through an Admission ledger and every ready task
// is stalled on foreign occupancy, the goroutine parks until capacity is
// released elsewhere (or ctx fires) — the job's virtual clock does not
// advance while parked. A runtime that returned an error must not be run
// again.
//
// Failure semantics: a task that exhausts its retry budget aborts the run
// with ErrRetriesExhausted; a task left unplaceable by device loss aborts
// with ErrDeviceLost; a task no device could ever host aborts with
// ErrNoDevice.
func (r *Runtime) RunContext(ctx context.Context) (*Result, error) {
	abort := func(err error) (*Result, error) {
		r.releaseHeld()
		return nil, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		if r.failErr != nil {
			return abort(r.failErr)
		}
		// Grab the change channels before dispatching: a release that races
		// with a failed TryAcquire/TryDraw below closes these very channels,
		// so the park cannot miss the wakeup. A nil channel blocks forever
		// in the select, which is exactly right for an absent ledger.
		var changed, powChanged <-chan struct{}
		if r.adm != nil {
			changed = r.adm.Changed()
		}
		if r.pow != nil {
			powChanged = r.pow.Changed()
		}
		r.blocked = false
		r.dispatch()
		if r.eng.Step() {
			continue
		}
		// Event queue drained: either the graph is done, or progress needs
		// capacity (cores or watts) currently owned by a sibling job, or no
		// device can ever host a leftover task.
		if r.inDAG == 0 {
			break
		}
		if r.blocked && (r.adm != nil || r.pow != nil) {
			select {
			case <-changed:
			case <-powChanged:
			case <-ctx.Done():
				return abort(ctx.Err())
			}
			continue
		}
		for _, n := range r.nodes {
			if !n.done {
				return abort(r.stuckErr(n))
			}
		}
	}
	res := &Result{
		Retries:     r.retries,
		Restores:    r.restores,
		Checkpoints: r.ckpts,
		SDCDetected: r.sdcDetected,
		SDCSilent:   r.sdcSilent,
	}
	for _, n := range r.nodes {
		res.Records = append(res.Records, n.record)
		if n.record.End > res.Makespan {
			res.Makespan = n.record.End
		}
		res.EnergyJ += n.record.EnergyJ
	}
	return res, nil
}

// stuckErr explains why a leftover task can never run: ErrDeviceLost when a
// device that could have hosted it crashed or shrank below its width,
// ErrNoDevice otherwise.
func (r *Runtime) stuckErr(n *node) error {
	cores := n.task.Cores
	if cores <= 0 {
		cores = 1
	}
	lost := false
	for _, d := range r.devices {
		if d.Spec.Cores < cores || !classMatch(n.task, d.Spec.Class) {
			continue
		}
		if !d.Healthy() || (r.adm != nil && r.adm.Capacity(d.ID) < cores) {
			lost = true
		}
	}
	if lost {
		return fmt.Errorf("taskrt: task %q unplaceable after device loss: %w", n.task.Name, ErrDeviceLost)
	}
	return fmt.Errorf("taskrt: task %q never ran: %w", n.task.Name, ErrNoDevice)
}

// releaseHeld returns every admission grant — cores and watts — still held
// by in-flight tasks, so a cancelled job cannot strand fleet capacity or
// watt budget.
func (r *Runtime) releaseHeld() {
	if r.adm != nil {
		for id, n := range r.held {
			if n > 0 {
				r.adm.Release(id, n)
			}
			delete(r.held, id)
		}
	}
	if r.pow != nil {
		for id, w := range r.heldW {
			if w > 0 {
				r.pow.ReleaseDraw(id, w)
			}
			delete(r.heldW, id)
		}
	}
}
