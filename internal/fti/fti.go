package fti

import (
	"encoding/binary"
	"fmt"

	"legato/internal/gpu"
	"legato/internal/mpi"
	"legato/internal/sim"
)

// Level is a checkpoint durability level, as in FTI [9].
type Level int

const (
	// L1 writes to node-local NVMe: fastest, lost with the node.
	L1 Level = 1
	// L2 adds a partner copy on another node: survives one node loss.
	L2 Level = 2
	// L3 adds Reed-Solomon group encoding: survives one node loss per
	// encoding group without a full duplicate.
	L3 Level = 3
	// L4 writes to the global parallel file system: survives anything,
	// slowest, bandwidth shared by all nodes.
	L4 Level = 4
)

// Method selects the GPU/UVM data path of paper Sec. IV.
type Method int

const (
	// Initial is the first implementation: UVM data is fetched through
	// driver page faults and files are written strictly sequentially.
	Initial Method = iota
	// Async is the optimised implementation: chunked DMA copies on a
	// stream, overlapped with file writes ("speed up of 10X in comparison
	// with the initial implementation").
	Async
)

// String names the method.
func (m Method) String() string {
	if m == Async {
		return "async"
	}
	return "initial"
}

// Config parametrises one rank's FTI instance.
type Config struct {
	// Method selects the device-data checkpoint path.
	Method Method
	// GroupSize is the L2/L3 encoding-group size (default 4; must divide
	// the world size).
	GroupSize int
	// ChunkBytes is the async-path chunk size (default 64 MiB).
	ChunkBytes int64
	// CkptEvery takes a checkpoint every N Snapshot calls (default 10).
	CkptEvery int
	// L2Every/L3Every/L4Every escalate every k-th checkpoint to the given
	// level (0 disables). Defaults: L2 every 2nd, L3 every 4th, L4 never.
	L2Every, L3Every, L4Every int
}

func (c Config) withDefaults() Config {
	if c.GroupSize == 0 {
		c.GroupSize = 4
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 64 << 20
	}
	if c.CkptEvery == 0 {
		c.CkptEvery = 10
	}
	if c.L2Every == 0 {
		c.L2Every = 2
	}
	if c.L3Every == 0 {
		c.L3Every = 4
	}
	return c
}

// protected is one registered variable.
type protected struct {
	id  int
	buf *gpu.Buffer
	// counter is non-nil for ProtectCounter registrations.
	counter *int
}

// Stats accumulates per-rank checkpoint/recovery measurements.
type Stats struct {
	Checkpoints  int
	CkptTimes    []sim.Time
	RecoverTimes []sim.Time
	BytesWritten int64
}

// LastCkptTime returns the duration of the most recent checkpoint.
func (s *Stats) LastCkptTime() sim.Time {
	if len(s.CkptTimes) == 0 {
		return 0
	}
	return s.CkptTimes[len(s.CkptTimes)-1]
}

// LastRecoverTime returns the duration of the most recent recovery.
func (s *Stats) LastRecoverTime() sim.Time {
	if len(s.RecoverTimes) == 0 {
		return 0
	}
	return s.RecoverTimes[len(s.RecoverTimes)-1]
}

// FTI is one rank's checkpoint context (the FTI_Init..FTI_Finalize scope of
// Listing 1).
type FTI struct {
	cfg   Config
	rank  *mpi.Rank
	dev   *gpu.Device
	store *Store
	node  int

	prot      []*protected
	snapCount int
	ckptCount int
	restart   bool

	Stats Stats
}

// Init creates the rank's FTI context. If the store holds a committed
// checkpoint for this rank, the context starts in restart mode and the
// next Snapshot call recovers instead of checkpointing (matching
// FTI_Snapshot semantics). dev may be nil for CPU-only applications.
func Init(cfg Config, rank *mpi.Rank, dev *gpu.Device, store *Store) (*FTI, error) {
	cfg = cfg.withDefaults()
	if rank.Size()%cfg.GroupSize != 0 {
		return nil, fmt.Errorf("fti: group size %d does not divide world size %d", cfg.GroupSize, rank.Size())
	}
	node := rank.World().NodeOf(rank.Rank())
	if node >= store.Nodes() {
		return nil, fmt.Errorf("fti: rank %d on node %d but store has %d nodes", rank.Rank(), node, store.Nodes())
	}
	f := &FTI{cfg: cfg, rank: rank, dev: dev, store: store, node: node}
	if _, ok := store.lastMeta(rank.Rank()); ok {
		f.restart = true
	}
	return f, nil
}

// Restart reports whether the context was initialised from an existing
// checkpoint.
func (f *FTI) Restart() bool { return f.restart }

// Protect registers a buffer for checkpointing under the given id. As in
// the paper's extension, the same call covers host, device and UVM
// buffers — the library dispatches on the address class internally.
func (f *FTI) Protect(id int, buf *gpu.Buffer) error {
	for _, p := range f.prot {
		if p.id == id {
			return fmt.Errorf("fti: id %d already protected", id)
		}
	}
	if buf.Kind != gpu.HostMem && buf.Dev != f.dev {
		return fmt.Errorf("fti: buffer %d lives on a different device", id)
	}
	f.prot = append(f.prot, &protected{id: id, buf: buf})
	return nil
}

// ProtectCounter registers an integer (typically the loop counter of
// Listing 1, line 12) so recovery can restore it.
func (f *FTI) ProtectCounter(id int, counter *int) error {
	for _, p := range f.prot {
		if p.id == id {
			return fmt.Errorf("fti: id %d already protected", id)
		}
	}
	f.prot = append(f.prot, &protected{id: id, counter: counter})
	return nil
}

// Snapshot is the per-iteration entry point (FTI_Snapshot). On a restarted
// run the first call performs recovery and returns recovered=true with the
// checkpointed iteration; otherwise it checkpoints every CkptEvery calls.
func (f *FTI) Snapshot(iter int) (resumeIter int, recovered bool, err error) {
	if f.restart {
		f.restart = false
		it, err := f.Recover()
		if err != nil {
			return iter, false, err
		}
		return it, true, nil
	}
	f.snapCount++
	if f.snapCount%f.cfg.CkptEvery == 0 {
		if err := f.Checkpoint(iter); err != nil {
			return iter, false, err
		}
	}
	return iter, false, nil
}

// levelFor picks the durability level of checkpoint number c.
func (f *FTI) levelFor(c int) Level {
	switch {
	case f.cfg.L4Every > 0 && c%f.cfg.L4Every == 0:
		return L4
	case f.cfg.L3Every > 0 && c%f.cfg.L3Every == 0:
		return L3
	case f.cfg.L2Every > 0 && c%f.cfg.L2Every == 0:
		return L2
	default:
		return L1
	}
}

// group returns this rank's encoding-group index and member ranks.
func (f *FTI) group() (idx int, members []int) {
	g := f.rank.Rank() / f.cfg.GroupSize
	for i := 0; i < f.cfg.GroupSize; i++ {
		members = append(members, g*f.cfg.GroupSize+i)
	}
	return g, members
}

// partner returns the rank holding this rank's L2 copy (next in group).
func (f *FTI) partner() int {
	g := f.rank.Rank() / f.cfg.GroupSize
	in := f.rank.Rank() % f.cfg.GroupSize
	return g*f.cfg.GroupSize + (in+1)%f.cfg.GroupSize
}

func l1Name(ckpt, rank, varID int) string { return fmt.Sprintf("l1/ck%d/r%d/v%d", ckpt, rank, varID) }
func l2Name(ckpt, rank, varID int) string { return fmt.Sprintf("l2/ck%d/r%d/v%d", ckpt, rank, varID) }
func l3Name(ckpt, group, varID int) string {
	return fmt.Sprintf("l3/ck%d/g%d/v%d/parity", ckpt, group, varID)
}
func l4Name(ckpt, rank, varID int) string { return fmt.Sprintf("l4/ck%d/r%d/v%d", ckpt, rank, varID) }

// Checkpoint takes a checkpoint of all protected data at the level chosen
// by the schedule. It is collective: every rank must call it at the same
// iteration.
func (f *FTI) Checkpoint(iter int) error {
	return f.CheckpointAt(iter, f.levelFor(f.ckptCount+1))
}

// CheckpointAt takes a checkpoint at an explicit level (collective).
func (f *FTI) CheckpointAt(iter int, level Level) error {
	p := f.rank.Proc()
	start := p.Now()
	f.ckptCount++
	ckptID := f.ckptCount

	var varIDs []int
	for _, pr := range f.prot {
		varIDs = append(varIDs, pr.id)
		fl, err := f.captureVar(pr)
		if err != nil {
			return fmt.Errorf("fti: rank %d capture var %d: %w", f.rank.Rank(), pr.id, err)
		}
		f.store.localPut(p, f.node, l1Name(ckptID, f.rank.Rank(), pr.id), fl, false, f.node)
		f.Stats.BytesWritten += fl.size

		if level >= L2 {
			partnerNode := f.rank.World().NodeOf(f.partner())
			cp := &file{data: cloneBytes(fl.data), size: fl.size, phantom: fl.phantom}
			f.store.localPut(p, partnerNode, l2Name(ckptID, f.rank.Rank(), pr.id), cp, partnerNode != f.node, f.node)
			f.Stats.BytesWritten += cp.size
		}
		if level == L4 {
			cp := &file{data: cloneBytes(fl.data), size: fl.size, phantom: fl.phantom}
			f.store.globalPut(p, l4Name(ckptID, f.rank.Rank(), pr.id), cp)
			f.Stats.BytesWritten += cp.size
		}
	}

	// L3: the group leader gathers the group's shards and writes parity.
	if level >= L3 {
		f.rank.Barrier() // all L1 files must exist before encoding
		if err := f.encodeGroupParity(ckptID); err != nil {
			return err
		}
	}

	f.rank.Barrier() // checkpoint commit is collective
	f.store.commitMeta(f.rank.Rank(), &rankMeta{
		CkptID: ckptID, Level: level, Iter: iter, VarIDs: varIDs,
	})
	f.Stats.Checkpoints++
	f.Stats.CkptTimes = append(f.Stats.CkptTimes, p.Now()-start)
	return nil
}

// captureVar produces the checkpoint file for one protected variable,
// charging the appropriate data-movement costs for its address class and
// the configured method.
func (f *FTI) captureVar(pr *protected) (*file, error) {
	p := f.rank.Proc()
	if pr.counter != nil {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(*pr.counter))
		return &file{data: buf, size: 8}, nil
	}
	b := pr.buf
	switch {
	case b.Kind == gpu.HostMem:
		// Host data: snapshot directly (memcpy cost folded into NVMe write).
		if b.Phantom() {
			return &file{size: b.Len(), phantom: true}, nil
		}
		return &file{data: cloneBytes(b.Data()), size: b.Len()}, nil

	case f.cfg.Method == Initial:
		// Initial implementation: UVM pages fault across at driver speed;
		// device memory moves in one blocking DMA.
		dst := []byte(nil)
		if !b.Phantom() {
			dst = make([]byte, b.Len())
		}
		var err error
		if b.Kind == gpu.ManagedMem {
			err = f.dev.UVMFetchD2H(p, dst, b, 0, b.Len())
		} else {
			err = f.dev.MemcpyD2H(p, dst, b, 0, b.Len())
		}
		if err != nil {
			return nil, err
		}
		return &file{data: dst, size: b.Len(), phantom: b.Phantom()}, nil

	default:
		// Async: the file buffer fills chunk by chunk; the NVMe write of
		// chunk i overlaps the DMA of chunk i+1 (captureVar returns a
		// zero-copy file whose NVMe time was already charged per chunk;
		// the caller's localPut then costs ~nothing extra for the final
		// metadata, so we model the full overlap inside this function and
		// return a pre-written file).
		return f.captureAsync(b)
	}
}

// captureAsync streams a device/managed buffer to the local store with
// chunked DMA overlapped against NVMe writes, returning the resulting file
// with all I/O time already charged.
func (f *FTI) captureAsync(b *gpu.Buffer) (*file, error) {
	p := f.rank.Proc()
	var dst []byte
	if !b.Phantom() {
		dst = make([]byte, b.Len())
	}
	stream := f.dev.NewStream()
	nvme := f.store.nodes[f.node].write
	var pending int
	var wake func()
	var chunkErr error
	for off := int64(0); off < b.Len(); off += f.cfg.ChunkBytes {
		n := f.cfg.ChunkBytes
		if off+n > b.Len() {
			n = b.Len() - off
		}
		var window []byte
		if dst != nil {
			window = dst[off : off+n]
		}
		size := n
		pending++
		if err := stream.MemcpyD2HAsync(window, b, off, size, func() {
			nvme.Transfer(size, func() {
				pending--
				if pending == 0 && wake != nil {
					w := wake
					wake = nil
					w()
				}
			})
		}); err != nil {
			chunkErr = err
			pending--
			break
		}
	}
	if chunkErr != nil {
		return nil, chunkErr
	}
	stream.Synchronize(p)
	if pending > 0 {
		p.Await(func(done func()) { wake = done })
	}
	return &file{data: dst, size: b.Len(), phantom: b.Phantom(), preWritten: true}, nil
}

// encodeGroupParity has the group leader read the group's L1 shards and
// store a Reed-Solomon parity shard on the node after the leader's
// (spreading parity away from the data it protects).
func (f *FTI) encodeGroupParity(ckptID int) error {
	g, members := f.group()
	leader := members[0]
	if f.rank.Rank() != leader {
		return nil
	}
	p := f.rank.Proc()
	world := f.rank.World()
	for _, pr := range f.prot {
		shards := make([][]byte, 0, len(members))
		maxSize := int64(0)
		phantom := false
		for _, m := range members {
			node := world.NodeOf(m)
			fl, ok := f.store.localGet(p, node, l1Name(ckptID, m, pr.id), node != f.node, f.node)
			if !ok {
				return fmt.Errorf("fti: L3 encode missing shard of rank %d var %d", m, pr.id)
			}
			if fl.size > maxSize {
				maxSize = fl.size
			}
			phantom = phantom || fl.phantom
			shards = append(shards, fl.data)
		}
		parity := &file{size: maxSize, phantom: true}
		if !phantom {
			padded := make([][]byte, len(shards))
			for i, s := range shards {
				ps := make([]byte, maxSize)
				copy(ps, s)
				padded[i] = ps
			}
			par, err := encodeParity(padded)
			if err != nil {
				return fmt.Errorf("fti: L3 encode group %d var %d: %w", g, pr.id, err)
			}
			parity = &file{data: par, size: maxSize}
		}
		parityNode := world.NodeOf(members[1%len(members)])
		f.store.localPut(p, parityNode, l3Name(ckptID, g, pr.id), parity, parityNode != f.node, f.node)
		f.Stats.BytesWritten += parity.size
	}
	return nil
}

// Finalize ends the checkpoint context. Matching FTI_Finalize, it is a
// barrier so all ranks leave together.
func (f *FTI) Finalize() { f.rank.Barrier() }
