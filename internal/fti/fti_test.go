package fti

import (
	"bytes"
	"testing"

	"legato/internal/gpu"
	"legato/internal/mpi"
	"legato/internal/sim"
)

// harness builds an engine, world and store for n ranks over nodes nodes.
func harness(t *testing.T, ranks, nodes int) (*sim.Engine, *mpi.World, *Store) {
	t.Helper()
	eng := sim.NewEngine()
	w, err := mpi.NewWorld(eng, mpi.Config{Size: ranks, RanksPerNode: (ranks + nodes - 1) / nodes})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(eng, StoreConfig{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return eng, w, st
}

func TestInitValidation(t *testing.T) {
	eng, w, st := harness(t, 3, 3)
	err := w.Run(func(r *mpi.Rank) {
		if _, err := Init(Config{GroupSize: 2}, r, nil, st); err == nil {
			t.Error("group size not dividing world accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng
}

func TestStoreValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewStore(eng, StoreConfig{Nodes: 0}); err == nil {
		t.Fatal("zero-node store accepted")
	}
}

func TestProtectDuplicateID(t *testing.T) {
	_, w, st := harness(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		f, err := Init(Config{GroupSize: 1}, r, nil, st)
		if err != nil {
			t.Error(err)
			return
		}
		buf := gpu.HostAlloc(64)
		if err := f.Protect(1, buf); err != nil {
			t.Error(err)
		}
		if err := f.Protect(1, buf); err == nil {
			t.Error("duplicate protect id accepted")
		}
		n := 0
		if err := f.ProtectCounter(1, &n); err == nil {
			t.Error("duplicate counter id accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHostCheckpointRecoverL1(t *testing.T) {
	_, w, st := harness(t, 2, 2)
	payload := []byte("state-of-rank-")
	// Run 1: checkpoint.
	err := w.Run(func(r *mpi.Rank) {
		f, err := Init(Config{GroupSize: 2}, r, nil, st)
		if err != nil {
			t.Error(err)
			return
		}
		buf := gpu.HostAlloc(16)
		copy(buf.Data(), append(payload, byte('0'+r.Rank())))
		if err := f.Protect(1, buf); err != nil {
			t.Error(err)
			return
		}
		if err := f.CheckpointAt(7, L1); err != nil {
			t.Error(err)
		}
		f.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run 2: restart and recover.
	eng2 := sim.NewEngine()
	w2, _ := mpi.NewWorld(eng2, mpi.Config{Size: 2, RanksPerNode: 1})
	// Store must persist across runs but its pipes belong to the old
	// engine; rebind to the new engine.
	st.Rebind(eng2)
	err = w2.Run(func(r *mpi.Rank) {
		f, err := Init(Config{GroupSize: 2}, r, nil, st)
		if err != nil {
			t.Error(err)
			return
		}
		if !f.Restart() {
			t.Error("restart not detected")
			return
		}
		buf := gpu.HostAlloc(16)
		if err := f.Protect(1, buf); err != nil {
			t.Error(err)
			return
		}
		iter, recovered, err := f.Snapshot(0)
		if err != nil {
			t.Error(err)
			return
		}
		if !recovered || iter != 7 {
			t.Errorf("recovered=%v iter=%d, want true, 7", recovered, iter)
			return
		}
		want := append(append([]byte(nil), payload...), byte('0'+r.Rank()))
		if !bytes.Equal(buf.Data()[:len(want)], want) {
			t.Errorf("rank %d recovered %q want %q", r.Rank(), buf.Data()[:len(want)], want)
		}
		f.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestL2SurvivesNodeLoss(t *testing.T) {
	_, w, st := harness(t, 4, 4)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 4}, r, nil, st)
		buf := gpu.HostAlloc(32)
		for i := range buf.Data() {
			buf.Data()[i] = byte(r.Rank()*10 + i%10)
		}
		_ = f.Protect(1, buf)
		if err := f.CheckpointAt(3, L2); err != nil {
			t.Error(err)
		}
		f.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 (rank 1) dies: its L1 files vanish; its partner (rank 2) holds
	// the L2 copy.
	st.FailNode(1)
	eng2 := sim.NewEngine()
	st.Rebind(eng2)
	w2, _ := mpi.NewWorld(eng2, mpi.Config{Size: 4, RanksPerNode: 1})
	err = w2.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 4}, r, nil, st)
		buf := gpu.HostAlloc(32)
		_ = f.Protect(1, buf)
		iter, err := f.Recover()
		if err != nil {
			t.Errorf("rank %d recover: %v", r.Rank(), err)
			return
		}
		if iter != 3 {
			t.Errorf("iter: got %d want 3", iter)
		}
		for i := range buf.Data() {
			if buf.Data()[i] != byte(r.Rank()*10+i%10) {
				t.Errorf("rank %d: corrupted recovery at byte %d", r.Rank(), i)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestL3ReconstructsFromParity(t *testing.T) {
	_, w, st := harness(t, 4, 4)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 4}, r, nil, st)
		buf := gpu.HostAlloc(64)
		for i := range buf.Data() {
			buf.Data()[i] = byte((r.Rank()*37 + i*3) % 251)
		}
		_ = f.Protect(1, buf)
		if err := f.CheckpointAt(9, L3); err != nil {
			t.Error(err)
		}
		f.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 dies. Rank 3's L1 is gone AND its L2 partner copy lives on
	// rank 0's node (partner of 3 is 0)... so wipe node 0's l2 entry by
	// failing only node 3 — rank 3's L2 copy is on node 0 and survives.
	// To force the L3 path, fail node 0 instead: rank 0 loses L1, and its
	// L2 copy (held by partner rank 1... on node 1) survives. To force RS,
	// fail both the rank's node and its partner's node L2 copy is on:
	// rank 0's copy is on node 1. Fail nodes 0 and 1 → rank 0 must use L3
	// (reconstruct from ranks 2, 3 shards + parity on node 1... gone too).
	// Parity lives on node of member[1] = node 1 — also gone. So instead:
	// fail only node 2: rank 2 loses L1; its L2 copy is on node 3 (alive).
	// For a pure L3 test, delete rank 2's L1 and L2 copies directly.
	st.DropFile(2, "l1/ck1/r2/v1")
	st.DropFile(3, "l2/ck1/r2/v1")
	eng2 := sim.NewEngine()
	st.Rebind(eng2)
	w2, _ := mpi.NewWorld(eng2, mpi.Config{Size: 4, RanksPerNode: 1})
	err = w2.Run(func(r *mpi.Rank) {
		if r.Rank() != 2 {
			return
		}
		f, _ := Init(Config{GroupSize: 4}, r, nil, st)
		buf := gpu.HostAlloc(64)
		_ = f.Protect(1, buf)
		meta, ok := st.lastMeta(2)
		if !ok {
			t.Error("no meta for rank 2")
			return
		}
		fl, err := f.locateVar(meta, 1)
		if err != nil {
			t.Errorf("L3 locate: %v", err)
			return
		}
		for i := 0; i < 64; i++ {
			want := byte((2*37 + i*3) % 251)
			if fl.data[i] != want {
				t.Errorf("reconstructed byte %d: got %d want %d", i, fl.data[i], want)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestL4GlobalSurvivesEverything(t *testing.T) {
	_, w, st := harness(t, 2, 2)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 2}, r, nil, st)
		buf := gpu.HostAlloc(16)
		copy(buf.Data(), []byte("l4-data-rank-0-x"))
		_ = f.Protect(1, buf)
		if err := f.CheckpointAt(5, L4); err != nil {
			t.Error(err)
		}
		f.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	st.FailNode(0)
	st.FailNode(1)
	eng2 := sim.NewEngine()
	st.Rebind(eng2)
	w2, _ := mpi.NewWorld(eng2, mpi.Config{Size: 2, RanksPerNode: 1})
	err = w2.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 2}, r, nil, st)
		buf := gpu.HostAlloc(16)
		_ = f.Protect(1, buf)
		if _, err := f.Recover(); err != nil {
			t.Errorf("rank %d L4 recover: %v", r.Rank(), err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAndManagedCheckpoint(t *testing.T) {
	eng, w, st := harness(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		dev := gpu.New(eng, gpu.Config{})
		f, _ := Init(Config{GroupSize: 1, Method: Async}, r, dev, st)
		db, _ := dev.Malloc(1 << 20)
		mb, _ := dev.MallocManaged(1 << 20)
		for i := range mb.Data() {
			mb.Data()[i] = byte(i % 127)
		}
		// Fill device buffer through a kernel (host cannot touch it).
		dev.Launch(r.Proc(), 0.001, func() {
			d := db.DeviceData()
			for i := range d {
				d[i] = byte(i % 31)
			}
		})
		_ = f.Protect(1, db)
		_ = f.Protect(2, mb)
		if err := f.CheckpointAt(1, L1); err != nil {
			t.Error(err)
			return
		}
		// Clobber both, then recover.
		dev.Launch(r.Proc(), 0.001, func() {
			for i := range db.DeviceData() {
				db.DeviceData()[i] = 0
			}
			for i := range mb.DeviceData() {
				mb.DeviceData()[i] = 0
			}
		})
		if _, err := f.Recover(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 1<<20; i++ {
			if db.DeviceData()[i] != byte(i%31) {
				t.Errorf("device byte %d corrupt", i)
				return
			}
			if mb.Data()[i] != byte(i%127) {
				t.Errorf("managed byte %d corrupt", i)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsyncFasterThanInitial(t *testing.T) {
	const size = 4 << 30 // 4 GB phantom managed buffer
	measure := func(m Method) sim.Time {
		eng, w, _ := func() (*sim.Engine, *mpi.World, *Store) {
			eng := sim.NewEngine()
			w, _ := mpi.NewWorld(eng, mpi.Config{Size: 1})
			return eng, w, nil
		}()
		st, _ := NewStore(eng, StoreConfig{Nodes: 1, NVMeWriteGBps: 4, NVMeReadGBps: 4})
		var took sim.Time
		if err := w.Run(func(r *mpi.Rank) {
			dev := gpu.New(eng, gpu.Config{MemBytes: 8 << 30})
			f, _ := Init(Config{GroupSize: 1, Method: m}, r, dev, st)
			buf, err := dev.MallocManagedPhantom(size)
			if err != nil {
				t.Error(err)
				return
			}
			_ = f.Protect(1, buf)
			start := r.Proc().Now()
			if err := f.CheckpointAt(1, L1); err != nil {
				t.Error(err)
				return
			}
			took = r.Proc().Now() - start
		}); err != nil {
			t.Fatal(err)
		}
		return took
	}
	initial := measure(Initial)
	async := measure(Async)
	ratio := float64(initial) / float64(async)
	// Paper Sec. IV: 12.05× checkpoint-overhead reduction.
	if ratio < 9 || ratio > 15 {
		t.Fatalf("initial/async checkpoint ratio %.2f, want ≈12 (initial %v, async %v)",
			ratio, initial, async)
	}
}

func TestSnapshotSchedule(t *testing.T) {
	_, w, st := harness(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 1, CkptEvery: 3}, r, nil, st)
		buf := gpu.HostAlloc(8)
		_ = f.Protect(1, buf)
		for i := 0; i < 9; i++ {
			if _, _, err := f.Snapshot(i); err != nil {
				t.Error(err)
				return
			}
		}
		if f.Stats.Checkpoints != 3 {
			t.Errorf("checkpoints: got %d want 3 (every 3rd of 9 snapshots)", f.Stats.Checkpoints)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLevelSchedule(t *testing.T) {
	_, w, st := harness(t, 2, 2)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 2, L2Every: 2, L3Every: 4, L4Every: 8}, r, nil, st)
		want := map[int]Level{1: L1, 2: L2, 3: L1, 4: L3, 5: L1, 6: L2, 7: L1, 8: L4}
		for c := 1; c <= 8; c++ {
			if got := f.levelFor(c); got != want[c] {
				t.Errorf("level for checkpoint %d: got %v want %v", c, got, want[c])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecoverWithoutCheckpointFails(t *testing.T) {
	_, w, st := harness(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := Init(Config{GroupSize: 1}, r, nil, st)
		buf := gpu.HostAlloc(8)
		_ = f.Protect(1, buf)
		if _, err := f.Recover(); err == nil {
			t.Error("recover without checkpoint succeeded")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
