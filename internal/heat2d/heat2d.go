// Package heat2d implements the Heat2D benchmark used to evaluate the FTI
// GPU/CPU checkpoint extension (paper Sec. IV, Fig. 6): a Jacobi heat
// diffusion solver on a row-decomposed 2-D grid, one MPI rank per GPU,
// state held in UVM (managed) allocations exactly as in Listing 1, with
// halo exchange between neighbouring ranks and FTI snapshots in the main
// loop.
//
// Two modes share one code path:
//
//   - real mode: the grid holds live float64 data inside the managed
//     buffer, the kernel does the actual sweep, and checkpoint/recovery
//     correctness is verified bit-for-bit;
//   - phantom mode: buffers are size-only (terabyte-scale Fig. 6 runs),
//     kernels charge modelled time, and only the timing series is produced.
package heat2d

import (
	"encoding/binary"
	"fmt"
	"math"

	"legato/internal/fti"
	"legato/internal/gpu"
	"legato/internal/mpi"
	"legato/internal/sim"
)

// Grid is a float64 matrix view over a (managed) GPU buffer, including one
// halo row above and below the local domain.
type Grid struct {
	buf  *gpu.Buffer
	rows int // local rows + 2 halo rows
	cols int
}

// NewGrid wraps buf as a rows×cols float64 grid.
func NewGrid(buf *gpu.Buffer, rows, cols int) (*Grid, error) {
	if need := int64(rows) * int64(cols) * 8; buf.Len() < need {
		return nil, fmt.Errorf("heat2d: buffer %d bytes, grid needs %d", buf.Len(), need)
	}
	return &Grid{buf: buf, rows: rows, cols: cols}, nil
}

// At reads element (i, j).
func (g *Grid) At(i, j int) float64 {
	off := (i*g.cols + j) * 8
	return math.Float64frombits(binary.LittleEndian.Uint64(g.buf.DeviceData()[off:]))
}

// Set writes element (i, j).
func (g *Grid) Set(i, j int, v float64) {
	off := (i*g.cols + j) * 8
	binary.LittleEndian.PutUint64(g.buf.DeviceData()[off:], math.Float64bits(v))
}

// Row returns a copy of row i as float64s.
func (g *Grid) Row(i int) []float64 {
	out := make([]float64, g.cols)
	for j := 0; j < g.cols; j++ {
		out[j] = g.At(i, j)
	}
	return out
}

// SetRow writes a full row.
func (g *Grid) SetRow(i int, vals []float64) {
	for j := 0; j < g.cols && j < len(vals); j++ {
		g.Set(i, j, vals[j])
	}
}

// Params configures a Heat2D run.
type Params struct {
	// NX is the global row count, split evenly across ranks; NY is the
	// column count. Ignored in phantom mode.
	NX, NY int
	// Iters is the iteration count.
	Iters int
	// HotTemp is the fixed top-boundary temperature (default 100).
	HotTemp float64
	// FTI is the checkpoint configuration.
	FTI fti.Config
	// CkptEveryOverride, when > 0, overrides FTI.CkptEvery.
	CkptEveryOverride int
	// Phantom switches to size-only buffers of PhantomBytesPerRank each
	// (two buffers per rank, matching h and g of Listing 1).
	Phantom bool
	// PhantomBytesPerRank is the per-buffer size in phantom mode.
	PhantomBytesPerRank int64
	// KernelGOPS is the per-iteration kernel cost in phantom mode.
	KernelGOPS float64
	// FailAtIter, when > 0, makes every rank stop (simulated crash) after
	// completing that iteration.
	FailAtIter int
	// GPU is the device configuration (one device per rank).
	GPU gpu.Config
}

// RankResult is one rank's outcome.
type RankResult struct {
	Rank      int
	Stats     fti.Stats
	Recovered bool
	// Checksum summarises the final grid (real mode only).
	Checksum float64
	// IterDone is the last completed iteration.
	IterDone int
}

// Run executes Heat2D across the given world, one GPU per rank, using the
// shared store for checkpoints. It returns per-rank results indexed by rank.
func Run(eng *sim.Engine, world *mpi.World, store *fti.Store, p Params) ([]RankResult, error) {
	if p.HotTemp == 0 {
		p.HotTemp = 100
	}
	if p.CkptEveryOverride > 0 {
		p.FTI.CkptEvery = p.CkptEveryOverride
	}
	results := make([]RankResult, world.Size())
	errs := make([]error, world.Size())
	runErr := world.Run(func(r *mpi.Rank) {
		res, err := runRank(eng, r, store, p)
		results[r.Rank()] = res
		errs[r.Rank()] = err
	})
	if runErr != nil {
		return results, runErr
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

func runRank(eng *sim.Engine, r *mpi.Rank, store *fti.Store, p Params) (RankResult, error) {
	res := RankResult{Rank: r.Rank()}
	dev := gpu.New(eng, p.GPU)

	var h, g *gpu.Buffer
	var hg, gg *Grid
	var localRows, cols int
	var err error
	if p.Phantom {
		h, err = dev.MallocManagedPhantom(p.PhantomBytesPerRank)
		if err != nil {
			return res, err
		}
		g, err = dev.MallocManagedPhantom(p.PhantomBytesPerRank)
		if err != nil {
			return res, err
		}
	} else {
		if p.NX%r.Size() != 0 {
			return res, fmt.Errorf("heat2d: NX=%d not divisible by %d ranks", p.NX, r.Size())
		}
		localRows = p.NX / r.Size()
		cols = p.NY
		bytes := int64(localRows+2) * int64(cols) * 8
		if h, err = dev.MallocManaged(bytes); err != nil {
			return res, err
		}
		if g, err = dev.MallocManaged(bytes); err != nil {
			return res, err
		}
		if hg, err = NewGrid(h, localRows+2, cols); err != nil {
			return res, err
		}
		if gg, err = NewGrid(g, localRows+2, cols); err != nil {
			return res, err
		}
		initData(r, hg, p.HotTemp)
		initData(r, gg, p.HotTemp)
	}

	// FTI_Init / FTI_Protect, as in Listing 1.
	f, err := fti.Init(p.FTI, r, dev, store)
	if err != nil {
		return res, err
	}
	iter := 0
	if err := f.ProtectCounter(0, &iter); err != nil {
		return res, err
	}
	if err := f.Protect(1, h); err != nil {
		return res, err
	}
	if err := f.Protect(2, g); err != nil {
		return res, err
	}

	for iter = 0; iter < p.Iters; iter++ {
		resume, recovered, err := f.Snapshot(iter)
		if err != nil {
			return res, err
		}
		if recovered {
			iter = resume
			res.Recovered = true
			// Buffer roles alternate each iteration; realign after restart
			// so the restored "current" buffer is the sweep source again.
			if iter%2 == 1 {
				hg, gg = gg, hg
				h, g = g, h
			}
		}
		if err := step(r, dev, p, hg, gg, localRows, cols); err != nil {
			return res, err
		}
		hg, gg = gg, hg
		h, g = g, h
		res.IterDone = iter
		if p.FailAtIter > 0 && iter == p.FailAtIter {
			// Simulated crash: leave without Finalize. The store keeps the
			// committed checkpoints; a subsequent Run restarts from them.
			res.Stats = f.Stats
			return res, nil
		}
	}
	f.Finalize()
	if !p.Phantom {
		res.Checksum = checksum(hg, localRows, cols)
	}
	res.Stats = f.Stats
	return res, nil
}

// initData sets the initial condition: top boundary of the global domain
// held at HotTemp, everything else cold (matching the canonical Heat2D
// setup — initData of Listing 1, line 11).
func initData(r *mpi.Rank, g *Grid, hot float64) {
	for i := 0; i < g.rows; i++ {
		for j := 0; j < g.cols; j++ {
			g.Set(i, j, 0)
		}
	}
	if r.Rank() == 0 {
		for j := 0; j < g.cols; j++ {
			g.Set(1, j, hot) // first real row of the global top block
		}
	}
}

// step performs one iteration: halo exchange then the Jacobi sweep (the
// performComputations of Listing 1, line 17).
func step(r *mpi.Rank, dev *gpu.Device, p Params, src, dst *Grid, localRows, cols int) error {
	const (
		tagDown = 100
		tagUp   = 101
	)
	up, down := r.Rank()-1, r.Rank()+1

	if p.Phantom {
		// Halo rows are modelled only by size.
		haloBytes := int64(1 << 20)
		if down < r.Size() {
			r.ISend(down, tagDown, nil, haloBytes)
		}
		if up >= 0 {
			r.ISend(up, tagUp, nil, haloBytes)
		}
		if up >= 0 {
			r.Recv(up, tagDown)
		}
		if down < r.Size() {
			r.Recv(down, tagUp)
		}
		dev.Launch(r.Proc(), p.KernelGOPS, nil)
		return nil
	}

	// Send my boundary rows, receive neighbours' into halo rows.
	if down < r.Size() {
		r.ISend(down, tagDown, src.Row(localRows), int64(8*cols))
	}
	if up >= 0 {
		r.ISend(up, tagUp, src.Row(1), int64(8*cols))
	}
	if up >= 0 {
		src.SetRow(0, r.Recv(up, tagDown).([]float64))
	}
	if down < r.Size() {
		src.SetRow(localRows+1, r.Recv(down, tagUp).([]float64))
	}

	// Jacobi sweep as a kernel; cost model scales with the grid.
	gops := float64(localRows*cols) * 5e-9 // 5 flops per cell
	dev.Launch(r.Proc(), gops, func() {
		for i := 1; i <= localRows; i++ {
			for j := 0; j < cols; j++ {
				left, right := j-1, j+1
				var l, rt float64
				if left >= 0 {
					l = src.At(i, left)
				}
				if right < cols {
					rt = src.At(i, right)
				}
				v := 0.25 * (src.At(i-1, j) + src.At(i+1, j) + l + rt)
				dst.Set(i, j, v)
			}
		}
		// Fixed boundary: rank 0's first row stays hot.
		if r.Rank() == 0 {
			for j := 0; j < cols; j++ {
				dst.Set(1, j, p.HotTemp)
			}
		}
	})
	return nil
}

// checksum folds the local domain into one number for cross-run comparison.
func checksum(g *Grid, localRows, cols int) float64 {
	s := 0.0
	for i := 1; i <= localRows; i++ {
		for j := 0; j < cols; j++ {
			s += g.At(i, j) * float64(i*31+j)
		}
	}
	return s
}

// Reference computes the same global sweep serially (single domain, no
// decomposition) and returns the per-rank checksums it implies; used to
// validate the distributed solver.
func Reference(nx, ny, iters, ranks int, hot float64) []float64 {
	cur := make([][]float64, nx)
	next := make([][]float64, nx)
	for i := range cur {
		cur[i] = make([]float64, ny)
		next[i] = make([]float64, ny)
	}
	for j := 0; j < ny; j++ {
		cur[0][j] = hot
	}
	at := func(g [][]float64, i, j int) float64 {
		if i < 0 || i >= nx || j < 0 || j >= ny {
			return 0
		}
		return g[i][j]
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				next[i][j] = 0.25 * (at(cur, i-1, j) + at(cur, i+1, j) + at(cur, i, j-1) + at(cur, i, j+1))
			}
		}
		for j := 0; j < ny; j++ {
			next[0][j] = hot
		}
		cur, next = next, cur
	}
	local := nx / ranks
	sums := make([]float64, ranks)
	for rank := 0; rank < ranks; rank++ {
		s := 0.0
		for i := 0; i < local; i++ {
			for j := 0; j < ny; j++ {
				s += cur[rank*local+i][j] * float64((i+1)*31+j)
			}
		}
		sums[rank] = s
	}
	return sums
}
