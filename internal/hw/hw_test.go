package hw

import (
	"math"
	"testing"

	"legato/internal/sim"
)

func TestDevicePowerModel(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "cpu0", XeonD())
	if p := d.Meter().Power(); p != 25 {
		t.Fatalf("idle power: got %v want 25", p)
	}
	if err := d.Acquire(16); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if p := d.Meter().Power(); math.Abs(p-90) > 1e-9 {
		t.Fatalf("full-load power: got %v want 90", p)
	}
	d.Release(16)
	if p := d.Meter().Power(); p != 25 {
		t.Fatalf("power after release: got %v", p)
	}
}

func TestDevicePartialUtilization(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "cpu0", XeonD())
	if err := d.Acquire(8); err != nil {
		t.Fatal(err)
	}
	// Half the cores busy: idle + half the dynamic range.
	want := 25 + (90-25)*0.5
	if p := d.Meter().Power(); math.Abs(p-want) > 1e-9 {
		t.Fatalf("half-load power: got %v want %v", p, want)
	}
}

func TestDeviceOverAcquire(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "a", ARMv8Server())
	if err := d.Acquire(9); err == nil {
		t.Fatal("acquiring more cores than exist should fail")
	}
	if err := d.Acquire(8); err != nil {
		t.Fatal(err)
	}
	if err := d.Acquire(1); err == nil {
		t.Fatal("acquiring a busy device's extra core should fail")
	}
}

func TestDeviceDVFSScaling(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "cpu0", XeonD())
	nominalTime := d.ExecTime(100, 16)
	if err := d.SetState(2); err != nil { // low: 0.8 GHz vs 2.1 GHz nominal
		t.Fatal(err)
	}
	lowTime := d.ExecTime(100, 16)
	ratio := float64(lowTime) / float64(nominalTime)
	if math.Abs(ratio-2.1/0.8) > 1e-6 {
		t.Fatalf("DVFS slowdown: got ratio %v want %v", ratio, 2.1/0.8)
	}
	// Dynamic power scales as f·V²: at (0.8/2.1)·(0.75)² ≈ 0.214 of nominal.
	if err := d.Acquire(16); err != nil {
		t.Fatal(err)
	}
	scale := (0.8 / 2.1) * 0.75 * 0.75
	want := 25 + (90-25)*scale
	if p := d.Meter().Power(); math.Abs(p-want) > 1e-9 {
		t.Fatalf("DVFS power: got %v want %v", p, want)
	}
}

func TestDeviceDVFSBadState(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "cpu0", XeonD())
	if err := d.SetState(99); err == nil {
		t.Fatal("invalid DVFS state accepted")
	}
}

func TestDeviceFailRepair(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "g", GTX1080())
	d.Fail()
	if d.Healthy() {
		t.Fatal("device still healthy after Fail")
	}
	if err := d.Acquire(1); err == nil {
		t.Fatal("failed device accepted work")
	}
	if p := d.Meter().Power(); p != 0 {
		t.Fatalf("failed device draws %v W", p)
	}
	d.Repair()
	if !d.Healthy() || d.Meter().Power() != 12 {
		t.Fatalf("repair did not restore idle state: healthy=%v p=%v", d.Healthy(), d.Meter().Power())
	}
}

func TestExecTimeScalesWithCores(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "cpu", XeonD())
	t1 := d.ExecTime(100, 1)
	t16 := d.ExecTime(100, 16)
	if t1 != 16*t16 {
		t.Fatalf("core scaling: 1-core %v, 16-core %v", t1, t16)
	}
}

func TestEnergyForMatchesMeterIntegration(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, "cpu", XeonD())
	gops := 50.0
	estimate := d.EnergyFor(gops, 16)
	// Run it "for real": acquire all cores for the exec time.
	start := d.Meter().Energy()
	if err := d.Acquire(16); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(d.ExecTime(gops, 16), func() { d.Release(16) })
	eng.Run()
	measured := d.Meter().Energy() - start
	idle := 25 * sim.ToSeconds(d.ExecTime(gops, 16))
	if math.Abs((measured-idle)-estimate) > 1e-9 {
		t.Fatalf("dynamic energy: estimate %v, measured %v", estimate, measured-idle)
	}
}

func TestRECSBoxTopology(t *testing.T) {
	eng := sim.NewEngine()
	b, err := StandardCloudBox(eng, "recs0")
	if err != nil {
		t.Fatalf("standard box: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if n := b.CountMicroservers(); n != 15 {
		t.Fatalf("standard box population: got %d want 15", n)
	}
	if got := len(b.Microservers()); got != 15 {
		t.Fatalf("microserver list: %d", got)
	}
	if b.TotalPower() <= 0 {
		t.Fatal("idle chassis should still draw power")
	}
}

func TestRECSBoxCarrierCompatibility(t *testing.T) {
	eng := sim.NewEngine()
	b := NewRECSBox(eng, "r")
	lp, _ := b.AddCarrier(LowPowerCarrier)
	if _, err := b.Populate(lp, XeonD()); err == nil {
		t.Fatal("x86 COM Express must not fit a low-power carrier")
	}
	if _, err := b.Populate(lp, JetsonTX2()); err != nil {
		t.Fatalf("Jetson should fit a low-power carrier: %v", err)
	}
	hp, _ := b.AddCarrier(HighPerfCarrier)
	if _, err := b.Populate(hp, JetsonTX2()); err == nil {
		t.Fatal("GPU SoC must not fit a high-performance carrier")
	}
	if _, err := b.Populate(hp, ARMv8Server()); err != nil {
		t.Fatalf("ARMv8 should fit a high-performance carrier: %v", err)
	}
}

func TestRECSBoxCapacityLimits(t *testing.T) {
	eng := sim.NewEngine()
	b := NewRECSBox(eng, "r")
	for i := 0; i < MaxCarriers; i++ {
		if _, err := b.AddCarrier(LowPowerCarrier); err != nil {
			t.Fatalf("carrier %d: %v", i, err)
		}
	}
	if _, err := b.AddCarrier(LowPowerCarrier); err == nil {
		t.Fatal("backplane over-population accepted")
	}
	// 15 low-power carriers could hold 240 sites, but the chassis caps at 144.
	count := 0
	for _, c := range b.Carriers {
		for s := 0; s < c.Class.Sites(); s++ {
			if _, err := b.Populate(c, ApalisARM()); err != nil {
				if count != MaxMicroservers {
					t.Fatalf("population stopped at %d: %v", count, err)
				}
				return
			}
			count++
		}
	}
	t.Fatalf("chassis accepted %d microservers without hitting the %d cap", count, MaxMicroservers)
}

func TestCarrierFull(t *testing.T) {
	eng := sim.NewEngine()
	b := NewRECSBox(eng, "r")
	hp, _ := b.AddCarrier(HighPerfCarrier)
	for i := 0; i < 3; i++ {
		if _, err := b.Populate(hp, XeonD()); err != nil {
			t.Fatalf("site %d: %v", i, err)
		}
	}
	if _, err := b.Populate(hp, XeonD()); err == nil {
		t.Fatal("4th module on a 3-site carrier accepted")
	}
}

func TestEdgeServerFig9(t *testing.T) {
	eng := sim.NewEngine()
	s, err := MirrorEdgeCPUGPUFPGA(eng, "edge0")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Modules) != 3 {
		t.Fatalf("modules: %d", len(s.Modules))
	}
	if s.ByClass(FPGA) == nil || s.ByClass(GPU) == nil || s.ByClass(CPUARM) == nil {
		t.Fatal("expected CPU+GPU+FPGA composition")
	}
	if _, err := s.AddModule(JetsonTX2()); err == nil {
		t.Fatal("edge enclosure accepted a 4th module")
	}
	if s.TotalPower() <= 0 {
		t.Fatal("edge idle power should be positive")
	}
}

func TestWorkstationPowerEnvelope(t *testing.T) {
	eng := sim.NewEngine()
	w := NewMirrorWorkstation(eng, "ws")
	// Full load: host + both GPUs busy.
	if err := w.Host.Acquire(w.Host.Spec.Cores); err != nil {
		t.Fatal(err)
	}
	for _, g := range w.GPUs {
		if err := g.Acquire(g.Spec.Cores); err != nil {
			t.Fatal(err)
		}
	}
	p := w.TotalPower()
	// Paper Sec. VI: ~400 W for the detection pipeline on this box.
	if p < 350 || p > 450 {
		t.Fatalf("workstation full-load power %v W outside the 400 W envelope", p)
	}
}

func TestClassAndCarrierStrings(t *testing.T) {
	for _, c := range []Class{CPUx86, CPUARM, GPU, FPGA, DFE} {
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
	for _, c := range []CarrierClass{LowPowerCarrier, HighPerfCarrier, PCIeExpansionCarrier} {
		if c.String() == "" || c.Sites() == 0 {
			t.Fatalf("carrier class %v misconfigured", c)
		}
	}
}
