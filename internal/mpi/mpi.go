// Package mpi is an in-process message-passing runtime in the style of the
// MPI subset that FTI and the Heat2D workload use (paper Sec. IV, Listing 1):
// ranks, point-to-point Send/Recv with tags, Barrier, Allreduce and Gather.
// Ranks execute as simulated processes (internal/sim) so communication and
// I/O costs accrue in virtual time, and payloads are real Go values so
// checkpoint/recovery correctness is testable end to end.
package mpi

import (
	"fmt"

	"legato/internal/sim"
)

// World describes a launched job: the engine, rank count, and the network
// cost model connecting the ranks.
type World struct {
	eng  *sim.Engine
	size int

	// nodeOf maps a rank to its node; ranks on the same node communicate
	// over shared memory (fast), others over the interconnect.
	nodeOf []int

	ranks []*Rank

	// Interconnect parameters.
	netBytesPerSec   float64
	netLatency       sim.Time
	shmBytesPerSec   float64
	shmLatency       sim.Time
	perRankNICShared bool
}

// Config parametrises a World.
type Config struct {
	// Size is the number of ranks; must be positive.
	Size int
	// RanksPerNode groups consecutive ranks onto nodes (default: all ranks
	// on distinct nodes).
	RanksPerNode int
	// NetBytesPerSec is the interconnect bandwidth per rank NIC
	// (default 10 GB/s — 40GbE-class with protocol overhead plus RDMA).
	NetBytesPerSec float64
	// NetLatency is the per-message interconnect latency (default 5 µs).
	NetLatency sim.Time
	// ShmBytesPerSec is the intra-node (shared-memory) bandwidth
	// (default 20 GB/s).
	ShmBytesPerSec float64
	// ShmLatency is the intra-node per-message latency (default 500 ns).
	ShmLatency sim.Time
}

// NewWorld creates a world of cfg.Size ranks on eng.
func NewWorld(eng *sim.Engine, cfg Config) (*World, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", cfg.Size)
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = 1
	}
	if cfg.NetBytesPerSec == 0 {
		cfg.NetBytesPerSec = 10e9
	}
	if cfg.NetLatency == 0 {
		cfg.NetLatency = 5 * sim.Microsecond
	}
	if cfg.ShmBytesPerSec == 0 {
		cfg.ShmBytesPerSec = 20e9
	}
	if cfg.ShmLatency == 0 {
		cfg.ShmLatency = 500 * sim.Nanosecond
	}
	w := &World{
		eng:            eng,
		size:           cfg.Size,
		nodeOf:         make([]int, cfg.Size),
		netBytesPerSec: cfg.NetBytesPerSec,
		netLatency:     cfg.NetLatency,
		shmBytesPerSec: cfg.ShmBytesPerSec,
		shmLatency:     cfg.ShmLatency,
	}
	for r := 0; r < cfg.Size; r++ {
		w.nodeOf[r] = r / cfg.RanksPerNode
	}
	for r := 0; r < cfg.Size; r++ {
		w.ranks = append(w.ranks, &Rank{
			world: w,
			rank:  r,
			nic:   sim.NewPipe(eng, cfg.NetBytesPerSec, 0),
			boxes: make(map[msgKey]*sim.Mailbox),
		})
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// NodeOf returns the node index hosting rank r.
func (w *World) NodeOf(r int) int { return w.nodeOf[r] }

// Nodes returns the number of distinct nodes.
func (w *World) Nodes() int {
	if w.size == 0 {
		return 0
	}
	return w.nodeOf[w.size-1] + 1
}

// ErrDeadlock reports ranks still blocked after the event queue drained.
var ErrDeadlock = fmt.Errorf("mpi: ranks deadlocked (blocked with no pending events)")

// Run launches body on every rank and drives the simulation to completion.
// It returns ErrDeadlock if any rank remains blocked at the end.
func (w *World) Run(body func(*Rank)) error {
	barrier := sim.NewBarrier(w.eng, w.size)
	for _, r := range w.ranks {
		r := r
		r.barrier = barrier
		w.eng.Go(fmt.Sprintf("rank%d", r.rank), func(p *sim.Proc) {
			r.proc = p
			body(r)
		})
	}
	w.eng.Run()
	if w.eng.ActiveProcs() != 0 {
		return ErrDeadlock
	}
	return nil
}

// msgKey matches messages by sender and tag, as in MPI point-to-point.
type msgKey struct {
	src, tag int
}

// message carries a payload and its modelled size.
type message struct {
	payload any
	bytes   int64
}

// Rank is one process in the world. Its methods must only be called from
// inside the body function passed to Run (i.e. from its own proc).
type Rank struct {
	world   *World
	rank    int
	proc    *sim.Proc
	nic     *sim.Pipe
	boxes   map[msgKey]*sim.Mailbox
	barrier *sim.Barrier

	// BytesSent accumulates traffic for reporting.
	BytesSent int64
}

// Rank returns this rank's index.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// Proc exposes the underlying simulated process (for Sleep, Await etc.).
func (r *Rank) Proc() *sim.Proc { return r.proc }

// World returns the owning world.
func (r *Rank) World() *World { return r.world }

func (r *Rank) box(src, tag int) *sim.Mailbox {
	k := msgKey{src: src, tag: tag}
	b, ok := r.boxes[k]
	if !ok {
		b = sim.NewMailbox(r.world.eng)
		r.boxes[k] = b
	}
	return b
}

// transferTime models the wire time between two ranks for size bytes.
func (w *World) transferTime(src, dst int, size int64) sim.Time {
	if w.nodeOf[src] == w.nodeOf[dst] {
		return w.shmLatency + sim.Seconds(float64(size)/w.shmBytesPerSec)
	}
	return w.netLatency + sim.Seconds(float64(size)/w.netBytesPerSec)
}

// Send delivers payload to rank dst with the given tag, blocking the caller
// until the message has been transferred onto the destination queue. size
// is the modelled byte count (use SizeOfFloat64s and friends).
func (r *Rank) Send(dst, tag int, payload any, size int64) {
	if dst < 0 || dst >= r.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	r.BytesSent += size
	t := r.world.transferTime(r.rank, dst, size)
	target := r.world.ranks[dst]
	src := r.rank
	r.proc.Await(func(done func()) {
		// The sender's NIC serialises outgoing messages.
		r.nic.Transfer(0, func() {
			r.world.eng.Schedule(t, func() {
				target.box(src, tag).Put(message{payload: payload, bytes: size})
				done()
			})
		})
	})
}

// ISend is the non-blocking variant: the message is queued for delivery and
// the call returns immediately (the wire time still elapses before the
// receiver can match it).
func (r *Rank) ISend(dst, tag int, payload any, size int64) {
	if dst < 0 || dst >= r.world.size {
		panic(fmt.Sprintf("mpi: isend to invalid rank %d", dst))
	}
	r.BytesSent += size
	t := r.world.transferTime(r.rank, dst, size)
	target := r.world.ranks[dst]
	src := r.rank
	r.nic.Transfer(0, func() {
		r.world.eng.Schedule(t, func() {
			target.box(src, tag).Put(message{payload: payload, bytes: size})
		})
	})
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
func (r *Rank) Recv(src, tag int) any {
	if src < 0 || src >= r.world.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", src))
	}
	msg := r.box(src, tag).Get(r.proc).(message)
	return msg.payload
}

// Sendrecv posts a non-blocking send to dst and then receives from src —
// the deadlock-free halo-exchange idiom.
func (r *Rank) Sendrecv(dst, sendTag int, payload any, size int64, src, recvTag int) any {
	r.ISend(dst, sendTag, payload, size)
	return r.Recv(src, recvTag)
}

// Barrier blocks until every rank in the world has entered it.
func (r *Rank) Barrier() { r.barrier.Wait(r.proc) }

// internal tag space for collectives, above user tags.
const collectiveTag = 1 << 20

// Allreduce combines one float64 per rank with op and returns the result on
// every rank. Implemented as gather-to-root plus broadcast.
func (r *Rank) Allreduce(x float64, op func(a, b float64) float64) float64 {
	const tag = collectiveTag
	if r.rank == 0 {
		acc := x
		for src := 1; src < r.world.size; src++ {
			acc = op(acc, r.Recv(src, tag).(float64))
		}
		for dst := 1; dst < r.world.size; dst++ {
			r.ISend(dst, tag+1, acc, 8)
		}
		return acc
	}
	r.Send(0, tag, x, 8)
	return r.Recv(0, tag+1).(float64)
}

// Gather collects each rank's payload at root (returned in rank order on
// root; nil elsewhere).
func (r *Rank) Gather(root int, payload any, size int64) []any {
	const tag = collectiveTag + 2
	if r.rank == root {
		out := make([]any, r.world.size)
		out[root] = payload
		for src := 0; src < r.world.size; src++ {
			if src == root {
				continue
			}
			out[src] = r.Recv(src, tag)
		}
		return out
	}
	r.Send(root, tag, payload, size)
	return nil
}

// Bcast distributes root's payload to every rank and returns it.
func (r *Rank) Bcast(root int, payload any, size int64) any {
	const tag = collectiveTag + 3
	if r.rank == root {
		for dst := 0; dst < r.world.size; dst++ {
			if dst != root {
				r.ISend(dst, tag, payload, size)
			}
		}
		return payload
	}
	return r.Recv(root, tag)
}

// SizeOfFloat64s returns the modelled wire size of a float64 slice.
func SizeOfFloat64s(xs []float64) int64 { return int64(8 * len(xs)) }

// SizeOfBytes returns the modelled wire size of a byte slice.
func SizeOfBytes(bs []byte) int64 { return int64(len(bs)) }
