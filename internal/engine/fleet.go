package engine

import (
	"fmt"
	"sync"

	"legato/internal/hw"
	"legato/internal/power"
)

// Fleet is the shared per-device admission ledger: the one source of truth
// for how many cores of each physical device are occupied across all
// concurrently executing jobs. Each job schedules against its own platform
// mirror (same device IDs, private virtual clock); the ledger is what
// keeps the union of their placements feasible on the real fleet — a
// TryAcquire that would oversubscribe a device fails, and the job parks
// until a sibling releases capacity.
//
// Fleet implements taskrt.Admission and is safe for concurrent use.
type Fleet struct {
	mu     sync.Mutex
	cap    map[string]int
	free   map[string]int
	peak   map[string]int  // high-water mark of in-use cores, per device
	lost   map[string]bool // devices failed mid-session
	gen    chan struct{}   // closed and replaced on every Release
	stalls uint64          // failed admission attempts (contention signal)
	power  *power.Ledger   // coupled watt ledger (optional)
}

// NewFleet builds a ledger from the reference devices; capacity is each
// device's core count.
func NewFleet(devices []*hw.Device) *Fleet {
	f := &Fleet{
		cap:  make(map[string]int, len(devices)),
		free: make(map[string]int, len(devices)),
		peak: make(map[string]int, len(devices)),
		lost: make(map[string]bool),
		gen:  make(chan struct{}),
	}
	for _, d := range devices {
		f.cap[d.ID] = d.Spec.Cores
		f.free[d.ID] = d.Spec.Cores
	}
	return f
}

// AttachPower couples the watt ledger to the core ledger: fleet events
// (Fail) are forwarded so the power ledger stops charging a lost device's
// static draw and releases its outstanding dynamic grants the moment the
// core ledger zeroes its capacity.
func (f *Fleet) AttachPower(l *power.Ledger) {
	f.mu.Lock()
	f.power = l
	f.mu.Unlock()
}

// TryAcquire claims cores on a device; it fails (without blocking) when
// the remaining capacity is insufficient or the device is unknown.
func (f *Fleet) TryAcquire(deviceID string, cores int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	free, ok := f.free[deviceID]
	if !ok || free < cores {
		f.stalls++
		return false
	}
	f.free[deviceID] = free - cores
	if used := f.cap[deviceID] - f.free[deviceID]; used > f.peak[deviceID] {
		f.peak[deviceID] = used
	}
	return true
}

// Release returns cores to a device and wakes every parked job.
func (f *Fleet) Release(deviceID string, cores int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.free[deviceID] += cores
	if f.free[deviceID] > f.cap[deviceID] {
		panic(fmt.Sprintf("engine: fleet over-release on %s (%d free of %d)",
			deviceID, f.free[deviceID], f.cap[deviceID]))
	}
	close(f.gen)
	f.gen = make(chan struct{})
}

// Changed returns a channel closed on the next Release after this call.
func (f *Fleet) Changed() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// SetCapacity rescales a device's capacity mid-session (a degrade event —
// e.g. thermal throttling or partial failure). Grants already out may
// exceed the new capacity; the free count then goes negative (a deficit)
// and subsequent Releases pay it down before new admissions succeed. The
// peak high-water mark is clamped to the new capacity, so the invariant
// Peak(id) ≤ Capacity(id) reads against the *current* capacity. Every
// parked job is woken so it can re-evaluate placement. Unknown devices are
// ignored.
func (f *Fleet) SetCapacity(deviceID string, cores int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	old, ok := f.cap[deviceID]
	if !ok {
		return
	}
	if cores < 0 {
		cores = 0
	}
	used := old - f.free[deviceID]
	f.cap[deviceID] = cores
	f.free[deviceID] = cores - used
	if f.peak[deviceID] > cores {
		f.peak[deviceID] = cores
	}
	close(f.gen)
	f.gen = make(chan struct{})
}

// Fail removes a device from the fleet entirely: capacity drops to zero
// (outstanding grants become a deficit that revocations pay back) and the
// device is marked lost. Jobs parked on admission are woken so the loss is
// never missed, and new jobs that still fit the surviving fleet keep being
// admitted — graceful degradation, not session abort.
func (f *Fleet) Fail(deviceID string) {
	f.mu.Lock()
	alreadyLost := f.lost[deviceID]
	f.lost[deviceID] = true
	pw := f.power
	f.mu.Unlock()
	if alreadyLost {
		return
	}
	f.SetCapacity(deviceID, 0)
	if pw != nil {
		pw.DeviceLost(deviceID)
	}
}

// Lost reports whether a device was failed mid-session.
func (f *Fleet) Lost(deviceID string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lost[deviceID]
}

// Devices returns the IDs of every device the ledger tracks, including
// lost ones.
func (f *Fleet) Devices() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.cap))
	for id := range f.cap {
		ids = append(ids, id)
	}
	return ids
}

// Capacity returns a device's total cores (zero if unknown).
func (f *Fleet) Capacity(deviceID string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cap[deviceID]
}

// InUse returns a device's currently occupied cores.
func (f *Fleet) InUse(deviceID string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cap[deviceID] - f.free[deviceID]
}

// Peak returns the high-water mark of occupied cores on a device — the
// oversubscription witness: it can never exceed Capacity.
func (f *Fleet) Peak(deviceID string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.peak[deviceID]
}

// Stalls counts failed admission attempts across all devices.
func (f *Fleet) Stalls() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stalls
}
