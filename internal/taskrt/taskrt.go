// Package taskrt implements the OmpSs-style task runtime of the LEGaTO
// stack (paper Sec. II-C): tasks declare in/out/inout dependences on data
// regions, the runtime derives the task graph from program order, and a
// scheduler places ready tasks on the heterogeneous devices (SMP cores,
// GPUs, FPGAs) that the hw layer models — optimising for time, energy, or
// energy-delay product, which is how the task abstraction "maximises
// optimisation opportunities for low-energy computing" (Sec. I).
package taskrt

import (
	"fmt"
	"sort"

	"legato/internal/energy"
	"legato/internal/hw"
	"legato/internal/sim"
)

// Data is a named data region tasks depend on.
type Data struct {
	Name string
	Size int64

	lastWriter *node
	readers    []*node
	version    int
}

// Dep is a dependence declaration.
type Dep int

const (
	// In: the task reads the region.
	In Dep = iota
	// Out: the task overwrites the region.
	Out
	// InOut: the task reads and writes the region.
	InOut
)

// Task is one unit of work.
type Task struct {
	Name string
	// Gops is the task's computational cost in giga-operations.
	Gops float64
	// Cores is the requested parallel width on the chosen device
	// (default 1).
	Cores int
	// Targets lists acceptable device classes in preference order; empty
	// means any device.
	Targets []hw.Class
	// In, Out, InOut declare data dependences.
	In, Out, InOut []*Data
	// Priority breaks ties in the ready queue (higher first).
	Priority int
	// Critical marks the task reliability-critical (selective replication,
	// paper Sec. I: "only the most reliability-critical tasks will be
	// replicated").
	Critical bool
	// Fn runs at completion time (simulated); may be nil.
	Fn func()
}

// node is a submitted task with graph state.
type node struct {
	task    Task
	id      int
	deps    int     // unsatisfied predecessor count
	succ    []*node // successors
	done    bool
	started bool

	record Record
}

// Record is the execution trace of one task.
type Record struct {
	ID       int
	Name     string
	Device   string
	Class    hw.Class
	Start    sim.Time
	End      sim.Time
	EnergyJ  energy.Joules
	Critical bool
}

// Policy selects the placement objective.
type Policy int

const (
	// MinTime places each ready task on the device finishing it soonest.
	MinTime Policy = iota
	// MinEnergy places on the device with the lowest dynamic energy.
	MinEnergy
	// MinEDP minimises energy × delay.
	MinEDP
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case MinTime:
		return "min-time"
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-edp"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Runtime is one task-graph execution context.
type Runtime struct {
	eng     *sim.Engine
	devices []*hw.Device
	policy  Policy

	nodes  []*node
	ready  []*node
	nextID int
	inDAG  int // submitted, not finished
}

// New creates a runtime over the given devices.
func New(eng *sim.Engine, devices []*hw.Device, policy Policy) *Runtime {
	return &Runtime{eng: eng, devices: devices, policy: policy}
}

// Data declares a data region.
func (r *Runtime) Data(name string, size int64) *Data {
	return &Data{Name: name, Size: size}
}

// Submit adds a task, wiring dependences against earlier submissions
// (program order), exactly like OmpSs #pragma omp task in/out clauses.
func (r *Runtime) Submit(t Task) error {
	if t.Cores <= 0 {
		t.Cores = 1
	}
	if t.Gops < 0 {
		return fmt.Errorf("taskrt: task %q has negative cost", t.Name)
	}
	n := &node{task: t, id: r.nextID}
	r.nextID++
	n.record = Record{ID: n.id, Name: t.Name, Critical: t.Critical}

	addEdge := func(from *node) {
		if from == nil || from.done {
			return
		}
		from.succ = append(from.succ, n)
		n.deps++
	}
	for _, d := range t.In {
		addEdge(d.lastWriter)
		d.readers = append(d.readers, n)
	}
	for _, d := range t.InOut {
		addEdge(d.lastWriter)
		for _, rd := range d.readers {
			if rd != n {
				addEdge(rd)
			}
		}
		d.lastWriter = n
		d.readers = d.readers[:0]
		d.version++
	}
	for _, d := range t.Out {
		// Output and anti dependences: wait for previous writer and readers
		// (no renaming in this runtime).
		addEdge(d.lastWriter)
		for _, rd := range d.readers {
			if rd != n {
				addEdge(rd)
			}
		}
		d.lastWriter = n
		d.readers = d.readers[:0]
		d.version++
	}

	r.nodes = append(r.nodes, n)
	r.inDAG++
	if n.deps == 0 {
		r.enqueue(n)
	}
	return nil
}

// enqueue adds a ready node, keeping the queue priority-sorted.
func (r *Runtime) enqueue(n *node) {
	r.ready = append(r.ready, n)
	sort.SliceStable(r.ready, func(i, j int) bool {
		if r.ready[i].task.Priority != r.ready[j].task.Priority {
			return r.ready[i].task.Priority > r.ready[j].task.Priority
		}
		return r.ready[i].id < r.ready[j].id
	})
}

// compatible reports whether dev can run t.
func compatible(t Task, dev *hw.Device) bool {
	if !dev.Healthy() {
		return false
	}
	if dev.Spec.Cores < t.Cores {
		return false
	}
	if len(t.Targets) == 0 {
		return true
	}
	for _, c := range t.Targets {
		if dev.Spec.Class == c {
			return true
		}
	}
	return false
}

// score returns the policy objective for running t on dev now (lower is
// better); ok=false if the device cannot take the task at this instant.
func (r *Runtime) score(t Task, dev *hw.Device) (float64, bool) {
	if !compatible(t, dev) {
		return 0, false
	}
	free := dev.Spec.Cores - dev.BusyCores()
	if free < t.Cores {
		return 0, false
	}
	execSec := sim.ToSeconds(dev.ExecTime(t.Gops, t.Cores))
	energyJ := dev.EnergyFor(t.Gops, t.Cores)
	switch r.policy {
	case MinEnergy:
		return energyJ, true
	case MinEDP:
		return energyJ * execSec, true
	default:
		return execSec, true
	}
}

// dispatch assigns as many ready tasks as possible.
func (r *Runtime) dispatch() {
	for {
		assigned := false
		for qi := 0; qi < len(r.ready); qi++ {
			n := r.ready[qi]
			best := -1
			bestScore := 0.0
			for di, dev := range r.devices {
				if s, ok := r.score(n.task, dev); ok && (best == -1 || s < bestScore) {
					best, bestScore = di, s
				}
			}
			if best == -1 {
				continue // no device free for this task right now
			}
			r.ready = append(r.ready[:qi], r.ready[qi+1:]...)
			r.start(n, r.devices[best])
			assigned = true
			break
		}
		if !assigned {
			return
		}
	}
}

// start runs n on dev.
func (r *Runtime) start(n *node, dev *hw.Device) {
	t := n.task
	if err := dev.Acquire(t.Cores); err != nil {
		// Raced with another assignment; requeue.
		r.enqueue(n)
		return
	}
	n.started = true
	n.record.Device = dev.ID
	n.record.Class = dev.Spec.Class
	n.record.Start = r.eng.Now()
	n.record.EnergyJ = dev.EnergyFor(t.Gops, t.Cores)
	span := dev.ExecTime(t.Gops, t.Cores)
	r.eng.Schedule(span, func() {
		dev.Release(t.Cores)
		n.record.End = r.eng.Now()
		n.done = true
		r.inDAG--
		if t.Fn != nil {
			t.Fn()
		}
		for _, s := range n.succ {
			s.deps--
			if s.deps == 0 && !s.done {
				r.enqueue(s)
			}
		}
		r.dispatch()
	})
}

// Result summarises a completed run.
type Result struct {
	Makespan sim.Time
	Records  []Record
	// EnergyJ is the summed dynamic task energy.
	EnergyJ energy.Joules
}

// Run executes the submitted graph to completion and returns the trace.
// It fails if tasks remain blocked (a dependence cycle cannot occur by
// construction, so leftovers mean no compatible device exists).
func (r *Runtime) Run() (*Result, error) {
	r.dispatch()
	r.eng.Run()
	res := &Result{}
	for _, n := range r.nodes {
		if !n.done {
			return nil, fmt.Errorf("taskrt: task %q never ran (no compatible device?)", n.task.Name)
		}
		res.Records = append(res.Records, n.record)
		if n.record.End > res.Makespan {
			res.Makespan = n.record.End
		}
		res.EnergyJ += n.record.EnergyJ
	}
	return res, nil
}
