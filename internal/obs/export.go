package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"legato/internal/sim"
	"legato/internal/trace"
)

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

// promEscaper escapes label values per the exposition format.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promName normalizes a registry metric name into a legal Prometheus
// metric name: the "legato_" namespace prefix, with every character
// outside [a-zA-Z0-9_:] mapped to '_' (registry metrics use dashes:
// "tasks-completed" → "legato_tasks_completed").
func promName(metric string) string {
	var sb strings.Builder
	sb.WriteString("legato_")
	for _, r := range metric {
		switch {
		// Digits are legal anywhere here because of the namespace prefix.
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == ':':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// PrometheusText renders a monitor.Registry snapshot (scope → metric →
// value) in the Prometheus text exposition format. Registry scopes
// follow the "kind/name" convention ("job/ingest", "device/recs0/ms3");
// the kind becomes the scope label and the remainder the name label.
// Output is fully sorted (metric, then labels), so two snapshots of the
// same state render byte-identically.
func PrometheusText(snap map[string]map[string]float64) string {
	type sample struct {
		labels string
		value  float64
	}
	families := make(map[string][]sample)
	for scope, metrics := range snap {
		kind, name := scope, ""
		if i := strings.IndexByte(scope, '/'); i >= 0 {
			kind, name = scope[:i], scope[i+1:]
		}
		labels := fmt.Sprintf(`scope=%q`, promEscaper.Replace(kind))
		if name != "" {
			labels += fmt.Sprintf(`,name=%q`, promEscaper.Replace(name))
		}
		for metric, v := range metrics {
			fam := promName(metric)
			families[fam] = append(families[fam], sample{labels: labels, value: v})
		}
	}
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, fam := range names {
		samples := families[fam]
		sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		fmt.Fprintf(&sb, "# TYPE %s gauge\n", fam)
		for _, s := range samples {
			fmt.Fprintf(&sb, "%s{%s} %s\n", fam, s.labels,
				strconv.FormatFloat(s.value, 'g', -1, 64))
		}
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Chrome trace_event JSON
// ---------------------------------------------------------------------------

// chromeEvent is one entry of the trace_event JSON array (the "JSON
// object format" chrome://tracing and Perfetto load directly).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent      `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
	OtherData       map[string]float64 `json:"otherData,omitempty"`
}

// usec converts virtual time to trace_event microseconds.
func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// ChromeTrace renders tracer spans (and optional counters) as Chrome
// trace_event JSON. Each span resource becomes a named thread of pid 1
// (sorted for stable tids); intervals become complete ("X") events,
// zero-width markers become instants ("i"), and value-carrying samples
// (e.g. the "power" fleet-draw series) become counter ("C") tracks so
// the draw-vs-time curve renders as a graph. Tracer counters land in
// otherData.
func ChromeTrace(spans []trace.Span, counters map[string]float64) ([]byte, error) {
	resources := make(map[string]int)
	for _, s := range spans {
		resources[s.Resource] = 0
	}
	names := make([]string, 0, len(resources))
	for r := range resources {
		names = append(names, r)
	}
	sort.Strings(names)
	events := make([]chromeEvent, 0, len(spans)+len(names)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "legato session"},
	})
	for i, r := range names {
		resources[r] = i + 1
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": r},
		})
	}
	for _, s := range spans {
		tid := resources[s.Resource]
		switch {
		case s.Start == s.End && s.Value != 0:
			// Telemetry sample → counter track named by the span.
			events = append(events, chromeEvent{
				Name: s.Name, Cat: s.Category, Ph: "C", Ts: usec(s.Start),
				Pid: 1, Tid: tid,
				Args: map[string]any{s.Category: s.Value},
			})
		case s.Start == s.End:
			events = append(events, chromeEvent{
				Name: s.Name, Cat: s.Category, Ph: "i", Ts: usec(s.Start),
				Pid: 1, Tid: tid, Scope: "t",
			})
		default:
			ev := chromeEvent{
				Name: s.Name, Cat: s.Category, Ph: "X", Ts: usec(s.Start),
				Dur: usec(s.End - s.Start), Pid: 1, Tid: tid,
			}
			if s.Value != 0 {
				ev.Args = map[string]any{"value": s.Value}
			}
			events = append(events, ev)
		}
	}
	out := chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}
	if len(counters) > 0 {
		out.OtherData = counters
	}
	return json.MarshalIndent(out, "", " ")
}

// ---------------------------------------------------------------------------
// Per-task timeline breakdown
// ---------------------------------------------------------------------------

// TaskTimeline is the per-task breakdown derived from one session's
// spans: when the task was queued, when its committed execution ran and
// where, how long it waited, how often it re-ran, and how much
// speculative (hedge) execution overlapped it.
type TaskTimeline struct {
	Name   string `json:"name"`
	Device string `json:"device,omitempty"`
	// QueuedAt is when the task entered the dependence graph ("queue"
	// span); Start/End bound the last committed execution.
	QueuedAt sim.Time `json:"queued_at"`
	Start    sim.Time `json:"start"`
	End      sim.Time `json:"end"`
	// QueueWait = Start − QueuedAt: dependence stalls plus placement
	// parking (core or watt admission).
	QueueWait sim.Time `json:"queue_wait"`
	Exec      sim.Time `json:"exec"`
	// Executions counts committed runs ("task" spans); Retries counts
	// re-queues after failures or corrupted outputs ("failure" spans).
	Executions int `json:"executions"`
	Retries    int `json:"retries"`
	// HedgeOverlap totals the time speculative replicas raced this task
	// (duration of resolved "hedge" spans).
	HedgeOverlap sim.Time `json:"hedge_overlap,omitempty"`
	// Shed marks a task skipped by graceful deadline degradation; it
	// never executed.
	Shed bool `json:"shed,omitempty"`
}

// Latency is the queued-to-committed span of the task.
func (t TaskTimeline) Latency() sim.Time {
	if t.End > t.QueuedAt {
		return t.End - t.QueuedAt
	}
	return 0
}

// Timelines derives the per-task breakdown from tracer spans. Task names
// are unique within a job; a session that reuses a task name across jobs
// merges those rows (timestamps are job-relative virtual time, so
// cross-job rows are indicative, not additive). Rows sort by name.
func Timelines(spans []trace.Span) []TaskTimeline {
	byName := make(map[string]*TaskTimeline)
	get := func(name string) *TaskTimeline {
		tl, ok := byName[name]
		if !ok {
			tl = &TaskTimeline{Name: name}
			byName[name] = tl
		}
		return tl
	}
	for _, s := range spans {
		switch s.Category {
		case "queue":
			tl := get(s.Name)
			if tl.QueuedAt == 0 || s.Start < tl.QueuedAt {
				tl.QueuedAt = s.Start
			}
		case "task":
			tl := get(s.Name)
			tl.Executions++
			tl.Device, tl.Start, tl.End = s.Resource, s.Start, s.End
		case "failure":
			if task := s.Resource; task != "" && strings.HasPrefix(s.Name, task+"#retry") {
				get(task).Retries++
			}
		case "hedge":
			if s.End > s.Start {
				// Resolved race: "<task> hedge won|lost on <device>".
				if i := strings.Index(s.Name, " hedge "); i > 0 {
					get(s.Name[:i]).HedgeOverlap += s.End - s.Start
				}
			}
		case "deadline":
			if task, ok := strings.CutSuffix(s.Name, "#shed"); ok {
				tl := get(task)
				tl.Shed = true
				tl.End = s.Start
			}
		}
	}
	out := make([]TaskTimeline, 0, len(byName))
	for _, tl := range byName {
		if tl.Executions > 0 {
			tl.QueueWait = tl.Start - tl.QueuedAt
			tl.Exec = tl.End - tl.Start
		}
		out = append(out, *tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TopSlowest returns the n timelines with the largest queued-to-commit
// latency, slowest first (name-ordered among equals); shed tasks sort by
// time spent queued before shedding.
func TopSlowest(tls []TaskTimeline, n int) []TaskTimeline {
	out := append([]TaskTimeline(nil), tls...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Latency() > out[j].Latency() })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TimelineTable renders timelines as an aligned operator table.
func TimelineTable(tls []TaskTimeline) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %-14s %10s %10s %10s %5s %5s %10s\n",
		"task", "device", "queued-s", "wait-s", "exec-s", "runs", "retry", "hedge-s")
	for _, tl := range tls {
		if tl.Shed {
			fmt.Fprintf(&sb, "%-24s %-14s %10.4f %10s %10s %5s %5d %10s\n",
				tl.Name, "(shed)", sim.ToSeconds(tl.QueuedAt), "-", "-", "-", tl.Retries, "-")
			continue
		}
		fmt.Fprintf(&sb, "%-24s %-14s %10.4f %10.4f %10.4f %5d %5d %10.4f\n",
			tl.Name, tl.Device, sim.ToSeconds(tl.QueuedAt), sim.ToSeconds(tl.QueueWait),
			sim.ToSeconds(tl.Exec), tl.Executions, tl.Retries, sim.ToSeconds(tl.HedgeOverlap))
	}
	return sb.String()
}

// DeviceUtilization sums committed execution time per device from "task"
// spans and returns it with the session makespan (the latest committed
// end over any job's clock).
func DeviceUtilization(spans []trace.Span) (busy map[string]sim.Time, makespan sim.Time) {
	busy = make(map[string]sim.Time)
	for _, s := range spans {
		if s.Category != "task" {
			continue
		}
		busy[s.Resource] += s.End - s.Start
		if s.End > makespan {
			makespan = s.End
		}
	}
	return busy, makespan
}

// ---------------------------------------------------------------------------
// Session dump (the legato-trace interchange format)
// ---------------------------------------------------------------------------

// SessionDump is the self-contained export of one session: every merged
// tracer span and counter, the full registry snapshot, and (when the
// session recorded one) the ordered event log. legato-trace loads this
// and converts to any exporter format.
type SessionDump struct {
	Name     string                        `json:"name,omitempty"`
	Spans    []trace.Span                  `json:"spans"`
	Counters map[string]float64            `json:"counters,omitempty"`
	Metrics  map[string]map[string]float64 `json:"metrics,omitempty"`
	Events   []Event                       `json:"events,omitempty"`
}

// Encode writes the dump as indented JSON.
func (d *SessionDump) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// DecodeSession reads a dump written by Encode.
func DecodeSession(r io.Reader) (*SessionDump, error) {
	var d SessionDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("obs: decoding session dump: %w", err)
	}
	return &d, nil
}
