// Resilient: a LEGaTO session armed with an MTBF-driven failure process
// (paper Sec. IV). Devices crash at sampled virtual times; jobs recover by
// re-placing revoked tasks on survivors (bounded retries, exponential
// backoff) and by restarting from their last committed FTI checkpoint
// instead of from zero. The session degrades gracefully: the fleet keeps
// admitting every job that still fits the surviving devices.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"legato"
	"legato/internal/faults"
	"legato/internal/ft"
	"legato/internal/fti"
	"legato/internal/sim"
)

func buildPipeline(job *legato.Job) error {
	for c := 0; c < 4; c++ {
		prev := job.Data(fmt.Sprintf("chain%d/in", c), 1<<20)
		for stage := 0; stage < 5; stage++ {
			next := job.Data(fmt.Sprintf("chain%d/s%d", c, stage), 1<<20)
			if err := job.Task(fmt.Sprintf("chain%d/stage%d", c, stage)).
				Gops(25).Retry(3).In(prev).Out(next).Submit(); err != nil {
				return err
			}
			prev = next
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)

	// Aggressively compressed MTBFs (seconds of virtual time, not hours)
	// so a session of a few virtual seconds actually sees a crash. The
	// default model (ft.DefaultMTBFModel) uses the paper-scale hour
	// figures; Scaled shrinks every class by the same factor.
	plan := faults.Plan{
		MTBF:       ft.DefaultMTBFModel().Scaled(1.0 / 200_000),
		MaxCrashes: 1,
		Seed:       62,
	}
	sys, err := legato.NewSystem(
		legato.WithPlatform(legato.CloudPlatform),
		legato.WithPolicy(legato.MinTime),
		legato.WithWorkers(8),
		legato.WithFaults(plan),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer sys.Close(ctx)

	var jobs []*legato.Job
	for n := 0; n < 8; n++ {
		job, err := sys.NewJob(fmt.Sprintf("tenant-%d", n))
		if err != nil {
			log.Fatal(err)
		}
		// Asynchronous L1 checkpoint (local NVMe) every four completions:
		// on a device loss only the un-persisted tail re-executes.
		if err := job.Checkpoint(4, fti.L1); err != nil {
			log.Fatal(err)
		}
		if err := buildPipeline(job); err != nil {
			log.Fatal(err)
		}
		if err := job.Start(ctx); err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, job)
	}

	for _, job := range jobs {
		rep, err := job.Wait(ctx)
		if err != nil {
			log.Fatalf("%s: %v", job.Name(), err)
		}
		fmt.Printf("%-10s done: %2d tasks, makespan %.3f s, retries %d, restores %d, checkpoints %d\n",
			job.Name(), len(rep.Records), sim.ToSeconds(rep.Makespan),
			rep.Retries, rep.Restores, rep.Checkpoints)
	}

	st := sys.Stats()
	fmt.Printf("\nsession: %d/%d jobs completed under %d device loss(es)\n",
		st.JobsCompleted, len(jobs), st.DevicesLost)
	fmt.Printf("recovery: %d retries, %d restores, %d checkpoints committed\n",
		st.TasksRetried, st.TasksRestored, st.Checkpoints)
	for _, id := range sys.Fleet().Devices() {
		if sys.Fleet().Lost(id) {
			fmt.Printf("lost device: %s (capacity now %d)\n", id, sys.Fleet().Capacity(id))
		}
	}
	if st.DevicesLost == 0 {
		fmt.Println("no device crashed this run — try another seed in the plan")
	}
}
