// Package bio implements the Infection Research use case of paper
// Sec. II-F (partner HZI — Helmholtz Centre for Infection Research):
// pairwise local sequence alignment by the Smith-Waterman algorithm,
// parallelised over the LEGaTO task runtime as an anti-diagonal wavefront,
// which is the canonical task-graph decomposition for dynamic-programming
// kernels on heterogeneous hardware.
package bio

import (
	"fmt"
	"strings"

	"legato/internal/hw"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

// Scoring holds the alignment parameters.
type Scoring struct {
	Match    int // score for a match (> 0)
	Mismatch int // penalty for a mismatch (< 0)
	Gap      int // penalty per gap (< 0)
}

// DefaultScoring is the classic +2/-1/-1 scheme.
func DefaultScoring() Scoring { return Scoring{Match: 2, Mismatch: -1, Gap: -1} }

// Alignment is the result of a local alignment.
type Alignment struct {
	Score int
	// EndI, EndJ are the 1-based end coordinates of the optimal local
	// alignment in the two sequences.
	EndI, EndJ int
	// AlignedA and AlignedB are the aligned substrings with '-' gaps.
	AlignedA, AlignedB string
}

// SmithWaterman computes the optimal local alignment serially (the
// reference implementation).
func SmithWaterman(a, b string, s Scoring) Alignment {
	n, m := len(a), len(b)
	h := make([][]int, n+1)
	for i := range h {
		h[i] = make([]int, m+1)
	}
	best, bi, bj := 0, 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			diag := h[i-1][j-1]
			if a[i-1] == b[j-1] {
				diag += s.Match
			} else {
				diag += s.Mismatch
			}
			v := max4(0, diag, h[i-1][j]+s.Gap, h[i][j-1]+s.Gap)
			h[i][j] = v
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	alignedA, alignedB := traceback(a, b, h, s, bi, bj)
	return Alignment{Score: best, EndI: bi, EndJ: bj, AlignedA: alignedA, AlignedB: alignedB}
}

// traceback reconstructs the aligned substrings from the score matrix.
func traceback(a, b string, h [][]int, s Scoring, i, j int) (string, string) {
	var sa, sb strings.Builder
	for i > 0 && j > 0 && h[i][j] > 0 {
		diag := h[i-1][j-1]
		sub := s.Mismatch
		if a[i-1] == b[j-1] {
			sub = s.Match
		}
		switch {
		case h[i][j] == diag+sub:
			sa.WriteByte(a[i-1])
			sb.WriteByte(b[j-1])
			i--
			j--
		case h[i][j] == h[i-1][j]+s.Gap:
			sa.WriteByte(a[i-1])
			sb.WriteByte('-')
			i--
		default:
			sa.WriteByte('-')
			sb.WriteByte(b[j-1])
			j--
		}
	}
	return reverse(sa.String()), reverse(sb.String())
}

func reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

func max4(a, b, c, d int) int {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	if d > m {
		m = d
	}
	return m
}

// WavefrontResult is the outcome of a task-parallel alignment.
type WavefrontResult struct {
	Alignment Alignment
	// Tiles is the number of DP tiles (tasks) executed.
	Tiles int
	// Makespan is the simulated execution time on the platform.
	Makespan sim.Time
	// EnergyJ is the dynamic task energy.
	EnergyJ float64
}

// SmithWatermanWavefront runs the same DP as tiled tasks over the LEGaTO
// runtime: tile (i,j) depends on (i−1,j), (i,j−1) and (i−1,j−1), the
// anti-diagonal wavefront. The numerical result is identical to the serial
// reference; the task graph exercises the runtime's dependence engine and
// produces platform timing/energy.
func SmithWatermanWavefront(eng *sim.Engine, devices []*hw.Device, policy taskrt.Policy,
	a, b string, s Scoring, tile int) (*WavefrontResult, error) {
	if tile <= 0 {
		return nil, fmt.Errorf("bio: tile size must be positive")
	}
	n, m := len(a), len(b)
	h := make([][]int, n+1)
	for i := range h {
		h[i] = make([]int, m+1)
	}
	best, bi, bj := 0, 0, 0

	rt := taskrt.New(eng, devices, policy)
	tilesI := (n + tile - 1) / tile
	tilesJ := (m + tile - 1) / tile
	// Tile dependence data: region (ti,tj) is written by its tile task.
	regions := make([][]*taskrt.Data, tilesI)
	for ti := range regions {
		regions[ti] = make([]*taskrt.Data, tilesJ)
		for tj := range regions[ti] {
			regions[ti][tj] = rt.Data(fmt.Sprintf("tile-%d-%d", ti, tj), int64(tile*tile*4))
		}
	}
	count := 0
	for ti := 0; ti < tilesI; ti++ {
		for tj := 0; tj < tilesJ; tj++ {
			ti, tj := ti, tj
			var deps []*taskrt.Data
			if ti > 0 {
				deps = append(deps, regions[ti-1][tj])
			}
			if tj > 0 {
				deps = append(deps, regions[ti][tj-1])
			}
			if ti > 0 && tj > 0 {
				deps = append(deps, regions[ti-1][tj-1])
			}
			iLo, iHi := ti*tile+1, minInt((ti+1)*tile, n)
			jLo, jHi := tj*tile+1, minInt((tj+1)*tile, m)
			cells := float64((iHi - iLo + 1) * (jHi - jLo + 1))
			err := rt.Submit(taskrt.Task{
				Name: fmt.Sprintf("sw-%d-%d", ti, tj),
				Gops: cells * 10e-9, // ~10 ops per DP cell
				In:   deps,
				Out:  []*taskrt.Data{regions[ti][tj]},
				Fn: func() {
					for i := iLo; i <= iHi; i++ {
						for j := jLo; j <= jHi; j++ {
							diag := h[i-1][j-1]
							if a[i-1] == b[j-1] {
								diag += s.Match
							} else {
								diag += s.Mismatch
							}
							v := max4(0, diag, h[i-1][j]+s.Gap, h[i][j-1]+s.Gap)
							h[i][j] = v
							if v > best {
								best, bi, bj = v, i, j
							}
						}
					}
				},
			})
			if err != nil {
				return nil, err
			}
			count++
		}
	}
	res, err := rt.Run()
	if err != nil {
		return nil, err
	}
	alignedA, alignedB := traceback(a, b, h, s, bi, bj)
	return &WavefrontResult{
		Alignment: Alignment{Score: best, EndI: bi, EndJ: bj, AlignedA: alignedA, AlignedB: alignedB},
		Tiles:     count,
		Makespan:  res.Makespan,
		EnergyJ:   res.EnergyJ,
	}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RandomDNA generates a deterministic pseudo-random DNA sequence.
func RandomDNA(n int, seed int64) string {
	const alphabet = "ACGT"
	out := make([]byte, n)
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := range out {
		state = state*2862933555777941757 + 3037000493
		out[i] = alphabet[state>>62]
	}
	return string(out)
}
