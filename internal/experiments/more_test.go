package experiments

import (
	"strings"
	"testing"
)

func TestHEATSExperiment(t *testing.T) {
	res, err := HEATS([]float64{0, 0.5, 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.EnergySavingPercent() <= 0 {
		t.Fatalf("energy-first saved nothing: %+v", res.Rows)
	}
	// Trade-off shape: energy-first slower than performance-first.
	if res.Rows[2].MakespanSec <= res.Rows[0].MakespanSec {
		t.Fatalf("no performance cost for energy: %+v", res.Rows)
	}
	if !strings.Contains(res.Table(), "alpha") {
		t.Fatal("table broken")
	}
}

func TestMirrorExperiment(t *testing.T) {
	rows, err := Mirror(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	ws, edge := rows[0], rows[1]
	if ws.FPS < 19 || ws.FPS > 23 || ws.PowerW < 350 || ws.PowerW > 450 {
		t.Fatalf("workstation out of envelope: %.1f FPS %.0f W", ws.FPS, ws.PowerW)
	}
	if edge.FPS < 9 || edge.PowerW > 50 {
		t.Fatalf("edge out of envelope: %.1f FPS %.0f W", edge.FPS, edge.PowerW)
	}
}

func TestUndervoltMLExperiment(t *testing.T) {
	rows, baseline, err := UndervoltML(5)
	if err != nil {
		t.Fatal(err)
	}
	if baseline < 0.9 {
		t.Fatalf("baseline accuracy %.2f too low", baseline)
	}
	if len(rows) < 10 {
		t.Fatalf("sweep too short: %d points", len(rows))
	}
	// Accuracy in the guardband equals baseline; deep rows save >50% power
	// while accuracy stays within 25 points (inherent resilience).
	last := rows[len(rows)-1]
	if last.SavingPercent < 50 {
		t.Fatalf("deepest saving only %.1f%%", last.SavingPercent)
	}
	if baseline-last.Accuracy > 0.25 {
		t.Fatalf("accuracy cliff: %.3f vs baseline %.3f", last.Accuracy, baseline)
	}
	if MLTable(rows, baseline) == "" {
		t.Fatal("table broken")
	}
}

func TestReplicationExperiment(t *testing.T) {
	rows, err := Replication(400, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	none, sel, all := rows[0], rows[1], rows[2]
	if !(all.TaintedOutputs <= sel.TaintedOutputs && sel.TaintedOutputs <= none.TaintedOutputs) {
		t.Fatalf("taint ordering: %+v", rows)
	}
	if !(none.EnergyJ < sel.EnergyJ && sel.EnergyJ < all.EnergyJ) {
		t.Fatalf("energy ordering: %+v", rows)
	}
	if ReplicationTable(rows) == "" {
		t.Fatal("table broken")
	}
}

func TestMTBFExperiment(t *testing.T) {
	fig6, err := Fig6([]int{1}, []float64{16})
	if err != nil {
		t.Fatal(err)
	}
	factor, err := MTBF(fig6, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Sec. IV: sustains systems with 7× smaller MTBF.
	if factor < 7 {
		t.Fatalf("MTBF factor %.1f below the paper's 7x", factor)
	}
}

func TestXiTAOExperiment(t *testing.T) {
	rows, err := XiTAOElasticity(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	elastic := rows[0]
	for _, r := range rows[1:] {
		if elastic.MakespanSec >= r.MakespanSec {
			t.Fatalf("elastic (%.2fs) not fastest: %+v", elastic.MakespanSec, rows)
		}
	}
	if XiTAOTable(rows) == "" {
		t.Fatal("table broken")
	}
}

func TestRECSBoxInventory(t *testing.T) {
	s, err := RECSBoxInventory()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"recs0", "gpu", "microservers: 15/144"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("inventory missing %q:\n%s", frag, s)
		}
	}
}
