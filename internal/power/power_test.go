package power

import (
	"math"
	"testing"

	"legato/internal/energy"
	"legato/internal/hw"
	"legato/internal/sim"
)

func testDevices(t *testing.T) []*hw.Device {
	t.Helper()
	se := sim.NewEngine()
	specA := hw.Spec{
		Name: "cpu", Class: hw.CPUx86, Cores: 8, GOPS: 100,
		IdleWatts: 10, PeakWatts: 50,
		States: []hw.DVFSState{
			{Name: "nominal", FreqGHz: 2.0, Voltage: 1.0},
			{Name: "eco", FreqGHz: 1.0, Voltage: 0.8},
		},
	}
	specB := hw.Spec{
		Name: "fpga", Class: hw.FPGA, Cores: 4, GOPS: 200,
		IdleWatts: 5, PeakWatts: 25,
	}
	return []*hw.Device{
		hw.NewDevice(se, "cpu0", specA),
		hw.NewDevice(se, "fpga0", specB),
	}
}

func TestLadderFor(t *testing.T) {
	devs := testDevices(t)
	l := LadderFor("cpu0", devs[0].Spec)
	if len(l.Points) != 2 {
		t.Fatalf("ladder has %d points, want 2", len(l.Points))
	}
	nom := l.Points[0]
	if nom.SpeedScale != 1 || nom.PowerScale != 1 {
		t.Fatalf("nominal point scales = (%v, %v), want (1, 1)", nom.SpeedScale, nom.PowerScale)
	}
	eco := l.Points[1]
	if eco.SpeedScale != 0.5 {
		t.Fatalf("eco speed scale = %v, want 0.5 (1.0/2.0 GHz)", eco.SpeedScale)
	}
	// f·V² scaling: 0.5 × 0.8².
	if math.Abs(eco.PowerScale-0.5*0.64) > 1e-12 {
		t.Fatalf("eco power scale = %v, want 0.32", eco.PowerScale)
	}
	// A spec without explicit states resolves to a single nominal point.
	fl := LadderFor("fpga0", devs[1].Spec)
	if len(fl.Points) != 1 || fl.Points[0].SpeedScale != 1 {
		t.Fatalf("stateless spec ladder = %+v, want one nominal point", fl.Points)
	}
}

func TestUndervoltModel(t *testing.T) {
	if UndervoltVoltageScale(0) != 1 || UndervoltPowerScale(0) != 1 || SDCProbability(0) != 0 {
		t.Fatal("guardband level must be free of both savings and risk")
	}
	for lvl := 1; lvl <= MaxUndervolt; lvl++ {
		v := UndervoltVoltageScale(lvl)
		if v >= UndervoltVoltageScale(lvl-1) {
			t.Fatalf("voltage scale not decreasing at level %d", lvl)
		}
		if got, want := UndervoltPowerScale(lvl), v*v; math.Abs(got-want) > 1e-12 {
			t.Fatalf("power scale at level %d = %v, want v² = %v", lvl, got, want)
		}
		if SDCProbability(lvl) <= SDCProbability(lvl-1) {
			t.Fatalf("SDC probability not increasing at level %d", lvl)
		}
	}
	// Levels beyond the maximum clamp rather than extrapolate.
	if SDCProbability(MaxUndervolt+5) != SDCProbability(MaxUndervolt) {
		t.Fatal("SDC probability not clamped above MaxUndervolt")
	}
	if UndervoltPowerScale(MaxUndervolt+5) != UndervoltPowerScale(MaxUndervolt) {
		t.Fatal("power scale not clamped above MaxUndervolt")
	}
}

func TestLedgerCapWitness(t *testing.T) {
	devs := testDevices(t) // idle 10 + 5 = 15 W
	l := NewLedger(40, devs, RaceToIdle)
	if got := l.Draw(); got != 15 {
		t.Fatalf("initial draw = %v, want the 15 W idle floor", got)
	}
	if !l.TryDraw("cpu0", 20) {
		t.Fatal("draw within cap refused")
	}
	// 15 + 20 + 10 > 40: must refuse and count a stall.
	if l.TryDraw("fpga0", 10) {
		t.Fatal("draw over cap granted")
	}
	if l.Stalls() != 1 {
		t.Fatalf("stalls = %d, want 1", l.Stalls())
	}
	if l.TryDraw("fpga0", 5) != true {
		t.Fatal("draw exactly at cap refused")
	}
	if got := l.PeakDraw(); got != 40 {
		t.Fatalf("peak draw = %v, want 40", got)
	}
	if l.PeakDraw() > l.Cap() {
		t.Fatal("peak-draw witness violated")
	}
	l.ReleaseDraw("cpu0", 20)
	l.ReleaseDraw("fpga0", 5)
	if got := l.Draw(); got != 15 {
		t.Fatalf("draw after release = %v, want 15", got)
	}
	// RaceToIdle never reshapes operating points.
	if l.Rescales() != 0 || l.OperatingPoint("cpu0") != 0 {
		t.Fatal("race-to-idle governor rescaled a device")
	}
}

func TestLedgerUncapped(t *testing.T) {
	devs := testDevices(t)
	l := NewLedger(0, devs, RaceToIdle)
	if l.Capped() {
		t.Fatal("zero cap must mean uncapped")
	}
	if !l.TryDraw("cpu0", 1e9) {
		t.Fatal("uncapped ledger refused a draw")
	}
}

func TestLedgerWakeOnRelease(t *testing.T) {
	devs := testDevices(t)
	l := NewLedger(40, devs, RaceToIdle)
	if !l.TryDraw("cpu0", 25) {
		t.Fatal("draw refused")
	}
	ch := l.Changed()
	select {
	case <-ch:
		t.Fatal("generation channel closed early")
	default:
	}
	l.ReleaseDraw("cpu0", 25)
	select {
	case <-ch:
	default:
		t.Fatal("release did not wake the generation channel")
	}
}

func TestLedgerDeviceLost(t *testing.T) {
	devs := testDevices(t)
	l := NewLedger(40, devs, RaceToIdle)
	if !l.TryDraw("cpu0", 20) {
		t.Fatal("draw refused")
	}
	ch := l.Changed()
	l.DeviceLost("cpu0")
	select {
	case <-ch:
	default:
		t.Fatal("device loss did not wake parked jobs")
	}
	// Idle (10) and granted dynamic (20) both released: only fpga idle left.
	if got := l.Draw(); got != 5 {
		t.Fatalf("draw after loss = %v, want 5", got)
	}
	if !l.Lost("cpu0") || l.DrawOf("cpu0") != 0 {
		t.Fatal("lost device still charged")
	}
	// Late revocations (jobs crossing the crash on private clocks) must not
	// double-release.
	l.ReleaseDraw("cpu0", 20)
	if got := l.Draw(); got != 5 {
		t.Fatalf("draw after late release = %v, want 5 (no double release)", got)
	}
	if l.TryDraw("cpu0", 1) {
		t.Fatal("draw granted on a lost device")
	}
	// A second loss of the same device is a no-op.
	l.DeviceLost("cpu0")
	if got := l.Draw(); got != 5 {
		t.Fatalf("draw after repeated loss = %v, want 5", got)
	}
}

func TestPackAndThrottleGovernor(t *testing.T) {
	devs := testDevices(t)
	l := NewLedger(40, devs, PackAndThrottle)
	if !l.TryDraw("cpu0", 24) {
		t.Fatal("draw refused")
	}
	// Refusal steps the target device down its ladder.
	if l.TryDraw("cpu0", 10) {
		t.Fatal("draw over cap granted")
	}
	if l.OperatingPoint("cpu0") != 1 {
		t.Fatalf("cpu0 operating point = %d after refusal, want 1 (eco)", l.OperatingPoint("cpu0"))
	}
	if l.Rescales() != 1 {
		t.Fatalf("rescales = %d, want 1", l.Rescales())
	}
	// The fpga has no lower rung, so a refusal on it throttles the
	// hungriest throttleable sibling — but cpu0 is already at its floor,
	// so the ladder stays put.
	if l.TryDraw("fpga0", 10) {
		t.Fatal("draw over cap granted")
	}
	if l.OperatingPoint("fpga0") != 0 {
		t.Fatal("stateless device was stepped below its only point")
	}
	// Releasing far below the 70% hysteresis threshold steps cpu0 back up.
	l.ReleaseDraw("cpu0", 24)
	if l.OperatingPoint("cpu0") != 0 {
		t.Fatalf("cpu0 operating point = %d after relaxation, want 0 (nominal)", l.OperatingPoint("cpu0"))
	}
}

func TestFleetPeakWatts(t *testing.T) {
	devs := testDevices(t)
	if got := FleetPeakWatts(devs); got != energy.Watts(75) {
		t.Fatalf("fleet peak = %v, want 75 (50 + 25)", got)
	}
}
