package experiments

import (
	"context"
	"fmt"
	"strings"

	"legato/internal/engine"
	"legato/internal/hw"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

// --- E11: concurrent multi-job engine ----------------------------------

// MultiJobRow is one worker-pool width of the throughput sweep.
type MultiJobRow struct {
	Workers         int
	Jobs            int
	TasksCompleted  int
	TotalJobTime    sim.Time // sum of per-job makespans (serial cost)
	SessionMakespan sim.Time // fleet time under the greedy lane schedule
	SpeedupX        float64  // vs the single-worker session of the sweep
	AdmissionStalls uint64
	EnergyJ         float64 // platform energy (idle + dynamic) over the session
	AvgPowerW       float64 // EnergyJ over the session makespan
	PeakDrawW       float64 // high-water mark of the modelled fleet draw
}

// cloudFleet builds the standard RECS|BOX device list on the given clock,
// the same platform the public API uses for CloudPlatform.
func cloudFleet(se *sim.Engine) ([]*hw.Device, error) {
	box, err := hw.StandardCloudBox(se, "recs0")
	if err != nil {
		return nil, err
	}
	var devices []*hw.Device
	for _, ms := range box.Microservers() {
		devices = append(devices, ms.Device)
	}
	return devices, nil
}

// multiJobGraph fills one job with `chains` independent chains of `depth`
// dependent tasks each — enough structure for the per-job scheduler to
// matter, with no cross-job dependences by construction.
func multiJobGraph(rt *taskrt.Runtime, name string, chains, depth int) error {
	for c := 0; c < chains; c++ {
		prev := rt.Data(fmt.Sprintf("%s/c%d/d0", name, c), 1024)
		for i := 0; i < depth; i++ {
			next := rt.Data(fmt.Sprintf("%s/c%d/d%d", name, c, i+1), 1024)
			if err := rt.Submit(taskrt.Task{
				Name: fmt.Sprintf("%s/c%d/t%d", name, c, i),
				Gops: 25, Cores: 1,
				In: []*taskrt.Data{prev}, Out: []*taskrt.Data{next},
			}); err != nil {
				return err
			}
			prev = next
		}
	}
	return nil
}

// MultiJob runs the E11 throughput study: `jobs` identical independent
// task graphs pushed through the concurrent job engine at each worker-pool
// width, on the shared cloud fleet. Width 1 is the serial baseline (the
// session makespan equals the sum of job makespans); wider pools overlap
// jobs on the fleet under admission control, and the speedup column is the
// fleet-time ratio against that baseline.
func MultiJob(widths []int, jobs int) ([]MultiJobRow, error) {
	rows := make([]MultiJobRow, 0, len(widths))
	var baseline sim.Time
	for _, w := range widths {
		e, err := engine.New(engine.Config{
			Workers:     w,
			Policy:      taskrt.MinTime,
			NewPlatform: cloudFleet,
		})
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		var js []*engine.Job
		for n := 0; n < jobs; n++ {
			j, err := e.NewJob(fmt.Sprintf("job%d", n))
			if err != nil {
				return nil, err
			}
			if err := multiJobGraph(j.Runtime(), j.Name, 4, 5); err != nil {
				return nil, err
			}
			js = append(js, j)
			if err := e.Submit(ctx, j); err != nil {
				return nil, err
			}
		}
		for _, j := range js {
			if _, err := j.Wait(ctx); err != nil {
				return nil, err
			}
		}
		st := e.Stats()
		if err := e.Shutdown(ctx); err != nil {
			return nil, err
		}
		if w == 1 || baseline == 0 {
			baseline = st.SessionMakespan
		}
		rows = append(rows, MultiJobRow{
			Workers:         w,
			Jobs:            jobs,
			TasksCompleted:  st.TasksCompleted,
			TotalJobTime:    st.TotalJobTime,
			SessionMakespan: st.SessionMakespan,
			SpeedupX:        float64(baseline) / float64(st.SessionMakespan),
			AdmissionStalls: st.AdmissionStalls,
			EnergyJ:         st.PlatformEnergyJ,
			AvgPowerW:       st.AvgPowerW,
			PeakDrawW:       st.PeakDrawW,
		})
	}
	return rows, nil
}

// MultiJobTable renders the sweep.
func MultiJobTable(rows []MultiJobRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-6s %-8s %-14s %-16s %-9s %-8s %-10s %-8s %s\n",
		"workers", "jobs", "tasks", "job-time-sum", "session-fleet-t", "speedup", "stalls", "energy-J", "avg-W", "peak-W")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-6d %-8d %-14v %-16v %-9.2f %-8d %-10.0f %-8.1f %.1f\n",
			r.Workers, r.Jobs, r.TasksCompleted, r.TotalJobTime,
			r.SessionMakespan, r.SpeedupX, r.AdmissionStalls,
			r.EnergyJ, r.AvgPowerW, r.PeakDrawW)
	}
	return b.String()
}
