// legato-mirror runs the Smart Mirror pipeline evaluation (paper Sec. VI):
// the 2×GTX1080 workstation baseline against the Fig. 9 CPU+GPU+FPGA edge
// server, reporting FPS, power and tracking quality (Kalman + Hungarian).
//
// Usage:
//
//	legato-mirror [-frames N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"legato/internal/experiments"
	"legato/internal/mirror"
)

func main() {
	log.SetFlags(0)
	frames := flag.Int("frames", 600, "frames to evaluate")
	seed := flag.Int64("seed", 1, "scene/detector seed")
	flag.Parse()

	rows, err := experiments.Mirror(*frames, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mirror.CompareTable(rows))
}
