package faults

import (
	"testing"

	"legato/internal/ft"
	"legato/internal/hw"
	"legato/internal/monitor"
	"legato/internal/sim"
)

func refFleet(t *testing.T) []*hw.Device {
	t.Helper()
	eng := sim.NewEngine()
	return []*hw.Device{
		hw.NewDevice(eng, "cpu0", hw.XeonD()),
		hw.NewDevice(eng, "cpu1", hw.XeonD()),
		hw.NewDevice(eng, "fpga0", hw.VirtexFPGA()),
		hw.NewDevice(eng, "fpga1", hw.KintexFPGA()),
	}
}

// The sampled timeline is a pure function of (plan, device set): same seed,
// same events; a different seed moves them.
func TestScheduleDeterministic(t *testing.T) {
	devs := refFleet(t)
	plan := Plan{MTBF: ft.MTBFModel{hw.CPUx86: 100, hw.FPGA: 50}, MaxCrashes: 4, Seed: 42}
	a := plan.Schedule(devs)
	b := plan.Schedule(devs)
	if len(a) == 0 {
		t.Fatal("plan with MTBF for present classes sampled no events")
	}
	if len(a) != len(b) {
		t.Fatalf("same plan, different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	plan.Seed = 43
	c := plan.Schedule(devs)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("changing the seed left the timeline unchanged")
	}
}

// MaxCrashes truncates to the earliest crashes; the default bound is one.
func TestMaxCrashesBound(t *testing.T) {
	devs := refFleet(t)
	plan := Plan{MTBF: ft.MTBFModel{hw.CPUx86: 100, hw.FPGA: 100}, Seed: 9}
	events := plan.Schedule(devs)
	crashes := 0
	for _, ev := range events {
		if ev.Kind == Crash {
			crashes++
		}
	}
	if crashes != 1 {
		t.Fatalf("default plan sampled %d crashes, want 1", crashes)
	}

	plan.MaxCrashes = 2
	events = plan.Schedule(devs)
	var kept []Event
	for _, ev := range events {
		if ev.Kind == Crash {
			kept = append(kept, ev)
		}
	}
	if len(kept) != 2 {
		t.Fatalf("MaxCrashes=2 kept %d crashes", len(kept))
	}
	// The survivors must be the two earliest of the full four-device sample.
	all := Plan{MTBF: plan.MTBF, MaxCrashes: 4, Seed: plan.Seed}.Schedule(devs)
	var times []sim.Time
	for _, ev := range all {
		if ev.Kind == Crash {
			times = append(times, ev.At)
		}
	}
	for _, ev := range kept {
		later := 0
		for _, at := range times {
			if at < ev.At {
				later++
			}
		}
		if later >= 2 {
			t.Fatalf("kept crash at %v is not among the two earliest %v", ev.At, times)
		}
	}
}

// A class absent from the MTBF model never crashes, and the zero plan is
// disabled outright.
func TestClassImmortality(t *testing.T) {
	devs := refFleet(t)
	plan := Plan{MTBF: ft.MTBFModel{hw.GPU: 1}, MaxCrashes: 10, Seed: 3}
	if events := plan.Schedule(devs); len(events) != 0 {
		t.Fatalf("fleet without GPUs sampled %d GPU faults", len(events))
	}
	if (Plan{}).Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	if !plan.Enabled() {
		t.Fatal("plan with an MTBF model reports disabled")
	}
}

// Degrade events carry the shrunk capacity, clamped by DegradeTo.
func TestDegradeCapacity(t *testing.T) {
	devs := refFleet(t)
	plan := Plan{DegradeMTBF: ft.MTBFModel{hw.CPUx86: 100}, DegradeTo: 0.25, Seed: 5}
	events := plan.Schedule(devs)
	if len(events) == 0 {
		t.Fatal("no degrade events sampled")
	}
	cores := hw.XeonD().Cores
	for _, ev := range events {
		if ev.Kind != Degrade {
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
		if want := cores / 4; ev.Capacity != want {
			t.Fatalf("degraded capacity %d, want %d", ev.Capacity, want)
		}
	}
}

// fakeFleet records control calls for injector tests.
type fakeFleet struct {
	failed   []string
	caps     map[string]int
	setCalls int
}

func (f *fakeFleet) Fail(id string) { f.failed = append(f.failed, id) }
func (f *fakeFleet) SetCapacity(id string, cores int) {
	f.setCalls++
	f.caps[id] = cores
}
func (f *fakeFleet) Capacity(id string) int { return f.caps[id] }

// The injector applies each global fault exactly once no matter how many
// jobs cross the event time, and records it in the registry.
func TestInjectorIdempotent(t *testing.T) {
	devs := refFleet(t)
	fleet := &fakeFleet{caps: map[string]int{"cpu0": 16, "cpu1": 16}}
	reg := monitor.NewRegistry()
	plan := Plan{MTBF: ft.MTBFModel{hw.CPUx86: 100}, Seed: 1}
	in := NewInjector(plan, fleet, devs, reg)

	first := in.Crash("cpu0")
	second := in.Crash("cpu0")
	if !first || second {
		t.Fatalf("crash application: first=%v second=%v, want true/false", first, second)
	}
	if len(fleet.failed) != 1 || fleet.failed[0] != "cpu0" {
		t.Fatalf("fleet.Fail calls = %v, want exactly one for cpu0", fleet.failed)
	}
	if !in.Lost("cpu0") || in.Lost("cpu1") {
		t.Fatal("lost bookkeeping wrong")
	}
	if in.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", in.Crashes())
	}
	if reg.ScopeSnapshot("faults")["device-crashes"] != 1 {
		t.Fatalf("registry crashes = %v", reg.ScopeSnapshot("faults"))
	}

	ev := Event{Device: "cpu1", Kind: Degrade, Capacity: 8}
	if !in.Degrade(ev) || in.Degrade(ev) {
		t.Fatal("degrade not exactly-once")
	}
	if fleet.caps["cpu1"] != 8 {
		t.Fatalf("cpu1 capacity = %d after degrade, want 8", fleet.caps["cpu1"])
	}
	// Degrading an already-lost device is a no-op.
	if in.Degrade(Event{Device: "cpu0", Kind: Degrade, Capacity: 4}) {
		t.Fatal("degrade applied to a crashed device")
	}
}

// Sampler streams are deterministic per (seed, stream) and independent
// across streams.
func TestSamplerDeterministic(t *testing.T) {
	devs := refFleet(t)
	fleet := &fakeFleet{caps: map[string]int{}}
	plan := Plan{SDC: ft.SDCModel{hw.FPGA: 0.5}, Seed: 11}
	mk := func() *Injector { return NewInjector(plan, fleet, devs, nil) }

	a, b := mk().Sampler(3), mk().Sampler(3)
	if a == nil || b == nil {
		t.Fatal("sampler nil despite SDC model")
	}
	for i := 0; i < 64; i++ {
		if a(hw.FPGA, 0) != b(hw.FPGA, 0) {
			t.Fatalf("stream diverged at draw %d", i)
		}
		if a(hw.CPUx86, 0) || b(hw.CPUx86, 0) {
			t.Fatal("class absent from SDC model reported corruption")
		}
	}
	if s := mk().Sampler(4); s == nil {
		t.Fatal("second stream nil")
	}
	// A crash-only plan still arms the sampler: the extra probability
	// (undervolt SDC risk) must be able to fire without a class SDC model.
	noSDC := Plan{MTBF: ft.MTBFModel{hw.CPUx86: 1}, Seed: 11}
	s := NewInjector(noSDC, fleet, devs, nil).Sampler(0)
	if s == nil {
		t.Fatal("sampler nil for a crash-only plan")
	}
	if s(hw.CPUx86, 0) {
		t.Fatal("zero-extra draw fired without an SDC model")
	}
	if !s(hw.CPUx86, 1) {
		t.Fatal("extra=1 draw did not fire")
	}
}
