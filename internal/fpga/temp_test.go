package fpga

import "testing"

func TestTemperatureShiftsThresholds(t *testing.T) {
	p := ZC702()
	b := NewBoard(p, 20)
	if b.Temperature() != ReferenceTempC {
		t.Fatalf("default temperature: %v", b.Temperature())
	}
	if b.EffectiveVMin() != p.VMin || b.EffectiveVCrash() != p.VCrash {
		t.Fatal("thresholds shifted at reference temperature")
	}
	b.SetTemperature(85) // hot data-centre corner
	if b.EffectiveVMin() <= p.VMin || b.EffectiveVCrash() <= p.VCrash {
		t.Fatal("hot thresholds did not rise")
	}
}

func TestHotBoardFaultsEarlier(t *testing.T) {
	p := ZC702()
	cool := NewBoard(p, 21)
	hot := NewBoard(p, 21)
	hot.SetTemperature(85)
	// Just below the ambient Vmin: cool board shows few faults, hot board
	// strictly more (same weak-cell map, shifted thresholds).
	v := p.VMin - 0.005
	cool.SetVCCBRAM(v)
	hot.SetVCCBRAM(v)
	if hot.FaultCount() <= cool.FaultCount() {
		t.Fatalf("hot board not worse: hot %d vs cool %d", hot.FaultCount(), cool.FaultCount())
	}
}

func TestHotBoardCrashesAtHigherVoltage(t *testing.T) {
	p := ZC702()
	b := NewBoard(p, 22)
	// A voltage between ambient VCrash and the hot effective VCrash.
	v := p.VCrash + 0.01
	b.SetVCCBRAM(v)
	if !b.Done() {
		t.Fatal("board crashed above ambient VCrash while cool")
	}
	b.SetTemperature(85) // shift = 60 × 0.0006 = 0.036 V > 0.01 V margin
	if b.Done() {
		t.Fatal("hot board survived below its effective crash voltage")
	}
	// Cooling down alone does not revive it (needs reconfiguration).
	b.SetTemperature(ReferenceTempC)
	if b.Done() {
		t.Fatal("board revived by cooling without reconfiguration")
	}
	b.Reconfigure()
	if !b.Done() {
		t.Fatal("reconfigure after cooling failed")
	}
}

func TestGuardbandAbsorbsTemperature(t *testing.T) {
	// The vendor guardband exists to cover environmental corners: at
	// nominal voltage even a hot board must be fault-free.
	p := VC707()
	b := NewBoard(p, 23)
	b.SetTemperature(100)
	if b.FaultCount() != 0 || !b.Done() {
		t.Fatal("hot board at nominal voltage must be reliable — that is what the guardband buys")
	}
}
