// Package legato is the public facade of the LEGaTO toolset reproduction
// (B. Salami et al., DATE 2020): a single programming model over a
// heterogeneous platform in which every task can state its energy, fault
// tolerance and security requirements, exactly as the ecosystem picture of
// paper Fig. 1 promises ("All these requirements will be facilitated by a
// single programming model").
//
// A System wires together the layers of Fig. 2:
//
//   - hardware: a RECS|BOX chassis or Fig. 9 edge server (internal/hw);
//   - middleware: management firmware (internal/middleware);
//   - runtime: the OmpSs-style dependence-aware task runtime
//     (internal/taskrt) with energy-aware placement;
//   - engine: a concurrent multi-job engine (internal/engine) that runs
//     many independent task graphs in parallel over the shared fleet,
//     with per-device admission so placements never oversubscribe;
//   - fault tolerance: dual-modular replication of critical tasks on
//     diverse device classes with a voting step (internal/ft semantics);
//   - security: tasks may run inside a measured enclave with sealed I/O
//     (internal/secure).
//
// Systems are assembled with functional options and host many jobs:
//
//	sys, _ := legato.NewSystem(legato.WithPlatform(legato.EdgePlatform),
//		legato.WithPolicy(legato.MinEDP))
//	job, _ := sys.NewJob("ingest-batch")
//	raw := job.Data("raw", 1<<20)
//	clean := job.Data("clean", 1<<20)
//	_ = job.Task("preprocess").Gops(120).In(raw).Out(clean).Submit()
//	rep, err := job.Run(ctx)
//
// Jobs are context-aware end to end: Run honours cancellation and
// deadlines, and System.Close drains the engine gracefully. The legacy
// single-job surface — NewSystem(Config{...}), System.Submit, System.Run —
// is kept as thin deprecated shims over an implicit job named "main".
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the full system inventory and the API migration table.
package legato

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"legato/internal/energy"
	"legato/internal/engine"
	"legato/internal/faults"
	"legato/internal/fti"
	"legato/internal/hw"
	"legato/internal/middleware"
	"legato/internal/monitor"
	"legato/internal/obs"
	"legato/internal/power"
	"legato/internal/secure"
	"legato/internal/sim"
	"legato/internal/taskrt"
	"legato/internal/trace"
)

// Typed errors of the public surface, matchable with errors.Is through any
// wrapping layer.
var (
	// ErrGraphFrozen: the job was already handed to the engine; its task
	// graph can no longer be extended (Submit/Task after Start/Run).
	ErrGraphFrozen = errors.New("legato: job graph is frozen")
	// ErrUndeclaredRegion: a task names an input region that was never
	// declared with Job.Data nor produced by an earlier Out clause.
	ErrUndeclaredRegion = errors.New("legato: undeclared data region")
	// ErrJobCancelled: the job itself was cancelled (context cancellation
	// or deadline); Wait returns it wrapped together with the context
	// error, so errors.Is matches either.
	ErrJobCancelled = errors.New("legato: job cancelled")
	// ErrDeviceLost: a task became unplaceable because every device that
	// could host it crashed or lost the capacity to fit it.
	ErrDeviceLost = taskrt.ErrDeviceLost
	// ErrRetriesExhausted: a task failed more times than its attempt
	// budget allows.
	ErrRetriesExhausted = taskrt.ErrRetriesExhausted
	// ErrDeadlineExceeded: a task passed its virtual-clock deadline under
	// the strict deadline mode (see WithDeadlineMode).
	ErrDeadlineExceeded = taskrt.ErrDeadlineExceeded
	// ErrInvalidTask: a task specification was rejected at Submit
	// (non-positive Gops, negative Cores or Retry, non-positive Deadline).
	ErrInvalidTask = taskrt.ErrInvalidTask
)

// Policy re-exports the runtime placement objectives.
type Policy = taskrt.Policy

// Placement policies.
const (
	// MinTime places each task on the device that finishes it soonest.
	MinTime = taskrt.MinTime
	// MinEnergy places each task on the device with the least dynamic energy.
	MinEnergy = taskrt.MinEnergy
	// MinEDP minimises the energy-delay product.
	MinEDP = taskrt.MinEDP
)

// Governor re-exports the power-governor policies reshaping device
// operating points under a fleet power cap.
type Governor = power.Kind

// Governor policies.
const (
	// RaceToIdle keeps devices at nominal frequency; under cap pressure
	// jobs park until siblings release draw (run fast, idle long).
	RaceToIdle = power.RaceToIdle
	// PackAndThrottle steps devices down their DVFS ladder under cap
	// pressure, fitting more concurrent tasks at lower per-task power.
	PackAndThrottle = power.PackAndThrottle
)

// MaxUndervolt is the deepest per-task undervolt level accepted by
// TaskBuilder.Undervolt.
const MaxUndervolt = power.MaxUndervolt

// HedgePolicy re-exports the tail-tolerance policy of the task runtime: a
// watchdog on each job's virtual clock flags executions exceeding
// Multiplier × their cost-model expectation as stragglers and races a
// speculative replica on a different device (first completion wins).
type HedgePolicy = taskrt.HedgePolicy

// DeadlineMode re-exports how missed task deadlines are handled.
type DeadlineMode = taskrt.DeadlineMode

// Deadline modes.
const (
	// DeadlineStrict fails the job with ErrDeadlineExceeded when any task
	// passes its deadline.
	DeadlineStrict = taskrt.DeadlineStrict
	// DeadlineShed degrades gracefully: late low-priority tasks that never
	// started are shed (skipped, successors released), the rest continue
	// best-effort with their records flagged late.
	DeadlineShed = taskrt.DeadlineShed
)

// Event re-exports the typed runtime observability event: one
// observation of the session's lifecycle (placements, completions,
// hedges, throttles, faults, ...), stamped with virtual time, job, task
// and device. Subscribe with WithObserver or System.Events.
type Event = obs.Event

// EventKind re-exports the event taxonomy.
type EventKind = obs.Kind

// Event kinds (see DESIGN.md §5 for the full taxonomy).
const (
	EvTaskQueued        = obs.TaskQueued
	EvTaskPlaced        = obs.TaskPlaced
	EvTaskStarted       = obs.TaskStarted
	EvTaskCompleted     = obs.TaskCompleted
	EvTaskFailed        = obs.TaskFailed
	EvTaskRetried       = obs.TaskRetried
	EvTaskShed          = obs.TaskShed
	EvCheckpointBegin   = obs.CheckpointBegin
	EvCheckpointCommit  = obs.CheckpointCommit
	EvHedgeArmed        = obs.HedgeArmed
	EvHedgeLaunched     = obs.HedgeLaunched
	EvHedgeWon          = obs.HedgeWon
	EvHedgeCancelled    = obs.HedgeCancelled
	EvHedgePromoted     = obs.HedgePromoted
	EvDeadlineMissed    = obs.DeadlineMissed
	EvFaultInjected     = obs.FaultInjected
	EvGovernorThrottled = obs.GovernorThrottled
	EvGovernorRestored  = obs.GovernorRestored
	EvPowerAdmitted     = obs.PowerAdmitted
	EvPowerRefused      = obs.PowerRefused
	EvDeviceLost        = obs.DeviceLost
)

// PlatformKind selects the hardware substrate.
type PlatformKind int

const (
	// CloudPlatform is a populated RECS|BOX chassis (paper Figs. 3-4).
	CloudPlatform PlatformKind = iota
	// EdgePlatform is the Fig. 9 CPU+GPU+FPGA edge server.
	EdgePlatform
)

// devRootKey seeds enclave key derivation when the deployment does not
// provide one; production systems must use WithRootKey.
const devRootKey = "legato-development-root-key-0000"

// settings is the resolved configuration of a System.
type settings struct {
	platform  PlatformKind
	policy    Policy
	tee       secure.TEEKind
	rootKey   []byte
	workers   int
	faults    *faults.Plan
	powerCapW float64
	governor  Governor
	hedge     HedgePolicy
	dlMode    DeadlineMode
	observers []func(Event)
	eventLog  bool
	noObs     bool
}

func defaultSettings() settings {
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	return settings{
		platform: CloudPlatform,
		policy:   MinEnergy, // the project's reason to exist
		tee:      secure.SGX,
		rootKey:  []byte(devRootKey),
		workers:  workers,
	}
}

// Option configures a System under construction.
type Option interface{ apply(*settings) }

type optionFunc func(*settings)

func (f optionFunc) apply(s *settings) { f(s) }

// WithPlatform selects the hardware substrate.
func WithPlatform(p PlatformKind) Option {
	return optionFunc(func(s *settings) { s.platform = p })
}

// WithPolicy selects the placement objective (default MinEnergy).
func WithPolicy(p Policy) Option {
	return optionFunc(func(s *settings) { s.policy = p })
}

// WithTEE selects the trusted-execution technology backing secure tasks.
// Unlike the legacy Config field, the value is honoured verbatim —
// secure.SoftwareOnly is a real choice, not a sentinel for "default".
func WithTEE(k secure.TEEKind) Option {
	return optionFunc(func(s *settings) { s.tee = k })
}

// WithRootKey seeds enclave key derivation with a platform root key.
func WithRootKey(key []byte) Option {
	return optionFunc(func(s *settings) {
		if len(key) > 0 {
			s.rootKey = append([]byte(nil), key...)
		}
	})
}

// WithWorkers sets how many jobs the engine executes concurrently.
func WithWorkers(n int) Option {
	return optionFunc(func(s *settings) {
		if n > 0 {
			s.workers = n
		}
	})
}

// WithFaults arms the session with an MTBF-driven failure process (see
// faults.Plan): devices may crash or degrade at sampled virtual times, and
// task outputs may silently corrupt per the plan's SDC model. Jobs recover
// by re-placing revoked tasks on surviving devices (bounded retries with
// exponential backoff) and, when Job.Checkpoint is enabled, by restarting
// from the last committed snapshot instead of from zero.
func WithFaults(p faults.Plan) Option {
	return optionFunc(func(s *settings) {
		if p.Enabled() {
			s.faults = &p
		} else {
			s.faults = nil
		}
	})
}

// WithPowerCap arms the session with a fleet-wide power cap in watts: the
// modelled draw (static idle power of every healthy device plus all
// granted dynamic task power) never exceeds it. Placements that would
// breach the cap park until siblings release draw — or, under the
// PackAndThrottle governor, until devices are stepped down their DVFS
// ladders. Zero or negative disarms the cap.
func WithPowerCap(watts float64) Option {
	return optionFunc(func(s *settings) { s.powerCapW = watts })
}

// WithGovernor selects the power-governor policy applied under cap
// pressure (default RaceToIdle).
func WithGovernor(g Governor) Option {
	return optionFunc(func(s *settings) { s.governor = g })
}

// WithHedging arms tail-tolerant execution on every job: a watchdog on the
// job's virtual clock tracks each running task against the cost model's
// expected duration, flags it as a straggler once elapsed time exceeds
// p.Multiplier × expected, and launches a speculative replica on a
// different device. Replicas are admitted through the same core and watt
// ledgers as primaries — hedges pay their way under WithPowerCap — and the
// first execution to complete wins; the loser is cancelled and its burned
// energy reported as HedgeWastedJ. A Multiplier <= 1 leaves hedging off.
func WithHedging(p HedgePolicy) Option {
	return optionFunc(func(s *settings) { s.hedge = p })
}

// WithDeadlineMode selects how missed task deadlines (TaskBuilder.Deadline)
// are handled: DeadlineStrict (default) fails the job with
// ErrDeadlineExceeded, DeadlineShed degrades gracefully by shedding late
// low-priority tasks and best-efforting the rest.
func WithDeadlineMode(m DeadlineMode) Option {
	return optionFunc(func(s *settings) { s.dlMode = m })
}

// WithObserver registers a synchronous observer on the session event
// bus: fn sees every runtime event in global publication order. It runs
// inline on the goroutine driving the emitting job (under the bus lock),
// so it must be fast and must not block — use System.Events for a
// decoupled consumer. May be given multiple times; nil is ignored.
func WithObserver(fn func(Event)) Option {
	return optionFunc(func(s *settings) {
		if fn != nil {
			s.observers = append(s.observers, fn)
		}
	})
}

// WithEventLog arms an in-memory ordered event log for the whole
// session, retrievable with System.EventLog and embedded in
// ExportSession dumps. For a fixed seed and serialized submission
// (WithWorkers(1), jobs awaited one at a time) the log is byte-for-byte
// reproducible.
func WithEventLog() Option {
	return optionFunc(func(s *settings) { s.eventLog = true })
}

// withoutObservability disables the session event bus entirely — the
// baseline the observer-overhead benchmark gate compares against. Not
// exported: the armed-but-idle bus is already one atomic load per event.
func withoutObservability() Option {
	return optionFunc(func(s *settings) { s.noObs = true })
}

// Config parametrises a System.
//
// Deprecated: Config is the legacy all-in-one option; it implements Option
// so NewSystem(Config{...}) keeps compiling, with the historical quirks
// intact (zero Policy means MinTime, TEE secure.SoftwareOnly is coerced to
// SGX). New code should compose WithPlatform, WithPolicy, WithTEE,
// WithRootKey and WithWorkers instead.
type Config struct {
	// Platform selects the hardware substrate (default CloudPlatform).
	Platform PlatformKind
	// Policy is the placement objective.
	Policy Policy
	// TEE enables secure tasks with the given technology (default SGX).
	TEE secure.TEEKind
	// PlatformRootKey seeds enclave key derivation; a default test key is
	// used when empty (production deployments must set it).
	PlatformRootKey []byte
}

func (c Config) apply(s *settings) {
	s.platform = c.Platform
	s.policy = c.Policy
	if c.TEE == secure.SoftwareOnly {
		s.tee = secure.SGX // historical sentinel behaviour, preserved
	} else {
		s.tee = c.TEE
	}
	if len(c.PlatformRootKey) > 0 {
		s.rootKey = append([]byte(nil), c.PlatformRootKey...)
	} else {
		s.rootKey = []byte(devRootKey)
	}
}

// Requirements are a task's per-requirement knobs (Fig. 1: energy, fault
// tolerance, security around the programming model).
type Requirements struct {
	// Replicate requests dual-modular redundancy on diverse device
	// classes with a voting step (Sec. I selective replication).
	Replicate bool
	// Secure runs the task inside the system enclave, sealing its inputs
	// and outputs.
	Secure bool
}

// Task is one unit of work submitted to a job. Inputs must name regions
// that were declared with Data or produced by an earlier Out/InOut;
// referencing an undeclared input is an error. The fluent TaskBuilder
// (Job.Task) is the handle-safe way to build the same thing.
type Task struct {
	Name string
	// Gops is the computational cost.
	Gops float64
	// Cores is the requested width (default 1).
	Cores int
	// Targets restricts device classes (empty = any).
	Targets []hw.Class
	// In, Out, InOut name data dependences. Out and InOut declare their
	// regions; In requires a prior declaration.
	In, Out, InOut []string
	// Priority breaks scheduler ties.
	Priority int
	// Retry is the task's failure attempt budget under fault injection
	// (extra executions after a crash or detected corruption); zero uses
	// the engine default.
	Retry int
	// Undervolt runs the task below the vendor voltage guardband
	// (0 = guardband, up to MaxUndervolt): dynamic power drops
	// quadratically in voltage, at an exponentially growing silent-data-
	// corruption probability fed to the fault model (paper Sec. III).
	Undervolt int
	// Deadline is the task's completion budget on the job's virtual clock,
	// measured from job start; zero means none. Misses are handled per
	// WithDeadlineMode.
	Deadline time.Duration
	// Fn runs at completion.
	Fn func()
	// Req are the non-functional requirements.
	Req Requirements
}

// System is one assembled LEGaTO stack: a long-lived multi-job engine over
// one platform. It is safe for concurrent use.
type System struct {
	set settings

	eng    *engine.Engine
	reg    *monitor.Registry
	fleet  []*hw.Device
	box    *hw.RECSBox
	edge   *hw.EdgeServer
	mgr    *middleware.Manager
	tracer *trace.Tracer  // session trace; completed jobs merge into it
	bus    *obs.Bus       // session event bus (nil only via withoutObservability)
	evlog  *obs.Collector // ordered event log (nil without WithEventLog)

	mu    sync.Mutex
	def   *Job // implicit job behind the deprecated single-job surface
	evsub *obs.Subscription
}

// buildPlatform constructs a platform instance on the given clock.
func buildPlatform(kind PlatformKind, je *sim.Engine) (*hw.RECSBox, *hw.EdgeServer, []*hw.Device, error) {
	switch kind {
	case EdgePlatform:
		edge, err := hw.MirrorEdgeCPUGPUFPGA(je, "edge0")
		if err != nil {
			return nil, nil, nil, err
		}
		var devices []*hw.Device
		for _, m := range edge.Modules {
			devices = append(devices, m.Device)
		}
		return nil, edge, devices, nil
	default:
		box, err := hw.StandardCloudBox(je, "recs0")
		if err != nil {
			return nil, nil, nil, err
		}
		var devices []*hw.Device
		for _, ms := range box.Microservers() {
			devices = append(devices, ms.Device)
		}
		return box, nil, devices, nil
	}
}

// NewSystem assembles a stack. With no options it is a cloud platform with
// the MinEnergy policy, an SGX-backed enclave and a development root key;
// pass functional options (or a legacy Config value) to override.
func NewSystem(opts ...Option) (*System, error) {
	set := defaultSettings()
	for _, o := range opts {
		if o != nil {
			o.apply(&set)
		}
	}
	// Validate the security configuration before spinning anything up.
	if _, err := secure.New(set.tee, []byte("legato-system-enclave"), set.rootKey); err != nil {
		return nil, err
	}

	s := &System{set: set, reg: monitor.NewRegistry()}
	refClock := sim.NewEngine()
	box, edge, fleet, err := buildPlatform(set.platform, refClock)
	if err != nil {
		return nil, err
	}
	s.box, s.edge, s.fleet = box, edge, fleet
	if box != nil {
		s.mgr = middleware.NewManager(box)
	}
	s.tracer = trace.New(refClock)
	if !set.noObs {
		s.bus = obs.NewBus()
		for _, fn := range set.observers {
			s.bus.Observe(fn)
		}
		if set.eventLog {
			s.evlog = &obs.Collector{}
			s.bus.Observe(s.evlog.Observe)
		}
	}

	s.eng, err = engine.New(engine.Config{
		Workers: set.workers,
		Policy:  set.policy,
		NewPlatform: func(je *sim.Engine) ([]*hw.Device, error) {
			_, _, devices, err := buildPlatform(set.platform, je)
			return devices, err
		},
		Fleet:        fleet,
		Registry:     s.reg,
		Bus:          s.bus,
		Faults:       set.faults,
		PowerCapW:    set.powerCapW,
		Governor:     set.governor,
		Hedge:        set.hedge,
		DeadlineMode: set.dlMode,
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Devices lists the platform's compute devices (the reference fleet whose
// capacity the admission ledger enforces).
func (s *System) Devices() []*hw.Device { return s.fleet }

// Manager exposes the middleware firmware (nil on the edge platform).
func (s *System) Manager() *middleware.Manager { return s.mgr }

// Tracer exposes the session trace; every completed job's spans and
// counters are merged into it.
func (s *System) Tracer() *trace.Tracer { return s.tracer }

// Monitor exposes the per-job and per-device counter registry.
func (s *System) Monitor() *monitor.Registry { return s.reg }

// Platform reports the configured hardware substrate.
func (s *System) Platform() PlatformKind { return s.set.platform }

// Policy reports the configured placement objective.
func (s *System) Policy() Policy { return s.set.policy }

// TEE reports the trusted-execution technology backing secure tasks.
func (s *System) TEE() secure.TEEKind { return s.set.tee }

// Workers reports the engine's concurrency width.
func (s *System) Workers() int { return s.eng.Workers() }

// SessionStats summarises the engine session across all jobs.
type SessionStats struct {
	JobsSubmitted, JobsCompleted, JobsFailed, JobsCancelled int
	// TasksCompleted counts task executions across completed jobs.
	TasksCompleted int
	// EnergyJ sums dynamic task energy across completed jobs.
	EnergyJ float64
	// TotalJobTime is the fleet time serial submission would need (sum of
	// job makespans).
	TotalJobTime sim.Time
	// SessionMakespan is the fleet time the engine needed with its
	// concurrent lanes.
	SessionMakespan sim.Time
	// Speedup is TotalJobTime / SessionMakespan.
	Speedup float64
	// AdmissionStalls counts admission attempts that lost to a sibling
	// job (contention signal; zero means the overlap estimate is exact).
	AdmissionStalls uint64
	// TasksRetried counts task executions re-queued after crashes or
	// detected corruptions, across all jobs.
	TasksRetried int
	// TasksRestored counts completed tasks re-executed after a device loss
	// invalidated their un-checkpointed outputs.
	TasksRestored int
	// Checkpoints counts committed asynchronous job checkpoints.
	Checkpoints int
	// DevicesLost counts devices crashed by the failure process.
	DevicesLost int
	// PlatformEnergyJ adds the static (idle) energy of the surviving fleet
	// over the session makespan to EnergyJ.
	PlatformEnergyJ float64
	// AvgPowerW is PlatformEnergyJ over the session makespan.
	AvgPowerW float64
	// PowerCapW echoes the configured fleet power cap (0 = uncapped).
	PowerCapW float64
	// PeakDrawW is the high-water mark of the modelled fleet draw — never
	// above PowerCapW when a cap is armed (the peak-draw witness).
	PeakDrawW float64
	// PowerStalls counts placements refused by the watt budget.
	PowerStalls uint64
	// GovernorRescales counts governor DVFS operating-point changes.
	GovernorRescales uint64
	// StragglersDetected counts executions flagged by the tail watchdog
	// as exceeding the hedge policy's multiple of their expected span.
	StragglersDetected int
	// HedgesLaunched counts speculative replicas started across all jobs.
	HedgesLaunched int
	// HedgesWon counts replicas that beat their straggling primary.
	HedgesWon int
	// HedgesDenied counts replica launches refused by device availability
	// or the core/watt ledgers (hedges pay their way under the power cap).
	HedgesDenied int
	// HedgeWastedJ is the energy burned by cancelled losing executions —
	// the price of the tail insurance, included in PlatformEnergyJ.
	HedgeWastedJ float64
	// DeadlineMisses counts tasks that passed their deadline.
	DeadlineMisses int
	// TasksShed counts tasks skipped by graceful degradation.
	TasksShed int
}

// Stats snapshots the engine session counters.
func (s *System) Stats() SessionStats {
	st := s.eng.Stats()
	return SessionStats{
		JobsSubmitted:      st.JobsSubmitted,
		JobsCompleted:      st.JobsCompleted,
		JobsFailed:         st.JobsFailed,
		JobsCancelled:      st.JobsCancelled,
		TasksCompleted:     st.TasksCompleted,
		EnergyJ:            st.EnergyJ,
		TotalJobTime:       st.TotalJobTime,
		SessionMakespan:    st.SessionMakespan,
		Speedup:            st.Speedup(),
		AdmissionStalls:    st.AdmissionStalls,
		TasksRetried:       st.TasksRetried,
		TasksRestored:      st.TasksRestored,
		Checkpoints:        st.Checkpoints,
		DevicesLost:        st.DevicesLost,
		PlatformEnergyJ:    st.PlatformEnergyJ,
		AvgPowerW:          st.AvgPowerW,
		PowerCapW:          st.PowerCapW,
		PeakDrawW:          st.PeakDrawW,
		PowerStalls:        st.PowerStalls,
		GovernorRescales:   st.GovernorRescales,
		StragglersDetected: st.StragglersDetected,
		HedgesLaunched:     st.HedgesLaunched,
		HedgesWon:          st.HedgesWon,
		HedgesDenied:       st.HedgesDenied,
		HedgeWastedJ:       st.HedgeWastedJ,
		DeadlineMisses:     st.DeadlineMisses,
		TasksShed:          st.TasksShed,
	}
}

// Fleet exposes the shared admission ledger (capacity, in-use, peak and
// loss state per device).
func (s *System) Fleet() *engine.Fleet { return s.eng.Fleet() }

// Power exposes the shared watt ledger (cap, draw, peak-draw witness,
// governor operating points). Always non-nil; uncapped without
// WithPowerCap.
func (s *System) Power() *power.Ledger { return s.eng.Power() }

// Events returns the session's bounded event feed (buffer
// obs.DefaultBuffer): every runtime event published after the first call
// arrives on the channel in global order. If a consumer falls behind,
// events are dropped rather than stalling the dispatch loop —
// EventsDropped counts them. The channel is closed by Close. Repeated
// calls return the same shared channel.
func (s *System) Events() <-chan Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bus == nil {
		// Observability disabled: a closed channel, so consumers ranging
		// over it terminate instead of blocking forever.
		ch := make(chan Event)
		close(ch)
		return ch
	}
	if s.evsub == nil {
		s.evsub = s.bus.Subscribe(obs.DefaultBuffer)
	}
	return s.evsub.Events()
}

// EventsDropped reports how many events the Events feed discarded
// because its buffer was full (zero when Events was never called).
func (s *System) EventsDropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evsub == nil {
		return 0
	}
	return s.evsub.Dropped()
}

// EventLog returns the ordered event log collected so far; empty unless
// the session was built with WithEventLog.
func (s *System) EventLog() []Event {
	if s.evlog == nil {
		return nil
	}
	return s.evlog.Events()
}

// ExportSession writes the session as a self-contained JSON dump —
// merged tracer spans and counters, the full registry snapshot, and the
// event log when armed — the interchange format the legato-trace CLI
// loads, summarises and converts (Chrome trace_event, Paraver,
// Prometheus text). Export after the jobs of interest completed: only
// merged (finished) job traces are included.
func (s *System) ExportSession(w io.Writer) error {
	dump := obs.SessionDump{
		Name:     "legato-session",
		Spans:    s.tracer.Spans(),
		Counters: s.tracer.Counters(),
		Metrics:  s.reg.Snapshot(),
		Events:   s.EventLog(),
	}
	return dump.Encode(w)
}

// Close stops accepting jobs and drains the engine; queued jobs still run.
// If ctx fires first, outstanding jobs are cancelled. The Events feed is
// closed once the drain finishes, so ranging consumers terminate.
func (s *System) Close(ctx context.Context) error {
	err := s.eng.Shutdown(ctx)
	s.mu.Lock()
	if s.evsub != nil {
		s.evsub.Close()
	}
	s.mu.Unlock()
	return err
}

// DataHandle names a declared data region of one job. The zero value is
// invalid; handles are only usable with the job that created them.
type DataHandle struct {
	job *Job
	d   *taskrt.Data
}

// Valid reports whether the handle refers to a declared region.
func (h DataHandle) Valid() bool { return h.job != nil && h.d != nil }

// Name returns the region name.
func (h DataHandle) Name() string {
	if h.d == nil {
		return ""
	}
	return h.d.Name
}

// Size returns the declared region size in bytes.
func (h DataHandle) Size() int64 {
	if h.d == nil {
		return 0
	}
	return h.d.Size
}

// Job is one task graph scheduled by the system's engine. Build it (Data,
// Task, Submit), then Run it under a context; a Job runs once.
// A Job is safe for concurrent use while building.
type Job struct {
	sys     *System
	ej      *engine.Job
	name    string
	enclave *secure.Enclave
	tracer  *trace.Tracer

	mu        sync.Mutex
	data      map[string]*taskrt.Data
	replicas  int
	submitted int
	secureIO  int64 // bytes sealed/unsealed
	started   bool

	waitOnce sync.Once
	report   *Report
}

// NewJob creates an empty job with a private virtual clock and platform
// mirror, sharing the fleet with every other job through admission.
func (s *System) NewJob(name string) (*Job, error) {
	if name == "" {
		return nil, fmt.Errorf("legato: job needs a name")
	}
	ej, err := s.eng.NewJob(name)
	if err != nil {
		return nil, err
	}
	enclave, err := secure.New(s.set.tee, []byte("legato-system-enclave"), s.set.rootKey)
	if err != nil {
		return nil, err
	}
	j := &Job{
		sys: s, ej: ej, name: name, enclave: enclave,
		tracer: trace.New(ej.Clock()),
		data:   make(map[string]*taskrt.Data),
	}
	// samplePower records the shared watt ledger as an instant "power" span
	// on the job's clock. Draw only changes at task boundaries, so sampling
	// in Started/Finished captures every level of the draw-vs-time curve
	// (internal/plot renders it from Tracer.Series("power")).
	samplePower := func(at sim.Time) {
		j.tracer.Add(trace.Span{
			Name: "fleet-draw", Category: "power", Resource: "fleet",
			Start: at, End: at, Value: float64(s.eng.Power().Draw()),
		})
	}
	ej.Runtime().AddHooks(taskrt.Hooks{
		// A zero-width "queue" span at submission marks when the task
		// entered the graph; obs.Timelines derives queue wait from it.
		Queued: func(task string) {
			at := ej.Clock().Now()
			j.tracer.Add(trace.Span{
				Name: task, Category: "queue", Resource: task,
				Start: at, End: at,
			})
		},
		Started: func(rec taskrt.Record) { samplePower(rec.Start) },
		Finished: func(rec taskrt.Record) {
			if rec.Shed {
				j.tracer.Add(trace.Span{
					Name:     fmt.Sprintf("%s#shed", rec.Name),
					Category: "deadline", Resource: rec.Name,
					Start: rec.End, End: rec.End,
				})
				return
			}
			j.tracer.Add(trace.Span{
				Name: rec.Name, Category: "task", Resource: rec.Device,
				Start: rec.Start, End: rec.End,
			})
			samplePower(rec.End)
		},
		Retried: func(task string, attempt int, reason string, at sim.Time) {
			j.tracer.Add(trace.Span{
				Name:     fmt.Sprintf("%s#retry%d(%s)", task, attempt, reason),
				Category: "failure", Resource: task, Start: at, End: at,
			})
		},
		DeviceLost: func(deviceID string, revoked, restored int, at sim.Time) {
			j.tracer.Add(trace.Span{
				Name:     fmt.Sprintf("crash(%s) revoked=%d restored=%d", deviceID, revoked, restored),
				Category: "failure", Resource: deviceID, Start: at, End: at,
			})
		},
		Checkpointed: func(tasks int, bytes int64, start, end sim.Time) {
			j.tracer.Add(trace.Span{
				Name:     fmt.Sprintf("ckpt tasks=%d bytes=%d", tasks, bytes),
				Category: "checkpoint", Resource: name, Start: start, End: end,
			})
		},
		Straggler: func(task, device string, expected, elapsed sim.Time) {
			at := ej.Clock().Now()
			j.tracer.Add(trace.Span{
				Name:     fmt.Sprintf("%s straggling on %s (%v > %v)", task, device, elapsed, expected),
				Category: "hedge", Resource: device, Start: at, End: at,
			})
		},
		Hedged: func(task, from, to string, at sim.Time) {
			j.tracer.Add(trace.Span{
				Name:     fmt.Sprintf("%s hedge %s->%s", task, from, to),
				Category: "hedge", Resource: to, Start: at, End: at,
			})
			samplePower(at)
		},
		HedgeResolved: func(task, winner string, hedgeWon bool, wastedJ energy.Joules, start, end sim.Time) {
			outcome := "lost"
			if hedgeWon {
				outcome = "won"
			}
			j.tracer.Add(trace.Span{
				Name:     fmt.Sprintf("%s hedge %s on %s", task, outcome, winner),
				Category: "hedge", Resource: winner,
				Start: start, End: end, Value: float64(wastedJ),
			})
			samplePower(end)
		},
		DeadlineMissed: func(task string, deadline, at sim.Time, shed bool) {
			verdict := "late"
			if shed {
				verdict = "shed"
			}
			j.tracer.Add(trace.Span{
				Name:     fmt.Sprintf("%s %s (deadline %v)", task, verdict, deadline),
				Category: "deadline", Resource: task, Start: at, End: at,
			})
		},
	})
	return j, nil
}

// Name returns the job name.
func (j *Job) Name() string { return j.name }

// State reports the job's lifecycle phase ("building", "queued",
// "running", "done", "failed", "cancelled").
func (j *Job) State() string { return j.ej.State().String() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.ej.Done() }

// Cancel aborts the job if it is queued or running.
func (j *Job) Cancel() { j.ej.Cancel() }

// SetTimeout gives the job a wall-clock budget measured from submission;
// zero means none. Must be called before Start/Run.
func (j *Job) SetTimeout(d time.Duration) { j.ej.SetTimeout(d) }

// Data declares (or fetches) a named data region of the given size and
// returns its handle. Declaring an existing region returns the original
// handle; a zero-sized declaration can be widened once by a later sized
// one.
func (j *Job) Data(name string, size int64) DataHandle {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dataLocked(name, size)
}

func (j *Job) dataLocked(name string, size int64) DataHandle {
	d, ok := j.data[name]
	if !ok {
		d = j.ej.Runtime().Data(name, size)
		j.data[name] = d
	} else if d.Size == 0 && size > 0 {
		d.Size = size
	}
	return DataHandle{job: j, d: d}
}

// resolveLocked maps input names to regions, failing on any name that was
// never declared — the silent first-use-at-size-zero behaviour of the old
// API is gone.
func (j *Job) resolveLocked(kind string, names []string) ([]*taskrt.Data, error) {
	out := make([]*taskrt.Data, 0, len(names))
	for _, n := range names {
		d, ok := j.data[n]
		if !ok {
			return nil, fmt.Errorf("legato: %s dependency %q was never declared: declare it with Job.Data or produce it with an Out clause first: %w", kind, n, ErrUndeclaredRegion)
		}
		out = append(out, d)
	}
	return out, nil
}

// declareLocked maps output names to regions, declaring new ones — a task
// that writes a region is its legitimate producer.
func (j *Job) declareLocked(names []string) []*taskrt.Data {
	out := make([]*taskrt.Data, 0, len(names))
	for _, n := range names {
		h := j.dataLocked(n, 0)
		out = append(out, h.d)
	}
	return out
}

// diverseClasses returns distinct device classes present on the job's
// platform mirror that can serve the task, for replica diversity.
func (j *Job) diverseClasses(t Task) []hw.Class {
	seen := map[hw.Class]bool{}
	var classes []hw.Class
	for _, d := range j.ej.Devices() {
		c := d.Spec.Class
		if seen[c] {
			continue
		}
		if len(t.Targets) > 0 {
			ok := false
			for _, want := range t.Targets {
				if want == c {
					ok = true
				}
			}
			if !ok {
				continue
			}
		}
		if d.Spec.Cores >= max(1, t.Cores) {
			seen[c] = true
			classes = append(classes, c)
		}
	}
	return classes
}

// Submit adds a task to the job, expanding replication and security
// requirements into the underlying task graph.
func (j *Job) Submit(t Task) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitLocked(t)
}

func (j *Job) submitLocked(t Task) error {
	if t.Name == "" {
		return fmt.Errorf("legato: task needs a name")
	}
	if j.started {
		return fmt.Errorf("legato: job %q already submitted to the engine: %w", j.name, ErrGraphFrozen)
	}
	// Reject nonsense specs up front with typed errors, instead of letting
	// a zero-cost or negative-width task distort the schedule silently.
	if t.Gops <= 0 {
		return fmt.Errorf("legato: task %q needs a positive Gops cost (got %g): %w", t.Name, t.Gops, ErrInvalidTask)
	}
	if t.Cores < 0 {
		return fmt.Errorf("legato: task %q requests %d cores: %w", t.Name, t.Cores, ErrInvalidTask)
	}
	if t.Retry < 0 {
		return fmt.Errorf("legato: task %q has a negative retry budget %d: %w", t.Name, t.Retry, ErrInvalidTask)
	}
	if t.Deadline < 0 {
		return fmt.Errorf("legato: task %q has a non-positive deadline %v: %w", t.Name, t.Deadline, ErrInvalidTask)
	}
	ins, err := j.resolveLocked("input", t.In)
	if err != nil {
		return err
	}
	inouts, err := j.resolveLocked("inout", t.InOut)
	if err != nil {
		return err
	}
	outs := j.declareLocked(t.Out)

	j.submitted++
	cores := t.Cores
	if cores <= 0 {
		cores = 1
	}
	fn := t.Fn
	if t.Req.Secure {
		// Sealed I/O: charge the enclave for every byte crossing the task
		// boundary, and run the body inside the enclave.
		var ioBytes int64
		for _, deps := range [][]*taskrt.Data{ins, outs, inouts} {
			for _, d := range deps {
				ioBytes += d.Size
			}
		}
		inner := fn
		fn = func() {
			j.mu.Lock()
			j.secureIO += ioBytes
			j.mu.Unlock()
			j.enclave.RunSecure(func() {
				if blob, err := j.enclave.Seal(make([]byte, min64(ioBytes, 1<<16))); err == nil {
					_, _ = j.enclave.Unseal(blob)
				}
				if inner != nil {
					inner()
				}
			})
		}
	}

	rt := j.ej.Runtime()
	if !t.Req.Replicate {
		return rt.Submit(taskrt.Task{
			Name: t.Name, Gops: t.Gops, Cores: cores, Targets: t.Targets,
			In: ins, Out: outs, InOut: inouts,
			Priority: t.Priority, Critical: false, Retry: t.Retry,
			Undervolt: t.Undervolt, Deadline: t.Deadline, Fn: fn,
		})
	}

	// Dual-modular redundancy: two replicas on diverse classes write to
	// shadow regions; a vote task publishes to the real outputs.
	classes := j.diverseClasses(t)
	if len(classes) == 0 {
		return fmt.Errorf("legato: no device can host replicated task %q", t.Name)
	}
	shadowA := j.dataLocked(t.Name+"/replicaA", 64).d
	shadowB := j.dataLocked(t.Name+"/replicaB", 64).d
	targetA := []hw.Class{classes[0]}
	targetB := []hw.Class{classes[len(classes)-1]} // different class when available
	if err := rt.Submit(taskrt.Task{
		Name: t.Name + "#a", Gops: t.Gops, Cores: cores, Targets: targetA,
		In: append(append([]*taskrt.Data{}, ins...), inouts...), Out: []*taskrt.Data{shadowA},
		Priority: t.Priority, Critical: true, Retry: t.Retry,
		Undervolt: t.Undervolt, Deadline: t.Deadline, Fn: fn,
	}); err != nil {
		return err
	}
	if err := rt.Submit(taskrt.Task{
		Name: t.Name + "#b", Gops: t.Gops, Cores: cores, Targets: targetB,
		In: append(append([]*taskrt.Data{}, ins...), inouts...), Out: []*taskrt.Data{shadowB},
		Priority: t.Priority, Critical: true, Retry: t.Retry,
		Undervolt: t.Undervolt, Deadline: t.Deadline,
	}); err != nil {
		return err
	}
	j.replicas++
	// The vote publishes the replicated result, so the user's deadline
	// binds the whole expansion through its terminal task.
	return rt.Submit(taskrt.Task{
		Name: t.Name + "#vote", Gops: 0.01, Cores: 1,
		In:  []*taskrt.Data{shadowA, shadowB},
		Out: outs, InOut: inouts,
		Priority: t.Priority, Critical: true, Retry: t.Retry,
		Deadline: t.Deadline,
	})
}

// Checkpoint opts the job into periodic asynchronous checkpoints at the
// given FTI level: every `every` task completions a snapshot of the
// outputs produced since the previous one is captured, committing after
// the level's write cost (fti.LevelCost). After a device loss, only tasks
// whose outputs were never captured re-execute, charged the level's
// restore cost first. Must be called before Start/Run.
func (j *Job) Checkpoint(every int, level fti.Level) error {
	if every <= 0 {
		return fmt.Errorf("legato: checkpoint interval must be positive (got %d)", every)
	}
	if level < fti.L1 || level > fti.L4 {
		return fmt.Errorf("legato: unknown checkpoint level %d", level)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started {
		return fmt.Errorf("legato: job %q already submitted to the engine: %w", j.name, ErrGraphFrozen)
	}
	j.ej.Runtime().SetCheckpoint(every,
		func(bytes int64) sim.Time { return fti.LevelCost(level, bytes) },
		func(bytes int64) sim.Time { return fti.RestoreCost(level, bytes) })
	return nil
}

// Start submits the job to the engine without waiting. The context governs
// the whole job lifetime: cancel it to abort the job even mid-run.
func (j *Job) Start(ctx context.Context) error {
	j.mu.Lock()
	if j.started {
		j.mu.Unlock()
		return fmt.Errorf("legato: job %q already started: %w", j.name, ErrGraphFrozen)
	}
	j.started = true
	j.mu.Unlock()
	return j.sys.eng.Submit(ctx, j.ej)
}

// Run submits the job and blocks until it completes, is cancelled, or ctx
// fires.
func (j *Job) Run(ctx context.Context) (*Report, error) {
	if err := j.Start(ctx); err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Wait blocks until the job completes (or ctx fires — which abandons the
// wait, not the job) and returns its report. The report is only ever
// assembled from a terminal result, and a cancelled job yields a typed
// error matching both ErrJobCancelled and the underlying context error —
// never a nil report with a nil error.
func (j *Job) Wait(ctx context.Context) (*Report, error) {
	res, err := j.ej.Wait(ctx)
	if err != nil {
		if j.ej.State() == engine.Cancelled {
			// The job itself was cancelled (not just this wait abandoned).
			return nil, fmt.Errorf("legato: job %q cancelled: %w", j.name, errors.Join(ErrJobCancelled, err))
		}
		return nil, err
	}
	if res == nil {
		// Defensive: a terminal job without result or error would otherwise
		// surface as (nil, nil).
		return nil, fmt.Errorf("legato: job %q finished without a result: %w", j.name, ErrJobCancelled)
	}
	j.waitOnce.Do(func() { j.buildReport(res) })
	return j.report, nil
}

// buildReport assembles the job report and merges the job's trace and
// security accounting into the session.
func (j *Job) buildReport(res *taskrt.Result) {
	j.mu.Lock()
	replicas := j.replicas
	j.mu.Unlock()
	rep := &Report{
		Makespan:        res.Makespan,
		Records:         res.Records,
		TaskEnergyJ:     res.EnergyJ,
		SecurityEnergyJ: j.enclave.EnergyNJ * 1e-9,
		ReplicatedTasks: replicas,
		Retries:         res.Retries,
		Restores:        res.Restores,
		Checkpoints:     res.Checkpoints,
		SDCDetected:     res.SDCDetected,
		SDCSilent:       res.SDCSilent,
		Stragglers:      res.Stragglers,
		HedgesLaunched:  res.HedgesLaunched,
		HedgesWon:       res.HedgesWon,
		HedgeWastedJ:    float64(res.HedgeWastedJ),
		DeadlineMisses:  res.DeadlineMisses,
		TasksShed:       res.TasksShed,
		Energy:          energy.NewReport(),
	}
	for _, d := range j.ej.Devices() {
		rep.Energy.Add(d.ID, d.Meter().Energy())
		rep.PlatformEnergyJ += d.Meter().Energy()
	}
	if sec := sim.ToSeconds(res.Makespan); sec > 0 {
		rep.EDPJs = rep.TaskEnergyJ * sec
		rep.AvgPowerW = rep.PlatformEnergyJ / sec
	}
	j.report = rep
	j.tracer.Count("jobs", 1)
	j.sys.tracer.Merge(j.tracer)
}

// TaskBuilder accumulates one task fluently; Submit finalises it. Builder
// errors (foreign handles) surface at Submit.
type TaskBuilder struct {
	job  *Job
	t    Task
	deps struct{ in, out, inout []string }
	err  error
}

// Task starts a fluent task declaration on the job.
func (j *Job) Task(name string) *TaskBuilder {
	b := &TaskBuilder{job: j}
	b.t.Name = name
	return b
}

// Gops sets the computational cost.
func (b *TaskBuilder) Gops(g float64) *TaskBuilder { b.t.Gops = g; return b }

// Cores sets the requested width.
func (b *TaskBuilder) Cores(n int) *TaskBuilder { b.t.Cores = n; return b }

// On restricts placement to the given device classes.
func (b *TaskBuilder) On(classes ...hw.Class) *TaskBuilder {
	b.t.Targets = append(b.t.Targets, classes...)
	return b
}

// Priority breaks scheduler ties (higher first).
func (b *TaskBuilder) Priority(p int) *TaskBuilder { b.t.Priority = p; return b }

// Do attaches a completion callback.
func (b *TaskBuilder) Do(fn func()) *TaskBuilder { b.t.Fn = fn; return b }

func (b *TaskBuilder) handles(kind string, hs []DataHandle) []string {
	names := make([]string, 0, len(hs))
	for _, h := range hs {
		if !h.Valid() {
			b.err = fmt.Errorf("legato: task %q: invalid %s handle", b.t.Name, kind)
			continue
		}
		if h.job != b.job {
			b.err = fmt.Errorf("legato: task %q: %s handle %q belongs to job %q",
				b.t.Name, kind, h.Name(), h.job.name)
			continue
		}
		names = append(names, h.Name())
	}
	return names
}

// In declares read dependences.
func (b *TaskBuilder) In(hs ...DataHandle) *TaskBuilder {
	b.deps.in = append(b.deps.in, b.handles("input", hs)...)
	return b
}

// Out declares write dependences.
func (b *TaskBuilder) Out(hs ...DataHandle) *TaskBuilder {
	b.deps.out = append(b.deps.out, b.handles("output", hs)...)
	return b
}

// InOut declares read-write dependences.
func (b *TaskBuilder) InOut(hs ...DataHandle) *TaskBuilder {
	b.deps.inout = append(b.deps.inout, b.handles("inout", hs)...)
	return b
}

// Retry sets the task's failure attempt budget under fault injection
// (extra executions after a crash or detected corruption); zero keeps the
// engine default.
func (b *TaskBuilder) Retry(n int) *TaskBuilder { b.t.Retry = n; return b }

// Undervolt runs the task below the vendor voltage guardband at the given
// level (1..MaxUndervolt): dynamic power drops quadratically in voltage,
// at an exponentially growing silent-data-corruption probability fed to
// the fault model. Pair deep levels with Replicated so the vote catches
// what the guardband no longer does.
func (b *TaskBuilder) Undervolt(level int) *TaskBuilder { b.t.Undervolt = level; return b }

// Deadline gives the task a completion budget on the job's virtual clock,
// measured from job start. A non-positive d is rejected at Submit with
// ErrInvalidTask; how a miss is handled depends on WithDeadlineMode.
func (b *TaskBuilder) Deadline(d time.Duration) *TaskBuilder {
	if d <= 0 && b.err == nil {
		b.err = fmt.Errorf("legato: task %q: deadline must be positive (got %v): %w", b.t.Name, d, ErrInvalidTask)
	}
	b.t.Deadline = d
	return b
}

// Secure runs the task inside the system enclave with sealed I/O.
func (b *TaskBuilder) Secure() *TaskBuilder { b.t.Req.Secure = true; return b }

// Replicated requests dual-modular redundancy with a vote.
func (b *TaskBuilder) Replicated() *TaskBuilder { b.t.Req.Replicate = true; return b }

// Submit finalises the task into the job's graph.
func (b *TaskBuilder) Submit() error {
	if b.err != nil {
		return b.err
	}
	t := b.t
	t.In, t.Out, t.InOut = b.deps.in, b.deps.out, b.deps.inout
	return b.job.Submit(t)
}

// Report is the outcome of a job run.
type Report struct {
	Makespan sim.Time
	Records  []taskrt.Record
	// TaskEnergyJ is the dynamic energy of all task executions.
	TaskEnergyJ float64
	// PlatformEnergyJ integrates every device meter (idle + dynamic) of
	// the job's platform view.
	PlatformEnergyJ float64
	// SecurityEnergyJ is the job enclave's accumulated cost.
	SecurityEnergyJ float64
	// ReplicatedTasks counts DMR-expanded submissions.
	ReplicatedTasks int
	// Retries counts task executions re-queued after a crash or a detected
	// corruption.
	Retries int
	// Restores counts completed tasks re-executed because a device loss
	// invalidated their un-checkpointed outputs.
	Restores int
	// Checkpoints counts committed asynchronous checkpoints.
	Checkpoints int
	// SDCDetected counts silent corruptions caught by the replica vote.
	SDCDetected int
	// SDCSilent counts corruptions that went undetected (the task was not
	// replicated).
	SDCSilent int
	// Stragglers counts executions the tail watchdog flagged as exceeding
	// the hedge policy's multiple of their expected span.
	Stragglers int
	// HedgesLaunched counts speculative replicas started for this job.
	HedgesLaunched int
	// HedgesWon counts replicas that beat their straggling primary.
	HedgesWon int
	// HedgeWastedJ is the energy burned by cancelled losing executions.
	HedgeWastedJ float64
	// DeadlineMisses counts tasks that passed their deadline.
	DeadlineMisses int
	// TasksShed counts tasks skipped by graceful degradation
	// (DeadlineShed): they never executed and their records say so.
	TasksShed int
	// EDPJs is the job's energy-delay product: TaskEnergyJ × makespan in
	// joule-seconds, the quantity the MinEDP policy optimises.
	EDPJs float64
	// AvgPowerW is PlatformEnergyJ over the job makespan.
	AvgPowerW float64
	// Energy is the per-device breakdown.
	Energy *energy.Report
}

// defaultJob returns the implicit job behind the deprecated single-job
// surface, creating it on first use.
func (s *System) defaultJob() (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.def == nil {
		j, err := s.NewJob("main")
		if err != nil {
			return nil, err
		}
		s.def = j
	}
	return s.def, nil
}

// Data declares (or fetches) a named data region on the implicit job.
//
// Deprecated: create a Job with NewJob and use Job.Data.
func (s *System) Data(name string, size int64) DataHandle {
	j, err := s.defaultJob()
	if err != nil {
		return DataHandle{}
	}
	return j.Data(name, size)
}

// Submit adds a task to the implicit job.
//
// Deprecated: create a Job with NewJob and use Job.Submit or Job.Task.
func (s *System) Submit(t Task) error {
	j, err := s.defaultJob()
	if err != nil {
		return err
	}
	return j.Submit(t)
}

// Run executes the implicit job and returns its report.
//
// Deprecated: create a Job with NewJob and use Job.Run with a context.
func (s *System) Run() (*Report, error) { return s.RunContext(context.Background()) }

// RunContext executes the implicit job under ctx and returns its report.
// Afterwards the single-job surface starts a fresh implicit job.
//
// Deprecated: create a Job with NewJob and use Job.Run.
func (s *System) RunContext(ctx context.Context) (*Report, error) {
	j, err := s.defaultJob()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.def = nil
	s.mu.Unlock()
	return j.Run(ctx)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
