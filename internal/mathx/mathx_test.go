package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixMulIdentity(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	id := Identity(2)
	got := id.Mul(m)
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("I*M != M at %d: got %v want %v", i, got.Data[i], m.Data[i])
		}
	}
}

func TestMatrixMulKnown(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{5, 6, 7, 8})
	got := a.Mul(b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if got.Data[i] != w {
			t.Fatalf("at %d: got %v want %v", i, got.Data[i], w)
		}
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{4, 3, 2, 1})
	sum := a.Add(b)
	for _, v := range sum.Data {
		if v != 5 {
			t.Fatalf("add: got %v want 5", v)
		}
	}
	diff := sum.Sub(b)
	for i := range a.Data {
		if diff.Data[i] != a.Data[i] {
			t.Fatalf("sub did not invert add")
		}
	}
	twice := a.Scale(2)
	for i := range a.Data {
		if twice.Data[i] != 2*a.Data[i] {
			t.Fatalf("scale: got %v want %v", twice.Data[i], 2*a.Data[i])
		}
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape: %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixInverse(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{4, 7, 2, 3, 6, 1, 2, 5, 3})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatalf("inverse: %v", err)
	}
	prod := a.Mul(inv)
	id := Identity(3)
	for i := range id.Data {
		if !almostEq(prod.Data[i], id.Data[i], 1e-9) {
			t.Fatalf("A*A^-1 != I at %d: %v", i, prod.Data[i])
		}
	}
}

func TestMatrixInverseSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := a.Inverse(); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestMatrixSolve(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 3})
	b := NewMatrixFrom(2, 1, []float64{5, 10})
	x, err := a.Solve(b)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	if !almostEq(x.At(0, 0), 1, 1e-9) || !almostEq(x.At(1, 0), 3, 1e-9) {
		t.Fatalf("solve got (%v, %v), want (1, 3)", x.At(0, 0), x.At(1, 0))
	}
}

// Property: inverting a random well-conditioned matrix and multiplying back
// yields the identity.
func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 2 + rng.Intn(4)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.Float64()*4 - 2
		}
		// Diagonal dominance guarantees invertibility.
		for i := 0; i < n; i++ {
			m.Set(i, i, m.At(i, i)+float64(n)*3)
		}
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		prod := m.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1.0
				}
				if !almostEq(prod.At(i, j), want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("mean: got %v want 5", m)
	}
	if sd := StdDev(xs); !almostEq(sd, 2.13808993529939, 1e-9) {
		t.Fatalf("stddev: got %v", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice stats should be zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("p%v: got %v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestMinMaxSumClamp(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("min/max/sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-2, 0, 3) != 0 || Clamp(1, 0, 3) != 1 {
		t.Fatal("clamp wrong")
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9, 11}
	a, b := LinearFit(xs, ys)
	if !almostEq(a, 3, 1e-9) || !almostEq(b, 2, 1e-9) {
		t.Fatalf("fit got a=%v b=%v, want 3, 2", a, b)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	a, b := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if b != 0 || !almostEq(a, 2, 1e-12) {
		t.Fatalf("constant-x fit should be flat mean: a=%v b=%v", a, b)
	}
}

func TestMultiLinearFit(t *testing.T) {
	// y = 2*x0 - x1 + 4 with a few samples.
	X := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {3, 0}}
	y := make([]float64, len(X))
	for i, row := range X {
		y[i] = 2*row[0] - row[1] + 4
	}
	w, err := MultiLinearFit(X, y)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if !almostEq(w[0], 2, 1e-6) || !almostEq(w[1], -1, 1e-6) || !almostEq(w[2], 4, 1e-6) {
		t.Fatalf("weights: %v", w)
	}
}

func TestExpFit(t *testing.T) {
	// y = 5·e^{-3x}
	xs := []float64{0, 0.1, 0.2, 0.3, 0.4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Exp(-3*x)
	}
	A, k := ExpFit(xs, ys)
	if !almostEq(A, 5, 1e-9) || !almostEq(k, -3, 1e-9) {
		t.Fatalf("expfit got A=%v k=%v", A, k)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
