package experiments

import "testing"

func TestMultiJobExperiment(t *testing.T) {
	rows, err := MultiJob([]int{1, 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	serial, conc := rows[0], rows[1]
	if serial.SessionMakespan != serial.TotalJobTime {
		t.Fatalf("serial session %v != job-time sum %v",
			serial.SessionMakespan, serial.TotalJobTime)
	}
	if conc.TotalJobTime != serial.TotalJobTime {
		t.Fatalf("job work differs across widths: %v vs %v",
			conc.TotalJobTime, serial.TotalJobTime)
	}
	if conc.SpeedupX < 2 {
		t.Fatalf("speedup %.2fx, want >= 2x", conc.SpeedupX)
	}
	if conc.TasksCompleted != 8*4*5 {
		t.Fatalf("tasks = %d", conc.TasksCompleted)
	}
	if MultiJobTable(rows) == "" {
		t.Fatal("empty table")
	}
}
