package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"legato/internal/sim"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := TaskQueued; k <= DeviceLost; k++ {
		name := k.String()
		if strings.Contains(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		var back Kind
		if err := back.UnmarshalText([]byte(name)); err != nil {
			t.Fatalf("unmarshal %q: %v", name, err)
		}
		if back != k {
			t.Fatalf("round trip %q: got %v want %v", name, back, k)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("no-such-kind")); err == nil {
		t.Fatal("unknown kind name must fail to parse")
	}
}

func TestBusSequencesAndObserves(t *testing.T) {
	b := NewBus()
	var c Collector
	b.Observe(c.Observe)
	for i := 0; i < 3; i++ {
		b.Publish(Event{At: sim.Time(i) * sim.Time(time.Second), Kind: TaskStarted, Task: fmt.Sprintf("t%d", i)})
	}
	events := c.Events()
	if len(events) != 3 {
		t.Fatalf("collected %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestNilAndIdleBusArePassive(t *testing.T) {
	var nilBus *Bus
	nilBus.Publish(Event{Kind: TaskStarted}) // must not panic
	if nilBus.Active() {
		t.Fatal("nil bus reports active")
	}
	b := NewBus()
	b.Publish(Event{Kind: TaskStarted})
	if b.Active() {
		t.Fatal("idle bus reports active")
	}
	sub := b.Subscribe(1)
	if !b.Active() {
		t.Fatal("bus with subscription reports inactive")
	}
	sub.Close()
	if b.Active() {
		t.Fatal("bus active after last subscription closed")
	}
	// Events published while idle are invisible: the next listener's
	// stream starts at the current sequence.
	b.Publish(Event{Kind: TaskStarted})
	var c Collector
	b.Observe(c.Observe)
	b.Publish(Event{Kind: TaskCompleted})
	if got := c.Events(); len(got) != 1 || got[0].Kind != TaskCompleted {
		t.Fatalf("observer saw %v, want one task-completed", got)
	}
}

func TestSubscriptionDropsWhenFullAndCounts(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(2)
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: TaskQueued})
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("dropped %d, want 3 (buffer 2, published 5)", got)
	}
	sub.Close()
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("received %d buffered events after close, want 2", n)
	}
	sub.Close() // double close is a no-op
}

func TestBusConcurrentPublishRace(t *testing.T) {
	b := NewBus()
	var c Collector
	b.Observe(c.Observe)
	sub := b.Subscribe(8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Events() {
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish(Event{Kind: TaskStarted, Job: fmt.Sprintf("j%d", g)})
			}
		}(g)
	}
	wg.Wait()
	sub.Close()
	<-done
	if c.Len() != 800 {
		t.Fatalf("observer saw %d events, want 800", c.Len())
	}
	// Sequence numbers are the global publication order: dense 1..800.
	seen := make(map[uint64]bool)
	for _, e := range c.Events() {
		seen[e.Seq] = true
	}
	for s := uint64(1); s <= 800; s++ {
		if !seen[s] {
			t.Fatalf("sequence %d missing", s)
		}
	}
}

func TestFormatLogStable(t *testing.T) {
	events := []Event{
		{Seq: 1, At: sim.Time(1500 * time.Millisecond), Kind: TaskPlaced, Job: "render", Task: "stage0", Device: "gpu0", Value: 8},
		{Seq: 2, At: sim.Time(2 * time.Second), Kind: PowerRefused, Job: "render", Task: "stage1", Device: "gpu1", Value: 120, Detail: "cap"},
	}
	got := FormatLog(events)
	want := "     1     1.500000s task-placed        job=render task=stage0 dev=gpu0 v=8\n" +
		"     2     2.000000s power-refused      job=render task=stage1 dev=gpu1 v=120 (cap)\n"
	if got != want {
		t.Fatalf("log rendering drifted:\ngot:\n%swant:\n%s", got, want)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{Seq: 7, At: sim.Time(3 * time.Second), Kind: HedgeWon, Job: "j", Task: "t", Device: "d", Value: 1.5, Detail: "x"}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"kind":"hedge-won"`) {
		t.Fatalf("kind not marshalled by name: %s", blob)
	}
	var out Event
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

// BenchmarkPublishDisabled witnesses the fast path: publishing on a bus
// nobody listens to must be a single atomic load, no allocation.
func BenchmarkPublishDisabled(b *testing.B) {
	bus := NewBus()
	e := Event{Kind: TaskStarted, Job: "j", Task: "t", Device: "d"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(e)
	}
}
