// Infection Research (paper Sec. II-F, partner HZI): align pathogen DNA
// reads against a reference with Smith-Waterman, decomposed into an
// anti-diagonal wavefront of LEGaTO tasks, comparing placement policies —
// the same alignment, cheaper energy under MinEnergy.
package main

import (
	"fmt"
	"log"

	"legato/internal/bio"
	"legato/internal/hw"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

func main() {
	log.SetFlags(0)

	reference := bio.RandomDNA(512, 101)
	// A "read" that truly matches a slice of the reference, with two SNPs.
	read := []byte(reference[200:328])
	read[40] = 'A'
	read[90] = 'C'

	scoring := bio.DefaultScoring()
	serial := bio.SmithWaterman(reference, string(read), scoring)
	fmt.Printf("serial reference: score %d, alignment ends at ref position %d\n",
		serial.Score, serial.EndI)

	for _, policy := range []taskrt.Policy{taskrt.MinTime, taskrt.MinEnergy} {
		eng := sim.NewEngine()
		devices := []*hw.Device{
			hw.NewDevice(eng, "xeon0", hw.XeonD()),
			hw.NewDevice(eng, "arm0", hw.ARMv8Server()),
			hw.NewDevice(eng, "jetson0", hw.JetsonTX2()),
		}
		res, err := bio.SmithWatermanWavefront(eng, devices, policy, reference, string(read), scoring, 64)
		if err != nil {
			log.Fatal(err)
		}
		if res.Alignment.Score != serial.Score {
			log.Fatalf("wavefront diverged from serial: %d vs %d", res.Alignment.Score, serial.Score)
		}
		fmt.Printf("%-10s: %3d tiles, makespan %8.4f s, task energy %7.4f J (score %d ✓)\n",
			policy, res.Tiles, sim.ToSeconds(res.Makespan), res.EnergyJ, res.Alignment.Score)
	}
	fmt.Println("\nboth policies produce the identical alignment; the energy policy")
	fmt.Println("shifts wavefront tiles to the low-power devices at some makespan cost.")
}
