// legato-bench regenerates every table and figure of the paper's
// evaluation in one run, printing paper-vs-measured tables — the source of
// the numbers recorded in EXPERIMENTS.md.
//
// Usage:
//
//	legato-bench [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"legato/internal/experiments"
	"legato/internal/mirror"
)

func section(title string) {
	fmt.Printf("\n========================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("========================================================================\n")
}

func main() {
	log.SetFlags(0)
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	flag.Parse()

	nodes := []int{1, 4, 8, 16}
	sizes := []float64{16, 32}
	frames := 600
	jobs := 600
	if *quick {
		nodes = []int{1, 4}
		sizes = []float64{16}
		frames = 200
		jobs = 200
	}

	section("E7 (Figs. 3-4): RECS|BOX platform")
	inv, err := experiments.RECSBoxInventory()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(inv)

	section("E1/E2 (Fig. 5): FPGA undervolting")
	fig5, err := experiments.Fig5(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig5.Table())

	section("E3/E4 (Fig. 6): Heat2D checkpoint/restart + MTBF estimate")
	fig6, err := experiments.Fig6(nodes, sizes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig6.Table())
	factor, err := experiments.MTBF(fig6, sizes[0], 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MTBF sustainability factor (Daly, 4h reference): %.1fx (paper: 7x)\n", factor)

	section("E5 (Fig. 7): HEATS energy/performance trade-off")
	heats, err := experiments.HEATS([]float64{0, 0.25, 0.5, 0.75, 1}, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(heats.Table())

	section("E6 (Sec. VI): Smart Mirror")
	mrows, err := experiments.Mirror(frames, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mirror.CompareTable(mrows))

	section("E8 (Sec. III-C): NN inference under undervolting")
	mlRows, baseline, err := experiments.UndervoltML(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.MLTable(mlRows, baseline))

	section("E9 (Sec. I): selective replication")
	rep, err := experiments.Replication(jobs, 5, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.ReplicationTable(rep))

	section("E10 (Sec. II-C): XiTAO elasticity")
	xt, err := experiments.XiTAOElasticity(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.XiTAOTable(xt))

	section("E11: concurrent multi-job engine throughput")
	widths := []int{1, 2, 4, 8}
	mjJobs := 8
	if *quick {
		widths = []int{1, 4}
		mjJobs = 4
	}
	mj, err := experiments.MultiJob(widths, mjJobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.MultiJobTable(mj))

	section("E12: resilient session under MTBF-driven device loss")
	rsJobs, rsWorkers := 8, 8
	if *quick {
		rsJobs, rsWorkers = 4, 4
	}
	rs, err := experiments.Resilient(rsJobs, rsWorkers, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.ResilientTable(rs))

	section("E13: fleet power cap and energy-aware placement")
	pcJobs, pcWorkers := 8, 8
	if *quick {
		pcJobs, pcWorkers = 4, 4
	}
	pc, err := experiments.PowerCap(pcJobs, pcWorkers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.PowerCapTable(pc))

	section("E14: tail latency under silent degradation, hedged vs unhedged")
	tlJobs, tlWorkers := 6, 4
	if *quick {
		tlJobs, tlWorkers = 4, 2
	}
	tl, err := experiments.Tail(tlJobs, tlWorkers, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.TailTable(tl))

	section("Ablation: SECDED ECC mitigation for sub-guardband operation")
	eccRows, err := experiments.ECCMitigation(64<<10, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.ECCTable(eccRows))
}
