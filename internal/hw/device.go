// Package hw models the heterogeneous hardware substrate of the LEGaTO
// project: compute devices (CPU, GPU, FPGA, DFE, SoC), their power and
// performance characteristics including DVFS, and the RECS|BOX microserver
// platform of paper Figs. 3-4 together with the Smart-Mirror edge server of
// Fig. 9.
//
// Everything is a behavioural model: devices expose capacity, a
// work→duration mapping and a utilisation→power mapping, which is exactly
// the surface the runtimes (taskrt, xitao), the scheduler (heats) and the
// use cases (mirror) consume.
package hw

import (
	"fmt"

	"legato/internal/energy"
	"legato/internal/sim"
)

// Class enumerates the device families LEGaTO targets (paper Sec. II-A).
type Class int

const (
	// CPUx86 is a high-performance x86 microserver CPU (COM Express).
	CPUx86 Class = iota
	// CPUARM is an ARM64 CPU (low-power or COM Express ARMv8).
	CPUARM
	// GPU is a discrete or SoC GPU accelerator.
	GPU
	// FPGA is a reconfigurable-fabric accelerator.
	FPGA
	// DFE is a Maxeler-style dataflow engine.
	DFE
)

// String names the device class.
func (c Class) String() string {
	switch c {
	case CPUx86:
		return "cpu-x86"
	case CPUARM:
		return "cpu-arm"
	case GPU:
		return "gpu"
	case FPGA:
		return "fpga"
	case DFE:
		return "dfe"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// DVFSState is one frequency/voltage operating point. Dynamic power scales
// as f·V² (paper Sec. III: "dynamic power is quadratic in voltage").
type DVFSState struct {
	Name string
	// FreqGHz is the clock at this state.
	FreqGHz float64
	// Voltage is the supply voltage at this state, in volts.
	Voltage float64
}

// Spec describes a device model: capability and power characteristics.
type Spec struct {
	Name  string
	Class Class
	// Cores is the parallel width (CPU cores, GPU SMs, FPGA regions).
	Cores int
	// MemBytes is the device-local memory capacity.
	MemBytes int64
	// GOPS is sustained giga-operations/second at the nominal DVFS state
	// with all cores busy.
	GOPS float64
	// IdleWatts is the draw at zero utilisation, nominal DVFS.
	IdleWatts energy.Watts
	// PeakWatts is the draw at full utilisation, nominal DVFS.
	PeakWatts energy.Watts
	// States are the supported DVFS operating points; States[0] is nominal.
	// An empty slice means a single implicit nominal state (1 GHz, 1 V).
	States []DVFSState
}

// nominal returns the nominal DVFS state.
func (s *Spec) nominal() DVFSState {
	if len(s.States) == 0 {
		return DVFSState{Name: "nominal", FreqGHz: 1, Voltage: 1}
	}
	return s.States[0]
}

// Device is an instantiated piece of hardware with an operating point,
// a utilisation level and an attached power meter.
type Device struct {
	Spec Spec
	ID   string

	eng   *sim.Engine
	meter *energy.Meter

	stateIdx int
	busy     int // cores currently busy
	healthy  bool
}

// NewDevice instantiates spec with an identifier; the device starts healthy,
// idle, at the nominal DVFS state.
func NewDevice(eng *sim.Engine, id string, spec Spec) *Device {
	d := &Device{Spec: spec, ID: id, eng: eng, healthy: true}
	d.meter = energy.NewMeter(eng, id)
	d.updatePower()
	return d
}

// Meter exposes the device power meter.
func (d *Device) Meter() *energy.Meter { return d.meter }

// Healthy reports whether the device is operational.
func (d *Device) Healthy() bool { return d.healthy }

// Fail marks the device failed: zero power, no capacity.
func (d *Device) Fail() {
	d.healthy = false
	d.meter.SetPower(0)
}

// Repair restores a failed device to idle.
func (d *Device) Repair() {
	d.healthy = true
	d.busy = 0
	d.updatePower()
}

// State returns the current DVFS state.
func (d *Device) State() DVFSState {
	if len(d.Spec.States) == 0 {
		return d.Spec.nominal()
	}
	return d.Spec.States[d.stateIdx]
}

// StateIndex returns the index of the current DVFS state in Spec.States
// (0 for devices without explicit states).
func (d *Device) StateIndex() int {
	if len(d.Spec.States) == 0 {
		return 0
	}
	return d.stateIdx
}

// SetState selects DVFS state i (index into Spec.States).
func (d *Device) SetState(i int) error {
	if i < 0 || i >= len(d.Spec.States) {
		return fmt.Errorf("hw: device %s has no DVFS state %d", d.ID, i)
	}
	d.stateIdx = i
	d.updatePower()
	return nil
}

// freqScale is current frequency relative to nominal.
func (d *Device) freqScale() float64 {
	nom := d.Spec.nominal()
	cur := d.State()
	if nom.FreqGHz == 0 {
		return 1
	}
	return cur.FreqGHz / nom.FreqGHz
}

// powerScale is dynamic-power scaling f·V² relative to nominal.
func (d *Device) powerScale() float64 {
	nom := d.Spec.nominal()
	cur := d.State()
	if nom.FreqGHz == 0 || nom.Voltage == 0 {
		return 1
	}
	return (cur.FreqGHz / nom.FreqGHz) * (cur.Voltage / nom.Voltage) * (cur.Voltage / nom.Voltage)
}

// Utilization returns busy cores / total cores in [0,1].
func (d *Device) Utilization() float64 {
	if d.Spec.Cores == 0 {
		return 0
	}
	return float64(d.busy) / float64(d.Spec.Cores)
}

// Acquire marks n cores busy; it fails if the device lacks free cores or is
// unhealthy.
func (d *Device) Acquire(n int) error {
	if !d.healthy {
		return fmt.Errorf("hw: device %s is failed", d.ID)
	}
	if d.busy+n > d.Spec.Cores {
		return fmt.Errorf("hw: device %s has %d/%d cores busy, cannot acquire %d",
			d.ID, d.busy, d.Spec.Cores, n)
	}
	d.busy += n
	d.updatePower()
	return nil
}

// Release frees n cores.
func (d *Device) Release(n int) {
	if n > d.busy {
		panic(fmt.Sprintf("hw: device %s releasing %d cores with only %d busy", d.ID, n, d.busy))
	}
	d.busy -= n
	d.updatePower()
}

// BusyCores returns the current number of busy cores.
func (d *Device) BusyCores() int { return d.busy }

// updatePower recomputes the meter draw from utilisation and DVFS state.
// Static (idle) power is independent of frequency; dynamic power scales
// with utilisation and f·V².
func (d *Device) updatePower() {
	if !d.healthy {
		return
	}
	dynamic := (d.Spec.PeakWatts - d.Spec.IdleWatts) * d.Utilization() * d.powerScale()
	d.meter.SetPower(d.Spec.IdleWatts + dynamic)
}

// DynamicWatts returns the incremental draw of keeping n cores busy at the
// current DVFS state, excluding idle power — the quantity a fleet power-cap
// ledger charges for a placement.
func (d *Device) DynamicWatts(n int) energy.Watts {
	if d.Spec.Cores == 0 {
		return 0
	}
	perCore := (d.Spec.PeakWatts - d.Spec.IdleWatts) / float64(d.Spec.Cores)
	return perCore * float64(n) * d.powerScale()
}

// ExecTime returns the duration for `gops` giga-operations using n cores at
// the current DVFS state. Work splits perfectly across cores (the runtimes
// layer imposes their own efficiency models on top).
func (d *Device) ExecTime(gops float64, n int) sim.Time {
	if n <= 0 || d.Spec.Cores == 0 || d.Spec.GOPS == 0 {
		return 0
	}
	perCore := d.Spec.GOPS / float64(d.Spec.Cores)
	rate := perCore * float64(n) * d.freqScale()
	if rate <= 0 {
		return 0
	}
	return sim.Seconds(gops / rate)
}

// EnergyFor estimates the incremental (dynamic) energy of running `gops`
// on n cores at the current state, excluding idle draw.
func (d *Device) EnergyFor(gops float64, n int) energy.Joules {
	t := sim.ToSeconds(d.ExecTime(gops, n))
	if d.Spec.Cores == 0 {
		return 0
	}
	perCoreDyn := (d.Spec.PeakWatts - d.Spec.IdleWatts) / float64(d.Spec.Cores)
	return perCoreDyn * float64(n) * d.powerScale() * t
}
