// legato-lint is a zero-dependency linter for the resilience-critical
// packages, with two passes:
//
//   - errcheck-style: flags bare expression-statement calls whose callee
//     is defined in the scanned package and returns an error as its last
//     result. On those paths a dropped error is a dropped fault — a
//     crash, a failed checkpoint, or an admission bug silently swallowed.
//   - determinism: flags any reference to time.Now or time.Since.
//     Fleet-time code must read the virtual clock (sim.Engine.Now); a
//     wall-clock read would make schedules, fault timelines and the
//     straggler watchdog non-reproducible per seed.
//   - operator output: flags fmt.Print* and log.Print*/Fatal*/Panic* in
//     the runtime packages. Runtime telemetry must flow through the
//     event bus and metric registry (internal/obs, internal/monitor) so
//     it stays observable, testable and silent by default; printing to
//     stdout/stderr from library code is a debugging leftover.
//
// The build fails on any finding.
//
// Usage:
//
//	legato-lint [package-dir ...]
//
// With no arguments it scans the runtime paths (internal/faults,
// internal/engine, internal/taskrt, internal/power, internal/obs,
// internal/trace, internal/monitor, internal/sim). Test files are
// skipped; an ignored error in a test is an assertion choice, not a
// recovery bug, and tests may legitimately time out on the wall clock.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

var defaultDirs = []string{
	"internal/faults", "internal/engine", "internal/taskrt", "internal/power",
	"internal/obs", "internal/trace", "internal/monitor", "internal/sim",
}

// finding is one lint violation.
type finding struct {
	pos token.Position
	msg string
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var findings []finding
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "legato-lint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "legato-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintDir parses every non-test file of one package directory and returns
// the ignored-error findings.
func lintDir(dir string) ([]finding, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Pass 1: names of package-local functions and methods whose last
	// result is `error`. Without full type-checking this is a name-based
	// set; plain function calls resolve precisely, and method selectors
	// are matched by name *and* arity so foreign same-named methods with a
	// different signature (sync.WaitGroup.Wait vs Job.Wait) don't trip it.
	funcs := map[string]bool{}
	methods := map[string][]arity{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !returnsErrorLast(fd.Type) {
				continue
			}
			if fd.Recv != nil {
				methods[fd.Name.Name] = append(methods[fd.Name.Name], arityOf(fd.Type))
			} else {
				funcs[fd.Name.Name] = true
			}
		}
	}

	// Pass 2: bare ExprStmt calls resolving into that set.
	var findings []finding
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				if funcs[fn.Name] {
					findings = append(findings, finding{fset.Position(call.Pos()),
						fmt.Sprintf("error result of %s ignored", fn.Name)})
				}
			case *ast.SelectorExpr:
				for _, a := range methods[fn.Sel.Name] {
					if a.accepts(len(call.Args)) {
						findings = append(findings, finding{fset.Position(call.Pos()),
							fmt.Sprintf("error result of %s ignored", fn.Sel.Name)})
						break
					}
				}
			}
			return true
		})
	}

	// Pass 3 (determinism): no wall-clock reads. Any selector time.Now or
	// time.Since — called or merely referenced — is a finding: fleet-time
	// code must derive every timestamp from the virtual clock, or schedules
	// and fault timelines stop being reproducible per seed. Name-based like
	// pass 2: these packages never alias another import as `time`.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "time" {
				return true
			}
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				findings = append(findings, finding{fset.Position(sel.Pos()),
					fmt.Sprintf("wall-clock time.%s in fleet-time code (use the virtual clock)", sel.Sel.Name)})
			}
			return true
		})
	}
	// Pass 4 (operator output): runtime packages must not print. fmt.Print*
	// writes to stdout and log.Print*/Fatal*/Panic* to stderr — both bypass
	// the event bus and metric registry, the only sanctioned telemetry
	// channels for library code. fmt.Fprintf and friends stay legal: they
	// target a caller-chosen writer (string builders, exporters).
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case pkg.Name == "fmt" && strings.HasPrefix(name, "Print"):
			case pkg.Name == "log" && (strings.HasPrefix(name, "Print") ||
				strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")):
			default:
				return true
			}
			findings = append(findings, finding{fset.Position(sel.Pos()),
				fmt.Sprintf("%s.%s in runtime code (publish on the event bus or metric registry instead)", pkg.Name, name)})
			return true
		})
	}
	return findings, nil
}

// arity is a callable's parameter count signature.
type arity struct {
	params   int
	variadic bool
}

// accepts reports whether a call with n arguments could bind this arity.
func (a arity) accepts(n int) bool {
	if a.variadic {
		return n >= a.params-1
	}
	return n == a.params
}

// arityOf extracts the parameter arity from a function type.
func arityOf(ft *ast.FuncType) arity {
	var a arity
	if ft.Params == nil {
		return a
	}
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		a.params += n
		if _, ok := field.Type.(*ast.Ellipsis); ok {
			a.variadic = true
		}
	}
	return a
}

// returnsErrorLast reports whether the function type's last result is the
// identifier `error`.
func returnsErrorLast(ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}
