package experiments

import (
	"context"
	"fmt"
	"strings"

	"legato/internal/engine"
	"legato/internal/power"
	"legato/internal/sim"
	"legato/internal/taskrt"
)

// --- E13: fleet power cap and energy-aware placement ---------------------

// PowerCapResult is the outcome of the E13 study: the same multi-job
// session run once uncapped and once under a fleet power cap at 60% of the
// nominal peak draw, plus an uncapped policy comparison on measured
// energy-delay product. The gate the benchmark enforces: the capped
// session's peak draw never exceeds the cap (peak-draw witness), the cap
// actually bound (power stalls observed), makespan inflation stays ≤ 1.5×,
// and MinEDP beats MinTime on measured EDP.
type PowerCapResult struct {
	Jobs, Workers int
	// FleetPeakW is the nominal full-utilisation draw of the fleet; CapW
	// is the armed budget (60% of it); IdleW the static floor.
	FleetPeakW, CapW, IdleW float64

	// Uncapped vs capped session, same workload and MinTime policy.
	BaselineMakespan, CappedMakespan sim.Time
	InflationX                       float64
	BaselinePeakW, CappedPeakW       float64
	BaselineAvgW, CappedAvgW         float64
	BaselineEnergyJ, CappedEnergyJ   float64 // platform energy (idle+dynamic)
	PowerStalls                      uint64
	GovernorRescales                 uint64
	// CapViolated is the peak-draw witness: true iff the capped session's
	// fleet draw ever exceeded the cap. Must be false.
	CapViolated   bool
	JobsCompleted int

	// Measured energy-delay product (task energy × session makespan, J·s)
	// of uncapped sessions under each placement policy.
	MinTimeEDP, MinEnergyEDP, MinEDPEDP float64
}

// powerGraph fills one job with four independent chains of four tasks,
// mixed widths chosen against the RECS|BOX catalogue so the study has
// teeth: a 2048-core GPU burst only the GTX can host (≈134 W dynamic),
// two 16-core chains (the MinTime/MinEDP fork: Xeon is fastest at 65 W,
// Jetson is 5× slower at 0.3 W), and a 4-core FPGA chain. One job's
// concurrent draw already exceeds a 60%-of-peak cap, so the cap binds
// deterministically, independent of wall-clock job overlap.
func powerGraph(rt *taskrt.Runtime, name string) error {
	// The GPU chain is the longest (≈2.5 s on the only device that can
	// host it), so every policy shares the same critical path and the EDP
	// comparison reduces to the energy of the 16-core chains — where the
	// policies genuinely fork: MinTime takes the Xeons (fast, 65 W
	// dynamic), MinEDP the Jetsons (5× slower per task but 0.3 W, and
	// their chains still finish inside the GPU chain's shadow).
	chains := []struct {
		cores int
		gops  float64
	}{
		{2048, 4500}, // gpu-burst: GTX-only, the critical path
		{16, 40},     // cpu-wide: Xeon (fast, hot) vs Jetson (slow, cool)
		{16, 40},
		{16, 40},
		{4, 40}, // fpga-sized
	}
	for c, ch := range chains {
		prev := rt.Data(fmt.Sprintf("%s/c%d/d0", name, c), 1024)
		for i := 0; i < 4; i++ {
			next := rt.Data(fmt.Sprintf("%s/c%d/d%d", name, c, i+1), 1024)
			if err := rt.Submit(taskrt.Task{
				Name: fmt.Sprintf("%s/c%d/t%d", name, c, i),
				Gops: ch.gops, Cores: ch.cores,
				In: []*taskrt.Data{prev}, Out: []*taskrt.Data{next},
			}); err != nil {
				return err
			}
			prev = next
		}
	}
	return nil
}

// powerSession runs one session of `jobs` power-graph jobs on the cloud
// fleet under the given policy, cap (0 = uncapped) and governor.
func powerSession(jobs, workers int, policy taskrt.Policy, capW float64, gov power.Kind) (engine.Stats, error) {
	e, err := engine.New(engine.Config{
		Workers:     workers,
		Policy:      policy,
		NewPlatform: cloudFleet,
		PowerCapW:   capW,
		Governor:    gov,
	})
	if err != nil {
		return engine.Stats{}, err
	}
	ctx := context.Background()
	var js []*engine.Job
	for n := 0; n < jobs; n++ {
		j, err := e.NewJob(fmt.Sprintf("job%d", n))
		if err != nil {
			return engine.Stats{}, err
		}
		if err := powerGraph(j.Runtime(), j.Name); err != nil {
			return engine.Stats{}, err
		}
		js = append(js, j)
		if err := e.Submit(ctx, j); err != nil {
			return engine.Stats{}, err
		}
	}
	for _, j := range js {
		if _, err := j.Wait(ctx); err != nil {
			return engine.Stats{}, fmt.Errorf("job %s: %w", j.Name, err)
		}
	}
	st := e.Stats()
	if err := e.Shutdown(ctx); err != nil {
		return engine.Stats{}, err
	}
	return st, nil
}

// measuredEDP is a session's energy-delay product: dynamic task energy
// times fleet makespan, in joule-seconds.
func measuredEDP(st engine.Stats) float64 {
	return st.EnergyJ * sim.ToSeconds(st.SessionMakespan)
}

// PowerCap runs the E13 study: an uncapped baseline session, the same
// session under a power cap at 60% of the fleet's nominal peak draw with
// the pack-and-throttle governor, and an uncapped policy sweep (MinTime,
// MinEnergy, MinEDP) compared on measured EDP. Every session runs on
// private virtual clocks, so the whole study is deterministic.
func PowerCap(jobs, workers int) (*PowerCapResult, error) {
	refClock := sim.NewEngine()
	ref, err := cloudFleet(refClock)
	if err != nil {
		return nil, err
	}
	fleetPeak := float64(power.FleetPeakWatts(ref))
	capW := 0.6 * fleetPeak

	base, err := powerSession(jobs, workers, taskrt.MinTime, 0, power.RaceToIdle)
	if err != nil {
		return nil, fmt.Errorf("experiments: E13 baseline: %w", err)
	}
	if base.SessionMakespan <= 0 {
		return nil, fmt.Errorf("experiments: E13 baseline produced no makespan")
	}
	capped, err := powerSession(jobs, workers, taskrt.MinTime, capW, power.PackAndThrottle)
	if err != nil {
		return nil, fmt.Errorf("experiments: E13 capped session: %w", err)
	}

	minTime, err := powerSession(jobs, workers, taskrt.MinTime, 0, power.RaceToIdle)
	if err != nil {
		return nil, fmt.Errorf("experiments: E13 MinTime sweep: %w", err)
	}
	minEnergy, err := powerSession(jobs, workers, taskrt.MinEnergy, 0, power.RaceToIdle)
	if err != nil {
		return nil, fmt.Errorf("experiments: E13 MinEnergy sweep: %w", err)
	}
	minEDP, err := powerSession(jobs, workers, taskrt.MinEDP, 0, power.RaceToIdle)
	if err != nil {
		return nil, fmt.Errorf("experiments: E13 MinEDP sweep: %w", err)
	}

	return &PowerCapResult{
		Jobs: jobs, Workers: workers,
		FleetPeakW:       fleetPeak,
		CapW:             capW,
		IdleW:            capBaselineIdle(base),
		BaselineMakespan: base.SessionMakespan,
		CappedMakespan:   capped.SessionMakespan,
		InflationX:       float64(capped.SessionMakespan) / float64(base.SessionMakespan),
		BaselinePeakW:    base.PeakDrawW,
		CappedPeakW:      capped.PeakDrawW,
		BaselineAvgW:     base.AvgPowerW,
		CappedAvgW:       capped.AvgPowerW,
		BaselineEnergyJ:  base.PlatformEnergyJ,
		CappedEnergyJ:    capped.PlatformEnergyJ,
		PowerStalls:      capped.PowerStalls,
		GovernorRescales: capped.GovernorRescales,
		CapViolated:      capped.PeakDrawW > capW,
		JobsCompleted:    capped.JobsCompleted,
		MinTimeEDP:       measuredEDP(minTime),
		MinEnergyEDP:     measuredEDP(minEnergy),
		MinEDPEDP:        measuredEDP(minEDP),
	}, nil
}

// capBaselineIdle extracts the static fleet draw from a session's energy
// split (platform energy minus dynamic energy, over the makespan).
func capBaselineIdle(st engine.Stats) float64 {
	sec := sim.ToSeconds(st.SessionMakespan)
	if sec <= 0 {
		return 0
	}
	return (st.PlatformEnergyJ - st.EnergyJ) / sec
}

// PowerCapTable renders the E13 result.
func PowerCapTable(r *PowerCapResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E13: %d jobs, %d workers — fleet peak %.0f W, idle %.0f W, cap %.0f W (60%%)\n",
		r.Jobs, r.Workers, r.FleetPeakW, r.IdleW, r.CapW)
	fmt.Fprintf(&b, "%-12s %-14s %-10s %-10s %-10s %-12s\n",
		"", "makespan", "peak-W", "avg-W", "energy-J", "inflation")
	fmt.Fprintf(&b, "%-12s %-14v %-10.1f %-10.1f %-10.0f %-12s\n",
		"uncapped", r.BaselineMakespan, r.BaselinePeakW, r.BaselineAvgW, r.BaselineEnergyJ, "1.00x")
	fmt.Fprintf(&b, "%-12s %-14v %-10.1f %-10.1f %-10.0f %-12s\n",
		"capped", r.CappedMakespan, r.CappedPeakW, r.CappedAvgW, r.CappedEnergyJ,
		fmt.Sprintf("%.2fx", r.InflationX))
	witness := "peak ≤ cap"
	if r.CapViolated {
		witness = "CAP VIOLATED"
	}
	fmt.Fprintf(&b, "witness: %s · power stalls %d · governor rescales %d · jobs %d/%d\n",
		witness, r.PowerStalls, r.GovernorRescales, r.JobsCompleted, r.Jobs)
	fmt.Fprintf(&b, "policy EDP (J·s): min-time %.1f · min-energy %.1f · min-edp %.1f\n",
		r.MinTimeEDP, r.MinEnergyEDP, r.MinEDPEDP)
	return b.String()
}
