package monitor

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistrySnapshotDeepCopy(t *testing.T) {
	r := NewRegistry()
	r.Add("job/a", "tasks-completed", 3)
	r.Set("device/d0", "busy-s", 1.5)
	snap := r.Snapshot()
	if snap["job/a"]["tasks-completed"] != 3 || snap["device/d0"]["busy-s"] != 1.5 {
		t.Fatalf("snapshot content wrong: %v", snap)
	}
	// Mutating the snapshot must not touch the registry, and vice versa.
	snap["job/a"]["tasks-completed"] = 99
	snap["new"] = map[string]float64{"x": 1}
	if r.Get("job/a", "tasks-completed") != 3 {
		t.Fatal("snapshot mutation leaked into the registry")
	}
	r.Add("job/a", "tasks-completed", 1)
	if snap["job/a"]["tasks-completed"] != 99 {
		t.Fatal("registry write leaked into the snapshot")
	}
}

func TestRegistrySnapshotUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scope := []string{"job/a", "job/b", "device/d0", "tail"}[g]
			for {
				select {
				case <-stop:
					return
				default:
					r.Add(scope, "m", 1)
				}
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		for scope, metrics := range r.Snapshot() {
			for m := range metrics {
				_ = r.Get(scope, m)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistryReportSortedDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, scope := range order {
			r.Add(scope, "zeta", 1)
			r.Add(scope, "alpha", 2)
			r.Add(scope, "mid-metric", 3)
		}
		return r
	}
	a := build([]string{"job/b", "device/d1", "job/a", "power"})
	b := build([]string{"power", "job/a", "job/b", "device/d1"})
	ra, rb := a.Report(), b.Report()
	if ra != rb {
		t.Fatalf("report depends on insertion order:\n%s\nvs\n%s", ra, rb)
	}
	// Scopes and metrics must appear in sorted order.
	wantOrder := []string{"device/d1", "job/a", "job/b", "power"}
	last := -1
	for _, scope := range wantOrder {
		i := strings.Index(ra, scope+"\n")
		if i <= last {
			t.Fatalf("scope %q out of order in report:\n%s", scope, ra)
		}
		last = i
	}
	sec := strings.Split(ra, "device/d1")[1]
	if za, al := strings.Index(sec, "zeta"), strings.Index(sec, "alpha"); al > za {
		t.Fatalf("metrics not sorted within scope:\n%s", ra)
	}
}
