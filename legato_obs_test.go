package legato

// Tests for the unified observability layer: the session event bus
// surfaced through WithObserver / Events / EventLog, the determinism of
// the ordered event log on serialized sessions, and the exported session
// artifacts (Chrome trace_event JSON, Prometheus text, session dump).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"legato/internal/faults"
	"legato/internal/ft"
	"legato/internal/hw"
	"legato/internal/obs"
	"legato/internal/power"
)

// observedSessionCap probes the cloud platform's peak draw once so the
// observability sessions run under real cap pressure.
func observedSessionCap(t testing.TB) float64 {
	t.Helper()
	probe, err := NewSystem(WithPlatform(CloudPlatform))
	if err != nil {
		t.Fatal(err)
	}
	capW := 0.6 * float64(power.FleetPeakWatts(probe.Devices()))
	if err := probe.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	return capW
}

// buildObservedJob fills a job with two four-stage chains of wide tasks
// (stressing admission and the cap) plus a deadline-bearing report task
// that the degraded session sheds.
func buildObservedJob(job *Job) error {
	var outs []DataHandle
	for c := 0; c < 2; c++ {
		prev := job.Data(fmt.Sprintf("c%d/in", c), 4096)
		for s := 0; s < 4; s++ {
			next := job.Data(fmt.Sprintf("c%d/s%d", c, s), 4096)
			if err := job.Task(fmt.Sprintf("c%d/stage%d", c, s)).
				Gops(400).Cores(8).In(prev).Out(next).Submit(); err != nil {
				return err
			}
			prev = next
		}
		outs = append(outs, prev)
	}
	return job.Task("report").Gops(40).Cores(1).In(outs...).
		Deadline(8 * time.Second).Submit()
}

// runObservedSession runs a serialized (one worker, jobs awaited one at
// a time) faulty, hedged, power-capped two-job session and returns the
// system for inspection. Serialization plus the fixed fault seed makes
// the event stream fully deterministic.
func runObservedSession(t testing.TB, capW float64, extra ...Option) *System {
	t.Helper()
	opts := append([]Option{
		WithPlatform(CloudPlatform),
		WithPolicy(MinTime),
		WithWorkers(1),
		WithPowerCap(capW),
		WithFaults(faults.Plan{
			DegradeMTBF:     ft.MTBFModel{hw.CPUx86: 0.05},
			DegradeTo:       1.0,
			DegradeSlowdown: 6.0,
			Seed:            7,
		}),
		WithHedging(HedgePolicy{Multiplier: 1.5}),
		WithDeadlineMode(DeadlineShed),
	}, extra...)
	sys, err := NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for n := 0; n < 2; n++ {
		job, err := sys.NewJob(fmt.Sprintf("render-%d", n))
		if err != nil {
			t.Fatal(err)
		}
		if err := buildObservedJob(job); err != nil {
			t.Fatal(err)
		}
		if _, err := job.Run(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// TestEventLogDeterministicSerialized is the acceptance witness for the
// event stream: two runs of the same serialized seeded session must
// produce byte-identical ordered event logs.
func TestEventLogDeterministicSerialized(t *testing.T) {
	capW := observedSessionCap(t)
	run := func() string {
		sys := runObservedSession(t, capW, WithEventLog())
		defer sys.Close(context.Background())
		return obs.FormatLog(sys.EventLog())
	}
	first := run()
	if first == "" {
		t.Fatal("event log is empty")
	}
	for _, kind := range []EventKind{
		EvTaskQueued, EvTaskPlaced, EvTaskStarted, EvTaskCompleted,
		EvPowerAdmitted, EvFaultInjected, EvHedgeArmed, EvHedgeLaunched,
		EvDeadlineMissed, EvTaskShed,
	} {
		if !strings.Contains(first, kind.String()) {
			t.Fatalf("event log never saw %v:\n%s", kind, first)
		}
	}
	second := run()
	if first != second {
		t.Fatalf("event log not byte-identical across runs:\n--- first\n%s--- second\n%s", first, second)
	}
}

// TestSystemEventsChannel exercises the bounded subscription surface:
// events flow while jobs run, nothing is dropped with an attentive
// consumer, and Close ends the feed.
func TestSystemEventsChannel(t *testing.T) {
	sys, err := NewSystem(WithPolicy(MinTime), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	feed := sys.Events()
	if again := sys.Events(); again != feed {
		t.Fatal("Events must return one shared channel")
	}
	counts := make(map[EventKind]int)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for e := range feed {
			counts[e.Kind]++
		}
	}()
	ctx := context.Background()
	for n := 0; n < 2; n++ {
		job, err := sys.NewJob(fmt.Sprintf("job%d", n))
		if err != nil {
			t.Fatal(err)
		}
		if err := buildThroughputJob(job); err != nil {
			t.Fatal(err)
		}
		if _, err := job.Run(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Close(ctx); err != nil {
		t.Fatal(err)
	}
	<-drained
	wantTasks := 2 * 4 * 5
	if counts[EvTaskCompleted] != wantTasks {
		t.Fatalf("feed saw %d completions, want %d (counts: %v)", counts[EvTaskCompleted], wantTasks, counts)
	}
	if counts[EvTaskQueued] != wantTasks || counts[EvTaskStarted] != wantTasks || counts[EvTaskPlaced] != wantTasks {
		t.Fatalf("lifecycle counts inconsistent: %v", counts)
	}
	if got := sys.EventsDropped(); got != 0 {
		t.Fatalf("attentive consumer dropped %d events", got)
	}
}

// TestWithObserverInline registers a synchronous observer and checks it
// sees the global sequence exactly once per event.
func TestWithObserverInline(t *testing.T) {
	var col obs.Collector
	sys, err := NewSystem(WithPolicy(MinTime), WithWorkers(1), WithObserver(col.Observe))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("solo")
	if err != nil {
		t.Fatal(err)
	}
	if err := buildThroughputJob(job); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	if len(events) == 0 {
		t.Fatal("observer saw nothing")
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has sequence %d — stream not gapless", i, e.Seq)
		}
		if e.Job != "solo" {
			t.Fatalf("event %d attributed to job %q", i, e.Job)
		}
	}
}

// TestExportSessionArtifacts runs the observed session, exports the
// dump, and validates every derived artifact: round-trip decode, valid
// Chrome JSON, Prometheus exposition, timeline derivation.
func TestExportSessionArtifacts(t *testing.T) {
	sys := runObservedSession(t, observedSessionCap(t), WithEventLog())
	defer sys.Close(context.Background())

	var buf bytes.Buffer
	if err := sys.ExportSession(&buf); err != nil {
		t.Fatal(err)
	}
	dump, err := obs.DecodeSession(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) == 0 || len(dump.Events) == 0 || len(dump.Metrics) == 0 {
		t.Fatalf("dump incomplete: %d spans, %d events, %d metric scopes",
			len(dump.Spans), len(dump.Events), len(dump.Metrics))
	}

	chrome, err := obs.ChromeTrace(dump.Spans, dump.Counters)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(chrome) {
		t.Fatal("chrome trace is not valid JSON")
	}
	var ct struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &ct); err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) < len(dump.Spans) {
		t.Fatalf("chrome trace has %d events for %d spans", len(ct.TraceEvents), len(dump.Spans))
	}

	prom := obs.PrometheusText(dump.Metrics)
	for _, frag := range []string{"legato_tasks_completed", `scope="job"`, `scope="device"`} {
		if !strings.Contains(prom, frag) {
			t.Fatalf("prometheus exposition missing %q:\n%s", frag, prom)
		}
	}

	tls := obs.Timelines(dump.Spans)
	if len(tls) == 0 {
		t.Fatal("no task timelines derived")
	}
	sawExec := false
	for _, tl := range tls {
		if tl.Executions > 0 && tl.Exec > 0 {
			sawExec = true
		}
	}
	if !sawExec {
		t.Fatal("timelines carry no execution intervals")
	}
}
