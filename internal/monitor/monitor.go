// Package monitor implements the HEATS monitoring module (paper Fig. 7):
// resource telemetry in the style of Heapster plus energy telemetry in the
// style of PDU/PowerSpy probes. The scheduler pulls snapshots at decision
// points; every snapshot is appended to per-node time series for
// inspection and the experiment reports.
package monitor

import (
	"fmt"
	"strings"

	"legato/internal/cluster"
	"legato/internal/sim"
)

// Snapshot is one node observation.
type Snapshot struct {
	At       sim.Time
	Node     string
	CPUFree  int
	CPUTotal int
	MemFree  int64
	PowerW   float64
	Tasks    int
	Healthy  bool
}

// Monitor observes a cluster.
type Monitor struct {
	eng *sim.Engine
	cl  *cluster.Cluster

	series map[string][]Snapshot
}

// New creates a monitor over cl.
func New(eng *sim.Engine, cl *cluster.Cluster) *Monitor {
	return &Monitor{eng: eng, cl: cl, series: make(map[string][]Snapshot)}
}

// Poll records and returns a snapshot of every node.
func (m *Monitor) Poll() []Snapshot {
	out := make([]Snapshot, 0, len(m.cl.Nodes))
	for _, n := range m.cl.Nodes {
		s := Snapshot{
			At:       m.eng.Now(),
			Node:     n.Name,
			CPUFree:  n.CPUFree(),
			CPUTotal: n.Dev.Spec.Cores,
			MemFree:  n.MemFree(),
			PowerW:   n.Dev.Meter().Power(),
			Tasks:    n.RunningTasks(),
			Healthy:  n.Dev.Healthy(),
		}
		m.series[n.Name] = append(m.series[n.Name], s)
		out = append(out, s)
	}
	return out
}

// Series returns the recorded snapshots for a node.
func (m *Monitor) Series(node string) []Snapshot { return m.series[node] }

// Latest returns the most recent snapshot for a node (ok=false if none).
func (m *Monitor) Latest(node string) (Snapshot, bool) {
	s := m.series[node]
	if len(s) == 0 {
		return Snapshot{}, false
	}
	return s[len(s)-1], true
}

// Utilization returns the mean CPU utilisation of a node over its series.
func (m *Monitor) Utilization(node string) float64 {
	s := m.series[node]
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, snap := range s {
		if snap.CPUTotal > 0 {
			sum += float64(snap.CPUTotal-snap.CPUFree) / float64(snap.CPUTotal)
		}
	}
	return sum / float64(len(s))
}

// Report renders the latest snapshot of every node.
func (m *Monitor) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %10s %10s %7s\n", "node", "cpufree", "mem free", "power W", "tasks")
	for _, n := range m.cl.Nodes {
		if s, ok := m.Latest(n.Name); ok {
			fmt.Fprintf(&sb, "%-12s %3d/%-4d %10d %10.1f %7d\n",
				s.Node, s.CPUFree, s.CPUTotal, s.MemFree, s.PowerW, s.Tasks)
		}
	}
	return sb.String()
}
