package fti

import (
	"time"

	"legato/internal/sim"
)

// First-order virtual-time cost model for the multi-level checkpoint
// hierarchy, consistent with the StoreConfig bandwidth defaults (16 GB/s
// node-local NVMe, 10 GB/s network, 10 GB/s PFS). The engine's resilient
// execution layer uses it to price a job's periodic async checkpoints and
// the restore after a device loss without instantiating a full FTI rank
// group: LevelCost is the capture latency (when an async checkpoint
// commits), RestoreCost the read-back latency charged before invalidated
// tasks re-execute.

const (
	costNVMeGBps = 16.0
	costNetGBps  = 10.0
	costPFSGBps  = 10.0
)

// perLevelFloor is the fixed per-checkpoint latency (metadata, barriers).
func perLevelFloor(l Level) sim.Time {
	switch l {
	case L2:
		return time.Millisecond
	case L3:
		return 2 * time.Millisecond
	case L4:
		return 4 * time.Millisecond
	default:
		return 500 * time.Microsecond
	}
}

func xferTime(bytes int64, gbps float64) sim.Time {
	if bytes <= 0 || gbps <= 0 {
		return 0
	}
	sec := float64(bytes) / (gbps * 1e9)
	return sim.Time(sec * float64(time.Second))
}

// LevelCost returns the virtual time for a checkpoint of the given size to
// commit at the given level: every level pays the L1 NVMe write; L2 adds
// the partner copy over the network; L3 adds Reed-Solomon parity traffic
// (one extra shard per group, approximated as a second network pass); L4
// adds the PFS write.
func LevelCost(l Level, bytes int64) sim.Time {
	c := perLevelFloor(l) + xferTime(bytes, costNVMeGBps)
	if l >= L2 {
		c += xferTime(bytes, costNetGBps)
	}
	if l >= L3 {
		c += xferTime(bytes, costNetGBps)
	}
	if l >= L4 {
		c += xferTime(bytes, costPFSGBps)
	}
	return c
}

// RestoreCost returns the virtual time to read a checkpoint of the given
// size back: L1 reads local NVMe; L2/L3 fetch from the partner or decode
// over the network; L4 reads the PFS.
func RestoreCost(l Level, bytes int64) sim.Time {
	switch {
	case l >= L4:
		return perLevelFloor(l) + xferTime(bytes, costPFSGBps)
	case l >= L2:
		return perLevelFloor(l) + xferTime(bytes, costNetGBps)
	default:
		return perLevelFloor(l) + xferTime(bytes, costNVMeGBps)
	}
}
