// Package mathx provides the small dense linear-algebra and statistics
// kernels used across the LEGaTO reproduction: matrices for the Kalman
// filter, least-squares fitting for the HEATS performance/energy models,
// and summary statistics for experiment reporting.
//
// The package is deliberately minimal: row-major dense matrices with the
// handful of operations the rest of the toolset needs, implemented with
// the standard library only.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a row-major slice; the slice is copied.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mathx: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	m := NewMatrix(rows, cols)
	copy(m.Data, data)
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return NewMatrixFrom(m.Rows, m.Cols, m.Data)
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// ErrSingular reports a (numerically) singular matrix in a solve or inverse.
var ErrSingular = errors.New("mathx: singular matrix")

// Inverse returns m⁻¹ via Gauss-Jordan elimination with partial pivoting.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mathx: inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a.At(r, col)); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(col, pivot)
			inv.swapRows(col, pivot)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// Solve solves m x = b for x where b is a column vector (or multi-column RHS).
func (m *Matrix) Solve(b *Matrix) (*Matrix, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.Mul(b), nil
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func (m *Matrix) mustSameShape(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mathx: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%10.4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
