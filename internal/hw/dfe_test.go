package hw

import (
	"testing"

	"legato/internal/sim"
)

// TestDFEOnPCIeExpansionCarrier: Maxeler-class dataflow engines populate
// the PCIe expansion carriers of the RECS|BOX (Sec. II-A: "FPGA-based
// Dataflow Engines (DFE)").
func TestDFEOnPCIeExpansionCarrier(t *testing.T) {
	eng := sim.NewEngine()
	b := NewRECSBox(eng, "r")
	px, err := b.AddCarrier(PCIeExpansionCarrier)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := b.Populate(px, MaxelerDFE())
	if err != nil {
		t.Fatalf("DFE rejected by PCIe carrier: %v", err)
	}
	if ms.Device.Spec.Class != DFE {
		t.Fatalf("class: %v", ms.Device.Spec.Class)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// DFEs do not fit the other carrier classes.
	lp, _ := b.AddCarrier(LowPowerCarrier)
	if _, err := b.Populate(lp, MaxelerDFE()); err == nil {
		t.Fatal("DFE accepted on a low-power carrier")
	}
	hp, _ := b.AddCarrier(HighPerfCarrier)
	if _, err := b.Populate(hp, MaxelerDFE()); err == nil {
		t.Fatal("DFE accepted on a high-performance carrier")
	}
}

// TestDFEStreamEfficiency: the DFE spec trades clock for full pipelining —
// its energy per operation must undercut the CPU's.
func TestDFEStreamEfficiency(t *testing.T) {
	dfe := MaxelerDFE()
	cpu := XeonD()
	dfeJPerGop := (dfe.PeakWatts - dfe.IdleWatts) / dfe.GOPS
	cpuJPerGop := (cpu.PeakWatts - cpu.IdleWatts) / cpu.GOPS
	if dfeJPerGop >= cpuJPerGop {
		t.Fatalf("DFE not more efficient: %.4f vs %.4f J/gop", dfeJPerGop, cpuJPerGop)
	}
}

// TestEdgeCPUGPUGPUComposition covers the second Sec. VI edge variant.
func TestEdgeCPUGPUGPUComposition(t *testing.T) {
	eng := sim.NewEngine()
	s, err := MirrorEdgeCPUGPUGPU(eng, "edge")
	if err != nil {
		t.Fatal(err)
	}
	gpus := 0
	for _, m := range s.Modules {
		if m.Device.Spec.Class == GPU {
			gpus++
		}
	}
	if gpus != 2 || s.ByClass(CPUARM) == nil {
		t.Fatalf("composition wrong: %d GPUs", gpus)
	}
}
