// Smart Mirror (paper Sec. VI): evaluate the detection+tracking pipeline
// on the workstation baseline and both Fig. 9 edge-server compositions,
// then show the live tracker following scene objects.
package main

import (
	"fmt"
	"log"

	"legato/internal/hw"
	"legato/internal/mirror"
	"legato/internal/sim"
)

func main() {
	log.SetFlags(0)
	eng := sim.NewEngine()

	// Three deployments: the 400 W workstation and the two edge
	// compositions named in Sec. VI ("1x CPU + 2x GPU or 1 CPU + 1 GPU +
	// 1 FPGA SoC").
	ws := mirror.WorkstationConfig(eng)
	edgeGF, err := mirror.EdgeConfig(eng)
	if err != nil {
		log.Fatal(err)
	}
	edge2G, err := hw.MirrorEdgeCPUGPUGPU(eng, "edge-2g")
	if err != nil {
		log.Fatal(err)
	}
	var accels []*hw.Device
	for _, m := range edge2G.Modules {
		if m.Device.Spec.Class == hw.GPU {
			accels = append(accels, m.Device)
		}
	}
	edge2GCfg := &mirror.HardwareConfig{
		Name:            "edge-cpu+2xgpu",
		Accels:          accels,
		Host:            edge2G.ByClass(hw.CPUARM).Device,
		HostUtilization: 0.3,
		Modules:         mirror.OptimizedModules(),
		CameraFPS:       30,
	}

	var results []*mirror.Result
	for _, cfg := range []*mirror.HardwareConfig{ws, edgeGF, edge2GCfg} {
		r, err := mirror.Evaluate(cfg, 600, 42)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
	}
	fmt.Print(mirror.CompareTable(results))

	// Live tracking demo: follow the scene for 3 simulated seconds at the
	// edge server's frame rate.
	fmt.Println("\nlive tracking on the edge server (Kalman + Hungarian):")
	fps := results[1].FPS
	scene := mirror.NewScene(3, 7)
	det := mirror.NewDetector(0.5, 0.05, 0.1, 8)
	tracker := mirror.NewTracker(1 / fps)
	for frame := 0; frame < int(3*fps); frame++ {
		scene.Step(1 / fps)
		tracker.Step(det.Detect(scene))
		tracker.Observe(scene)
	}
	for _, trk := range tracker.ConfirmedTracks() {
		x, y := trk.Position()
		fmt.Printf("  track %d (%s): position (%.1f, %.1f)\n", trk.ID, trk.Kind, x, y)
	}
	fmt.Printf("MOTA after 3 s: %.2f\n", tracker.MOTA())
}
