package middleware

import (
	"testing"

	"legato/internal/hw"
	"legato/internal/sim"
)

func manager(t *testing.T) *Manager {
	t.Helper()
	eng := sim.NewEngine()
	box, err := hw.StandardCloudBox(eng, "recs0")
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(box)
}

func TestInventory(t *testing.T) {
	m := manager(t)
	inv := m.Inventory()
	if len(inv) != 15 {
		t.Fatalf("inventory size: %d", len(inv))
	}
	for _, n := range inv {
		if !n.Powered || !n.Healthy {
			t.Fatalf("node %s not up at start", n.ID)
		}
		if n.Tenant != "" {
			t.Fatalf("node %s allocated at start", n.ID)
		}
	}
	// Sorted by ID.
	for i := 1; i < len(inv); i++ {
		if inv[i-1].ID > inv[i].ID {
			t.Fatal("inventory not sorted")
		}
	}
}

func TestPowerCycle(t *testing.T) {
	m := manager(t)
	id := m.Inventory()[0].ID
	before := m.ChassisPower()
	if err := m.PowerOff(id); err != nil {
		t.Fatal(err)
	}
	if m.ChassisPower() >= before {
		t.Fatal("power-off did not reduce chassis power")
	}
	if err := m.PowerOn(id); err != nil {
		t.Fatal(err)
	}
	if m.ChassisPower() != before {
		t.Fatal("power-on did not restore chassis power")
	}
	if err := m.PowerOff("nonexistent"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllocateRelease(t *testing.T) {
	m := manager(t)
	ms, err := m.Allocate("tenant-a", hw.GPU)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Device.Spec.Class != hw.GPU {
		t.Fatalf("allocated %v, want GPU", ms.Device.Spec.Class)
	}
	nodes := m.TenantNodes("tenant-a")
	if len(nodes) != 1 || nodes[0] != ms.ID {
		t.Fatalf("tenant nodes: %v", nodes)
	}
	// Allocated node cannot be powered off.
	if err := m.PowerOff(ms.ID); err == nil {
		t.Fatal("powered off an allocated node")
	}
	if err := m.Release(ms.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(ms.ID); err == nil {
		t.Fatal("double release accepted")
	}
	if len(m.TenantNodes("tenant-a")) != 0 {
		t.Fatal("lease not removed")
	}
}

func TestAllocateExhaustion(t *testing.T) {
	m := manager(t)
	// The standard box has exactly one discrete GTX1080 + 4 Jetson GPU
	// modules = 5 GPU-class sites.
	count := 0
	for {
		if _, err := m.Allocate("t", hw.GPU); err != nil {
			break
		}
		count++
		if count > 100 {
			t.Fatal("allocation never exhausted")
		}
	}
	if count != 5 {
		t.Fatalf("GPU allocations: got %d want 5", count)
	}
	if _, err := m.Allocate("", hw.CPUx86); err == nil {
		t.Fatal("empty tenant accepted")
	}
}

func TestAllocateSkipsPoweredOff(t *testing.T) {
	m := manager(t)
	// Power off every ARM node, then an ARM allocation must fail.
	for _, n := range m.Inventory() {
		if n.Class == hw.CPUARM {
			if err := m.PowerOff(n.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Allocate("t", hw.CPUARM); err == nil {
		t.Fatal("allocated a powered-off node")
	}
}

func TestSetDVFS(t *testing.T) {
	m := manager(t)
	var cpuID string
	for _, n := range m.Inventory() {
		if n.Class == hw.CPUx86 {
			cpuID = n.ID
			break
		}
	}
	if err := m.SetDVFS(cpuID, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetDVFS(cpuID, 99); err == nil {
		t.Fatal("invalid DVFS state accepted")
	}
}
