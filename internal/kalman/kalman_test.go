package kalman

import (
	"math"
	"math/rand"
	"testing"

	"legato/internal/mathx"
)

func TestNewValidatesDimensions(t *testing.T) {
	f := mathx.Identity(4)
	h := mathx.NewMatrix(2, 4)
	q := mathx.Identity(4)
	r := mathx.Identity(2)
	x := mathx.NewMatrix(4, 1)
	p := mathx.Identity(4)
	if _, err := New(f, h, q, r, x, p); err != nil {
		t.Fatalf("valid dims rejected: %v", err)
	}
	if _, err := New(f, mathx.NewMatrix(2, 3), q, r, x, p); err == nil {
		t.Fatal("bad H accepted")
	}
	if _, err := New(f, h, mathx.Identity(3), r, x, p); err == nil {
		t.Fatal("bad Q accepted")
	}
	if _, err := New(f, h, q, mathx.Identity(3), x, p); err == nil {
		t.Fatal("bad R accepted")
	}
	if _, err := New(f, h, q, r, mathx.NewMatrix(3, 1), p); err == nil {
		t.Fatal("bad x0 accepted")
	}
}

func TestStaticTargetConverges(t *testing.T) {
	// A stationary target at (3, -2) with noisy measurements: the estimate
	// must converge to the truth and covariance must shrink.
	k := ConstantVelocity2D(1, 1e-6, 0.5, 0, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		k.Predict()
		z := mathx.NewMatrixFrom(2, 1, []float64{
			3 + rng.NormFloat64()*0.5,
			-2 + rng.NormFloat64()*0.5,
		})
		if _, err := k.Update(z); err != nil {
			t.Fatal(err)
		}
	}
	x, y := k.Position()
	if math.Abs(x-3) > 0.2 || math.Abs(y+2) > 0.2 {
		t.Fatalf("estimate (%.3f, %.3f) far from (3, -2)", x, y)
	}
	if k.P.At(0, 0) > 1 {
		t.Fatalf("covariance did not shrink: %v", k.P.At(0, 0))
	}
}

func TestConstantVelocityTracking(t *testing.T) {
	// Target moving at (1, 0.5)/step; filter should learn the velocity.
	k := ConstantVelocity2D(1, 1e-4, 0.1, 0, 0)
	rng := rand.New(rand.NewSource(2))
	for i := 1; i <= 300; i++ {
		k.Predict()
		z := mathx.NewMatrixFrom(2, 1, []float64{
			float64(i) + rng.NormFloat64()*0.1,
			0.5*float64(i) + rng.NormFloat64()*0.1,
		})
		if _, err := k.Update(z); err != nil {
			t.Fatal(err)
		}
	}
	vx, vy := k.Velocity()
	if math.Abs(vx-1) > 0.05 || math.Abs(vy-0.5) > 0.05 {
		t.Fatalf("velocity estimate (%.3f, %.3f), want (1, 0.5)", vx, vy)
	}
}

func TestPredictionCoastsThroughDropout(t *testing.T) {
	// With no measurements, prediction extrapolates along the velocity.
	k := ConstantVelocity2D(1, 1e-4, 0.1, 0, 0)
	for i := 1; i <= 50; i++ {
		k.Predict()
		z := mathx.NewMatrixFrom(2, 1, []float64{float64(i), 0})
		if _, err := k.Update(z); err != nil {
			t.Fatal(err)
		}
	}
	// Coast 10 steps without updates.
	for i := 0; i < 10; i++ {
		k.Predict()
	}
	x, _ := k.Position()
	if math.Abs(x-60) > 1 {
		t.Fatalf("coasted to x=%.2f, want ≈60", x)
	}
}

func TestInnovationShrinksWithAgreement(t *testing.T) {
	k := ConstantVelocity2D(1, 1e-4, 1, 5, 5)
	var last float64
	for i := 0; i < 20; i++ {
		k.Predict()
		y, err := k.Update(mathx.NewMatrixFrom(2, 1, []float64{5, 5}))
		if err != nil {
			t.Fatal(err)
		}
		last = math.Hypot(y.At(0, 0), y.At(1, 0))
	}
	if last > 0.01 {
		t.Fatalf("innovation %.4f did not vanish for consistent measurements", last)
	}
}

func TestUpdateRejectsBadMeasurement(t *testing.T) {
	k := ConstantVelocity2D(1, 1e-4, 1, 0, 0)
	if _, err := k.Update(mathx.NewMatrix(3, 1)); err == nil {
		t.Fatal("wrong measurement dimension accepted")
	}
}
