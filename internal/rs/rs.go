// Package rs implements Reed-Solomon erasure coding over GF(2^8), the
// encoding FTI uses for its level-3 checkpoints (paper Sec. IV; FTI [9]
// stores RS-encoded checkpoint data so a group of ranks can survive the
// loss of any m of k+m blocks without touching the parallel file system).
//
// The code is systematic: Encode leaves the k data shards untouched and
// produces m parity shards from a Cauchy-style generator matrix;
// Reconstruct rebuilds any missing shards as long as at least k survive.
package rs

import (
	"errors"
	"fmt"
)

// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).

var (
	expTable [512]byte // exp[i] = g^i, doubled to avoid mod in mul
	logTable [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by the generator 0x03 = x+1 in GF(2^8)
		x = mulSlow(x, 3)
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// mulSlow is carry-less polynomial multiplication mod 0x11b, used only to
// build the tables.
func mulSlow(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// gfDiv divides a by b; division by zero panics.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("rs: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte { return gfDiv(1, a) }

// Code is a configured (k data, m parity) erasure code.
type Code struct {
	k, m int
	// gen is the m×k generator for the parity rows (Cauchy matrix:
	// gen[i][j] = 1/(x_i + y_j) with disjoint x, y sets), which guarantees
	// every k×k submatrix of [I; gen] is invertible.
	gen [][]byte
}

// New builds a code with k data shards and m parity shards.
// Constraints: k ≥ 1, m ≥ 1, k+m ≤ 256.
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 || k+m > 256 {
		return nil, fmt.Errorf("rs: invalid geometry k=%d m=%d (need k,m ≥ 1, k+m ≤ 256)", k, m)
	}
	gen := make([][]byte, m)
	for i := 0; i < m; i++ {
		gen[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			// x_i = k+i, y_j = j; disjoint because i ≥ 0 → x ≥ k > y.
			gen[i][j] = gfInv(byte(k+i) ^ byte(j))
		}
	}
	return &Code{k: k, m: m, gen: gen}, nil
}

// DataShards returns k.
func (c *Code) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Code) ParityShards() int { return c.m }

// ErrShardSize reports inconsistent shard lengths.
var ErrShardSize = errors.New("rs: shards must be non-empty and equal-sized")

// ErrTooFewShards reports an unrecoverable erasure pattern.
var ErrTooFewShards = errors.New("rs: fewer than k shards present, cannot reconstruct")

// Encode computes the m parity shards for the given k data shards.
// All data shards must be the same non-zero length.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: got %d data shards, want %d", len(data), c.k)
	}
	size := len(data[0])
	if size == 0 {
		return nil, ErrShardSize
	}
	for _, d := range data {
		if len(d) != size {
			return nil, ErrShardSize
		}
	}
	parity := make([][]byte, c.m)
	for i := 0; i < c.m; i++ {
		parity[i] = make([]byte, size)
		row := c.gen[i]
		for j := 0; j < c.k; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			src := data[j]
			dst := parity[i]
			for b := 0; b < size; b++ {
				if src[b] != 0 {
					dst[b] ^= gfMul(coef, src[b])
				}
			}
		}
	}
	return parity, nil
}

// Reconstruct fills in missing shards in place. shards has length k+m with
// data shards first; missing entries are nil. At least k shards must be
// non-nil. On return every entry is populated.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("rs: got %d shards, want %d", len(shards), c.k+c.m)
	}
	size := 0
	present := 0
	for _, s := range shards {
		if s == nil {
			continue
		}
		present++
		if size == 0 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSize
		}
	}
	if size == 0 {
		return ErrShardSize
	}
	if present < c.k {
		return ErrTooFewShards
	}
	// Fast path: all data shards present → only recompute parity.
	dataMissing := false
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			dataMissing = true
			break
		}
	}
	if !dataMissing {
		parity, err := c.Encode(shards[:c.k])
		if err != nil {
			return err
		}
		for i := 0; i < c.m; i++ {
			if shards[c.k+i] == nil {
				shards[c.k+i] = parity[i]
			}
		}
		return nil
	}

	// General path: pick k surviving rows of the (k+m)×k full matrix
	// [I; gen], invert that submatrix, and multiply by the surviving
	// shards to recover the data shards.
	rows := make([]int, 0, c.k)
	for i := 0; i < c.k+c.m && len(rows) < c.k; i++ {
		if shards[i] != nil {
			rows = append(rows, i)
		}
	}
	sub := make([][]byte, c.k)
	for r, idx := range rows {
		sub[r] = make([]byte, c.k)
		if idx < c.k {
			sub[r][idx] = 1
		} else {
			copy(sub[r], c.gen[idx-c.k])
		}
	}
	inv, err := invertMatrix(sub)
	if err != nil {
		return fmt.Errorf("rs: generator submatrix not invertible: %w", err)
	}
	// data[j] = Σ_r inv[j][r] · shards[rows[r]]
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		for r := 0; r < c.k; r++ {
			coef := inv[j][r]
			if coef == 0 {
				continue
			}
			src := shards[rows[r]]
			for b := 0; b < size; b++ {
				if src[b] != 0 {
					out[b] ^= gfMul(coef, src[b])
				}
			}
		}
		shards[j] = out
	}
	// Recompute any missing parity from the now-complete data.
	parity, err := c.Encode(shards[:c.k])
	if err != nil {
		return err
	}
	for i := 0; i < c.m; i++ {
		if shards[c.k+i] == nil {
			shards[c.k+i] = parity[i]
		}
	}
	return nil
}

// Verify checks that the parity shards are consistent with the data shards.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.k+c.m {
		return false, fmt.Errorf("rs: got %d shards, want %d", len(shards), c.k+c.m)
	}
	for _, s := range shards {
		if s == nil {
			return false, ErrShardSize
		}
	}
	parity, err := c.Encode(shards[:c.k])
	if err != nil {
		return false, err
	}
	for i := 0; i < c.m; i++ {
		got := shards[c.k+i]
		for b := range got {
			if got[b] != parity[i][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

// invertMatrix inverts a square GF(2^8) matrix by Gauss-Jordan elimination.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	a := make([][]byte, n)
	inv := make([][]byte, n)
	for i := range m {
		a[i] = append([]byte(nil), m[i]...)
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("rs: singular matrix")
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		p := a[col][col]
		pInv := gfInv(p)
		for j := 0; j < n; j++ {
			a[col][j] = gfMul(a[col][j], pInv)
			inv[col][j] = gfMul(inv[col][j], pInv)
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < n; j++ {
				a[r][j] ^= gfMul(f, a[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}
