// Package sim implements the discrete-event simulation kernel used by the
// LEGaTO reproduction. Hardware-gated experiments (GPU checkpoint streaming,
// cluster scheduling, the Smart Mirror pipeline) run against a virtual clock
// so results are deterministic and independent of host load.
//
// The kernel is a classic event-heap design: events carry a firing time and
// a sequence number (FIFO among equal times), and an Engine drains the heap,
// advancing virtual time monotonically.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured from the engine epoch.
type Time = time.Duration

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; model processes are expressed as chains of callbacks.
// In the multi-job engine every job owns exactly one Engine — its private
// virtual clock — and the owning worker goroutine is the only one that may
// touch it; cross-job coordination happens in wall-clock time through the
// admission ledger, never by sharing a clock.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64
	live   int // scheduled events not yet fired or cancelled
	procs  int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending reports the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int { return e.live }

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	ev  *event
	eng *Engine
}

// Cancel removes the event from the schedule; cancelling an already-fired
// or already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil && !h.ev.dead {
		h.ev.dead = true
		h.eng.live--
	}
}

// Schedule queues fn to run after delay of virtual time. A negative delay
// panics: virtual time is monotone.
func (e *Engine) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.seq++
	ev := &event{at: e.now + delay, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	e.live++
	return Handle{ev: ev, eng: e}
}

// ScheduleAt queues fn at an absolute virtual time, which must not be in
// the past.
func (e *Engine) ScheduleAt(at Time, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	return e.Schedule(at-e.now, fn)
}

// Step executes the next event, returning false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		ev.dead = true // spent: a late Cancel must be a no-op
		e.live--
		e.now = ev.at
		e.steps++
		ev.fn()
		return true
	}
	return false
}

// Run drains the event queue completely and returns the final virtual time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with firing time ≤ deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 {
		// Peek at the head, skipping dead events.
		head := e.events[0]
		if head.dead {
			heap.Pop(&e.events)
			continue
		}
		if head.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor runs for a span of virtual time from the current clock.
func (e *Engine) RunFor(span Time) Time { return e.RunUntil(e.now + span) }
