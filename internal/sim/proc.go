package sim

// Process-interaction layer: model processes written as ordinary sequential
// Go functions that block in virtual time (Sleep, Await, mailbox Get). The
// engine runs processes cooperatively — exactly one goroutine (the engine's
// caller or one process) executes at any instant, so process code needs no
// locking and the simulation stays deterministic.
//
// The handshake: when the engine wakes a process it blocks until the
// process parks again (in Sleep/Await/Get) or returns. While a process
// runs, the engine is parked, so processes may safely call Schedule,
// Put, Transfer, etc.

// Proc is a simulated process. Methods on Proc must only be called from
// within the process's own function.
type Proc struct {
	eng    *Engine
	Name   string
	resume chan struct{}
	parked chan struct{}
	done   bool
}

// Go spawns fn as a simulated process starting at the current virtual time.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, Name: name, resume: make(chan struct{}), parked: make(chan struct{})}
	e.procs++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		e.procs--
		p.parked <- struct{}{}
	}()
	e.Schedule(0, p.wake)
	return p
}

// ActiveProcs returns the number of spawned processes that have not yet
// returned. A nonzero value after Run means processes are deadlocked
// waiting for events that will never fire.
func (e *Engine) ActiveProcs() int { return e.procs }

// wake transfers control to the process and blocks until it parks or exits.
// It must run in engine context (inside an event callback).
func (p *Proc) wake() {
	p.resume <- struct{}{}
	<-p.parked
}

// park yields control back to the engine and blocks until woken.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	p.eng.Schedule(d, p.wake)
	p.park()
}

// Await parks the process until the completion callback passed to register
// is invoked. register runs immediately in the process's context; the
// callback may fire from any later engine event.
//
//	p.Await(func(done func()) { pipe.Transfer(n, done) })
func (p *Proc) Await(register func(done func())) {
	fired := false
	register(func() {
		if fired {
			panic("sim: Await completion invoked twice")
		}
		fired = true
		// Wake the process from engine context.
		p.eng.Schedule(0, p.wake)
	})
	p.park()
}

// TransferP blocks the process while size bytes move through the pipe
// (including queueing behind earlier transfers).
func (p *Proc) TransferP(pipe *Pipe, size int64) {
	p.Await(func(done func()) { pipe.Transfer(size, done) })
}

// UseP blocks the process while it holds one unit of r for span.
func (p *Proc) UseP(r *Resource, span Time) {
	p.Await(func(done func()) { r.Use(span, done) })
}

// Mailbox is an unbounded FIFO of items exchanged between processes in
// virtual time. Put never blocks; Get blocks the calling process until an
// item is available. Multiple concurrent getters are served FIFO.
type Mailbox struct {
	eng     *Engine
	items   []any
	waiters []func(any)
}

// NewMailbox creates an empty mailbox.
func NewMailbox(eng *Engine) *Mailbox { return &Mailbox{eng: eng} }

// Len returns the number of queued items.
func (m *Mailbox) Len() int { return len(m.items) }

// Put deposits an item; if a process is blocked in Get, it is woken and
// receives the item directly.
func (m *Mailbox) Put(item any) {
	if len(m.waiters) > 0 {
		h := m.waiters[0]
		m.waiters = m.waiters[1:]
		h(item)
		return
	}
	m.items = append(m.items, item)
}

// Get blocks the process until an item is available, then returns it.
func (m *Mailbox) Get(p *Proc) any {
	if len(m.items) > 0 {
		it := m.items[0]
		m.items = m.items[1:]
		return it
	}
	var got any
	p.Await(func(done func()) {
		m.waiters = append(m.waiters, func(it any) {
			got = it
			done()
		})
	})
	return got
}

// TryGet returns an item without blocking; ok is false if none is queued.
func (m *Mailbox) TryGet() (any, bool) {
	if len(m.items) == 0 {
		return nil, false
	}
	it := m.items[0]
	m.items = m.items[1:]
	return it, true
}

// Barrier synchronises n processes: each calls Wait and blocks until all n
// have arrived, then all are released at the same virtual instant. The
// barrier is reusable (generation-counted).
type Barrier struct {
	eng     *Engine
	n       int
	arrived int
	waiting []func()
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(eng *Engine, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{eng: eng, n: n}
}

// Wait blocks the process until all parties have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		// Release everyone, reset for reuse.
		release := b.waiting
		b.waiting = nil
		b.arrived = 0
		for _, r := range release {
			r()
		}
		return
	}
	p.Await(func(done func()) {
		b.waiting = append(b.waiting, done)
	})
}
