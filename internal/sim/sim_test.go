package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final time: got %v want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("event order wrong: %v", order)
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(5, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("nested schedule times: %v", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	h := e.Schedule(10, func() { ran = true })
	h.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Now() != 0 {
		// Cancelled events still advance nothing.
		t.Fatalf("clock moved for cancelled event: %v", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 15, 25} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(20)
	if e.Now() != 20 {
		t.Fatalf("clock: got %v want 20", e.Now())
	}
	if len(fired) != 2 {
		t.Fatalf("fired: %v", fired)
	}
	e.Run()
	if len(fired) != 3 || e.Now() != 25 {
		t.Fatalf("after full run: fired=%v now=%v", fired, e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine()
	var at Time
	e.ScheduleAt(42, func() { at = e.Now() })
	e.Run()
	if at != 42 {
		t.Fatalf("ScheduleAt fired at %v", at)
	}
}

func TestResourceSerialises(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var done []Time
	for i := 0; i < 3; i++ {
		r.Use(10, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion %d: got %v want %v (capacity-1 resource must serialise)", i, done[i], w)
		}
	}
	if r.Busy != 30 {
		t.Fatalf("busy accounting: got %v want 30", r.Busy)
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var done []Time
	for i := 0; i < 4; i++ {
		r.Use(10, func() { done = append(done, e.Now()) })
	}
	e.Run()
	// Two at a time: completions at 10,10,20,20.
	want := []Time{10, 10, 20, 20}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion %d: got %v want %v", i, done[i], w)
		}
	}
}

func TestResourceReleasePanicsWhenIdle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on release of idle resource")
		}
	}()
	e := NewEngine()
	NewResource(e, 1).Release()
}

func TestPipeTransferTiming(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 100, 0) // 100 B/s
	var doneAt Time
	p.Transfer(50, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != Seconds(0.5) {
		t.Fatalf("transfer time: got %v want 0.5s", doneAt)
	}
	if p.Transferred != 50 {
		t.Fatalf("transferred bytes: %d", p.Transferred)
	}
}

func TestPipeSerialisesWithLatency(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1000, Millisecond)
	var times []Time
	p.Transfer(1000, func() { times = append(times, e.Now()) })
	p.Transfer(1000, func() { times = append(times, e.Now()) })
	e.Run()
	first := Second + Millisecond
	if times[0] != first || times[1] != 2*first {
		t.Fatalf("pipe serialisation wrong: %v", times)
	}
}

// Property: for random event sets, the engine fires every event exactly
// once, in non-decreasing time order.
func TestEngineMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		e := NewEngine()
		n := 1 + rng.Intn(50)
		fired := 0
		last := Time(-1)
		ok := true
		for i := 0; i < n; i++ {
			e.Schedule(Time(rng.Intn(1000)), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				fired++
			})
		}
		e.Run()
		return ok && fired == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-c resource never exceeds c units in use and
// completes all work.
func TestResourceInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		e := NewEngine()
		c := 1 + rng.Intn(4)
		r := NewResource(e, c)
		n := 1 + rng.Intn(40)
		completed := 0
		ok := true
		for i := 0; i < n; i++ {
			r.Use(Time(1+rng.Intn(100)), func() { completed++ })
			if r.InUse() > c {
				ok = false
			}
		}
		e.Run()
		return ok && completed == n && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if ToSeconds(Seconds(2.5)) != 2.5 {
		t.Fatalf("seconds round trip: %v", ToSeconds(Seconds(2.5)))
	}
}
