// Package middleware implements the LEGaTO middleware layer of paper
// Sec. II-B: the embedded management firmware that "manages, controls and
// monitors [the hardware] on a low-level" (inventory, power control,
// sensor polling over the management network) plus an OpenStack-flavoured
// resource-allocation API (infrastructure as a service: tenants request
// microservers by device class).
package middleware

import (
	"fmt"
	"sort"

	"legato/internal/hw"
)

// NodeInfo is the firmware's view of one microserver site.
type NodeInfo struct {
	ID      string
	Class   hw.Class
	Carrier int
	Site    int
	Powered bool
	Healthy bool
	PowerW  float64
	Tenant  string
}

// Manager is the management firmware of one RECS|BOX chassis.
type Manager struct {
	box *hw.RECSBox

	powered map[string]bool
	tenants map[string]string // microserver ID → tenant
}

// NewManager attaches firmware to a chassis; all populated sites start
// powered on and unallocated.
func NewManager(box *hw.RECSBox) *Manager {
	m := &Manager{box: box, powered: make(map[string]bool), tenants: make(map[string]string)}
	for _, ms := range box.Microservers() {
		m.powered[ms.ID] = true
	}
	return m
}

// find locates a microserver by ID.
func (m *Manager) find(id string) (*hw.Microserver, error) {
	for _, ms := range m.box.Microservers() {
		if ms.ID == id {
			return ms, nil
		}
	}
	return nil, fmt.Errorf("middleware: unknown microserver %q", id)
}

// Inventory reports every populated site, sorted by ID.
func (m *Manager) Inventory() []NodeInfo {
	var out []NodeInfo
	for _, ms := range m.box.Microservers() {
		out = append(out, NodeInfo{
			ID:      ms.ID,
			Class:   ms.Device.Spec.Class,
			Carrier: ms.Carrier.Index,
			Site:    ms.Site,
			Powered: m.powered[ms.ID],
			Healthy: ms.Device.Healthy(),
			PowerW:  ms.Device.Meter().Power(),
			Tenant:  m.tenants[ms.ID],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PowerOff shuts a microserver down (management-network KVM operation).
// Allocated nodes must be released first.
func (m *Manager) PowerOff(id string) error {
	ms, err := m.find(id)
	if err != nil {
		return err
	}
	if t := m.tenants[id]; t != "" {
		return fmt.Errorf("middleware: %s is allocated to tenant %q", id, t)
	}
	m.powered[id] = false
	ms.Device.Fail() // modelled as zero-power, no-capacity
	return nil
}

// PowerOn restores a microserver.
func (m *Manager) PowerOn(id string) error {
	ms, err := m.find(id)
	if err != nil {
		return err
	}
	m.powered[id] = true
	ms.Device.Repair()
	return nil
}

// SetDVFS selects a DVFS state on a node (energy-management hook).
func (m *Manager) SetDVFS(id string, state int) error {
	ms, err := m.find(id)
	if err != nil {
		return err
	}
	return ms.Device.SetState(state)
}

// Allocate leases the first free, powered microserver of the given class
// to a tenant (the OpenStack-style IaaS request).
func (m *Manager) Allocate(tenant string, class hw.Class) (*hw.Microserver, error) {
	if tenant == "" {
		return nil, fmt.Errorf("middleware: tenant name required")
	}
	for _, ms := range m.box.Microservers() {
		if ms.Device.Spec.Class != class {
			continue
		}
		if !m.powered[ms.ID] || !ms.Device.Healthy() {
			continue
		}
		if m.tenants[ms.ID] != "" {
			continue
		}
		m.tenants[ms.ID] = tenant
		return ms, nil
	}
	return nil, fmt.Errorf("middleware: no free %s microserver", class)
}

// Release returns a lease.
func (m *Manager) Release(id string) error {
	if _, err := m.find(id); err != nil {
		return err
	}
	if m.tenants[id] == "" {
		return fmt.Errorf("middleware: %s is not allocated", id)
	}
	delete(m.tenants, id)
	return nil
}

// TenantNodes lists a tenant's leases.
func (m *Manager) TenantNodes(tenant string) []string {
	var out []string
	for id, t := range m.tenants {
		if t == tenant {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// ChassisPower reports the total draw (the PDU reading).
func (m *Manager) ChassisPower() float64 { return m.box.TotalPower() }
