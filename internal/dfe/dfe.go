// Package dfe models Maxeler-style dataflow engines (paper Secs. I, II:
// "FPGA-based Dataflow Engines (DFE)"): a static dataflow graph is loaded
// onto the engine, streams flow through the fully pipelined graph at one
// element per cycle, and performance follows the classic fill+stream
// model: cycles = pipeline_depth + n_elements − 1.
//
// Graphs execute functionally (real arithmetic on real streams) so HLS
// lowering can be validated end to end, while timing and energy come from
// the engine's clock and per-operation cost model.
package dfe

import (
	"fmt"
	"math"
)

// Op enumerates dataflow node kinds.
type Op int

const (
	// OpInput reads the next element of a named input stream.
	OpInput Op = iota
	// OpConst produces a constant.
	OpConst
	// OpAdd, OpSub, OpMul, OpDiv are arithmetic nodes.
	OpAdd
	OpSub
	OpMul
	OpDiv
	// OpMux selects b when a > 0, else c.
	OpMux
	// OpOutput sinks a named output stream.
	OpOutput
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpInput:
		return "input"
	case OpConst:
		return "const"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	case OpMux:
		return "mux"
	case OpOutput:
		return "output"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// latency returns the node's pipeline latency in cycles.
func (o Op) latency() int {
	switch o {
	case OpAdd, OpSub, OpMux:
		return 1
	case OpMul:
		return 3
	case OpDiv:
		return 12
	default:
		return 0
	}
}

// Node is one vertex of the dataflow graph.
type Node struct {
	ID   int
	Op   Op
	Name string // stream name for inputs/outputs
	K    float64
	Args []*Node
}

// Graph is a static dataflow design.
type Graph struct {
	nodes   []*Node
	inputs  map[string]*Node
	outputs map[string]*Node
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{inputs: make(map[string]*Node), outputs: make(map[string]*Node)}
}

func (g *Graph) add(n *Node) *Node {
	n.ID = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

// Input declares (or returns) a named input stream.
func (g *Graph) Input(name string) *Node {
	if n, ok := g.inputs[name]; ok {
		return n
	}
	n := g.add(&Node{Op: OpInput, Name: name})
	g.inputs[name] = n
	return n
}

// Const produces a constant node.
func (g *Graph) Const(v float64) *Node { return g.add(&Node{Op: OpConst, K: v}) }

// Bin adds a binary arithmetic node.
func (g *Graph) Bin(op Op, a, b *Node) *Node {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv:
	default:
		panic(fmt.Sprintf("dfe: %v is not a binary op", op))
	}
	return g.add(&Node{Op: op, Args: []*Node{a, b}})
}

// Mux adds a select node: cond > 0 ? a : b.
func (g *Graph) Mux(cond, a, b *Node) *Node {
	return g.add(&Node{Op: OpMux, Args: []*Node{cond, a, b}})
}

// Output declares a named output stream fed by n.
func (g *Graph) Output(name string, n *Node) error {
	if _, dup := g.outputs[name]; dup {
		return fmt.Errorf("dfe: duplicate output %q", name)
	}
	out := g.add(&Node{Op: OpOutput, Name: name, Args: []*Node{n}})
	g.outputs[name] = out
	return nil
}

// Nodes returns the node count (excluding I/O framing).
func (g *Graph) Nodes() int { return len(g.nodes) }

// PipelineDepth returns the longest latency path in cycles.
func (g *Graph) PipelineDepth() int {
	depth := make([]int, len(g.nodes))
	max := 0
	for _, n := range g.nodes { // nodes are in topological order by construction
		d := 0
		for _, a := range n.Args {
			if depth[a.ID] > d {
				d = depth[a.ID]
			}
		}
		depth[n.ID] = d + n.Op.latency()
		if depth[n.ID] > max {
			max = depth[n.ID]
		}
	}
	return max
}

// Run streams the named inputs through the graph and returns the outputs.
// All input streams must be the same length.
func (g *Graph) Run(inputs map[string][]float64) (map[string][]float64, error) {
	n := -1
	for name := range g.inputs {
		stream, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("dfe: missing input stream %q", name)
		}
		if n == -1 {
			n = len(stream)
		} else if len(stream) != n {
			return nil, fmt.Errorf("dfe: input %q length %d, want %d", name, len(stream), n)
		}
	}
	if n == -1 {
		n = 0
	}
	out := make(map[string][]float64, len(g.outputs))
	for name := range g.outputs {
		out[name] = make([]float64, n)
	}
	vals := make([]float64, len(g.nodes))
	for i := 0; i < n; i++ {
		for _, node := range g.nodes {
			switch node.Op {
			case OpInput:
				vals[node.ID] = inputs[node.Name][i]
			case OpConst:
				vals[node.ID] = node.K
			case OpAdd:
				vals[node.ID] = vals[node.Args[0].ID] + vals[node.Args[1].ID]
			case OpSub:
				vals[node.ID] = vals[node.Args[0].ID] - vals[node.Args[1].ID]
			case OpMul:
				vals[node.ID] = vals[node.Args[0].ID] * vals[node.Args[1].ID]
			case OpDiv:
				d := vals[node.Args[1].ID]
				if d == 0 {
					vals[node.ID] = math.Inf(1)
				} else {
					vals[node.ID] = vals[node.Args[0].ID] / d
				}
			case OpMux:
				if vals[node.Args[0].ID] > 0 {
					vals[node.ID] = vals[node.Args[1].ID]
				} else {
					vals[node.ID] = vals[node.Args[2].ID]
				}
			case OpOutput:
				out[node.Name][i] = vals[node.Args[0].ID]
			}
		}
	}
	return out, nil
}

// Engine is a DFE device: a clock and a per-op energy model.
type Engine struct {
	Name string
	// ClockHz is the dataflow clock (Maxeler-class parts run ~200 MHz).
	ClockHz float64
	// StaticWatts draws regardless of activity; DynNJPerOp is the energy
	// of one node firing.
	StaticWatts float64
	DynNJPerOp  float64
}

// NewEngine returns a Maxeler-class engine model.
func NewEngine(name string) *Engine {
	return &Engine{Name: name, ClockHz: 200e6, StaticWatts: 25, DynNJPerOp: 0.05}
}

// StreamSeconds returns the wall time to stream n elements through g:
// (depth + n − 1) cycles at the engine clock.
func (e *Engine) StreamSeconds(g *Graph, n int) float64 {
	if n <= 0 {
		return 0
	}
	cycles := float64(g.PipelineDepth() + n - 1)
	return cycles / e.ClockHz
}

// StreamEnergyJ returns the energy to stream n elements: static draw over
// the stream time plus dynamic energy of every node firing per element.
func (e *Engine) StreamEnergyJ(g *Graph, n int) float64 {
	t := e.StreamSeconds(g, n)
	dynamic := float64(g.Nodes()) * float64(n) * e.DynNJPerOp * 1e-9
	return e.StaticWatts*t + dynamic
}
