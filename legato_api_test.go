package legato

// Tests for the redesigned public API: functional options, the multi-job
// engine surface (Job/Run(ctx)/Stats), DataHandle + TaskBuilder, and the
// deprecated Config shim's equivalence with the historical behaviour.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"legato/internal/secure"
)

func TestOptionDefaults(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	if sys.Platform() != CloudPlatform {
		t.Fatalf("platform = %v, want CloudPlatform", sys.Platform())
	}
	if sys.Policy() != MinEnergy {
		t.Fatalf("policy = %v, want MinEnergy (the project default)", sys.Policy())
	}
	if sys.TEE() != secure.SGX {
		t.Fatalf("tee = %v, want SGX", sys.TEE())
	}
	if sys.Workers() < 2 {
		t.Fatalf("workers = %d, want >= 2", sys.Workers())
	}
}

func TestOptionsCompose(t *testing.T) {
	sys, err := NewSystem(
		WithPlatform(EdgePlatform),
		WithPolicy(MinEDP),
		WithTEE(secure.TrustZone),
		WithRootKey([]byte("test-platform-root-key-000000000")),
		WithWorkers(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	if sys.Platform() != EdgePlatform || sys.Policy() != MinEDP ||
		sys.TEE() != secure.TrustZone || sys.Workers() != 3 {
		t.Fatalf("options not applied: platform=%v policy=%v tee=%v workers=%d",
			sys.Platform(), sys.Policy(), sys.TEE(), sys.Workers())
	}
}

// TestTEESentinelGone pins the headline fix of the options redesign: with
// WithTEE the SoftwareOnly value is honoured, while the deprecated Config
// path keeps its historical SGX coercion so old callers see old behaviour.
func TestTEESentinelGone(t *testing.T) {
	viaOption, err := NewSystem(WithTEE(secure.SoftwareOnly))
	if err != nil {
		t.Fatal(err)
	}
	defer viaOption.Close(context.Background())
	if viaOption.TEE() != secure.SoftwareOnly {
		t.Fatalf("WithTEE(SoftwareOnly) coerced to %v", viaOption.TEE())
	}
	viaConfig, err := NewSystem(Config{TEE: secure.SoftwareOnly})
	if err != nil {
		t.Fatal(err)
	}
	defer viaConfig.Close(context.Background())
	if viaConfig.TEE() != secure.SGX {
		t.Fatalf("Config shim changed behaviour: tee = %v, want SGX", viaConfig.TEE())
	}
}

// submitPipeline builds the same five-task mixed-requirements graph
// through the legacy string-dependence Submit surface.
func submitPipeline(t *testing.T, submit func(Task) error) {
	t.Helper()
	tasks := []Task{
		{Name: "ingest", Gops: 20, Out: []string{"raw"}},
		{Name: "preprocess", Gops: 120, Cores: 4, In: []string{"raw"}, Out: []string{"clean"}},
		{Name: "analyze", Gops: 80, In: []string{"clean"}, Out: []string{"scores"},
			Req: Requirements{Replicate: true}},
		{Name: "private", Gops: 40, In: []string{"clean"}, Out: []string{"insights"},
			Req: Requirements{Secure: true}},
		{Name: "report", Gops: 5, In: []string{"scores", "insights"}, Out: []string{"summary"}},
	}
	for _, task := range tasks {
		if err := submit(task); err != nil {
			t.Fatalf("submit %s: %v", task.Name, err)
		}
	}
}

// TestDeprecatedShimEquivalence runs the same graph through the old
// surface (NewSystem(Config), System.Submit, System.Run) and through the
// new one (options, NewJob, TaskBuilder, Run(ctx)) and requires identical
// schedules.
func TestDeprecatedShimEquivalence(t *testing.T) {
	old, err := NewSystem(Config{Policy: MinTime})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close(context.Background())
	submitPipeline(t, old.Submit)
	oldRep, err := old.Run()
	if err != nil {
		t.Fatal(err)
	}

	sys, err := NewSystem(WithPolicy(MinTime))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	raw := job.Data("raw", 0)
	clean := job.Data("clean", 0)
	scores := job.Data("scores", 0)
	insights := job.Data("insights", 0)
	summary := job.Data("summary", 0)
	for _, submit := range []func() error{
		job.Task("ingest").Gops(20).Out(raw).Submit,
		job.Task("preprocess").Gops(120).Cores(4).In(raw).Out(clean).Submit,
		job.Task("analyze").Gops(80).In(clean).Out(scores).Replicated().Submit,
		job.Task("private").Gops(40).In(clean).Out(insights).Secure().Submit,
		job.Task("report").Gops(5).In(scores).Out(summary).In(insights).Submit,
	} {
		if err := submit(); err != nil {
			t.Fatal(err)
		}
	}
	newRep, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if oldRep.Makespan != newRep.Makespan {
		t.Fatalf("makespan diverged: old %v, new %v", oldRep.Makespan, newRep.Makespan)
	}
	if oldRep.TaskEnergyJ != newRep.TaskEnergyJ {
		t.Fatalf("task energy diverged: old %v, new %v", oldRep.TaskEnergyJ, newRep.TaskEnergyJ)
	}
	if oldRep.ReplicatedTasks != newRep.ReplicatedTasks || len(oldRep.Records) != len(newRep.Records) {
		t.Fatalf("graph expansion diverged: old %d/%d, new %d/%d",
			oldRep.ReplicatedTasks, len(oldRep.Records), newRep.ReplicatedTasks, len(newRep.Records))
	}
}

func TestUndeclaredInputRejected(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("strict")
	if err != nil {
		t.Fatal(err)
	}
	err = job.Submit(Task{Name: "reader", Gops: 1, In: []string{"ghost"}})
	if err == nil || !strings.Contains(err.Error(), "never declared") {
		t.Fatalf("undeclared input accepted: %v", err)
	}
	if err := job.Submit(Task{Name: "toucher", Gops: 1, InOut: []string{"ghost"}}); err == nil {
		t.Fatal("undeclared inout accepted")
	}
	job.Data("ghost", 128)
	if err := job.Submit(Task{Name: "reader", Gops: 1, In: []string{"ghost"}}); err != nil {
		t.Fatalf("declared input rejected: %v", err)
	}
	// Out legitimately declares: a writer is its region's producer.
	if err := job.Submit(Task{Name: "writer", Gops: 1, Out: []string{"fresh"}}); err != nil {
		t.Fatalf("producer rejected: %v", err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestForeignHandleRejected(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	jobA, _ := sys.NewJob("a")
	jobB, _ := sys.NewJob("b")
	theirs := jobA.Data("theirs", 64)
	err = jobB.Task("thief").Gops(1).In(theirs).Submit()
	if err == nil || !strings.Contains(err.Error(), "belongs to job") {
		t.Fatalf("foreign handle accepted: %v", err)
	}
	var zero DataHandle
	if err := jobB.Task("zero").In(zero).Submit(); err == nil {
		t.Fatal("zero handle accepted")
	}
}

// TestConcurrentSubmit hammers one job from many goroutines and then runs
// it — the -race guarantee the old System never gave.
func TestConcurrentSubmit(t *testing.T) {
	sys, err := NewSystem(WithPolicy(MinTime))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("hammered")
	if err != nil {
		t.Fatal(err)
	}
	const gs, perG = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, gs*perG)
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prev := job.Data(fmt.Sprintf("lane%d/d0", g), 64)
			for i := 0; i < perG; i++ {
				next := job.Data(fmt.Sprintf("lane%d/d%d", g, i+1), 64)
				if err := job.Task(fmt.Sprintf("lane%d/t%d", g, i)).
					Gops(5).In(prev).Out(next).Submit(); err != nil {
					errs <- err
				}
				prev = next
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rep, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != gs*perG {
		t.Fatalf("records = %d, want %d", len(rep.Records), gs*perG)
	}
}

func TestCancellationMidRun(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("doomed")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prev := job.Data("d0", 64)
	for i := 0; i < 10; i++ {
		next := job.Data(fmt.Sprintf("d%d", i+1), 64)
		b := job.Task(fmt.Sprintf("t%d", i)).Gops(10).In(prev).Out(next)
		if i == 5 {
			b = b.Do(cancel) // the graph cancels itself mid-run
		}
		if err := b.Submit(); err != nil {
			t.Fatal(err)
		}
		prev = next
	}
	_, err = job.Run(ctx)
	if !errors.Is(err, context.Canceled) || !errors.Is(err, ErrJobCancelled) {
		t.Fatalf("err = %v, want context.Canceled wrapped with ErrJobCancelled", err)
	}
	if job.State() != "cancelled" {
		t.Fatalf("state = %q, want cancelled", job.State())
	}
	if st := sys.Stats(); st.JobsCancelled != 1 {
		t.Fatalf("stats = %+v, want one cancelled job", st)
	}
}

func TestPerJobDeadline(t *testing.T) {
	sys, err := NewSystem(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("tardy")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Task("work").Gops(50).Submit(); err != nil {
		t.Fatal(err)
	}
	job.SetTimeout(time.Nanosecond)
	if _, err := job.Run(context.Background()); !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrJobCancelled) {
		t.Fatalf("err = %v, want context.DeadlineExceeded wrapped with ErrJobCancelled", err)
	}
}

func TestMonitorAndTraceSurface(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	job, err := sys.NewJob("observed")
	if err != nil {
		t.Fatal(err)
	}
	d := job.Data("d", 64)
	if err := job.Task("one").Gops(10).Out(d).Submit(); err != nil {
		t.Fatal(err)
	}
	if err := job.Task("two").Gops(10).In(d).Submit(); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	reg := sys.Monitor()
	if got := reg.Get("job/observed", "tasks-completed"); got != 2 {
		t.Fatalf("tasks-completed = %v, want 2", got)
	}
	deviceScoped := false
	for _, scope := range reg.Scopes() {
		if strings.HasPrefix(scope, "device/") {
			deviceScoped = true
		}
	}
	if !deviceScoped {
		t.Fatalf("no per-device counters in %v", reg.Scopes())
	}
	var taskSpans, powerSpans int
	for _, s := range sys.Tracer().Spans() {
		switch s.Category {
		case "task":
			taskSpans++
		case "power":
			powerSpans++
			if s.Value < 0 {
				t.Fatalf("power sample with negative draw: %+v", s)
			}
		}
	}
	if taskSpans != 2 {
		t.Fatalf("session trace has %d task spans, want 2", taskSpans)
	}
	// Draw is sampled at every task boundary (start + finish).
	if powerSpans != 4 {
		t.Fatalf("session trace has %d power samples, want 4", powerSpans)
	}
	if xs, ys := sys.Tracer().Series("power"); len(xs) != 4 || len(ys) != 4 {
		t.Fatalf("Series(power) = %d/%d points, want 4", len(xs), len(ys))
	}
	if sys.Tracer().Counter("jobs") != 1 {
		t.Fatalf("jobs counter = %v", sys.Tracer().Counter("jobs"))
	}
}

// TestImplicitJobRestarts verifies the deprecated surface can be used
// again after Run: each Run cycle gets a fresh implicit job.
func TestImplicitJobRestarts(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	for round := 0; round < 2; round++ {
		if err := sys.Submit(Task{Name: "t", Gops: 5}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		rep, err := sys.Run()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(rep.Records) != 1 {
			t.Fatalf("round %d: records = %d", round, len(rep.Records))
		}
	}
}

// buildThroughputJob populates one of the independent benchmark jobs: four
// parallel chains of five dependent tasks.
func buildThroughputJob(job *Job) error {
	for c := 0; c < 4; c++ {
		prev := job.Data(fmt.Sprintf("c%d/d0", c), 1024)
		for i := 0; i < 5; i++ {
			next := job.Data(fmt.Sprintf("c%d/d%d", c, i+1), 1024)
			if err := job.Task(fmt.Sprintf("c%d/t%d", c, i)).
				Gops(25).In(prev).Out(next).Submit(); err != nil {
				return err
			}
			prev = next
		}
	}
	return nil
}

// runThroughputSession runs 8 independent jobs through a system with the
// given worker-pool width and returns the session stats. Extra options
// compose after the baseline ones (the observer-overhead benchmark adds
// observability variants on the same workload).
func runThroughputSession(t testing.TB, workers int, extra ...Option) SessionStats {
	t.Helper()
	opts := append([]Option{WithPolicy(MinTime), WithWorkers(workers)}, extra...)
	sys, err := NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())
	ctx := context.Background()
	var jobs []*Job
	for n := 0; n < 8; n++ {
		job, err := sys.NewJob(fmt.Sprintf("job%d", n))
		if err != nil {
			t.Fatal(err)
		}
		if err := buildThroughputJob(job); err != nil {
			t.Fatal(err)
		}
		if err := job.Start(ctx); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return sys.Stats()
}

// TestMultiJobThroughput is the acceptance gate for the concurrent engine:
// 8 independent jobs through an 8-wide engine must yield at least twice
// the throughput of serial submission, measured in fleet time.
func TestMultiJobThroughput(t *testing.T) {
	serial := runThroughputSession(t, 1)
	if serial.SessionMakespan != serial.TotalJobTime {
		t.Fatalf("serial session %v != sum of job makespans %v",
			serial.SessionMakespan, serial.TotalJobTime)
	}
	conc := runThroughputSession(t, 8)
	if conc.JobsCompleted != 8 || conc.TasksCompleted != 8*4*5 {
		t.Fatalf("stats: %+v", conc)
	}
	speedup := float64(serial.SessionMakespan) / float64(conc.SessionMakespan)
	t.Logf("serial fleet time %v, concurrent %v, speedup %.2fx (stalls: %d)",
		serial.SessionMakespan, conc.SessionMakespan, speedup, conc.AdmissionStalls)
	if speedup < 2 {
		t.Fatalf("concurrent engine speedup %.2fx, want >= 2x", speedup)
	}
}
