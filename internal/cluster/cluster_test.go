package cluster

import (
	"math"
	"testing"

	"legato/internal/hw"
	"legato/internal/sim"
)

func TestPlaceAndComplete(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	n := c.AddNode("x86-0", hw.XeonD())
	done := false
	task := &Task{Name: "t", Kind: "k", CPU: 4, MemBytes: 1 << 30, Gops: 100,
		OnDone: func() { done = true }}
	if err := c.Place(task, n); err != nil {
		t.Fatal(err)
	}
	if n.CPUFree() != 12 {
		t.Fatalf("cpu accounting: %d free", n.CPUFree())
	}
	eng.Run()
	if !done || !task.Done() {
		t.Fatal("task did not complete")
	}
	if n.CPUFree() != 16 || n.RunningTasks() != 0 {
		t.Fatal("resources not released")
	}
	if c.Completed() != 1 {
		t.Fatalf("completed count: %d", c.Completed())
	}
	if task.EnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestPlacementValidation(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	n := c.AddNode("arm-0", hw.ARMv8Server())
	big := &Task{Name: "big", CPU: 99, Gops: 1}
	if err := c.Place(big, n); err == nil {
		t.Fatal("oversized task accepted")
	}
	task := &Task{Name: "t", CPU: 2, Gops: 10}
	if err := c.Place(task, n); err != nil {
		t.Fatal(err)
	}
	if err := c.Place(task, n); err == nil {
		t.Fatal("double placement accepted")
	}
}

func TestExecTimeMatchesDeviceModel(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	n := c.AddNode("x86-0", hw.XeonD())
	task := &Task{Name: "t", CPU: 16, Gops: 400} // full device: 1s at 400 GOPS
	if err := c.Place(task, n); err != nil {
		t.Fatal(err)
	}
	end := eng.Run()
	if math.Abs(sim.ToSeconds(end)-1.0) > 1e-9 {
		t.Fatalf("completion at %v, want 1s", sim.ToSeconds(end))
	}
}

func TestMigrationPreservesWork(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	slow := c.AddNode("arm-0", hw.ARMv8Server()) // 144 GOPS over 8 cores
	fast := c.AddNode("x86-0", hw.XeonD())
	task := &Task{Name: "t", Kind: "k", CPU: 8, MemBytes: 1 << 28, Gops: 288}
	// On ARM with all 8 cores: 2s. Migrate at 1s (half done) to the Xeon.
	if err := c.Place(task, slow); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(sim.Second, func() {
		if err := c.Migrate(task, fast); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	end := eng.Run()
	if !task.Done() {
		t.Fatal("task unfinished after migration")
	}
	if task.Migrations() != 1 {
		t.Fatalf("migration count: %d", task.Migrations())
	}
	// Remaining 144 gops on 8 Xeon cores (200 GOPS for 8/16 cores): 0.72s,
	// plus downtime 0.5s + 268MB at 1GB/s ≈ 0.268s → end ≈ 1 + 0.768 + 0.72.
	want := 1.0 + 0.5 + float64(1<<28)/1e9 + 144.0/200.0
	if math.Abs(sim.ToSeconds(end)-want) > 0.01 {
		t.Fatalf("end at %.3fs, want ≈%.3fs", sim.ToSeconds(end), want)
	}
	// Both nodes clean.
	if slow.RunningTasks() != 0 || fast.RunningTasks() != 0 {
		t.Fatal("nodes not cleaned up after migration")
	}
	if slow.CPUFree() != 8 || fast.CPUFree() != 16 {
		t.Fatal("cpu leak after migration")
	}
}

func TestMigrateValidation(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	a := c.AddNode("a", hw.ARMv8Server())
	b := c.AddNode("b", hw.ARMv8Server())
	task := &Task{Name: "t", CPU: 2, Gops: 1000}
	if err := c.Migrate(task, b); err == nil {
		t.Fatal("migrating unplaced task accepted")
	}
	if err := c.Place(task, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate(task, a); err == nil {
		t.Fatal("self-migration accepted")
	}
	eng.Run()
	if err := c.Migrate(task, b); err == nil {
		t.Fatal("migrating finished task accepted")
	}
}

func TestPowerReflectsLoad(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng)
	n := c.AddNode("x86-0", hw.XeonD())
	idle := c.TotalPower()
	task := &Task{Name: "t", CPU: 16, Gops: 1000}
	if err := c.Place(task, n); err != nil {
		t.Fatal(err)
	}
	if c.TotalPower() <= idle {
		t.Fatal("power did not rise under load")
	}
	eng.Run()
	if c.TotalPower() != idle {
		t.Fatal("power did not return to idle")
	}
	if c.TotalEnergy() <= 0 {
		t.Fatal("no energy integrated")
	}
}
