# Tier-1 verification entry point (see ROADMAP.md): `make ci` is what a
# reviewer runs to accept a change.

GO ?= go

.PHONY: ci vet lint build test race bench bench-short run-bench clean

ci: vet lint build race bench-short

vet:
	$(GO) vet ./...

# Static passes over the runtime packages (see cmd/legato-lint): ignored
# error returns, wall-clock reads in fleet-time code, and operator output
# (fmt/log printing) that should flow through the event bus instead.
lint:
	$(GO) run ./cmd/legato-lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — smoke-checks the experiment
# harness plus the E11 >= 2x throughput, E12 <= 1.5x inflation,
# E13 power-cap/EDP, and observer-overhead (armed-idle bus within 3%
# of the bus-free baseline) gates without a full run.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x ./...

# Regenerate every paper table/figure (add QUICK=1 for smaller sweeps).
run-bench:
	$(GO) run ./cmd/legato-bench $(if $(QUICK),-quick)

clean:
	$(GO) clean ./...
