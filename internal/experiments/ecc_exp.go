package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"legato/internal/ecc"
	"legato/internal/fpga"
)

// ECCRow is one voltage point of the ECC-mitigation ablation.
type ECCRow struct {
	Voltage       float64
	FaultsPerMbit float64
	// PlainBadWords counts corrupted 8-byte words without protection.
	PlainBadWords int
	// ECCBadWords counts words still corrupted after SECDED decoding.
	ECCBadWords int
	// Corrected counts single-bit corrections ECC performed.
	Corrected int
}

// ECCMitigation stores a payload in BRAM twice — raw and SECDED-encoded —
// and sweeps the critical voltage region, comparing residual corruption.
// This is the mitigation ablation for operating FPGAs below Vmin
// (DESIGN.md §8; the direction Sec. III-C's OmpSs@FPGA integration takes).
func ECCMitigation(payloadBytes int, seed int64) ([]ECCRow, error) {
	p := fpga.ZC702()
	b := fpga.NewBoard(p, seed)

	rng := rand.New(rand.NewSource(seed + 1))
	payload := make([]byte, payloadBytes)
	rng.Read(payload)
	encoded := ecc.Encode(payload)

	if payloadBytes+len(encoded) > b.MemBytes() {
		return nil, fmt.Errorf("experiments: payload %d too large for %s BRAM", payloadBytes, p.Name)
	}
	if err := b.Write(0, payload); err != nil {
		return nil, err
	}
	encOff := int64(payloadBytes)
	if err := b.Write(encOff, encoded); err != nil {
		return nil, err
	}

	var rows []ECCRow
	steps := int((p.VNom-p.VCrash)/0.01 + 0.5)
	for i := 0; i <= steps; i++ {
		v := p.VNom - float64(i)*0.01
		if v < p.VCrash {
			v = p.VCrash
		}
		b.SetVCCBRAM(v)
		if !b.Done() {
			break
		}
		// Raw read.
		raw := make([]byte, payloadBytes)
		if err := b.Read(0, raw); err != nil {
			return nil, err
		}
		plainBad := 0
		for w := 0; w+8 <= payloadBytes; w += 8 {
			for j := 0; j < 8; j++ {
				if raw[w+j] != payload[w+j] {
					plainBad++
					break
				}
			}
		}
		// ECC read + decode.
		encRead := make([]byte, len(encoded))
		if err := b.Read(encOff, encRead); err != nil {
			return nil, err
		}
		decoded, stats, err := ecc.Decode(encRead, payloadBytes)
		if err != nil {
			return nil, err
		}
		eccBad := 0
		for w := 0; w+8 <= payloadBytes; w += 8 {
			for j := 0; j < 8; j++ {
				if decoded[w+j] != payload[w+j] {
					eccBad++
					break
				}
			}
		}
		rows = append(rows, ECCRow{
			Voltage:       v,
			FaultsPerMbit: b.FaultsPerMbit(),
			PlainBadWords: plainBad,
			ECCBadWords:   eccBad,
			Corrected:     stats.Corrected,
		})
	}
	return rows, nil
}

// ECCTable renders the ablation.
func ECCTable(rows []ECCRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — SECDED ECC vs raw BRAM storage under undervolting (ZC702)\n")
	fmt.Fprintf(&sb, "%8s %14s %12s %12s %11s\n",
		"V", "faults/Mbit", "raw bad", "ecc bad", "corrected")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8.2f %14.1f %12d %12d %11d\n",
			r.Voltage, r.FaultsPerMbit, r.PlainBadWords, r.ECCBadWords, r.Corrected)
	}
	sb.WriteString(fmt.Sprintf("storage overhead: %.3fx\n", ecc.Overhead()))
	return sb.String()
}
