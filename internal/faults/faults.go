// Package faults drives an MTBF-based failure process over the virtual
// clock of the LEGaTO session engine (paper Sec. IV): devices crash
// (removed from fleet capacity, in-flight work revoked), degrade (capacity
// shrink), or silently corrupt task outputs (per-class SDC probabilities,
// detected only by the DMR vote on replicated tasks).
//
// The process is sampled deterministically from a Plan: per-device
// exponential draws seeded by (Plan.Seed, device ID), so a given plan over
// a given fleet always yields the same fault timeline — experiments and
// the E12 gate depend on that reproducibility.
//
// Layering: faults knows the hardware model and the monitor registry but
// not the engine. The engine hands the Injector a FleetControl (its shared
// admission ledger) and replays the sampled events on each job's private
// clock; the injector makes the *global* state change exactly once no
// matter how many jobs cross the event time.
package faults

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"legato/internal/ft"
	"legato/internal/hw"
	"legato/internal/monitor"
	"legato/internal/sim"
)

// Kind enumerates the fault classes of the failure process.
type Kind int

const (
	// Crash permanently removes a device from the fleet.
	Crash Kind = iota
	// Degrade shrinks a device's capacity to Event.Capacity cores.
	Degrade
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Degrade:
		return "degrade"
	default:
		return "fault"
	}
}

// Event is one scheduled fault of the sampled failure timeline.
type Event struct {
	At     sim.Time
	Device string
	Class  hw.Class
	Kind   Kind
	// Capacity is the post-event core count (Degrade only).
	Capacity int
	// Slowdown is the silent execution-time stretch the degraded device
	// suffers (Degrade only; 1 = none). Unlike the capacity shrink it is
	// invisible to placement — only the straggler watchdog can observe it.
	Slowdown float64
}

// Plan parametrises the failure process. The zero plan injects nothing.
type Plan struct {
	// MTBF gives per-class mean time between hard crashes in seconds; a
	// class absent from the map never crashes.
	MTBF ft.MTBFModel
	// MaxCrashes bounds how many devices may crash during the session
	// (earliest sampled crashes win); zero means 1 when MTBF is set.
	MaxCrashes int
	// DegradeMTBF gives per-class mean time between degrade events.
	DegradeMTBF ft.MTBFModel
	// DegradeTo is the fraction of cores a degraded device retains
	// (default 0.5; clamped to [0, 1]).
	DegradeTo float64
	// DegradeSlowdown is the silent execution-time multiplier a degraded
	// device suffers (values <= 1 mean none — the historical capacity-only
	// degrade). The slowdown is hidden from placement: jobs keep scheduling
	// onto the device with clean cost-model expectations, which is exactly
	// the tail-latency pathology hedged execution mitigates.
	DegradeSlowdown float64
	// SDC gives per-class, per-execution silent-corruption probabilities.
	SDC ft.SDCModel
	// Seed makes the sampled timeline reproducible.
	Seed int64
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return len(p.MTBF) > 0 || len(p.DegradeMTBF) > 0 || len(p.SDC) > 0
}

// rng returns a deterministic per-device random stream: the timeline of a
// device depends only on (seed, stream, device ID), never on fleet
// iteration order.
func rng(seed int64, stream string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(stream))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// expSample draws an exponential waiting time with the given mean seconds
// and converts it to virtual time.
func expSample(r *rand.Rand, meanSeconds float64) sim.Time {
	if meanSeconds <= 0 || math.IsInf(meanSeconds, 0) {
		return 0
	}
	sec := r.ExpFloat64() * meanSeconds
	return sim.Time(sec * float64(time.Second))
}

// Schedule samples the deterministic fault timeline for the reference
// devices: one exponential crash draw and one degrade draw per device
// (classes absent from the respective model are immortal), crashes
// truncated to the MaxCrashes earliest, sorted by time.
func (p Plan) Schedule(devices []*hw.Device) []Event {
	var crashes, degrades []Event
	for _, d := range devices {
		if mean, ok := p.MTBF[d.Spec.Class]; ok {
			if at := expSample(rng(p.Seed, "crash/"+d.ID), mean); at > 0 {
				crashes = append(crashes, Event{At: at, Device: d.ID, Class: d.Spec.Class, Kind: Crash})
			}
		}
		if mean, ok := p.DegradeMTBF[d.Spec.Class]; ok {
			if at := expSample(rng(p.Seed, "degrade/"+d.ID), mean); at > 0 {
				frac := p.DegradeTo
				if frac <= 0 {
					frac = 0.5
				}
				if frac > 1 {
					frac = 1
				}
				keep := int(math.Floor(float64(d.Spec.Cores) * frac))
				slow := p.DegradeSlowdown
				if slow < 1 {
					slow = 1
				}
				degrades = append(degrades, Event{At: at, Device: d.ID, Class: d.Spec.Class, Kind: Degrade, Capacity: keep, Slowdown: slow})
			}
		}
	}
	sort.Slice(crashes, func(i, j int) bool { return crashes[i].At < crashes[j].At })
	max := p.MaxCrashes
	if max <= 0 {
		max = 1
	}
	if len(crashes) > max {
		crashes = crashes[:max]
	}
	events := append(crashes, degrades...)
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Device < events[j].Device
	})
	return events
}

// FleetControl is the slice of the shared admission ledger the injector
// needs; engine.Fleet implements it.
type FleetControl interface {
	Fail(deviceID string)
	SetCapacity(deviceID string, cores int)
	Capacity(deviceID string) int
}

// Injector owns the sampled timeline and applies each global fault exactly
// once. Jobs run on private virtual clocks, so several jobs may cross the
// same event time (in any wall-clock order); the injector is the
// synchronisation point that turns those per-job observations into a
// single fleet-level state change. Safe for concurrent use.
type Injector struct {
	plan   Plan
	fleet  FleetControl
	reg    *monitor.Registry
	events []Event

	mu      sync.Mutex
	applied map[string]bool // "crash/dev" or "degrade/dev" → already applied
	lost    map[string]bool
}

// NewInjector samples the plan over the reference devices and returns the
// injector that will apply it to the given fleet. reg may be nil.
func NewInjector(plan Plan, fleet FleetControl, devices []*hw.Device, reg *monitor.Registry) *Injector {
	return &Injector{
		plan:    plan,
		fleet:   fleet,
		reg:     reg,
		events:  plan.Schedule(devices),
		applied: make(map[string]bool),
		lost:    make(map[string]bool),
	}
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// Events returns the sampled timeline (shared slice; do not mutate).
func (in *Injector) Events() []Event { return in.events }

// Lost reports whether the device has already crashed globally.
func (in *Injector) Lost(deviceID string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.lost[deviceID]
}

// Crash applies the global crash of a device: the first caller removes it
// from the fleet and gets true; later callers (other jobs crossing the
// same virtual instant) get false. Every job must still fail its own
// mirror regardless of the return value.
func (in *Injector) Crash(deviceID string) bool {
	in.mu.Lock()
	key := "crash/" + deviceID
	if in.applied[key] {
		in.mu.Unlock()
		return false
	}
	in.applied[key] = true
	in.lost[deviceID] = true
	in.mu.Unlock()
	in.fleet.Fail(deviceID)
	if in.reg != nil {
		in.reg.Add("faults", "device-crashes", 1)
	}
	return true
}

// Degrade applies a global capacity shrink exactly once; the first caller
// gets true.
func (in *Injector) Degrade(ev Event) bool {
	in.mu.Lock()
	key := "degrade/" + ev.Device
	if in.applied[key] || in.lost[ev.Device] {
		in.mu.Unlock()
		return false
	}
	in.applied[key] = true
	in.mu.Unlock()
	if ev.Capacity < in.fleet.Capacity(ev.Device) {
		in.fleet.SetCapacity(ev.Device, ev.Capacity)
	}
	if in.reg != nil {
		in.reg.Add("faults", "device-degrades", 1)
	}
	return true
}

// Crashes reports how many devices have crashed so far.
func (in *Injector) Crashes() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.lost)
}

// Sampler returns a per-job silent-data-corruption oracle: a deterministic
// function of (plan seed, stream, class, draw index) suitable for
// taskrt.SetCorruptor. extra is an additional per-execution corruption
// probability on top of the class's base rate — how undervolted operating
// points (power.SDCProbability) feed the failure model: a crash-only plan
// still exposes undervolt risk. The returned closure is confined to the
// owning job's goroutine and must not be shared. A class absent from the
// SDC model with zero extra consumes no random draw, so adding undervolted
// tasks does not perturb the timeline of guardband ones.
func (in *Injector) Sampler(stream int64) func(c hw.Class, extra float64) bool {
	r := rand.New(rand.NewSource(in.plan.Seed ^ (stream+1)*0x5851f42d4c957f2d))
	sdc := in.plan.SDC
	reg := in.reg
	return func(c hw.Class, extra float64) bool {
		p := sdc[c] + extra
		if p <= 0 {
			return false
		}
		hit := r.Float64() < p
		if hit && reg != nil {
			reg.Add("faults", "sdc-events", 1)
		}
		return hit
	}
}
