// Package hls is the LEGaTO compiler/high-level-synthesis layer of paper
// Sec. II-D: "a toolchain to map applications written in a high-level
// task-based dataflow language onto such heterogeneous platforms". A tiny
// expression IR describes per-element stream kernels; Compile lowers a
// kernel to a dataflow graph (internal/dfe) — the OmpSs@FPGA / Maxeler
// path — and produces the FPGA resource estimate (LUT/FF/DSP/BRAM) that
// vendor IP generation (Vivado HLS, Quartus) would report.
package hls

import (
	"fmt"

	"legato/internal/dfe"
)

// Expr is a kernel expression over input streams.
type Expr interface {
	// lower builds the expression's dataflow subgraph.
	lower(g *dfe.Graph) *dfe.Node
	// cost accumulates the resource estimate.
	cost(r *Resources)
}

// Resources is an FPGA utilisation estimate.
type Resources struct {
	LUTs  int
	FFs   int
	DSPs  int
	BRAMs int
}

// Add accumulates another estimate.
func (r *Resources) Add(o Resources) {
	r.LUTs += o.LUTs
	r.FFs += o.FFs
	r.DSPs += o.DSPs
	r.BRAMs += o.BRAMs
}

// FitsIn reports whether the design fits a device with the given budget.
func (r Resources) FitsIn(budget Resources) bool {
	return r.LUTs <= budget.LUTs && r.FFs <= budget.FFs &&
		r.DSPs <= budget.DSPs && r.BRAMs <= budget.BRAMs
}

// In reads the named input stream.
type In struct{ Name string }

func (e In) lower(g *dfe.Graph) *dfe.Node { return g.Input(e.Name) }
func (e In) cost(r *Resources)            { r.FFs += 32 }

// K is a constant.
type K struct{ V float64 }

func (e K) lower(g *dfe.Graph) *dfe.Node { return g.Const(e.V) }
func (e K) cost(r *Resources)            { r.LUTs += 8 }

// BinKind enumerates binary operators.
type BinKind int

const (
	// AddOp .. DivOp are the arithmetic operators of the kernel IR.
	AddOp BinKind = iota
	SubOp
	MulOp
	DivOp
)

// Bin applies a binary operator to two subexpressions.
type Bin struct {
	Kind BinKind
	A, B Expr
}

func (e Bin) lower(g *dfe.Graph) *dfe.Node {
	a, b := e.A.lower(g), e.B.lower(g)
	switch e.Kind {
	case AddOp:
		return g.Bin(dfe.OpAdd, a, b)
	case SubOp:
		return g.Bin(dfe.OpSub, a, b)
	case MulOp:
		return g.Bin(dfe.OpMul, a, b)
	default:
		return g.Bin(dfe.OpDiv, a, b)
	}
}

func (e Bin) cost(r *Resources) {
	e.A.cost(r)
	e.B.cost(r)
	switch e.Kind {
	case AddOp, SubOp:
		r.LUTs += 64
		r.FFs += 64
	case MulOp:
		r.DSPs += 2
		r.FFs += 96
	case DivOp:
		r.DSPs += 8
		r.LUTs += 600
		r.FFs += 400
	}
}

// Select is cond > 0 ? A : B.
type Select struct {
	Cond, A, B Expr
}

func (e Select) lower(g *dfe.Graph) *dfe.Node {
	return g.Mux(e.Cond.lower(g), e.A.lower(g), e.B.lower(g))
}

func (e Select) cost(r *Resources) {
	e.Cond.cost(r)
	e.A.cost(r)
	e.B.cost(r)
	r.LUTs += 32
}

// Convenience constructors.

// AddE returns a + b.
func AddE(a, b Expr) Expr { return Bin{Kind: AddOp, A: a, B: b} }

// SubE returns a − b.
func SubE(a, b Expr) Expr { return Bin{Kind: SubOp, A: a, B: b} }

// MulE returns a × b.
func MulE(a, b Expr) Expr { return Bin{Kind: MulOp, A: a, B: b} }

// DivE returns a ÷ b.
func DivE(a, b Expr) Expr { return Bin{Kind: DivOp, A: a, B: b} }

// Kernel is a named set of output expressions.
type Kernel struct {
	Name    string
	Outputs map[string]Expr
}

// Design is a compiled kernel.
type Design struct {
	Kernel    string
	Graph     *dfe.Graph
	Resources Resources
	// PipelineDepth is the graph's latency in cycles; II is the initiation
	// interval (1 for feed-forward kernels — one element per cycle).
	PipelineDepth int
	II            int
}

// Compile lowers a kernel to a dataflow design with a resource estimate.
func Compile(k Kernel) (*Design, error) {
	if len(k.Outputs) == 0 {
		return nil, fmt.Errorf("hls: kernel %q has no outputs", k.Name)
	}
	g := dfe.NewGraph()
	var res Resources
	for name, expr := range k.Outputs {
		n := expr.lower(g)
		if err := g.Output(name, n); err != nil {
			return nil, err
		}
		expr.cost(&res)
		res.FFs += 32 // output register
	}
	return &Design{
		Kernel:        k.Name,
		Graph:         g,
		Resources:     res,
		PipelineDepth: g.PipelineDepth(),
		II:            1,
	}, nil
}

// KintexBudget is a KC705-class resource budget.
func KintexBudget() Resources {
	return Resources{LUTs: 203800, FFs: 407600, DSPs: 840, BRAMs: 445}
}

// ZynqBudget is a ZC702-class resource budget.
func ZynqBudget() Resources {
	return Resources{LUTs: 53200, FFs: 106400, DSPs: 220, BRAMs: 140}
}
