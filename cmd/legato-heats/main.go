// legato-heats runs the HEATS scheduling experiment (paper Sec. V,
// Fig. 7): a profiled batch on a mixed x86+ARM cluster, sweeping the
// customer's energy/performance weight α and reporting the trade-off.
//
// Usage:
//
//	legato-heats [-tasks N] [-alphas 0,0.25,0.5,0.75,1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"legato/internal/experiments"
)

func main() {
	log.SetFlags(0)
	tasks := flag.Int("tasks", 6, "batch size")
	alphasFlag := flag.String("alphas", "0,0.25,0.5,0.75,1", "energy weights to sweep")
	flag.Parse()

	var alphas []float64
	for _, f := range strings.Split(*alphasFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			log.Fatalf("bad -alphas: %v", err)
		}
		alphas = append(alphas, v)
	}

	res, err := experiments.HEATS(alphas, *tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
}
