// legato-trace inspects and converts session dumps written by
// legato.System.ExportSession.
//
// Usage:
//
//	legato-trace -in session.json [flags]
//
// With only -in it prints a human summary of the run: overview, the
// top-N slowest task timelines (queue wait / execution / retries / hedge
// overlap), per-device utilization against the session makespan, hedge
// waste, and per-device energy attribution. Conversion flags write
// derived artifacts instead:
//
//	-chrome out.json   Chrome trace_event JSON (chrome://tracing, Perfetto)
//	-paraver out.prv   Paraver-style text trace
//	-prom out.prom     Prometheus text exposition of the metric registry
//	-events out.log    ordered event log, one line per event
//	-top N             rows in the slowest-task table (default 10)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"legato/internal/obs"
	"legato/internal/sim"
	"legato/internal/trace"
)

func main() {
	log.SetFlags(0)
	in := flag.String("in", "", "session dump written by ExportSession (required)")
	chrome := flag.String("chrome", "", "write Chrome trace_event JSON to this path")
	paraver := flag.String("paraver", "", "write Paraver text trace to this path")
	prom := flag.String("prom", "", "write Prometheus exposition to this path")
	events := flag.String("events", "", "write the ordered event log to this path")
	top := flag.Int("top", 10, "rows in the slowest-task table")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	dump, err := obs.DecodeSession(f)
	f.Close()
	if err != nil {
		log.Fatalf("%s: %v", *in, err)
	}

	converted := false
	if *chrome != "" {
		b, err := obs.ChromeTrace(dump.Spans, dump.Counters)
		if err != nil {
			log.Fatal(err)
		}
		writeOut(*chrome, string(b))
		converted = true
	}
	if *paraver != "" {
		writeOut(*paraver, trace.ParaverText(dump.Spans, dump.Counters))
		converted = true
	}
	if *prom != "" {
		writeOut(*prom, obs.PrometheusText(dump.Metrics))
		converted = true
	}
	if *events != "" {
		writeOut(*events, obs.FormatLog(dump.Events))
		converted = true
	}
	if converted {
		return
	}
	summary(dump, *top)
}

// writeOut writes one artifact, logging the destination and size.
func writeOut(path, content string) {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
}

// summary prints the human-facing digest of one session dump.
func summary(dump *obs.SessionDump, top int) {
	busy, makespan := obs.DeviceUtilization(dump.Spans)
	fmt.Printf("session %q: %d spans, %d events, %d metric scopes, makespan %v\n",
		dump.Name, len(dump.Spans), len(dump.Events), len(dump.Metrics), makespan)

	tls := obs.Timelines(dump.Spans)
	if len(tls) > 0 {
		fmt.Printf("\nslowest %d tasks (of %d):\n", min(top, len(tls)), len(tls))
		fmt.Print(obs.TimelineTable(obs.TopSlowest(tls, top)))
	}

	if len(busy) > 0 && makespan > 0 {
		fmt.Printf("\ndevice utilization over %v:\n", makespan)
		devs := make([]string, 0, len(busy))
		for d := range busy {
			devs = append(devs, d)
		}
		sort.Strings(devs)
		for _, d := range devs {
			fmt.Printf("  %-10s busy %-14v %5.1f%%\n", d, busy[d],
				100*sim.ToSeconds(busy[d])/sim.ToSeconds(makespan))
		}
	}

	if tail, ok := dump.Metrics["tail"]; ok {
		fmt.Printf("\ntail behaviour: %.0f hedges launched, %.0f won, %.0f J wasted, %.0f tasks shed\n",
			tail["hedges-launched"], tail["hedges-won"], tail["hedge-wasted-J"], tail["tasks-shed"])
	}

	type devEnergy struct {
		dev string
		j   float64
	}
	var des []devEnergy
	var totalJ float64
	for scope, metrics := range dump.Metrics {
		if dev, ok := strings.CutPrefix(scope, "device/"); ok && metrics["energy-J"] > 0 {
			des = append(des, devEnergy{dev, metrics["energy-J"]})
			totalJ += metrics["energy-J"]
		}
	}
	if totalJ > 0 {
		sort.Slice(des, func(i, j int) bool {
			if des[i].j != des[j].j {
				return des[i].j > des[j].j
			}
			return des[i].dev < des[j].dev
		})
		fmt.Printf("\nenergy attribution (%.0f J dynamic total):\n", totalJ)
		for _, de := range des {
			fmt.Printf("  %-10s %10.0f J  %5.1f%%\n", de.dev, de.j, 100*de.j/totalJ)
		}
	}
}
