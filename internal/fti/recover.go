package fti

import (
	"encoding/binary"
	"fmt"

	"legato/internal/gpu"
	"legato/internal/rs"
)

// encodeParity computes the single RS parity shard for a group of
// equal-sized data shards.
func encodeParity(shards [][]byte) ([]byte, error) {
	code, err := rs.New(len(shards), 1)
	if err != nil {
		return nil, err
	}
	parity, err := code.Encode(shards)
	if err != nil {
		return nil, err
	}
	return parity[0], nil
}

// Recover restores every protected variable from the rank's last committed
// checkpoint, searching levels from cheapest to most durable:
// L1 local NVMe → L2 partner copy → L3 RS reconstruction → L4 global.
// It is collective and returns the checkpointed iteration.
func (f *FTI) Recover() (iter int, err error) {
	p := f.rank.Proc()
	start := p.Now()
	meta, ok := f.store.lastMeta(f.rank.Rank())
	if !ok {
		return 0, fmt.Errorf("fti: rank %d has no committed checkpoint", f.rank.Rank())
	}
	for _, pr := range f.prot {
		fl, err := f.locateVar(meta, pr.id)
		if err != nil {
			return 0, fmt.Errorf("fti: rank %d var %d: %w", f.rank.Rank(), pr.id, err)
		}
		if err := f.restoreVar(pr, fl); err != nil {
			return 0, fmt.Errorf("fti: rank %d restore var %d: %w", f.rank.Rank(), pr.id, err)
		}
	}
	// Resume bookkeeping: future checkpoints continue the sequence.
	f.ckptCount = meta.CkptID
	f.snapCount = 0
	f.rank.Barrier()
	f.Stats.RecoverTimes = append(f.Stats.RecoverTimes, p.Now()-start)
	return meta.Iter, nil
}

// locateVar finds (and pays the I/O for) the best surviving copy of a
// variable's checkpoint file.
func (f *FTI) locateVar(meta *rankMeta, varID int) (*file, error) {
	p := f.rank.Proc()
	world := f.rank.World()
	rank := f.rank.Rank()

	// L1: our node's local copy.
	if fl, ok := f.store.localGet(p, f.node, l1Name(meta.CkptID, rank, varID), false, f.node); ok {
		return fl, nil
	}
	// L2: the partner's node holds our copy.
	if meta.Level >= L2 {
		partnerNode := world.NodeOf(f.partner())
		if fl, ok := f.store.localGet(p, partnerNode, l2Name(meta.CkptID, rank, varID), partnerNode != f.node, f.node); ok {
			return fl, nil
		}
	}
	// L3: reconstruct from the surviving group shards plus parity.
	if meta.Level >= L3 {
		if fl, err := f.reconstructL3(meta, varID); err == nil {
			return fl, nil
		}
	}
	// L4: global store.
	if meta.Level >= L4 {
		if fl, ok := f.store.globalGet(p, l4Name(meta.CkptID, rank, varID)); ok {
			return fl, nil
		}
	}
	return nil, fmt.Errorf("no surviving copy of checkpoint %d (level %d)", meta.CkptID, meta.Level)
}

// reconstructL3 rebuilds this rank's shard from the group's surviving L1
// files and the parity shard.
func (f *FTI) reconstructL3(meta *rankMeta, varID int) (*file, error) {
	p := f.rank.Proc()
	world := f.rank.World()
	g, members := f.group()
	k := len(members)

	shards := make([][]byte, k+1)
	present := 0
	phantom := false
	maxSize := int64(0)
	for i, m := range members {
		node := world.NodeOf(m)
		fl, ok := f.store.localGet(p, node, l1Name(meta.CkptID, m, varID), node != f.node, f.node)
		if !ok {
			continue
		}
		present++
		phantom = phantom || fl.phantom
		shards[i] = fl.data
		if fl.size > maxSize {
			maxSize = fl.size
		}
	}
	parityNode := world.NodeOf(members[1%k])
	if fl, ok := f.store.localGet(p, parityNode, l3Name(meta.CkptID, g, varID), parityNode != f.node, f.node); ok {
		present++
		phantom = phantom || fl.phantom
		shards[k] = fl.data
		if fl.size > maxSize {
			maxSize = fl.size
		}
	}
	if present < k {
		return nil, fmt.Errorf("L3 reconstruction impossible: %d of %d shards survive", present, k+1)
	}
	mine := f.rank.Rank() % f.cfg.GroupSize
	if phantom {
		// Size-only model: reconstruction feasibility was checked; charge
		// is the shard reads already performed.
		return &file{size: maxSize, phantom: true}, nil
	}
	code, err := rs.New(k, 1)
	if err != nil {
		return nil, err
	}
	padded := make([][]byte, k+1)
	for i, s := range shards {
		if s == nil {
			continue
		}
		ps := make([]byte, maxSize)
		copy(ps, s)
		padded[i] = ps
	}
	if err := code.Reconstruct(padded); err != nil {
		return nil, err
	}
	return &file{data: padded[mine], size: maxSize}, nil
}

// restoreVar pushes recovered bytes back into the protected variable,
// charging the method-dependent movement cost (the reverse of captureVar).
func (f *FTI) restoreVar(pr *protected, fl *file) error {
	p := f.rank.Proc()
	if pr.counter != nil {
		if len(fl.data) < 8 {
			return fmt.Errorf("counter checkpoint too small (%d bytes)", len(fl.data))
		}
		*pr.counter = int(binary.LittleEndian.Uint64(fl.data))
		return nil
	}
	b := pr.buf
	if fl.size < b.Len() {
		return fmt.Errorf("checkpoint holds %d bytes, buffer needs %d", fl.size, b.Len())
	}
	switch {
	case b.Kind == gpu.HostMem:
		if !b.Phantom() {
			copy(b.Data(), fl.data[:b.Len()])
		}
		return nil

	case f.cfg.Method == Initial:
		// Initial implementation: sequential read (already charged by
		// locateVar) then page-fault or blocking-DMA population.
		src := fl.data
		if b.Phantom() {
			src = nil
		}
		if b.Kind == gpu.ManagedMem {
			return f.dev.UVMPopulateH2D(p, b, 0, src, b.Len())
		}
		return f.dev.MemcpyH2D(p, b, 0, src, b.Len())

	default:
		return f.restoreAsync(b, fl)
	}
}

// restoreAsync streams file data back to the device in chunks; the H2D DMA
// of chunk i overlaps the (already-modelled) read of chunk i+1. Because
// locateVar charged the full sequential read, we overlap by refunding
// nothing and charging only the *excess* of DMA over read — in practice
// DMA (11 GB/s) is faster than NVMe reads (4 GB/s per process), so the
// async restore adds only the final chunk's DMA latency. We model that by
// charging a single chunk DMA on top of the read.
func (f *FTI) restoreAsync(b *gpu.Buffer, fl *file) error {
	p := f.rank.Proc()
	stream := f.dev.NewStream()
	n := f.cfg.ChunkBytes
	if n > b.Len() {
		n = b.Len()
	}
	// Real data: populate the whole buffer now (correctness), but charge
	// only one chunk of DMA time (pipelined overlap with the read).
	if !b.Phantom() && fl.data != nil {
		copy(b.DeviceData(), fl.data[:b.Len()])
	}
	var window []byte
	if !b.Phantom() && fl.data != nil {
		window = fl.data[:n]
	}
	if err := stream.MemcpyH2DAsync(b, 0, window, n, nil); err != nil {
		return err
	}
	stream.Synchronize(p)
	return nil
}
