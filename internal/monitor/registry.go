package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a thread-safe counter store for the concurrent job engine:
// per-scope metric accumulators in the spirit of the HEATS telemetry
// module, but fed by runtime hooks instead of polling. Scopes follow a
// "kind/name" convention — "job/<name>" for per-job counters
// (tasks-queued, tasks-running, tasks-completed, energy-J, makespan-s) and
// "device/<id>" for per-device counters (tasks-completed, energy-J,
// busy-s) — though the registry itself is agnostic.
type Registry struct {
	mu     sync.Mutex
	scopes map[string]map[string]float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{scopes: make(map[string]map[string]float64)}
}

func (r *Registry) metricsLocked(scope string) map[string]float64 {
	m, ok := r.scopes[scope]
	if !ok {
		m = make(map[string]float64)
		r.scopes[scope] = m
	}
	return m
}

// Add accumulates delta onto a scoped metric.
func (r *Registry) Add(scope, metric string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metricsLocked(scope)[metric] += delta
}

// Set overwrites a scoped metric.
func (r *Registry) Set(scope, metric string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metricsLocked(scope)[metric] = v
}

// Get returns a scoped metric (zero when never written).
func (r *Registry) Get(scope, metric string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scopes[scope][metric]
}

// Scopes lists all scopes in sorted order.
func (r *Registry) Scopes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.scopes))
	for s := range r.scopes {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ScopeSnapshot returns a copy of one scope's metrics.
func (r *Registry) ScopeSnapshot(scope string) map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.scopes[scope]))
	for k, v := range r.scopes[scope] {
		out[k] = v
	}
	return out
}

// Snapshot returns a deep copy of every scope's metrics, taken under one
// lock acquisition — an atomic, consistent view exporters can walk while
// live writers keep accumulating.
func (r *Registry) Snapshot() map[string]map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]map[string]float64, len(r.scopes))
	for scope, metrics := range r.scopes {
		m := make(map[string]float64, len(metrics))
		for k, v := range metrics {
			m[k] = v
		}
		out[scope] = m
	}
	return out
}

// Report renders every scope's metrics as an aligned table.
func (r *Registry) Report() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	scopes := make([]string, 0, len(r.scopes))
	for s := range r.scopes {
		scopes = append(scopes, s)
	}
	sort.Strings(scopes)
	var sb strings.Builder
	for _, s := range scopes {
		fmt.Fprintf(&sb, "%s\n", s)
		metrics := make([]string, 0, len(r.scopes[s]))
		for m := range r.scopes[s] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			fmt.Fprintf(&sb, "  %-20s %14.4f\n", m, r.scopes[s][m])
		}
	}
	return sb.String()
}
