package undervolt

import (
	"math"
	"strings"
	"testing"

	"legato/internal/fpga"
)

func TestClassify(t *testing.T) {
	p := fpga.VC707()
	cases := []struct {
		v    float64
		want Region
	}{
		{1.0, Guardband},
		{p.VMin, Guardband},
		{p.VMin - 0.001, Critical},
		{p.VCrash, Critical},
		{p.VCrash - 0.001, Crash},
	}
	for _, c := range cases {
		if got := Classify(p, c.v); got != c.want {
			t.Fatalf("classify %.3f: got %v want %v", c.v, got, c.want)
		}
	}
}

func TestRegionString(t *testing.T) {
	for _, r := range []Region{Guardband, Critical, Crash} {
		if r.String() == "" {
			t.Fatal("empty region name")
		}
	}
}

func TestSweepZC702(t *testing.T) {
	p := fpga.ZC702()
	b := fpga.NewBoard(p, 1)
	s, err := Run(b, p.VNom, 0.50, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) == 0 {
		t.Fatal("empty sweep")
	}
	// The sweep must terminate in a crash point.
	last := s.Points[len(s.Points)-1]
	if !last.Crashed {
		t.Fatalf("sweep did not reach crash: last point %+v", last)
	}
	// Observed Vmin within a step of the profile's value.
	if math.Abs(s.VMinObserved-p.VMin) > 0.011 {
		t.Fatalf("observed Vmin %.3f too far from published %.3f", s.VMinObserved, p.VMin)
	}
	// Observed Vcrash at or one step below the published value.
	if s.VCrashObserved > p.VCrash || s.VCrashObserved < p.VCrash-0.011 {
		t.Fatalf("observed Vcrash %.3f vs published %.3f", s.VCrashObserved, p.VCrash)
	}
}

func TestSweepGuardbandFaultFree(t *testing.T) {
	p := fpga.KC705B()
	b := fpga.NewBoard(p, 2)
	s, err := Run(b, p.VNom, 0.50, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range s.Points {
		if pt.Region == Guardband && pt.Faults != 0 {
			t.Fatalf("faults inside guardband at %.3f V: %d", pt.Voltage, pt.Faults)
		}
		if pt.Region == Critical && !pt.Crashed && pt.Voltage < p.VMin-0.011 && pt.Faults == 0 {
			t.Fatalf("no faults deep in critical region at %.3f V", pt.Voltage)
		}
	}
}

func TestVcrashFaultRates(t *testing.T) {
	// Paper Sec. III-B: fault rate at Vcrash is 652 (VC707), 153 (ZC702),
	// 254 (KC705-A), 60 (KC705-B) faults/Mbit.
	want := map[string]float64{
		"VC707": 652, "ZC702": 153, "KC705-A": 254, "KC705-B": 60,
	}
	sweeps, err := RunAll(7, 0.45, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 4 {
		t.Fatalf("expected 4 boards, got %d", len(sweeps))
	}
	for _, s := range sweeps {
		w, ok := want[s.Board]
		if !ok {
			t.Fatalf("unexpected board %q", s.Board)
		}
		got := s.FaultsAtCrash()
		if math.Abs(got-w)/w > 0.05 {
			t.Fatalf("%s: faults at crash %.1f/Mbit, paper reports %.0f", s.Board, got, w)
		}
	}
}

func TestPowerSavingOver90Percent(t *testing.T) {
	p := fpga.VC707()
	b := fpga.NewBoard(p, 3)
	s, err := Run(b, p.VNom, 0.50, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxSaving() <= 90 {
		t.Fatalf("max power saving %.1f%%, paper reports >90%%", s.MaxSaving())
	}
}

func TestPowerMonotoneInSweep(t *testing.T) {
	p := fpga.KC705A()
	b := fpga.NewBoard(p, 4)
	s, err := Run(b, p.VNom, 0.50, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, pt := range s.Points {
		if pt.Crashed {
			break
		}
		if pt.RailWatts > prev {
			t.Fatalf("rail power increased during undervolting at %.3f V", pt.Voltage)
		}
		prev = pt.RailWatts
	}
}

func TestSweepTableRendering(t *testing.T) {
	p := fpga.ZC702()
	b := fpga.NewBoard(p, 5)
	s, err := Run(b, p.VNom, 0.50, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	tbl := s.Table()
	for _, frag := range []string{"ZC702", "guardband", "critical", "DONE unset", "Vmin"} {
		if !strings.Contains(tbl, frag) {
			t.Fatalf("table missing %q:\n%s", frag, tbl)
		}
	}
}

func TestSweepArgumentValidation(t *testing.T) {
	b := fpga.NewBoard(fpga.ZC702(), 6)
	if _, err := Run(b, 1.0, 0.5, 0); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := Run(b, 0.5, 1.0, 0.01); err == nil {
		t.Fatal("ascending sweep accepted")
	}
}
