// Quickstart: assemble a LEGaTO system on a RECS|BOX cloud platform,
// build a small dependent task graph with mixed requirements (plain,
// replicated, secure) through the fluent Job/TaskBuilder API, and print
// the energy report — the Fig. 1 ecosystem in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"legato"
	"legato/internal/hw"
	"legato/internal/sim"
)

func main() {
	log.SetFlags(0)

	sys, err := legato.NewSystem(
		legato.WithPlatform(legato.CloudPlatform),
		legato.WithPolicy(legato.MinEnergy), // the project's default objective
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	defer sys.Close(ctx)

	job, err := sys.NewJob("quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// Declare the data regions once, then wire the pipeline through typed
	// handles: ingest → preprocess (GPU-friendly) → two analyses (one
	// replicated, one secured) → report.
	raw := job.Data("raw", 4096)
	clean := job.Data("clean", 4096)
	scores := job.Data("scores", 512)
	insights := job.Data("insights", 512)
	summary := job.Data("summary", 256)

	for _, submit := range []func() error{
		job.Task("ingest").Gops(20).Out(raw).Submit,
		job.Task("preprocess").Gops(120).Cores(4).
			On(hw.GPU, hw.CPUx86).In(raw).Out(clean).Submit,
		job.Task("analyze-critical").Gops(80).In(clean).Out(scores).Replicated().Submit,
		job.Task("analyze-private").Gops(40).In(clean).Out(insights).Secure().Submit,
		job.Task("report").Gops(5).In(scores, insights).Out(summary).Submit,
	} {
		if err := submit(); err != nil {
			log.Fatal(err)
		}
	}

	rep, err := job.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("makespan: %.3f s (simulated)\n", sim.ToSeconds(rep.Makespan))
	fmt.Printf("dynamic task energy: %.2f J\n", rep.TaskEnergyJ)
	fmt.Printf("security energy:     %.6f J\n", rep.SecurityEnergyJ)
	fmt.Printf("replicated tasks:    %d (DMR on diverse device classes)\n\n", rep.ReplicatedTasks)
	fmt.Println("task placements:")
	for _, r := range rep.Records {
		fmt.Printf("  %-24s → %-32s [%s] %.3f–%.3f s\n",
			r.Name, r.Device, r.Class, sim.ToSeconds(r.Start), sim.ToSeconds(r.End))
	}
	fmt.Println("\nper-device energy:")
	fmt.Print(rep.Energy.String())
}
