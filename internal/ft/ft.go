// Package ft implements the LEGaTO fault-tolerance mechanisms of paper
// Sec. I: task replication on diverse processing elements ("replicating
// tasks intelligently on diverse processing elements exploiting the
// spatial/temporal slack"), energy-efficient *selective* replication of
// reliability-critical tasks, error-propagation detection across task
// boundaries with dependency-graph root-cause analysis, and the
// Young/Daly checkpoint-overhead model used to derive the Sec. IV claim
// that the async FTI extension sustains systems with 7× smaller MTBF.
package ft

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"legato/internal/hw"
)

// SDCModel gives per-execution silent-data-corruption probabilities by
// device class (FPGAs running undervolted are the motivating case).
type SDCModel map[hw.Class]float64

// DefaultSDCModel is a representative model: CPUs are the most robust;
// GPUs slightly worse; FPGAs (potentially undervolted) worst.
func DefaultSDCModel() SDCModel {
	return SDCModel{
		hw.CPUx86: 1e-4,
		hw.CPUARM: 1e-4,
		hw.GPU:    5e-4,
		hw.FPGA:   5e-3,
		hw.DFE:    1e-3,
	}
}

// MTBFModel gives per-class mean time between failures in seconds — the
// hard-failure analogue of SDCModel. A class absent from the model never
// crashes. Paper Sec. IV motivates the spread: undervolted FPGAs and
// accelerators pushed to the energy-efficiency edge fail far more often
// than conservatively-clocked CPUs.
type MTBFModel map[hw.Class]float64

// DefaultMTBFModel is a representative model (seconds between failures):
// CPUs are near-immortal on session timescales; GPUs and DFEs fail
// occasionally; undervolted FPGAs are the weakest.
func DefaultMTBFModel() MTBFModel {
	return MTBFModel{
		hw.CPUx86: 400 * 3600,
		hw.CPUARM: 400 * 3600,
		hw.GPU:    80 * 3600,
		hw.FPGA:   24 * 3600,
		hw.DFE:    48 * 3600,
	}
}

// Scaled returns a copy of the model with every MTBF multiplied by k —
// how experiments compress datacentre failure timescales onto a
// session-length virtual clock.
func (m MTBFModel) Scaled(k float64) MTBFModel {
	out := make(MTBFModel, len(m))
	for c, v := range m {
		out[c] = v * k
	}
	return out
}

// Mode selects the replication strategy.
type Mode int

const (
	// NoReplication runs each task once.
	NoReplication Mode = iota
	// ReplicateAll duplicates every task on diverse classes.
	ReplicateAll
	// SelectiveCritical duplicates only Critical tasks (the LEGaTO
	// energy-efficient strategy).
	SelectiveCritical
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ReplicateAll:
		return "replicate-all"
	case SelectiveCritical:
		return "selective-critical"
	default:
		return "no-replication"
	}
}

// Job is one node of the protected task graph.
type Job struct {
	Name     string
	Gops     float64
	Critical bool
	Deps     []*Job

	id int
	// outcome after the campaign:
	corrupted bool // this job's own execution produced an SDC
	detected  bool // replication caught it
	tainted   bool // output wrong (own corruption or inherited)
}

// Tainted reports whether the job's output was wrong after the campaign.
func (j *Job) Tainted() bool { return j.tainted }

// Detected reports whether replication caught this job's own corruption.
func (j *Job) Detected() bool { return j.detected }

// Campaign runs a task graph under a fault model and replication mode.
type Campaign struct {
	Mode  Mode
	Model SDCModel
	// Classes lists the device classes available for placement; diversity
	// means replicas run on different classes when possible.
	Classes []hw.Class
	// EnergyPerGop maps class → joules per giga-operation (for overhead
	// accounting). Zero entries default to 0.1 J/gop.
	EnergyPerGop map[hw.Class]float64

	rng  *rand.Rand
	jobs []*Job

	// Results
	Executions     int
	EnergyJ        float64
	SDCsInjected   int
	SDCsDetected   int
	TaintedOutputs int
}

// NewCampaign builds a campaign with a deterministic seed.
func NewCampaign(mode Mode, model SDCModel, classes []hw.Class, seed int64) *Campaign {
	if len(classes) == 0 {
		classes = []hw.Class{hw.CPUx86, hw.CPUARM, hw.GPU, hw.FPGA}
	}
	return &Campaign{
		Mode:    mode,
		Model:   model,
		Classes: classes,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Add registers a job (dependencies must be added first).
func (c *Campaign) Add(j *Job) error {
	for _, d := range j.Deps {
		if d.id >= len(c.jobs) || c.jobs[d.id] != d {
			return fmt.Errorf("ft: job %q depends on unregistered job %q", j.Name, d.Name)
		}
	}
	j.id = len(c.jobs)
	c.jobs = append(c.jobs, j)
	return nil
}

// energyPerGop returns the per-class energy coefficient.
func (c *Campaign) energyPerGop(class hw.Class) float64 {
	if c.EnergyPerGop != nil {
		if v, ok := c.EnergyPerGop[class]; ok && v > 0 {
			return v
		}
	}
	return 0.1
}

// execute models one run of a job on a class and reports corruption.
func (c *Campaign) execute(j *Job, class hw.Class) bool {
	c.Executions++
	c.EnergyJ += j.Gops * c.energyPerGop(class)
	p := c.Model[class]
	return c.rng.Float64() < p
}

// pickDiverse returns n distinct classes (cycling if fewer exist).
func (c *Campaign) pickDiverse(n int) []hw.Class {
	out := make([]hw.Class, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.Classes[i%len(c.Classes)])
	}
	return out
}

// Run executes the campaign in dependence order (jobs were added in a
// topological order by construction) and computes taint propagation.
func (c *Campaign) Run() {
	for _, j := range c.jobs {
		replicate := c.Mode == ReplicateAll || (c.Mode == SelectiveCritical && j.Critical)
		if replicate {
			// Dual-modular redundancy on diverse classes; mismatch →
			// detected → re-execute until two agree (here: one retry on a
			// third class, counted as correct — triple vote).
			pair := c.pickDiverse(2)
			c1 := c.execute(j, pair[0])
			c2 := c.execute(j, pair[1])
			if c1 != c2 || (c1 && c2) {
				// Any corruption among replicas is detected unless both
				// failed identically, which diverse hardware makes
				// vanishingly unlikely; model identical double-failure as
				// detection too, resolved by the third vote.
				if c1 || c2 {
					c.SDCsInjected++
					c.SDCsDetected++
					j.detected = true
					// Third execution repairs the output.
					c.execute(j, c.pickDiverse(3)[2])
				}
			}
			j.corrupted = false // replication masked it
		} else {
			if c.execute(j, c.Classes[j.id%len(c.Classes)]) {
				c.SDCsInjected++
				j.corrupted = true
			}
		}
		// Taint propagation across task boundaries.
		j.tainted = j.corrupted
		for _, d := range j.Deps {
			if d.tainted {
				j.tainted = true
			}
		}
		if j.tainted {
			c.TaintedOutputs++
		}
	}
}

// RootCause walks the dependency graph backwards from a tainted job to the
// earliest tainted ancestors whose own execution was corrupted — the
// failure-root-cause analysis the task model enables (Sec. I).
func RootCause(j *Job) []*Job {
	seen := map[*Job]bool{}
	var roots []*Job
	var walk func(*Job)
	walk = func(x *Job) {
		if seen[x] {
			return
		}
		seen[x] = true
		if !x.tainted {
			return
		}
		anyTaintedDep := false
		for _, d := range x.Deps {
			if d.tainted {
				anyTaintedDep = true
				walk(d)
			}
		}
		if !anyTaintedDep && x.corrupted {
			roots = append(roots, x)
		}
	}
	walk(j)
	sort.Slice(roots, func(a, b int) bool { return roots[a].id < roots[b].id })
	return roots
}

// DalyModel is the first-order checkpoint-overhead model: for checkpoint
// cost C, restart cost R and MTBF M (all seconds), the optimal interval is
// τ* = √(2CM) and the waste fraction at τ* is √(2C/M) + R/M.
type DalyModel struct {
	CkptSeconds    float64
	RestartSeconds float64
}

// OptimalInterval returns τ* for the given MTBF.
func (d DalyModel) OptimalInterval(mtbf float64) float64 {
	return math.Sqrt(2 * d.CkptSeconds * mtbf)
}

// Waste returns the waste fraction at the optimal interval.
func (d DalyModel) Waste(mtbf float64) float64 {
	if mtbf <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(2*d.CkptSeconds/mtbf) + d.RestartSeconds/mtbf
}

// SustainableMTBF solves Waste(M) = targetWaste for M: the smallest MTBF
// at which the system still meets the overhead budget.
func (d DalyModel) SustainableMTBF(targetWaste float64) float64 {
	if targetWaste <= 0 {
		return math.Inf(1)
	}
	// w = √(2C)/√M + R/M. Substitute x = 1/√M: R·x² + √(2C)·x − w = 0.
	a := d.RestartSeconds
	b := math.Sqrt(2 * d.CkptSeconds)
	cw := -targetWaste
	if a == 0 {
		x := targetWaste / b
		return 1 / (x * x)
	}
	x := (-b + math.Sqrt(b*b-4*a*cw)) / (2 * a)
	return 1 / (x * x)
}

// MTBFImprovement compares two C/R implementations at a reference MTBF:
// it returns how much smaller an MTBF the improved implementation can
// sustain at the baseline's waste level (the paper's "7 times smaller
// MTBF" estimate for async vs initial FTI).
func MTBFImprovement(baseline, improved DalyModel, refMTBF float64) float64 {
	budget := baseline.Waste(refMTBF)
	sustainable := improved.SustainableMTBF(budget)
	return refMTBF / sustainable
}
